//! Property suite for the delta machinery: across random epoch-churn
//! worlds, `apply(base, delta)` is byte-identical to a full rebuild,
//! the incremental classifier matches the one-shot classifier, and
//! decoded deltas re-encode canonically.

use celldelta::{
    apply_delta, build_delta, classify_epoch, ChurnWorld, Delta, DeltaError, EpochCounters,
    IncrementalClassifier,
};
use cellobs::Observer;
use cellspot::DEFAULT_THRESHOLD;
use proptest::prelude::*;

fn world_strategy() -> impl Strategy<Value = ChurnWorld> {
    (any::<u64>(), 40u32..120, 0u32..30, 5u32..20, 10u32..80).prop_map(
        |(seed, v4_blocks, v6_blocks, ases, churn_per_mille)| ChurnWorld {
            seed,
            v4_blocks,
            v6_blocks,
            ases,
            churn_per_mille,
        },
    )
}

fn full_build(counters: &EpochCounters) -> Vec<u8> {
    cellserve::Artifact::encode(
        &classify_epoch(counters, DEFAULT_THRESHOLD),
        cellserve::ArtifactFormat::V2,
    )
}

proptest! {
    #[test]
    fn apply_equals_full_rebuild_across_churn_worlds(
        world in world_strategy(),
        epochs in 1u64..4,
    ) {
        for epoch in 0..epochs {
            let base = full_build(&world.epoch_counters(epoch));
            let target = full_build(&world.epoch_counters(epoch + 1));
            let delta = build_delta(&base, &target, epoch, epoch + 1).expect("build delta");
            let patched = apply_delta(&base, &delta).expect("apply delta");
            prop_assert_eq!(
                &patched,
                &target,
                "apply(base, delta) must be byte-identical to the full rebuild"
            );
        }
    }

    #[test]
    fn incremental_classifier_matches_one_shot(
        world in world_strategy(),
        epochs in 1u64..4,
    ) {
        let mut inc = IncrementalClassifier::new(DEFAULT_THRESHOLD, Observer::disabled());
        for epoch in 0..=epochs {
            let counters = world.epoch_counters(epoch);
            let incremental = inc.classify(&counters);
            let one_shot = classify_epoch(&counters, DEFAULT_THRESHOLD);
            prop_assert_eq!(incremental, one_shot, "epoch {}", epoch);
        }
    }

    #[test]
    fn deltas_reencode_canonically(world in world_strategy()) {
        let base = full_build(&world.epoch_counters(0));
        let target = full_build(&world.epoch_counters(1));
        let bytes = build_delta(&base, &target, 0, 1).expect("build delta");
        let decoded = Delta::from_bytes(&bytes).expect("decode delta");
        prop_assert_eq!(decoded.to_bytes(), bytes, "to_bytes(from_bytes(b)) == b");
    }

    #[test]
    fn wrong_base_is_always_rejected(world in world_strategy()) {
        let base = full_build(&world.epoch_counters(0));
        let target = full_build(&world.epoch_counters(1));
        let other = full_build(&world.epoch_counters(2));
        let delta = build_delta(&base, &target, 0, 1).expect("build delta");
        // Counter churn without label churn can leave consecutive
        // artifacts identical; rejection is only required when the
        // bytes actually differ.
        if other != base {
            let err = apply_delta(&other, &delta).expect_err("wrong base must be rejected");
            prop_assert!(matches!(err, DeltaError::BaseMismatch { .. }), "{}", err);
        }
    }
}
