//! The acceptance scenario: on a seeded churn world where well under
//! 10% of blocks change between epochs, chained deltas stay
//! byte-identical to full rebuilds, each delta is a small fraction of
//! the full artifact, and the memo makes unchanged ASes free.

use celldelta::{
    apply_delta, build_delta, changed_blocks, classify_epoch, ChurnWorld, Delta, EpochCounters,
    IncrementalClassifier,
};
use cellobs::Observer;
use cellspot::DEFAULT_THRESHOLD;

const EPOCHS: u64 = 6;

fn full_build(counters: &EpochCounters) -> Vec<u8> {
    cellserve::Artifact::encode(
        &classify_epoch(counters, DEFAULT_THRESHOLD),
        cellserve::ArtifactFormat::V2,
    )
}

#[test]
fn chained_deltas_track_full_rebuilds_byte_for_byte() {
    let world = ChurnWorld::demo(42);
    let obs = Observer::enabled();
    let mut inc = IncrementalClassifier::new(DEFAULT_THRESHOLD, obs.clone());

    let mut live = cellserve::Artifact::encode(
        &inc.classify(&world.epoch_counters(0)),
        cellserve::ArtifactFormat::V2,
    );
    assert_eq!(live, full_build(&world.epoch_counters(0)));

    let mut prev_counters = world.epoch_counters(0);
    for epoch in 1..=EPOCHS {
        let counters = world.epoch_counters(epoch);

        // The scenario premise: <10% of blocks change between epochs.
        let changed = changed_blocks(&prev_counters, &counters);
        assert!(
            (changed as f64) < 0.10 * world.total_blocks() as f64,
            "epoch {epoch}: {changed} of {} blocks churned",
            world.total_blocks()
        );

        // Incremental classification + delta against the live bytes.
        let target =
            cellserve::Artifact::encode(&inc.classify(&counters), cellserve::ArtifactFormat::V2);
        let delta_bytes = build_delta(&live, &target, epoch - 1, epoch).expect("build delta");

        // The delta is a small fraction of the full artifact.
        assert!(
            (delta_bytes.len() as f64) < 0.25 * (target.len() as f64),
            "epoch {epoch}: delta {} bytes vs full {} bytes",
            delta_bytes.len(),
            target.len()
        );

        // Applying it reproduces the full rebuild exactly.
        let patched = apply_delta(&live, &delta_bytes).expect("apply delta");
        assert_eq!(
            patched,
            full_build(&counters),
            "epoch {epoch}: apply == full rebuild"
        );
        assert_eq!(patched, target, "incremental classify matches too");

        // The delta's metadata chains correctly.
        let delta = Delta::from_bytes(&delta_bytes).expect("decode");
        assert_eq!(delta.base_hash, cellserve::content_hash(&live));
        assert_eq!(delta.target_hash, cellserve::content_hash(&patched));
        assert_eq!((delta.base_epoch, delta.epoch), (epoch - 1, epoch));

        live = patched;
        prev_counters = counters;
    }

    // After six epochs of chained applies, the live bytes still equal a
    // from-scratch rebuild at the final epoch.
    assert_eq!(live, full_build(&world.epoch_counters(EPOCHS)));

    // Memoization did real work: most ASes hold still each epoch.
    let snap = obs.snapshot();
    let hits = snap.counters["delta.memo.hits"];
    let misses = snap.counters["delta.memo.misses"];
    assert!(
        hits > misses,
        "unchanged ASes must dominate: {hits} hits vs {misses} misses"
    );
}

#[test]
fn stale_and_corrupt_deltas_never_apply() {
    let world = ChurnWorld::demo(7);
    let e0 = full_build(&world.epoch_counters(0));
    let e1 = full_build(&world.epoch_counters(1));
    let delta = build_delta(&e0, &e1, 0, 1).expect("build");

    // Bit flips anywhere in the delta are rejected.
    for i in (0..delta.len()).step_by(7) {
        let mut bad = delta.clone();
        bad[i] ^= 0x10;
        assert!(apply_delta(&e0, &bad).is_err(), "flip at {i}");
    }
    // Truncations are rejected.
    for keep in (0..delta.len()).step_by(11) {
        assert!(
            apply_delta(&e0, &delta[..keep]).is_err(),
            "truncated to {keep}"
        );
    }
    // A delta never applies onto its own output (hash chain broken).
    let patched = apply_delta(&e0, &delta).expect("apply");
    if patched != e0 {
        assert!(apply_delta(&patched, &delta).is_err(), "re-apply must fail");
    }
}
