//! Building and applying deltas against sealed CELLSERV artifacts.
//!
//! Both directions run on *bytes*, because bytes are what the hashes
//! chain on: [`build_delta`] decodes base and target artifacts (either
//! CELLSERV format, sniffed), diffs their entry sets, and seals the
//! sorted patch with both content hashes embedded; [`apply_delta`]
//! verifies the base hash, applies the patch strictly, re-freezes
//! through the canonical [`cellserve::FrozenIndexBuilder`], re-encodes
//! *in the base's format*, and verifies the result hashes to the
//! delta's target. Because each CELLSERV encoding is canonical, the
//! patched bytes are *byte-identical* to what a full rebuild at the
//! delta's epoch would have produced — the equivalence the crate's
//! property suite pins down.
//!
//! A delta chains within one format: base and target must sniff to the
//! same version, so the apply side can reproduce the target bytes
//! without the delta carrying format metadata. Cross-format moves are
//! full-artifact operations (`cellspot index migrate`), not deltas.

use cellserve::{content_hash, Artifact, AsClass, FrozenIndex, FrozenIndexBuilder, ServeLabel};
use netaddr::{Asn, Ipv4Net, Ipv6Net};

use crate::wire::{apply_family, diff_family, Delta, DeltaError, EntryMap};

fn artifact_err(e: impl std::fmt::Display) -> DeltaError {
    DeltaError::Artifact(e.to_string())
}

/// The entry maps of a frozen index, keyed `(len, key) → (asn, class
/// byte)` — the representation the patch algebra works on.
pub(crate) fn entry_maps(index: &FrozenIndex) -> (EntryMap<u32>, EntryMap<u128>) {
    let v4 = index
        .entries_v4()
        .map(|(net, l)| ((net.len(), net.addr()), (l.asn.value(), l.class.to_byte())))
        .collect();
    let v6 = index
        .entries_v6()
        .map(|(net, l)| ((net.len(), net.addr()), (l.asn.value(), l.class.to_byte())))
        .collect();
    (v4, v6)
}

fn index_from_maps(v4: &EntryMap<u32>, v6: &EntryMap<u128>) -> Result<FrozenIndex, DeltaError> {
    let mut builder = FrozenIndexBuilder::new();
    for (&(len, key), &(asn, class)) in v4 {
        let net = Ipv4Net::new(key, len).map_err(artifact_err)?;
        let class = AsClass::from_byte(class)
            .ok_or_else(|| DeltaError::Artifact(format!("invalid class byte {class}")))?;
        builder.insert_v4(
            net,
            ServeLabel {
                asn: Asn(asn),
                class,
            },
        );
    }
    for (&(len, key), &(asn, class)) in v6 {
        let net = Ipv6Net::new(key, len).map_err(artifact_err)?;
        let class = AsClass::from_byte(class)
            .ok_or_else(|| DeltaError::Artifact(format!("invalid class byte {class}")))?;
        builder.insert_v6(
            net,
            ServeLabel {
                asn: Asn(asn),
                class,
            },
        );
    }
    Ok(builder.build())
}

/// Build a sealed delta advancing `base_bytes` (built at `base_epoch`)
/// to `target_bytes` (built at `epoch`). Both inputs must be valid
/// sealed CELLSERV artifacts, and `epoch` must advance past
/// `base_epoch`.
pub fn build_delta(
    base_bytes: &[u8],
    target_bytes: &[u8],
    base_epoch: u64,
    epoch: u64,
) -> Result<Vec<u8>, DeltaError> {
    if epoch <= base_epoch {
        return Err(DeltaError::StaleEpoch {
            current: base_epoch,
            delta: epoch,
        });
    }
    let base_format = Artifact::sniff_format(base_bytes);
    let target_format = Artifact::sniff_format(target_bytes);
    if base_format.is_some() && target_format.is_some() && base_format != target_format {
        return Err(DeltaError::Artifact(format!(
            "base ({}) and target ({}) artifact formats differ; migrate first",
            base_format.expect("checked"),
            target_format.expect("checked"),
        )));
    }
    let base = Artifact::decode(base_bytes).map_err(artifact_err)?;
    let target = Artifact::decode(target_bytes).map_err(artifact_err)?;
    let (b4, b6) = entry_maps(&base);
    let (t4, t6) = entry_maps(&target);
    let delta = Delta {
        base_hash: content_hash(base_bytes),
        target_hash: content_hash(target_bytes),
        base_epoch,
        epoch,
        v4: diff_family(&b4, &t4),
        v6: diff_family(&b6, &t6),
    };
    Ok(delta.to_bytes())
}

/// Apply an already-decoded delta to base artifact bytes. Verifies the
/// base hash before touching anything and the target hash after
/// re-encoding; on success the returned bytes are byte-identical to
/// the artifact the delta was built from.
pub fn apply_parsed(base_bytes: &[u8], delta: &Delta) -> Result<Vec<u8>, DeltaError> {
    let artifact = content_hash(base_bytes);
    if artifact != delta.base_hash {
        return Err(DeltaError::BaseMismatch {
            delta_base: delta.base_hash,
            artifact,
        });
    }
    let format = Artifact::sniff_format(base_bytes)
        .ok_or_else(|| DeltaError::Artifact("unrecognized base artifact format".into()))?;
    let base = Artifact::decode(base_bytes).map_err(artifact_err)?;
    let (b4, b6) = entry_maps(&base);
    let p4 = apply_family(&b4, &delta.v4)?;
    let p6 = apply_family(&b6, &delta.v6)?;
    let patched = index_from_maps(&p4, &p6)?;
    let bytes = Artifact::encode(&patched, format);
    let actual = content_hash(&bytes);
    if actual != delta.target_hash {
        return Err(DeltaError::TargetMismatch {
            expected: delta.target_hash,
            actual,
        });
    }
    Ok(bytes)
}

/// Decode a sealed delta and apply it to base artifact bytes — the
/// full validation path: seal, structure, base hash, strict patch,
/// target hash.
pub fn apply_delta(base_bytes: &[u8], delta_bytes: &[u8]) -> Result<Vec<u8>, DeltaError> {
    let delta = Delta::from_bytes(delta_bytes)?;
    apply_parsed(base_bytes, &delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellserve::{ArtifactFormat, FrozenIndex};

    fn index(entries: &[(&str, u32, AsClass)]) -> FrozenIndex {
        let mut b = FrozenIndex::builder();
        for &(cidr, asn, class) in entries {
            b.insert_v4(
                cidr.parse().expect("cidr"),
                ServeLabel {
                    asn: Asn(asn),
                    class,
                },
            );
        }
        b.build()
    }

    fn artifact(entries: &[(&str, u32, AsClass)]) -> Vec<u8> {
        Artifact::encode(&index(entries), ArtifactFormat::V2)
    }

    #[test]
    fn build_then_apply_is_byte_identical() {
        let base = artifact(&[
            ("10.0.0.0/24", 1, AsClass::Dedicated),
            ("10.0.1.0/24", 1, AsClass::Dedicated),
            ("192.0.2.0/24", 2, AsClass::Mixed),
        ]);
        let target = artifact(&[
            ("10.0.0.0/24", 1, AsClass::Mixed), // label update
            ("10.0.1.0/24", 1, AsClass::Mixed),
            ("198.51.100.0/24", 3, AsClass::Dedicated), // added; 192.0.2.0/24 removed
        ]);
        let delta_bytes = build_delta(&base, &target, 1, 2).expect("build");
        let delta = Delta::from_bytes(&delta_bytes).expect("decode");
        assert_eq!(delta.op_count(), 4);
        assert_eq!(delta.base_epoch, 1);
        assert_eq!(delta.epoch, 2);
        let patched = apply_delta(&base, &delta_bytes).expect("apply");
        assert_eq!(patched, target, "apply reproduces the target bytes exactly");
    }

    #[test]
    fn identical_artifacts_diff_to_an_empty_patch() {
        let base = artifact(&[("10.0.0.0/24", 1, AsClass::Dedicated)]);
        let delta_bytes = build_delta(&base, &base, 1, 2).expect("build");
        let delta = Delta::from_bytes(&delta_bytes).expect("decode");
        assert_eq!(delta.op_count(), 0);
        assert_eq!(apply_delta(&base, &delta_bytes).expect("apply"), base);
    }

    #[test]
    fn wrong_base_is_rejected_before_any_patching() {
        let base = artifact(&[("10.0.0.0/24", 1, AsClass::Dedicated)]);
        let target = artifact(&[("10.0.0.0/24", 1, AsClass::Mixed)]);
        let other = artifact(&[("192.0.2.0/24", 9, AsClass::Mixed)]);
        let delta_bytes = build_delta(&base, &target, 1, 2).expect("build");
        let err = apply_delta(&other, &delta_bytes).expect_err("wrong base");
        assert!(matches!(err, DeltaError::BaseMismatch { .. }), "{err}");
    }

    #[test]
    fn deltas_chain_within_the_v1_format_too() {
        let base = Artifact::encode(
            &index(&[("10.0.0.0/24", 1, AsClass::Dedicated)]),
            ArtifactFormat::V1,
        );
        let target = Artifact::encode(
            &index(&[("10.0.0.0/24", 1, AsClass::Mixed)]),
            ArtifactFormat::V1,
        );
        let delta_bytes = build_delta(&base, &target, 1, 2).expect("build");
        let patched = apply_delta(&base, &delta_bytes).expect("apply");
        assert_eq!(patched, target, "v1 apply reproduces v1 target bytes");
    }

    #[test]
    fn mixed_format_endpoints_are_rejected_at_build_time() {
        let idx = index(&[("10.0.0.0/24", 1, AsClass::Dedicated)]);
        let v1 = Artifact::encode(&idx, ArtifactFormat::V1);
        let v2 = Artifact::encode(&idx, ArtifactFormat::V2);
        let err = build_delta(&v1, &v2, 1, 2).expect_err("mixed formats");
        assert!(matches!(err, DeltaError::Artifact(_)), "{err}");
        assert!(err.to_string().contains("formats differ"), "{err}");
    }

    #[test]
    fn non_advancing_epoch_is_rejected_at_build_time() {
        let base = artifact(&[("10.0.0.0/24", 1, AsClass::Dedicated)]);
        let err = build_delta(&base, &base, 2, 2).expect_err("same epoch");
        assert!(matches!(err, DeltaError::StaleEpoch { .. }), "{err}");
    }

    #[test]
    fn garbage_base_bytes_are_an_artifact_error() {
        let base = artifact(&[("10.0.0.0/24", 1, AsClass::Dedicated)]);
        let target = artifact(&[("10.0.0.0/24", 1, AsClass::Mixed)]);
        let delta_bytes = build_delta(&base, &target, 1, 2).expect("build");
        // Hash the delta actually chains on, but with corrupted body:
        // impossible in practice (hash would move), so forge the hash.
        let mut garbage = base.clone();
        let mid = garbage.len() / 2;
        garbage[mid] ^= 0x40;
        let err = apply_delta(&garbage, &delta_bytes).expect_err("corrupt base");
        // The hash moved, so this surfaces as a base mismatch — the
        // delta never chains onto corrupted bytes.
        assert!(matches!(err, DeltaError::BaseMismatch { .. }), "{err}");
        assert!(
            build_delta(&garbage, &target, 1, 2).is_err(),
            "corrupt base fails decode"
        );
    }
}
