//! The sealed CELLDELT delta format and the patch algebra it carries.
//!
//! A delta is a *sorted patch set* chained onto a base CELLSERV
//! artifact by content hash:
//!
//! ```text
//! body:
//!   magic         8 bytes  "CELLDELT"
//!   version       u32      DELTA_VERSION (1)
//!   base_hash     u64      FNV-1a 64 of the base artifact bytes
//!   target_hash   u64      FNV-1a 64 of the patched artifact bytes
//!   base_epoch    u64      epoch the base artifact was built at
//!   epoch         u64      epoch this delta advances to (> base_epoch)
//!   v4 patch:
//!     op_count    u32
//!     ops         op_count × {
//!       op        u8       0 = remove, 1 = add, 2 = update
//!       len       u8       prefix length ≤ 32
//!       key       u32      masked network address, little-endian
//!       value              add/update only: { asn: u32, class: u8 }
//!     }                    sorted strictly ascending by (len, key)
//!   v6 patch:              same shape with u128 keys
//! trailer:
//!   body_len      u64
//!   crc32         u32      cellstream CRC-32 of the body
//!   magic         4 bytes  "CDLT"
//! ```
//!
//! The discipline matches `cellserve::artifact` exactly: little-endian
//! fixed-width fields, canonical encoding (`to_bytes(from_bytes(b)) ==
//! b`), a length + CRC-32 seal that rejects any single-byte corruption
//! or truncation, and structural re-validation (sortedness, masked
//! keys, op/class byte ranges) past the seal.
//!
//! This module is deliberately std-only — its only tie to the rest of
//! the workspace is `crate::crc32` — so the codec can be compiled and
//! exercised by a bare `rustc` harness, independent of cargo.

use std::collections::BTreeMap;
use std::fmt;

/// Leading bytes of every delta artifact.
pub const DELTA_MAGIC: [u8; 8] = *b"CELLDELT";
/// Format version this build reads and writes.
pub const DELTA_VERSION: u32 = 1;

const TRAILER_MAGIC: [u8; 4] = *b"CDLT";
const TRAILER_LEN: usize = 16;

/// Everything that can go wrong building, decoding, or applying a
/// delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta bytes fail the seal or structural validation.
    Corrupt(String),
    /// The delta was written by a newer format version.
    UnsupportedVersion(u32),
    /// The delta chains on a different base artifact.
    BaseMismatch {
        /// Base hash embedded in the delta.
        delta_base: u64,
        /// Hash of the artifact the apply was attempted against.
        artifact: u64,
    },
    /// The delta's epoch does not advance past the current one.
    StaleEpoch {
        /// Epoch of the generation currently live.
        current: u64,
        /// Epoch the delta claims to advance to.
        delta: u64,
    },
    /// The base (or patched) CELLSERV artifact is itself unusable.
    Artifact(String),
    /// A patch op contradicts the base entry set (add of a present
    /// prefix, update/remove of an absent one).
    PatchConflict(String),
    /// The patched artifact does not hash to the delta's target — the
    /// delta was built against different contents than it claims.
    TargetMismatch {
        /// Target hash embedded in the delta.
        expected: u64,
        /// Hash of the artifact the patch actually produced.
        actual: u64,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Corrupt(why) => write!(f, "corrupt delta: {why}"),
            DeltaError::UnsupportedVersion(v) => write!(f, "unsupported delta version {v}"),
            DeltaError::BaseMismatch {
                delta_base,
                artifact,
            } => write!(
                f,
                "delta chains on base {delta_base:016x} but the artifact hashes to {artifact:016x}"
            ),
            DeltaError::StaleEpoch { current, delta } => write!(
                f,
                "stale delta: epoch {delta} does not advance past the current epoch {current}"
            ),
            DeltaError::Artifact(why) => write!(f, "artifact error: {why}"),
            DeltaError::PatchConflict(why) => write!(f, "patch conflict: {why}"),
            DeltaError::TargetMismatch { expected, actual } => write!(
                f,
                "patched artifact hashes to {actual:016x}, delta promised {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

fn corrupt(why: impl Into<String>) -> DeltaError {
    DeltaError::Corrupt(why.into())
}

/// A prefix key: the integer address type of one family. Mirrors
/// `cellserve`'s internal `PrefixKey` but is defined locally so this
/// module stays std-only.
pub trait DeltaKey: Copy + Ord {
    /// Family bit width (32 or 128).
    const BITS: u8;
    /// Serialized size in bytes (4 or 16).
    const SIZE: usize;
    /// Network mask for a prefix length.
    fn mask(len: u8) -> Self;
    /// Bitwise AND.
    fn and(self, other: Self) -> Self;
    /// Append the key in little-endian byte order.
    fn write_le(self, out: &mut Vec<u8>);
    /// Read a key from exactly [`DeltaKey::SIZE`] little-endian bytes.
    fn read_le(bytes: &[u8]) -> Self;
    /// Widen for diagnostics.
    fn to_u128(self) -> u128;
}

impl DeltaKey for u32 {
    const BITS: u8 = 32;
    const SIZE: usize = 4;

    fn mask(len: u8) -> u32 {
        debug_assert!(len <= 32);
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    fn and(self, other: u32) -> u32 {
        self & other
    }

    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> u32 {
        u32::from_le_bytes(bytes.try_into().expect("caller passes SIZE bytes"))
    }

    fn to_u128(self) -> u128 {
        self as u128
    }
}

impl DeltaKey for u128 {
    const BITS: u8 = 128;
    const SIZE: usize = 16;

    fn mask(len: u8) -> u128 {
        debug_assert!(len <= 128);
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len)
        }
    }

    fn and(self, other: u128) -> u128 {
        self & other
    }

    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> u128 {
        u128::from_le_bytes(bytes.try_into().expect("caller passes SIZE bytes"))
    }

    fn to_u128(self) -> u128 {
        self
    }
}

/// One family's entry set, keyed exactly like
/// `cellserve::FrozenIndexBuilder`'s internal maps: `(prefix_len,
/// masked_key) → (asn, class_byte)`. BTreeMap iteration order — length
/// ascending, key ascending within a length — is the canonical op
/// order on the wire.
pub type EntryMap<K> = BTreeMap<(u8, K), (u32, u8)>;

/// What a patch op does to its prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatchChange {
    /// The prefix leaves the served set.
    Remove,
    /// The prefix joins the served set with this label.
    Add {
        /// Origin AS number.
        asn: u32,
        /// Class byte (`cellserve::AsClass::to_byte`).
        class: u8,
    },
    /// The prefix stays served but its label changes.
    Update {
        /// Origin AS number.
        asn: u32,
        /// Class byte (`cellserve::AsClass::to_byte`).
        class: u8,
    },
}

impl PatchChange {
    fn op_byte(self) -> u8 {
        match self {
            PatchChange::Remove => 0,
            PatchChange::Add { .. } => 1,
            PatchChange::Update { .. } => 2,
        }
    }
}

/// One prefix's change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatchOp<K> {
    /// Prefix length.
    pub len: u8,
    /// Masked network address.
    pub key: K,
    /// What happens to it.
    pub change: PatchChange,
}

/// A decoded delta artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    /// Content hash of the base artifact this delta chains on.
    pub base_hash: u64,
    /// Content hash the patched artifact must have.
    pub target_hash: u64,
    /// Epoch the base artifact was built at.
    pub base_epoch: u64,
    /// Epoch this delta advances to; always `> base_epoch`.
    pub epoch: u64,
    /// IPv4 patch ops, sorted strictly ascending by `(len, key)`.
    pub v4: Vec<PatchOp<u32>>,
    /// IPv6 patch ops, same order.
    pub v6: Vec<PatchOp<u128>>,
}

impl Delta {
    /// Total patch ops across both families.
    pub fn op_count(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// Serialize into a sealed delta artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&DELTA_MAGIC);
        out.extend_from_slice(&DELTA_VERSION.to_le_bytes());
        out.extend_from_slice(&self.base_hash.to_le_bytes());
        out.extend_from_slice(&self.target_hash.to_le_bytes());
        out.extend_from_slice(&self.base_epoch.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        encode_ops(&mut out, &self.v4);
        encode_ops(&mut out, &self.v6);
        let body_len = out.len() as u64;
        let crc = crate::crc32(&out);
        out.extend_from_slice(&body_len.to_le_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&TRAILER_MAGIC);
        out
    }

    /// Decode and fully validate a sealed delta: seal first (length,
    /// CRC, trailer magic), then structure (header magic, version,
    /// epoch ordering, op sortedness, masked keys, op/class byte
    /// ranges, no trailing bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Delta, DeltaError> {
        if bytes.len() < TRAILER_LEN + DELTA_MAGIC.len() {
            return Err(corrupt("shorter than seal + magic"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
        if trailer[12..16] != TRAILER_MAGIC {
            return Err(corrupt("trailer magic mismatch"));
        }
        let sealed_len = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
        if sealed_len != body.len() as u64 {
            return Err(corrupt(format!(
                "sealed length {sealed_len} != body length {}",
                body.len()
            )));
        }
        let sealed_crc = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
        let crc = crate::crc32(body);
        if sealed_crc != crc {
            return Err(corrupt(format!(
                "crc mismatch: sealed {sealed_crc:08x}, body {crc:08x}"
            )));
        }

        let mut r = Reader { body, pos: 0 };
        if r.take(DELTA_MAGIC.len(), "header magic")? != DELTA_MAGIC {
            return Err(corrupt("header magic mismatch"));
        }
        let version = r.u32("version")?;
        if version != DELTA_VERSION {
            return Err(DeltaError::UnsupportedVersion(version));
        }
        let base_hash = r.u64("base hash")?;
        let target_hash = r.u64("target hash")?;
        let base_epoch = r.u64("base epoch")?;
        let epoch = r.u64("epoch")?;
        if epoch <= base_epoch {
            return Err(corrupt(format!(
                "delta epoch {epoch} does not advance past base epoch {base_epoch}"
            )));
        }
        let v4 = decode_ops::<u32>(&mut r)?;
        let v6 = decode_ops::<u128>(&mut r)?;
        if r.pos != body.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after the last op",
                body.len() - r.pos
            )));
        }
        Ok(Delta {
            base_hash,
            target_hash,
            base_epoch,
            epoch,
            v4,
            v6,
        })
    }
}

fn encode_ops<K: DeltaKey>(out: &mut Vec<u8>, ops: &[PatchOp<K>]) {
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        out.push(op.change.op_byte());
        out.push(op.len);
        op.key.write_le(out);
        match op.change {
            PatchChange::Remove => {}
            PatchChange::Add { asn, class } | PatchChange::Update { asn, class } => {
                out.extend_from_slice(&asn.to_le_bytes());
                out.push(class);
            }
        }
    }
}

fn decode_ops<K: DeltaKey>(r: &mut Reader<'_>) -> Result<Vec<PatchOp<K>>, DeltaError> {
    let count = r.u32("op count")? as usize;
    let mut ops = Vec::with_capacity(count.min(1 << 20));
    let mut prev: Option<(u8, K)> = None;
    for i in 0..count {
        let op_byte = r.u8("op byte")?;
        let len = r.u8("prefix length")?;
        if len > K::BITS {
            return Err(corrupt(format!(
                "prefix length {len} exceeds family width {} in op {i}",
                K::BITS
            )));
        }
        let key = K::read_le(r.take(K::SIZE, "prefix key")?);
        if key.and(K::mask(len)) != key {
            return Err(corrupt(format!("non-canonical key in op {i}")));
        }
        if let Some(p) = prev {
            if (len, key) <= p {
                return Err(corrupt(format!("ops out of order at op {i}")));
            }
        }
        prev = Some((len, key));
        let change = match op_byte {
            0 => PatchChange::Remove,
            1 | 2 => {
                let asn = r.u32("op asn")?;
                let class = r.u8("op class")?;
                if class > 2 {
                    return Err(corrupt(format!("invalid class byte {class} in op {i}")));
                }
                if op_byte == 1 {
                    PatchChange::Add { asn, class }
                } else {
                    PatchChange::Update { asn, class }
                }
            }
            other => return Err(corrupt(format!("invalid op byte {other} in op {i}"))),
        };
        ops.push(PatchOp { len, key, change });
    }
    Ok(ops)
}

struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DeltaError> {
        if self.body.len() - self.pos < n {
            return Err(corrupt(format!("truncated {what}")));
        }
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, DeltaError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, DeltaError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DeltaError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }
}

fn fmt_prefix<K: DeltaKey>(len: u8, key: K) -> String {
    format!("{:x}/{len}", key.to_u128())
}

/// The minimal patch turning `base` into `target`: a sorted merge-join
/// over the two entry maps emitting one op per differing prefix, in
/// exactly the `(len, key)`-ascending order the wire format requires.
pub fn diff_family<K: DeltaKey>(base: &EntryMap<K>, target: &EntryMap<K>) -> Vec<PatchOp<K>> {
    let mut ops = Vec::new();
    let mut b = base.iter().peekable();
    let mut t = target.iter().peekable();
    loop {
        let cmp = match (b.peek(), t.peek()) {
            (None, None) => break,
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (Some((bk, _)), Some((tk, _))) => bk.cmp(tk),
        };
        match cmp {
            std::cmp::Ordering::Less => {
                let (&(len, key), _) = b.next().expect("peeked");
                ops.push(PatchOp {
                    len,
                    key,
                    change: PatchChange::Remove,
                });
            }
            std::cmp::Ordering::Greater => {
                let (&(len, key), &(asn, class)) = t.next().expect("peeked");
                ops.push(PatchOp {
                    len,
                    key,
                    change: PatchChange::Add { asn, class },
                });
            }
            std::cmp::Ordering::Equal => {
                let (&(len, key), bv) = b.next().expect("peeked");
                let (_, tv) = t.next().expect("peeked");
                if bv != tv {
                    let &(asn, class) = tv;
                    ops.push(PatchOp {
                        len,
                        key,
                        change: PatchChange::Update { asn, class },
                    });
                }
            }
        }
    }
    ops
}

/// Apply a family's patch ops to a base entry map, strictly: an add of
/// a present prefix, or an update/remove of an absent one, is a
/// [`DeltaError::PatchConflict`] — the delta was built against a
/// different base than it is being applied to.
pub fn apply_family<K: DeltaKey>(
    base: &EntryMap<K>,
    ops: &[PatchOp<K>],
) -> Result<EntryMap<K>, DeltaError> {
    let mut out = base.clone();
    for op in ops {
        let at = (op.len, op.key);
        match op.change {
            PatchChange::Remove => {
                if out.remove(&at).is_none() {
                    return Err(DeltaError::PatchConflict(format!(
                        "remove of absent prefix {}",
                        fmt_prefix(op.len, op.key)
                    )));
                }
            }
            PatchChange::Add { asn, class } => {
                if out.insert(at, (asn, class)).is_some() {
                    return Err(DeltaError::PatchConflict(format!(
                        "add of already-present prefix {}",
                        fmt_prefix(op.len, op.key)
                    )));
                }
            }
            PatchChange::Update { asn, class } => {
                if out.insert(at, (asn, class)).is_none() {
                    return Err(DeltaError::PatchConflict(format!(
                        "update of absent prefix {}",
                        fmt_prefix(op.len, op.key)
                    )));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Delta {
        Delta {
            base_hash: 0x1111_2222_3333_4444,
            target_hash: 0x5555_6666_7777_8888,
            base_epoch: 3,
            epoch: 4,
            v4: vec![
                PatchOp {
                    len: 8,
                    key: 0x0A00_0000,
                    change: PatchChange::Add {
                        asn: 64500,
                        class: 1,
                    },
                },
                PatchOp {
                    len: 24,
                    key: 0xC000_0200,
                    change: PatchChange::Update {
                        asn: 64501,
                        class: 2,
                    },
                },
                PatchOp {
                    len: 24,
                    key: 0xC633_6400,
                    change: PatchChange::Remove,
                },
            ],
            v6: vec![PatchOp {
                len: 48,
                key: 0x2001_0db8_0000_0000_0000_0000_0000_0000,
                change: PatchChange::Add {
                    asn: 64502,
                    class: 2,
                },
            }],
        }
    }

    fn reseal(bytes: &mut [u8]) {
        let body_len = bytes.len() - TRAILER_LEN;
        let crc = crate::crc32(&bytes[..body_len]);
        bytes[body_len + 8..body_len + 12].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn roundtrip_is_canonical() {
        let delta = sample();
        let bytes = delta.to_bytes();
        let decoded = Delta::from_bytes(&bytes).expect("valid delta");
        assert_eq!(decoded, delta);
        assert_eq!(decoded.to_bytes(), bytes, "canonical encoding");
        assert_eq!(decoded.op_count(), 4);
    }

    #[test]
    fn empty_patch_roundtrips() {
        let delta = Delta {
            base_hash: 1,
            target_hash: 1,
            base_epoch: 0,
            epoch: 1,
            v4: Vec::new(),
            v6: Vec::new(),
        };
        let bytes = delta.to_bytes();
        let decoded = Delta::from_bytes(&bytes).expect("valid empty delta");
        assert_eq!(decoded, delta);
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                assert!(
                    Delta::from_bytes(&bad).is_err(),
                    "flip {flip:#x} at byte {i} must be rejected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            assert!(
                Delta::from_bytes(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes must be rejected"
            );
        }
    }

    #[test]
    fn newer_version_behind_a_valid_seal_is_unsupported() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&(DELTA_VERSION + 1).to_le_bytes());
        reseal(&mut bytes);
        assert_eq!(
            Delta::from_bytes(&bytes),
            Err(DeltaError::UnsupportedVersion(DELTA_VERSION + 1))
        );
    }

    #[test]
    fn epoch_must_advance_past_base_epoch() {
        let mut delta = sample();
        delta.epoch = delta.base_epoch;
        let err = Delta::from_bytes(&delta.to_bytes()).expect_err("non-advancing epoch");
        assert!(err.to_string().contains("does not advance"), "{err}");
    }

    #[test]
    fn out_of_order_and_duplicate_ops_are_rejected() {
        let mut delta = sample();
        delta.v4.swap(0, 1);
        let err = Delta::from_bytes(&delta.to_bytes()).expect_err("unsorted ops");
        assert!(err.to_string().contains("out of order"), "{err}");

        let mut dup = sample();
        let first = dup.v4[0];
        dup.v4.insert(1, first);
        let err = Delta::from_bytes(&dup.to_bytes()).expect_err("duplicate op key");
        assert!(err.to_string().contains("out of order"), "{err}");
    }

    #[test]
    fn forged_op_and_class_bytes_are_rejected() {
        // Body offset of the first v4 op: 8 magic + 4 version + 32
        // hashes/epochs + 4 op count.
        let op_at = 8 + 4 + 32 + 4;
        let mut bad_op = sample().to_bytes();
        bad_op[op_at] = 7;
        reseal(&mut bad_op);
        let err = Delta::from_bytes(&bad_op).expect_err("invalid op byte");
        assert!(err.to_string().contains("op byte"), "{err}");

        // The first op is an Add: op, len, 4-byte key, 4-byte asn, class.
        let class_at = op_at + 1 + 1 + 4 + 4;
        let mut bad_class = sample().to_bytes();
        bad_class[class_at] = 9;
        reseal(&mut bad_class);
        let err = Delta::from_bytes(&bad_class).expect_err("invalid class byte");
        assert!(err.to_string().contains("class byte"), "{err}");
    }

    #[test]
    fn non_canonical_keys_are_rejected() {
        let mut delta = sample();
        delta.v4[0].key |= 1; // bits below the /8 mask
        let err = Delta::from_bytes(&delta.to_bytes()).expect_err("unmasked key");
        assert!(err.to_string().contains("non-canonical"), "{err}");
    }

    fn v4_map(entries: &[(u8, u32, u32, u8)]) -> EntryMap<u32> {
        entries
            .iter()
            .map(|&(len, key, asn, class)| ((len, key), (asn, class)))
            .collect()
    }

    #[test]
    fn diff_then_apply_reproduces_the_target() {
        let base = v4_map(&[
            (8, 0x0A00_0000, 1, 1),
            (24, 0xC000_0200, 2, 2),
            (24, 0xC633_6400, 3, 1),
        ]);
        let target = v4_map(&[
            (8, 0x0A00_0000, 1, 1),  // unchanged
            (24, 0xC000_0200, 2, 1), // label update
            (24, 0xCB00_7100, 4, 2), // added
        ]);
        let ops = diff_family(&base, &target);
        assert_eq!(ops.len(), 3, "one op per differing prefix: {ops:?}");
        assert!(ops
            .windows(2)
            .all(|w| (w[0].len, w[0].key) < (w[1].len, w[1].key)));
        let patched = apply_family(&base, &ops).expect("clean apply");
        assert_eq!(patched, target);

        // Diffing a map against itself is empty.
        assert!(diff_family(&base, &base).is_empty());
        assert_eq!(apply_family(&base, &[]).expect("empty apply"), base);
    }

    #[test]
    fn apply_conflicts_are_rejected() {
        let base = v4_map(&[(24, 0xC000_0200, 2, 2)]);
        let absent = PatchOp {
            len: 24,
            key: 0x0A00_0000,
            change: PatchChange::Remove,
        };
        assert!(matches!(
            apply_family(&base, &[absent]),
            Err(DeltaError::PatchConflict(_))
        ));
        let present = PatchOp {
            len: 24,
            key: 0xC000_0200,
            change: PatchChange::Add { asn: 9, class: 1 },
        };
        assert!(matches!(
            apply_family(&base, &[present]),
            Err(DeltaError::PatchConflict(_))
        ));
        let update_absent = PatchOp {
            len: 24,
            key: 0x0A00_0000,
            change: PatchChange::Update { asn: 9, class: 1 },
        };
        assert!(matches!(
            apply_family(&base, &[update_absent]),
            Err(DeltaError::PatchConflict(_))
        ));
    }
}
