//! The classifier's input: raw per-block counters at an epoch boundary.
//!
//! [`EpochCounters`] is the common currency between the three counter
//! sources — a batch [`cellspot::BlockIndex`], a live
//! [`cellstream::IngestEngine`], and the seeded churn worlds the test
//! suites use — and the [`crate::IncrementalClassifier`]. Whatever the
//! source, the contract is the same: blocks sorted ascending, one entry
//! per block, and counters that are *bit-identical across epochs for
//! untouched blocks* (which is why the streaming source feeds raw
//! accumulator counters, not globally renormalized datasets).

use cellspot::BlockIndex;
use cellstream::IngestEngine;
use netaddr::{Asn, BlockId};

/// One block's raw counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockCounters {
    /// The /24 or /48 block.
    pub block: BlockId,
    /// Origin AS of the block.
    pub asn: Asn,
    /// NETINFO beacon samples.
    pub netinfo_hits: u64,
    /// Cellular NETINFO samples.
    pub cellular_hits: u64,
    /// Demand units attributed to the block.
    pub du: f64,
}

/// All block counters at one epoch boundary, sorted by block.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochCounters {
    /// The epoch these counters are complete through.
    pub epoch: u64,
    blocks: Vec<BlockCounters>,
}

impl EpochCounters {
    /// Build from an arbitrary counter list; sorts by block and rejects
    /// duplicate blocks (two sources claiming the same block would make
    /// the classification order-dependent).
    ///
    /// # Panics
    /// Panics when the same block appears twice.
    pub fn new(epoch: u64, mut blocks: Vec<BlockCounters>) -> EpochCounters {
        blocks.sort_unstable_by_key(|c| c.block);
        assert!(
            blocks.windows(2).all(|w| w[0].block != w[1].block),
            "duplicate block in epoch counters"
        );
        EpochCounters { epoch, blocks }
    }

    /// Counters from a batch-joined [`BlockIndex`], e.g. the datasets a
    /// full `index build` runs on.
    pub fn from_index(epoch: u64, index: &BlockIndex) -> EpochCounters {
        let blocks = index
            .iter()
            .map(|o| BlockCounters {
                block: o.block,
                asn: o.asn,
                netinfo_hits: o.netinfo_hits,
                cellular_hits: o.cellular_hits,
                du: o.du,
            })
            .collect();
        // BlockIndex is already sorted by block with no duplicates.
        EpochCounters { epoch, blocks }
    }

    /// Counters from a live ingest engine at its current epoch
    /// boundary, via [`IngestEngine::raw_counters`] — raw accumulator
    /// values, so untouched blocks are bit-identical across epochs.
    pub fn from_engine(epoch: u64, engine: &IngestEngine) -> EpochCounters {
        let blocks = engine
            .raw_counters()
            .into_iter()
            .map(|c| BlockCounters {
                block: c.block,
                asn: c.asn,
                netinfo_hits: c.netinfo_hits,
                cellular_hits: c.cellular_hits,
                du: c.du,
            })
            .collect();
        EpochCounters { epoch, blocks }
    }

    /// The counters, sorted ascending by block.
    pub fn blocks(&self) -> &[BlockCounters] {
        &self.blocks
    }

    /// Number of blocks with counters this epoch.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when no block has counters.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// How many blocks differ between two epochs' counters: changed
/// counters, plus blocks present in only one of the two. This is the
/// churn the incremental classifier's memoization amortizes — and the
/// quantity the "<10% of blocks change" acceptance scenarios pin down.
pub fn changed_blocks(a: &EpochCounters, b: &EpochCounters) -> usize {
    let mut changed = 0;
    let mut ai = a.blocks().iter().peekable();
    let mut bi = b.blocks().iter().peekable();
    loop {
        let cmp = match (ai.peek(), bi.peek()) {
            (None, None) => break,
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => x.block.cmp(&y.block),
        };
        match cmp {
            std::cmp::Ordering::Less => {
                changed += 1;
                ai.next();
            }
            std::cmp::Ordering::Greater => {
                changed += 1;
                bi.next();
            }
            std::cmp::Ordering::Equal => {
                let (x, y) = (ai.next().expect("peeked"), bi.next().expect("peeked"));
                if x != y {
                    changed += 1;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::Block24;

    fn counters(i: u32, cellular: u64, du: f64) -> BlockCounters {
        BlockCounters {
            block: BlockId::V4(Block24::from_index(i)),
            asn: Asn(1),
            netinfo_hits: 10,
            cellular_hits: cellular,
            du,
        }
    }

    #[test]
    fn new_sorts_by_block() {
        let e = EpochCounters::new(1, vec![counters(5, 1, 1.0), counters(2, 2, 2.0)]);
        assert_eq!(e.len(), 2);
        assert!(e.blocks()[0].block < e.blocks()[1].block);
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn duplicate_blocks_panic() {
        EpochCounters::new(1, vec![counters(5, 1, 1.0), counters(5, 2, 2.0)]);
    }

    #[test]
    fn changed_blocks_counts_diffs_and_presence() {
        let a = EpochCounters::new(1, vec![counters(1, 1, 1.0), counters(2, 2, 2.0)]);
        assert_eq!(changed_blocks(&a, &a), 0);
        // One counter change, one removal, one addition.
        let b = EpochCounters::new(2, vec![counters(1, 9, 1.0), counters(3, 3, 3.0)]);
        assert_eq!(changed_blocks(&a, &b), 3);
    }
}
