//! Seeded epoch-churn worlds for the delta test and bench suites.
//!
//! Real streams accumulate counters, so nearly every block's counters
//! move every epoch — great for ingest tests, useless for exercising
//! the *incremental* path, whose whole premise is that most blocks
//! hold still. [`ChurnWorld`] generates the workload the delta
//! machinery is built for: a stable base population of blocks where
//! each epoch mutates only a small, seeded fraction — flipping blocks
//! between cellular and wifi shapes, jittering demand, and toggling
//! blocks in and out of existence — with every epoch's counters a pure
//! function of `(seed, epoch)`, so any epoch can be regenerated
//! independently and two runs never disagree.

use netaddr::{Asn, Block24, Block48, BlockId};
use std::collections::HashMap;

use crate::counters::{BlockCounters, EpochCounters};

const K1: u64 = 0x9E37_79B9_7F4A_7C15;
const K2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const K3: u64 = 0x1656_67B1_9E37_79F9;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Hash tags: one namespace per derived attribute.
const TAG_ASN: u64 = 1;
const TAG_SHAPE: u64 = 2;
const TAG_NETINFO: u64 = 3;
const TAG_DU: u64 = 4;
const TAG_MUT_IDX: u64 = 5;
const TAG_MUT_KIND: u64 = 6;

/// A deterministic world whose counters churn a bounded amount per
/// epoch. Epoch 0 is the base state; epoch `e` applies `e` seeded
/// mutation rounds on top of it.
#[derive(Clone, Copy, Debug)]
pub struct ChurnWorld {
    /// Root seed; every derived value mixes it in.
    pub seed: u64,
    /// IPv4 /24 blocks in the base population.
    pub v4_blocks: u32,
    /// IPv6 /48 blocks in the base population.
    pub v6_blocks: u32,
    /// Distinct origin ASes blocks are hashed across.
    pub ases: u32,
    /// Blocks mutated per epoch, in thousandths of the population.
    pub churn_per_mille: u32,
}

impl ChurnWorld {
    /// The preset the acceptance tests and `bench_delta` run on:
    /// 720 blocks across 90 ASes, ~1.5% of blocks mutated per epoch —
    /// comfortably inside the "<10% of blocks change between epochs"
    /// regime the delta path is specified against.
    pub fn demo(seed: u64) -> ChurnWorld {
        ChurnWorld {
            seed,
            v4_blocks: 600,
            v6_blocks: 120,
            ases: 90,
            churn_per_mille: 15,
        }
    }

    /// Total blocks in the base population.
    pub fn total_blocks(&self) -> u64 {
        self.v4_blocks as u64 + self.v6_blocks as u64
    }

    fn h(&self, tag: u64, a: u64, b: u64) -> u64 {
        mix(self.seed ^ mix(tag.wrapping_mul(K1) ^ a.wrapping_mul(K2) ^ b.wrapping_mul(K3)))
    }

    fn block_id(&self, i: u64) -> BlockId {
        if i < self.v4_blocks as u64 {
            BlockId::V4(Block24::from_index(i as u32))
        } else {
            BlockId::V6(Block48::from_index(i - self.v4_blocks as u64))
        }
    }

    /// Mutations applied per round.
    fn mutations_per_round(&self) -> u64 {
        (self.total_blocks() * self.churn_per_mille as u64 / 1000).max(1)
    }

    /// The complete counters at epoch `epoch`: the base state plus
    /// rounds `1..=epoch` of seeded mutations. Pure in `(self, epoch)`.
    pub fn epoch_counters(&self, epoch: u64) -> EpochCounters {
        let total = self.total_blocks();
        // Per block: (class flips, du jitters, presence toggles).
        let mut muts: HashMap<u64, (u32, u32, u32)> = HashMap::new();
        let per_round = self.mutations_per_round();
        for round in 1..=epoch {
            for j in 0..per_round {
                let i = self.h(TAG_MUT_IDX, round, j) % total;
                let entry = muts.entry(i).or_default();
                match self.h(TAG_MUT_KIND, round, j) % 4 {
                    0 | 1 => entry.0 += 1,
                    2 => entry.1 += 1,
                    _ => entry.2 += 1,
                }
            }
        }

        let mut blocks = Vec::with_capacity(total as usize);
        for i in 0..total {
            let (flips, jitters, toggles) = muts.get(&i).copied().unwrap_or((0, 0, 0));
            if toggles % 2 == 1 {
                continue; // toggled out of existence this epoch
            }
            let asn = Asn(64_500 + (self.h(TAG_ASN, i, 0) % self.ases as u64) as u32);
            let base_cellular = self.h(TAG_SHAPE, i, 0) % 4 != 0;
            let cellular_now = base_cellular ^ (flips % 2 == 1);
            let netinfo = 40 + self.h(TAG_NETINFO, i, 0) % 60;
            let cellular_hits = if cellular_now {
                netinfo - netinfo / 10
            } else {
                netinfo / 10
            };
            let base_du = 1.0 + (self.h(TAG_DU, i, 0) % 900) as f64 / 100.0;
            let du = base_du * (1.0 + 0.01 * jitters as f64);
            blocks.push(BlockCounters {
                block: self.block_id(i),
                asn,
                netinfo_hits: netinfo,
                cellular_hits,
                du,
            });
        }
        EpochCounters::new(epoch, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::changed_blocks;

    #[test]
    fn epochs_are_deterministic_and_independent() {
        let world = ChurnWorld::demo(7);
        assert_eq!(world.epoch_counters(3), world.epoch_counters(3));
        // Epoch 0 is the untouched base population.
        assert_eq!(world.epoch_counters(0).len() as u64, world.total_blocks());
    }

    #[test]
    fn consecutive_epochs_change_a_bounded_block_fraction() {
        let world = ChurnWorld::demo(42);
        for epoch in 0..6 {
            let a = world.epoch_counters(epoch);
            let b = world.epoch_counters(epoch + 1);
            let changed = changed_blocks(&a, &b);
            // One mutation round touches at most `mutations_per_round`
            // distinct blocks.
            assert!(
                changed as u64 <= world.mutations_per_round(),
                "epoch {epoch}: {changed}"
            );
            assert!(
                (changed as f64) < 0.10 * world.total_blocks() as f64,
                "epoch {epoch}: {changed} of {} blocks churned",
                world.total_blocks()
            );
            assert!(changed > 0, "churn must actually happen (epoch {epoch})");
        }
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let a = ChurnWorld::demo(1).epoch_counters(1);
        let b = ChurnWorld::demo(2).epoch_counters(1);
        assert!(changed_blocks(&a, &b) > 0);
    }
}
