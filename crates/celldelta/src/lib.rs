//! # celldelta — incremental classification and sealed delta artifacts
//!
//! The batch pipeline answers "what are the labels this month?"; this
//! crate answers "what changed since the last epoch?" — and makes the
//! epoch the unit of label refresh:
//!
//! * **[`EpochCounters`]** — raw per-block counters at an epoch
//!   boundary, sourced from a batch [`cellspot::BlockIndex`], a live
//!   [`cellstream::IngestEngine`] (via `raw_counters`), or a seeded
//!   [`ChurnWorld`].
//! * **[`IncrementalClassifier`]** — the canonical epoch classifier
//!   ([`classify_epoch`]) plus a per-AS memo keyed by a content hash
//!   of that AS's input counters: an AS whose counters did not move is
//!   never reclassified (`delta.memo.hits` / `delta.memo.misses` via
//!   [`cellobs::Observer`]).
//! * **CELLDELT deltas** — changed labels seal into a delta artifact
//!   ([`Delta`], [`build_delta`], [`apply_delta`]): a base generation
//!   referenced by content hash plus a sorted add/update/remove patch
//!   set, with the same canonical-encoding + length/CRC trailer
//!   discipline as CELLSERV. `apply(base, delta)` verifies the base
//!   hash, patches strictly, and re-freezes through the canonical
//!   builder — producing bytes *identical* to a full `index build` at
//!   the delta's epoch (the crate's property suite pins this down).
//!
//! The serving side (`cellserved`) picks deltas up from disk and
//! hot-swaps the patched generation under traffic; wrong-base, stale,
//! or corrupt deltas are rejected with the old generation untouched.
//!
//! ## Chaining rule
//!
//! A delta names its base by FNV-1a 64 content hash and may only be
//! applied to an artifact hashing exactly that; the patched artifact's
//! hash must equal the delta's embedded target hash. Because the
//! CELLSERV encoding is canonical, hashes compose: applying deltas
//! `e1→e2→e3` in order yields byte-for-byte the artifact a full build
//! at `e3` produces, and any break in the chain (missed delta, wrong
//! base, reordered apply) is caught by a hash mismatch, never served.

mod artifact;
mod churn;
mod classify;
mod counters;
mod wire;

pub use artifact::{apply_delta, apply_parsed, build_delta};
pub use churn::ChurnWorld;
pub use classify::{classify_epoch, IncrementalClassifier};
pub use counters::{changed_blocks, BlockCounters, EpochCounters};
pub use wire::{
    apply_family, diff_family, Delta, DeltaError, DeltaKey, EntryMap, PatchChange, PatchOp,
    DELTA_MAGIC, DELTA_VERSION,
};

/// CRC-32 used to seal delta bodies — the same checksum the CELLSERV
/// artifact and the streaming checkpoints use, so every sealed file in
/// the system shares one integrity discipline.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    cellstream::crc32(bytes)
}
