//! The canonical epoch classifier and its memoized incremental form.
//!
//! This module *defines* what a generation's label set is, as a pure
//! function of one epoch's counters:
//!
//! 1. **Block classification** — a block is cellular iff it has NETINFO
//!    coverage and `cellular_hits / netinfo_hits ≥ threshold` (the
//!    paper's §4 rule; [`cellspot::DEFAULT_THRESHOLD`] is 0.5).
//! 2. **AS classification** — for every AS with at least one cellular
//!    block: `cfd = cell_du / total_du`, both sums taken serially in
//!    block order over that AS's blocks; the AS is *dedicated* when
//!    `cfd >` [`cellspot::DEDICATED_CFD`], *mixed* otherwise (the §6
//!    rule). No AS with a cellular block is ever labeled `Unknown`.
//! 3. **Labels** — every cellular block becomes a served prefix
//!    labeled with its AS's verdict, frozen through
//!    [`cellserve::FrozenIndexBuilder`] (canonical by construction).
//!
//! `cellspot::Pipeline` computes the same verdicts through its chunked
//! parallel aggregation; this serial formulation exists so the result
//! is a *deterministic function of each AS's own counters alone* —
//! which is what makes per-AS memoization sound, and what lets
//! `apply(base, delta)` be byte-identical to a full rebuild: both sides
//! call exactly this code.
//!
//! [`IncrementalClassifier`] adds the memo: per AS, a FNV-1a 64 hash of
//! its input counters (block ids, integer counters, `du` bit patterns,
//! and the threshold) keys the cached verdict, so an AS whose counters
//! did not move between epochs is never reclassified. Hits and misses
//! are exported as the `delta.memo.hits` / `delta.memo.misses`
//! counters.

use std::collections::{BTreeMap, HashMap};

use cellobs::Observer;
use cellserve::{AsClass, FrozenIndex, FrozenIndexBuilder, ServeLabel};
use cellspot::DEDICATED_CFD;
use netaddr::{Asn, BlockId};

use crate::counters::{BlockCounters, EpochCounters};

fn block_is_cellular(c: &BlockCounters, threshold: f64) -> bool {
    c.netinfo_hits > 0 && (c.cellular_hits as f64) / (c.netinfo_hits as f64) >= threshold
}

/// One AS's classification result: its verdict and its cellular
/// blocks, in block order. `None` when the AS has no cellular block
/// (it contributes nothing to the index).
type AsResult = Option<(AsClass, Vec<BlockId>)>;

/// Classify one AS's blocks (already in block order). The sums are
/// serial in block order, so the result is a pure function of exactly
/// these counters — the property the memo key hashes.
fn classify_as(blocks: &[&BlockCounters], threshold: f64) -> AsResult {
    let cellular: Vec<BlockId> = blocks
        .iter()
        .filter(|c| block_is_cellular(c, threshold))
        .map(|c| c.block)
        .collect();
    if cellular.is_empty() {
        return None;
    }
    let mut total_du = 0.0f64;
    let mut cell_du = 0.0f64;
    for c in blocks {
        total_du += c.du;
        if block_is_cellular(c, threshold) {
            cell_du += c.du;
        }
    }
    let cfd = if total_du > 0.0 {
        cell_du / total_du
    } else {
        0.0
    };
    let class = if cfd <= DEDICATED_CFD {
        AsClass::Mixed
    } else {
        AsClass::Dedicated
    };
    Some((class, cellular))
}

/// Group counters per AS, preserving block order within each group.
fn group_by_as(counters: &EpochCounters) -> BTreeMap<Asn, Vec<&BlockCounters>> {
    let mut groups: BTreeMap<Asn, Vec<&BlockCounters>> = BTreeMap::new();
    for c in counters.blocks() {
        groups.entry(c.asn).or_default().push(c);
    }
    groups
}

fn freeze(results: impl Iterator<Item = (Asn, AsClass, BlockId)>) -> FrozenIndex {
    let mut builder = FrozenIndexBuilder::new();
    for (asn, class, block) in results {
        let label = ServeLabel { asn, class };
        match block {
            BlockId::V4(blk) => builder.insert_v4(blk.network(), label),
            BlockId::V6(blk) => builder.insert_v6(blk.network(), label),
        }
    }
    builder.build()
}

/// One-shot canonical classification of an epoch's counters.
pub fn classify_epoch(counters: &EpochCounters, threshold: f64) -> FrozenIndex {
    let mut labeled: Vec<(Asn, AsClass, BlockId)> = Vec::new();
    for (asn, blocks) in group_by_as(counters) {
        if let Some((class, cellular)) = classify_as(&blocks, threshold) {
            labeled.extend(cellular.into_iter().map(|b| (asn, class, b)));
        }
    }
    freeze(labeled.into_iter())
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// The memoization key: a content hash of everything [`classify_as`]
/// reads — the AS's blocks (family tag + index), their integer
/// counters, the exact `du` bit patterns, and the threshold. Equal
/// hashes ⇒ (collisions aside, at FNV-64 odds) equal inputs ⇒ equal
/// verdicts, because the classification is a pure serial function of
/// these values.
fn as_input_hash(blocks: &[&BlockCounters], threshold: f64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(threshold.to_bits());
    h.write_u64(blocks.len() as u64);
    for c in blocks {
        match c.block {
            BlockId::V4(b) => {
                h.write(&[4]);
                h.write_u64(b.index() as u64);
            }
            BlockId::V6(b) => {
                h.write(&[6]);
                h.write_u64(b.index());
            }
        }
        h.write_u64(c.netinfo_hits);
        h.write_u64(c.cellular_hits);
        h.write_u64(c.du.to_bits());
    }
    h.0
}

struct MemoEntry {
    input_hash: u64,
    result: AsResult,
}

/// Epoch-over-epoch classifier: recomputes only ASes whose input
/// counters changed since the last classified epoch, reusing the
/// memoized verdict for everyone else. Produces bit-identical output
/// to [`classify_epoch`] on the same counters (pinned by the crate's
/// test suite); the only difference is which work gets skipped.
pub struct IncrementalClassifier {
    threshold: f64,
    memo: HashMap<Asn, MemoEntry>,
    obs: Observer,
}

impl IncrementalClassifier {
    /// A fresh classifier with an empty memo. `obs` receives the
    /// `delta.memo.hits` / `delta.memo.misses` counters.
    pub fn new(threshold: f64, obs: Observer) -> IncrementalClassifier {
        IncrementalClassifier {
            threshold,
            memo: HashMap::new(),
            obs,
        }
    }

    /// The block-classification threshold this classifier was built
    /// with (part of every memo key).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Classify one epoch's counters, reusing memoized per-AS verdicts
    /// where the input hash is unchanged. ASes absent from this epoch
    /// are dropped from the memo, so memory tracks the live AS set.
    pub fn classify(&mut self, counters: &EpochCounters) -> FrozenIndex {
        let groups = group_by_as(counters);
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut next: HashMap<Asn, MemoEntry> = HashMap::with_capacity(groups.len());
        let mut labeled: Vec<(Asn, AsClass, BlockId)> = Vec::new();
        for (asn, blocks) in groups {
            let input_hash = as_input_hash(&blocks, self.threshold);
            let result = match self.memo.remove(&asn) {
                Some(entry) if entry.input_hash == input_hash => {
                    hits += 1;
                    entry.result
                }
                _ => {
                    misses += 1;
                    classify_as(&blocks, self.threshold)
                }
            };
            if let Some((class, cellular)) = &result {
                labeled.extend(cellular.iter().map(|&b| (asn, *class, b)));
            }
            next.insert(asn, MemoEntry { input_hash, result });
        }
        self.memo = next;
        // Only touch a counter that actually moved: `Observer::counter`
        // registers the name at 0, and a cold classifier should not
        // export a `hits` counter it never earned.
        if hits > 0 {
            self.obs.counter("delta.memo.hits").add(hits);
        }
        if misses > 0 {
            self.obs.counter("delta.memo.misses").add(misses);
        }
        freeze(labeled.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::{Block24, Block48};

    fn block(i: u32, asn: u32, netinfo: u64, cellular: u64, du: f64) -> BlockCounters {
        BlockCounters {
            block: BlockId::V4(Block24::from_index(i)),
            asn: Asn(asn),
            netinfo_hits: netinfo,
            cellular_hits: cellular,
            du,
        }
    }

    fn block6(i: u64, asn: u32, netinfo: u64, cellular: u64, du: f64) -> BlockCounters {
        BlockCounters {
            block: BlockId::V6(Block48::from_index(i)),
            asn: Asn(asn),
            netinfo_hits: netinfo,
            cellular_hits: cellular,
            du,
        }
    }

    #[test]
    fn cellular_blocks_get_their_as_verdict() {
        // AS 1: both blocks cellular, all demand cellular → dedicated.
        // AS 2: one cellular block carrying a third of the demand → mixed.
        // AS 3: nothing cellular → absent from the index.
        let counters = EpochCounters::new(
            1,
            vec![
                block(1, 1, 10, 10, 5.0),
                block6(1, 1, 10, 9, 5.0),
                block(2, 2, 10, 10, 1.0),
                block(3, 2, 10, 0, 2.0),
                block(4, 3, 10, 0, 9.0),
            ],
        );
        let index = classify_epoch(&counters, 0.5);
        assert_eq!(index.prefix_counts(), (2, 1));
        let (_, l1) = index
            .lookup_v4(Block24::from_index(1).addr(9))
            .expect("served");
        assert_eq!(l1.asn, Asn(1));
        assert_eq!(l1.class, AsClass::Dedicated);
        let (_, l6) = index
            .lookup_v6(Block48::from_index(1).addr(0, 9))
            .expect("served");
        assert_eq!(l6.class, AsClass::Dedicated);
        let (_, l2) = index
            .lookup_v4(Block24::from_index(2).addr(9))
            .expect("served");
        assert_eq!(l2.asn, Asn(2));
        assert_eq!(l2.class, AsClass::Mixed);
        assert_eq!(index.lookup_v4(Block24::from_index(3).addr(9)), None);
        assert_eq!(index.lookup_v4(Block24::from_index(4).addr(9)), None);
    }

    #[test]
    fn zero_netinfo_blocks_are_never_cellular() {
        let counters = EpochCounters::new(1, vec![block(1, 1, 0, 0, 5.0)]);
        assert!(classify_epoch(&counters, 0.5).is_empty());
    }

    #[test]
    fn incremental_matches_one_shot_and_memoizes() {
        let obs = Observer::enabled();
        let mut inc = IncrementalClassifier::new(0.5, obs.clone());

        let epoch1 = EpochCounters::new(
            1,
            vec![
                block(1, 1, 10, 10, 5.0),
                block(2, 2, 10, 10, 1.0),
                block(3, 2, 10, 0, 2.0),
            ],
        );
        assert_eq!(inc.classify(&epoch1), classify_epoch(&epoch1, 0.5));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["delta.memo.misses"], 2, "cold memo");
        assert!(!snap.counters.contains_key("delta.memo.hits"));

        // Epoch 2: only AS 2 moves; AS 1 must be a memo hit.
        let epoch2 = EpochCounters::new(
            2,
            vec![
                block(1, 1, 10, 10, 5.0),
                block(2, 2, 20, 20, 1.5),
                block(3, 2, 10, 0, 2.0),
            ],
        );
        assert_eq!(inc.classify(&epoch2), classify_epoch(&epoch2, 0.5));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["delta.memo.hits"], 1);
        assert_eq!(snap.counters["delta.memo.misses"], 3);

        // Epoch 3: nothing moves at all — every AS is a hit.
        let epoch3 = EpochCounters::new(3, epoch2.blocks().to_vec());
        assert_eq!(inc.classify(&epoch3), classify_epoch(&epoch3, 0.5));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["delta.memo.hits"], 3);
        assert_eq!(snap.counters["delta.memo.misses"], 3);
    }

    #[test]
    fn memo_key_sees_du_and_threshold_bits() {
        let a = vec![block(1, 1, 10, 10, 5.0)];
        let refs: Vec<&BlockCounters> = a.iter().collect();
        let h = as_input_hash(&refs, 0.5);
        // One ulp away from 5.0 (`5.0 + f64::EPSILON` would round back
        // to exactly 5.0 — epsilon is below the ulp at that magnitude).
        let b = vec![block(1, 1, 10, 10, f64::from_bits(5.0f64.to_bits() + 1))];
        let refs_b: Vec<&BlockCounters> = b.iter().collect();
        assert_ne!(as_input_hash(&refs_b, 0.5), h, "du bits are in the key");
        assert_ne!(as_input_hash(&refs, 0.25), h, "threshold is in the key");
    }

    #[test]
    fn departed_ases_leave_the_memo() {
        let obs = Observer::enabled();
        let mut inc = IncrementalClassifier::new(0.5, obs.clone());
        let both = EpochCounters::new(1, vec![block(1, 1, 10, 10, 5.0), block(2, 2, 10, 10, 1.0)]);
        inc.classify(&both);
        let only_one = EpochCounters::new(2, vec![block(1, 1, 10, 10, 5.0)]);
        let index = inc.classify(&only_one);
        assert_eq!(
            index.prefix_counts(),
            (1, 0),
            "departed AS is no longer served"
        );
        // AS 2 returns unchanged — but it was evicted, so it's a miss,
        // while the continuously present AS 1 hits in both later epochs.
        let back = EpochCounters::new(3, both.blocks().to_vec());
        inc.classify(&back);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["delta.memo.misses"], 2 + 0 + 1);
        assert_eq!(snap.counters["delta.memo.hits"], 1 + 1);
    }
}
