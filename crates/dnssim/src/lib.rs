//! # dnssim — DNS resolver substrate
//!
//! The paper's §6.3 analyzes which resolvers cellular clients use: how
//! often mixed operators share resolvers between cellular and fixed-line
//! customers (Fig. 9), how far shared resolvers sit from their cellular
//! clients (the Brazilian example), and how much demand flows through the
//! big public DNS services per operator (Fig. 10).
//!
//! The original study derives client-to-resolver affinities from the
//! CDN's authoritative-DNS logs (the Chen et al. end-user-mapping method).
//! We generate the equivalent association directly from ground truth: each
//! operator runs a resolver pool — shared, cellular-only, and fixed-only —
//! plus a per-operator share of demand that leaves for GoogleDNS, OpenDNS
//! and Level 3. The analysis layer (`cellspot::dns`) then joins these
//! affinities with classification results and the DEMAND dataset exactly
//! as the paper does.

mod resolver;

pub use resolver::{
    generate_dns, Affinity, DnsSim, PublicDns, Resolver, ResolverKind, PUBLIC_DNS_SERVICES,
};
