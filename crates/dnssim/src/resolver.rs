use netaddr::{Asn, BlockId};
use serde::{Deserialize, Serialize};
use worldgen::sampling::{rng_for, uniform, weighted_choice, GenRng};
use worldgen::{OperatorRole, World};

/// Uniform index helper on the seeded RNG type.
trait RngIdx {
    fn gen_range_usize(&mut self, n: usize) -> usize;
}

impl RngIdx for GenRng {
    fn gen_range_usize(&mut self, n: usize) -> usize {
        use rand::Rng;
        if n <= 1 {
            0
        } else {
            self.gen_range(0..n)
        }
    }
}

/// The public DNS services the paper measures (Fig. 10).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PublicDns {
    /// Google Public DNS (8.8.8.8).
    GoogleDns,
    /// OpenDNS.
    OpenDns,
    /// Level 3's open resolvers.
    Level3,
}

/// All public services, in Fig. 10's legend order.
pub const PUBLIC_DNS_SERVICES: [PublicDns; 3] =
    [PublicDns::GoogleDns, PublicDns::OpenDns, PublicDns::Level3];

impl PublicDns {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            PublicDns::GoogleDns => "GoogleDNS",
            PublicDns::OpenDns => "OpenDNS",
            PublicDns::Level3 => "Level 3",
        }
    }
}

/// What population a resolver serves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ResolverKind {
    /// Operator resolver serving both cellular and fixed clients.
    Shared,
    /// Operator resolver dedicated to cellular clients.
    CellularOnly,
    /// Operator resolver dedicated to fixed-line clients.
    FixedOnly,
    /// A public DNS service's anycast front.
    Public(PublicDns),
}

/// One recursive resolver.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Resolver {
    /// Dense id, index into [`DnsSim::resolvers`].
    pub id: u32,
    /// Hosting AS (the operator's, or a synthetic AS for public services).
    pub asn: Asn,
    /// Serving population.
    pub kind: ResolverKind,
    /// Great-circle distance from the resolver to the centroid of its
    /// *cellular* clients, miles. The paper's Brazilian mixed operator
    /// backhauls Fortaleza's cellular clients to São Paulo resolvers —
    /// 1,470 miles — while fixed clients sit nearby.
    pub dist_cell_mi: f64,
    /// Distance to the centroid of its fixed-line clients, miles.
    pub dist_fixed_mi: f64,
}

/// A weighted client-block → resolver association, the output of
/// end-user-mapping style log analysis.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Affinity {
    /// Client block.
    pub block: BlockId,
    /// Resolver id.
    pub resolver: u32,
    /// Fraction of the block's DNS-driven demand through this resolver.
    pub weight: f32,
}

/// Generated resolver population and affinities.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DnsSim {
    /// All resolvers, indexed by id.
    pub resolvers: Vec<Resolver>,
    /// Block → resolver associations (multiple rows per block).
    pub affinities: Vec<Affinity>,
}

impl DnsSim {
    /// Resolver by id.
    pub fn resolver(&self, id: u32) -> &Resolver {
        &self.resolvers[id as usize]
    }
}

/// Generate resolver pools and client affinities for a world.
///
/// Per operator: `n_resolvers` split into shared / cellular-only /
/// fixed-only according to the operator's sharing fraction; each client
/// block splits its weight between an in-operator resolver of a matching
/// kind and, with the operator's public-DNS fraction, one of the public
/// services. The Brazilian-style distant-resolver case marks the shared
/// pool with the paper's 1,470-mile cellular backhaul.
pub fn generate_dns(world: &World) -> DnsSim {
    let mut sim = DnsSim::default();

    // Public resolver fronts first (one per service).
    for (i, svc) in PUBLIC_DNS_SERVICES.iter().enumerate() {
        sim.resolvers.push(Resolver {
            id: i as u32,
            asn: Asn(u32::MAX - i as u32),
            kind: ResolverKind::Public(*svc),
            // Anycast fronts are moderately distant from everyone.
            dist_cell_mi: 400.0,
            dist_fixed_mi: 400.0,
        });
    }

    // Operator pools: remember each operator's resolver id range.
    let mut op_pools: Vec<(Asn, u32, u32)> = Vec::with_capacity(world.operators.ops.len());
    for (oi, op) in world.operators.ops.iter().enumerate() {
        let mut rng = rng_for(world.config.seed ^ 0xD5_0000_0000, oi as u64);
        let n = op.n_resolvers.max(1);
        // Single-service operators (dedicated cellular, fixed-only,
        // proxies) serve every host in the AS from one pool; only mixed
        // operators maintain population-specific resolvers. At least one
        // resolver in a mixed AS is shared so every client has a home.
        let shared = if op.kind == asdb::AsKind::MixedAccess {
            ((n as f64 * op.resolver_shared_fraction).round() as u32).clamp(1, n)
        } else {
            n
        };
        // The paper finds the non-shared remainder split roughly evenly
        // between cellular-only and fixed-only pools.
        let rest = n - shared;
        let cell_only = rest / 2;
        let first = sim.resolvers.len() as u32;
        for k in 0..n {
            let kind = if k < shared {
                ResolverKind::Shared
            } else if k < shared + cell_only {
                ResolverKind::CellularOnly
            } else {
                ResolverKind::FixedOnly
            };
            let (dist_cell, dist_fixed) =
                if op.distant_cell_resolvers && kind == ResolverKind::Shared {
                    (1_470.0, uniform(&mut rng, 10.0, 60.0))
                } else {
                    (
                        uniform(&mut rng, 20.0, 300.0),
                        uniform(&mut rng, 10.0, 200.0),
                    )
                };
            sim.resolvers.push(Resolver {
                id: first + k,
                asn: op.asn,
                kind,
                dist_cell_mi: dist_cell,
                dist_fixed_mi: dist_fixed,
            });
        }
        op_pools.push((op.asn, first, n));
    }

    // Affinities: each demand-bearing block picks resolvers.
    let pool_of: std::collections::HashMap<Asn, (u32, u32)> = op_pools
        .iter()
        .map(|(asn, first, n)| (*asn, (*first, *n)))
        .collect();
    let op_of: std::collections::HashMap<Asn, &worldgen::OperatorInfo> =
        world.operators.ops.iter().map(|o| (o.asn, o)).collect();

    for (bi, b) in world.blocks.records.iter().enumerate() {
        if b.demand_weight <= 0.0 {
            continue;
        }
        let op = op_of[&b.asn];
        if op.role == OperatorRole::Filler {
            continue; // negligible demand, no DNS analysis value
        }
        let mut rng = rng_for(world.config.seed ^ 0xD5_0001_0000, bi as u64);
        let (first, n) = pool_of[&b.asn];
        let is_cell = b.access.is_cellular();

        // Candidate in-operator resolvers of a compatible kind.
        let mut candidates: Vec<u32> = (first..first + n)
            .filter(|&id| match sim.resolvers[id as usize].kind {
                ResolverKind::Shared => true,
                ResolverKind::CellularOnly => is_cell,
                ResolverKind::FixedOnly => !is_cell,
                ResolverKind::Public(_) => false,
            })
            .collect();
        if candidates.is_empty() {
            candidates = (first..first + n).collect();
        }

        let public_w = op.public_dns_fraction;
        let op_w = 1.0 - public_w;
        if op_w > 0.0 {
            // A block's clients land on several of the operator's
            // resolvers (a CGN /24 fronts thousands of devices), with a
            // primary-heavy split. Start at a rotating offset so demand
            // spreads across the whole pool rather than pinning every
            // block to the same resolver.
            let k = candidates.len().min(4);
            let start = rng.gen_range_usize(candidates.len());
            let split: &[f64] = match k {
                1 => &[1.0],
                2 => &[0.7, 0.3],
                3 => &[0.6, 0.25, 0.15],
                _ => &[0.5, 0.25, 0.15, 0.10],
            };
            for (j, share) in split.iter().enumerate() {
                let resolver = candidates[(start + j) % candidates.len()];
                sim.affinities.push(Affinity {
                    block: b.block,
                    resolver,
                    weight: (op_w * share) as f32,
                });
            }
        }
        if public_w > 0.0 {
            // Public service preference: Google dominates, then OpenDNS.
            let svc_weights = [0.62, 0.24, 0.14];
            let svc = weighted_choice(&mut rng, &svc_weights).expect("non-empty");
            sim.affinities.push(Affinity {
                block: b.block,
                resolver: svc as u32,
                weight: public_w as f32,
            });
        }
    }

    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::WorldConfig;

    fn sim() -> (World, DnsSim) {
        let world = World::generate(WorldConfig::mini());
        let dns = generate_dns(&world);
        (world, dns)
    }

    #[test]
    fn public_fronts_are_first_three() {
        let (_, dns) = sim();
        for (i, svc) in PUBLIC_DNS_SERVICES.iter().enumerate() {
            assert_eq!(dns.resolvers[i].kind, ResolverKind::Public(*svc));
            assert_eq!(dns.resolvers[i].id, i as u32);
        }
    }

    #[test]
    fn affinity_weights_sum_to_one_per_block() {
        let (_, dns) = sim();
        let mut per_block: std::collections::HashMap<BlockId, f64> = Default::default();
        for a in &dns.affinities {
            *per_block.entry(a.block).or_default() += a.weight as f64;
        }
        assert!(!per_block.is_empty());
        for (block, w) in per_block {
            assert!((w - 1.0).abs() < 1e-5, "{block}: weights sum to {w}");
        }
    }

    #[test]
    fn kind_compatibility_is_respected() {
        let (world, dns) = sim();
        let truth: std::collections::HashMap<_, _> = world
            .blocks
            .records
            .iter()
            .map(|r| (r.block, r.access))
            .collect();
        for a in &dns.affinities {
            let r = dns.resolver(a.resolver);
            match r.kind {
                ResolverKind::CellularOnly => {
                    assert!(truth[&a.block].is_cellular(), "fixed block on cell-only")
                }
                ResolverKind::FixedOnly => {
                    assert!(!truth[&a.block].is_cellular(), "cell block on fixed-only")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn mixed_operators_have_shared_pools() {
        let (world, dns) = sim();
        let mixed_asns: std::collections::HashSet<Asn> = world
            .operators
            .ops
            .iter()
            .filter(|o| o.kind == asdb::AsKind::MixedAccess && o.n_resolvers >= 3)
            .map(|o| o.asn)
            .collect();
        let shared = dns
            .resolvers
            .iter()
            .filter(|r| mixed_asns.contains(&r.asn) && r.kind == ResolverKind::Shared)
            .count();
        assert!(
            shared > 50,
            "mixed ASes should run shared resolvers: {shared}"
        );
    }

    #[test]
    fn brazil_case_has_distant_cell_resolvers() {
        let (world, dns) = sim();
        let br = world.operators.brazil_mixed;
        let distant: Vec<_> = dns
            .resolvers
            .iter()
            .filter(|r| r.asn == br && r.kind == ResolverKind::Shared)
            .collect();
        assert!(!distant.is_empty());
        for r in &distant {
            assert!((r.dist_cell_mi - 1_470.0).abs() < 1e-9);
            assert!(r.dist_fixed_mi < 100.0);
        }
    }

    #[test]
    fn public_usage_tracks_operator_fraction() {
        let (world, dns) = sim();
        // Aggregate public weight per AS and compare against the profile.
        let mut pub_w: std::collections::HashMap<Asn, f64> = Default::default();
        let mut tot_w: std::collections::HashMap<Asn, f64> = Default::default();
        let asn_of: std::collections::HashMap<_, _> = world
            .blocks
            .records
            .iter()
            .map(|r| (r.block, r.asn))
            .collect();
        for a in &dns.affinities {
            let asn = asn_of[&a.block];
            *tot_w.entry(asn).or_default() += a.weight as f64;
            if matches!(dns.resolver(a.resolver).kind, ResolverKind::Public(_)) {
                *pub_w.entry(asn).or_default() += a.weight as f64;
            }
        }
        let mut checked = 0;
        for op in &world.operators.ops {
            let tot = tot_w.get(&op.asn).copied().unwrap_or(0.0);
            if tot > 20.0 {
                let frac = pub_w.get(&op.asn).copied().unwrap_or(0.0) / tot;
                assert!(
                    (frac - op.public_dns_fraction).abs() < 0.08,
                    "{}: public fraction {frac:.3} vs profile {:.3}",
                    op.asn,
                    op.public_dns_fraction
                );
                checked += 1;
            }
        }
        assert!(checked > 10, "checked only {checked} operators");
    }
}
