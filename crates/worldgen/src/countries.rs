//! Country calibration table.
//!
//! Every country the paper's figures name carries explicit anchors: its
//! share of global cellular demand (Fig. 11), the cellular fraction of its
//! own demand (Fig. 12 — e.g. Ghana 0.959, Laos 0.871, Indonesia 0.63,
//! US 0.166, France 0.121), the number of cellular ASes it hosts at paper
//! scale (so Table 6's continental counts come out right), its IPv6
//! cellular deployment (Table 4 / §4.3), and typical public-DNS adoption
//! for its operators (Fig. 10).
//!
//! The real Internet has ~180 countries with at least one cellular AS; we
//! name the ~70 that the paper's figures reference and top up each
//! continent with synthetic "filler" countries (ISO user-assigned-style
//! codes) so per-continent totals and averages match Table 6.

use netaddr::{Continent, CountryCode};

/// Calibration anchors for one named country.
#[derive(Clone, Copy, Debug)]
pub struct CountryAnchor {
    /// ISO-style alpha-2 code.
    pub code: &'static str,
    /// Continent.
    pub continent: Continent,
    /// Share of *global cellular* demand, in percent (Fig. 11). The named
    /// table sums to ≈99.8 matching the paper's per-continent totals.
    pub cell_share: f64,
    /// Cellular fraction of the country's own demand (Fig. 12), in \[0,1\].
    pub cfd: f64,
    /// Number of genuine cellular access ASes at paper scale (dedicated +
    /// mixed), per Table 6's continental sums.
    pub cell_ases: u32,
    /// How many of those deploy IPv6 in their cellular section (§4.3:
    /// 52 ASes across ~24 countries globally).
    pub v6_cell_ases: u32,
    /// Mean public-DNS adoption for operators in this country (Fig. 10).
    pub public_dns: f64,
}

const fn c(
    code: &'static str,
    continent: Continent,
    cell_share: f64,
    cfd: f64,
    cell_ases: u32,
    v6_cell_ases: u32,
    public_dns: f64,
) -> CountryAnchor {
    CountryAnchor {
        code,
        continent,
        cell_share,
        cfd,
        cell_ases,
        v6_cell_ases,
        public_dns,
    }
}

use Continent::*;

/// The named-country calibration table. See the module docs for the
/// provenance of each column.
pub const NAMED_COUNTRIES: &[CountryAnchor] = &[
    // --- North America (Table 8: 35% of global cellular; Fig. 11 top-10) ---
    c("US", NorthAmerica, 30.50, 0.166, 40, 5, 0.015),
    c("CA", NorthAmerica, 1.80, 0.100, 8, 2, 0.030),
    c("MX", NorthAmerica, 1.20, 0.250, 7, 0, 0.120),
    c("GT", NorthAmerica, 0.35, 0.450, 3, 0, 0.200),
    c("PR", NorthAmerica, 0.30, 0.350, 2, 0, 0.050),
    c("PA", NorthAmerica, 0.25, 0.400, 2, 0, 0.200),
    c("DO", NorthAmerica, 0.20, 0.450, 3, 0, 0.250),
    c("CR", NorthAmerica, 0.15, 0.350, 2, 0, 0.200),
    c("SV", NorthAmerica, 0.13, 0.500, 2, 0, 0.250),
    c("HN", NorthAmerica, 0.12, 0.550, 2, 0, 0.250),
    // --- Europe (15.9%; France anchored at 0.121) ---
    c("GB", Europe, 3.20, 0.100, 12, 2, 0.040),
    c("RU", Europe, 2.80, 0.110, 29, 0, 0.080),
    c("FR", Europe, 2.00, 0.121, 8, 1, 0.040),
    c("DE", Europe, 1.90, 0.085, 10, 2, 0.040),
    c("IT", Europe, 1.50, 0.140, 9, 0, 0.050),
    c("ES", Europe, 1.20, 0.120, 7, 0, 0.050),
    c("PL", Europe, 0.90, 0.130, 7, 1, 0.060),
    c("FI", Europe, 0.80, 0.350, 5, 1, 0.030),
    c("NL", Europe, 0.70, 0.080, 6, 1, 0.030),
    c("SE", Europe, 0.60, 0.110, 6, 1, 0.030),
    c("CH", Europe, 0.15, 0.090, 4, 1, 0.030),
    c("NO", Europe, 0.15, 0.100, 4, 0, 0.030),
    // --- South America (4.1%; Bolivia on the Fig. 12 frontier) ---
    c("BR", SouthAmerica, 1.60, 0.120, 10, 6, 0.300),
    c("CO", SouthAmerica, 0.60, 0.140, 5, 0, 0.250),
    c("AR", SouthAmerica, 0.50, 0.120, 6, 0, 0.200),
    c("BO", SouthAmerica, 0.35, 0.450, 3, 0, 0.250),
    c("EC", SouthAmerica, 0.30, 0.200, 3, 1, 0.250),
    c("CL", SouthAmerica, 0.25, 0.120, 5, 0, 0.150),
    c("VE", SouthAmerica, 0.20, 0.250, 4, 0, 0.300),
    c("PE", SouthAmerica, 0.15, 0.200, 4, 1, 0.250),
    c("UY", SouthAmerica, 0.08, 0.150, 2, 0, 0.150),
    c("PY", SouthAmerica, 0.07, 0.300, 2, 0, 0.250),
    // --- Africa (2.9%; Ghana anchored at 0.959) ---
    c("EG", Africa, 0.70, 0.220, 10, 1, 0.300),
    c("ZA", Africa, 0.50, 0.180, 8, 1, 0.200),
    c("DZ", Africa, 0.35, 0.300, 4, 0, 0.970),
    c("TN", Africa, 0.25, 0.250, 4, 0, 0.300),
    c("NG", Africa, 0.25, 0.700, 7, 0, 0.450),
    c("GH", Africa, 0.20, 0.959, 4, 0, 0.400),
    c("CI", Africa, 0.15, 0.600, 3, 0, 0.350),
    c("CM", Africa, 0.15, 0.650, 3, 0, 0.350),
    c("MA", Africa, 0.20, 0.220, 5, 0, 0.300),
    c("GN", Africa, 0.15, 0.700, 2, 0, 0.400),
    // --- Asia (38.9% excl. China; Laos 0.871, Indonesia 0.63) ---
    c("IN", Asia, 9.00, 0.280, 13, 4, 0.400),
    c("JP", Asia, 8.00, 0.200, 17, 5, 0.020),
    c("ID", Asia, 4.70, 0.630, 12, 1, 0.300),
    c("KR", Asia, 3.20, 0.180, 8, 2, 0.050),
    c("TW", Asia, 2.40, 0.220, 7, 1, 0.100),
    c("TH", Asia, 2.40, 0.350, 9, 1, 0.250),
    c("AE", Asia, 1.60, 0.750, 5, 1, 0.200),
    c("IR", Asia, 1.50, 0.500, 11, 0, 0.300),
    c("TR", Asia, 1.40, 0.280, 10, 0, 0.150),
    c("SG", Asia, 1.20, 0.220, 4, 1, 0.100),
    c("VN", Asia, 0.80, 0.550, 9, 0, 0.350),
    c("HK", Asia, 0.60, 0.400, 8, 0, 0.570),
    c("PH", Asia, 0.60, 0.650, 8, 0, 0.300),
    c("SA", Asia, 0.50, 0.450, 5, 0, 0.300),
    c("MY", Asia, 0.40, 0.500, 7, 1, 0.250),
    c("MM", Asia, 0.35, 0.800, 4, 5, 0.350),
    c("LA", Asia, 0.25, 0.871, 3, 0, 0.350),
    // --- Oceania (3.0%; Fiji on the Fig. 12 frontier) ---
    c("AU", Oceania, 2.00, 0.220, 4, 2, 0.040),
    c("NZ", Oceania, 0.45, 0.200, 3, 1, 0.040),
    c("FJ", Oceania, 0.15, 0.800, 2, 0, 0.200),
    c("GU", Oceania, 0.10, 0.450, 1, 0, 0.100),
    c("NC", Oceania, 0.08, 0.500, 1, 0, 0.150),
    c("WS", Oceania, 0.06, 0.750, 1, 0, 0.250),
    c("PF", Oceania, 0.06, 0.550, 1, 0, 0.150),
    c("PG", Oceania, 0.04, 0.850, 1, 0, 0.300),
    c("TL", Oceania, 0.03, 0.850, 1, 0, 0.300),
    c("SB", Oceania, 0.03, 0.850, 1, 0, 0.300),
];

/// Per-continent generation targets derived from the paper's tables.
#[derive(Clone, Copy, Debug)]
pub struct ContinentTargets {
    /// Cellular /24 blocks (Table 4).
    pub cell24: u64,
    /// Cellular /48 blocks (Table 4).
    pub cell48: u64,
    /// Active /24 blocks observed in BEACON (cell24 / Table 4's "% active").
    pub active24: u64,
    /// Active /48 blocks observed in BEACON.
    pub active48: u64,
    /// Fraction of the continent's cellular ASes that are mixed (§6.1).
    pub mixed_fraction: f64,
    /// Filler countries to synthesize beyond the named ones, so Table 6's
    /// "average cellular ASes per country" works out.
    pub filler_countries: u32,
    /// Total cellular ASes across filler countries.
    pub filler_cell_ases: u32,
}

/// Continent targets in `netaddr::CONTINENTS` order (AF, AS, EU, NA, OC, SA).
pub const CONTINENT_TARGETS: [ContinentTargets; 6] = [
    // Africa: 79,091 cellular /24 = 53.2% of active; 28 /48 = 2.0%.
    ContinentTargets {
        cell24: 79_091,
        cell48: 28,
        active24: 148_667,
        active48: 1_400,
        mixed_fraction: 0.51,
        filler_countries: 34,
        filler_cell_ases: 64,
    },
    // Asia: 86,618 /24 = 5.7%; 4,613 /48 = 0.5%.
    ContinentTargets {
        cell24: 86_618,
        cell48: 4_613,
        active24: 1_519_614,
        active48: 922_600,
        mixed_fraction: 0.53,
        filler_countries: 30,
        filler_cell_ases: 73,
    },
    // Europe: 65,442 /24 = 4.8%; 2,117 /48 = 0.3%.
    ContinentTargets {
        cell24: 65_442,
        cell48: 2_117,
        active24: 1_363_375,
        active48: 705_667,
        mixed_fraction: 0.61,
        filler_countries: 32,
        filler_cell_ases: 78,
    },
    // North America: 27,595 /24 = 2.1%; 16,166 /48 = 9.9%.
    ContinentTargets {
        cell24: 27_595,
        cell48: 16_166,
        active24: 1_314_048,
        active48: 163_293,
        mixed_fraction: 0.69,
        filler_countries: 14,
        filler_cell_ases: 22,
    },
    // Oceania: 4,352 /24 = 5.4%; 35 /48 = 0.07%.
    ContinentTargets {
        cell24: 4_352,
        cell48: 35,
        active24: 80_593,
        active48: 50_000,
        mixed_fraction: 0.56,
        filler_countries: 0,
        filler_cell_ases: 0,
    },
    // South America: 87,589 /24 = 22.6%; 271 /48 = 0.9%.
    ContinentTargets {
        cell24: 87_589,
        cell48: 271,
        active24: 387_562,
        active48: 30_111,
        mixed_fraction: 0.71,
        filler_countries: 2,
        filler_cell_ases: 4,
    },
];

/// Targets for a continent.
pub fn continent_targets(continent: Continent) -> &'static ContinentTargets {
    &CONTINENT_TARGETS[continent.index()]
}

/// A resolved country in the generated world: either a named anchor or a
/// synthesized filler.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CountrySpec {
    /// The country code (named or synthetic filler code).
    pub code: CountryCode,
    /// Continent.
    pub continent: Continent,
    /// Share of global cellular demand, percent.
    pub cell_share: f64,
    /// Cellular fraction of the country's own demand.
    pub cfd: f64,
    /// Cellular access ASes at paper scale.
    pub cell_ases: u32,
    /// IPv6-deploying cellular ASes among them.
    pub v6_cell_ases: u32,
    /// Mean public-DNS adoption.
    pub public_dns: f64,
    /// True for synthesized filler countries.
    pub filler: bool,
}

/// Cellular-demand share given to each filler country (percent of global
/// cellular demand). Small enough that named-country anchors dominate every
/// aggregate, non-zero so filler operators survive activity floors.
pub const FILLER_CELL_SHARE: f64 = 0.006;

/// Build the full country list: the named anchors plus per-continent
/// fillers with synthetic codes (AA, AB, … skipping codes already named).
pub fn build_countries() -> Vec<CountrySpec> {
    let mut out: Vec<CountrySpec> = NAMED_COUNTRIES
        .iter()
        .map(|a| CountrySpec {
            code: CountryCode::literal(a.code),
            continent: a.continent,
            cell_share: a.cell_share,
            cfd: a.cfd,
            cell_ases: a.cell_ases,
            v6_cell_ases: a.v6_cell_ases,
            public_dns: a.public_dns,
            filler: false,
        })
        .collect();

    let named: std::collections::HashSet<&str> = NAMED_COUNTRIES.iter().map(|a| a.code).collect();
    let mut synth = synthetic_codes(named);

    for (ci, targets) in CONTINENT_TARGETS.iter().enumerate() {
        let continent = netaddr::CONTINENTS[ci];
        let n = targets.filler_countries as usize;
        if n == 0 {
            continue;
        }
        // Spread the filler AS budget as evenly as integer division allows.
        let total = targets.filler_cell_ases;
        for i in 0..n {
            let ases = (total as usize * (i + 1) / n - total as usize * i / n) as u32;
            out.push(CountrySpec {
                code: synth.next().expect("synthetic code space is ample"),
                continent,
                cell_share: FILLER_CELL_SHARE,
                cfd: 0.5,
                cell_ases: ases.max(1),
                v6_cell_ases: 0,
                public_dns: default_public_dns(continent),
                filler: true,
            });
        }
    }
    out
}

/// Default public-DNS adoption for operators without a named anchor.
pub fn default_public_dns(continent: Continent) -> f64 {
    match continent {
        Continent::NorthAmerica => 0.02,
        Continent::Europe => 0.05,
        Continent::Asia => 0.25,
        Continent::Africa => 0.35,
        Continent::SouthAmerica => 0.25,
        Continent::Oceania => 0.05,
    }
}

/// Infinite-ish iterator over synthetic alpha-2 codes, skipping named ones.
fn synthetic_codes(
    named: std::collections::HashSet<&'static str>,
) -> impl Iterator<Item = CountryCode> {
    (0..26 * 26).filter_map(move |k| {
        let a = (b'A' + (k / 26) as u8) as char;
        let b = (b'A' + (k % 26) as u8) as char;
        let code: String = [a, b].iter().collect();
        if named.contains(code.as_str()) {
            None
        } else {
            Some(CountryCode::literal(&code))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_shares_sum_to_paper_continent_totals() {
        // Table 8 column 2: AF 2.9, AS 38.9, EU 15.9, NA 35, OC 3.0, SA 4.1.
        let expect = [2.9, 38.9, 15.9, 35.0, 3.0, 4.1];
        for (ci, want) in expect.iter().enumerate() {
            let cont = netaddr::CONTINENTS[ci];
            let sum: f64 = NAMED_COUNTRIES
                .iter()
                .filter(|a| a.continent == cont)
                .map(|a| a.cell_share)
                .sum();
            assert!(
                (sum - want).abs() < 0.05,
                "{cont}: named cell_share sums to {sum}, paper says {want}"
            );
        }
    }

    #[test]
    fn paper_figure12_anchors_present() {
        let find = |code: &str| {
            NAMED_COUNTRIES
                .iter()
                .find(|a| a.code == code)
                .unwrap_or_else(|| panic!("{code} missing"))
        };
        assert!((find("GH").cfd - 0.959).abs() < 1e-9);
        assert!((find("LA").cfd - 0.871).abs() < 1e-9);
        assert!((find("ID").cfd - 0.63).abs() < 1e-9);
        assert!((find("US").cfd - 0.166).abs() < 1e-9);
        assert!((find("FR").cfd - 0.121).abs() < 1e-9);
    }

    #[test]
    fn cellular_as_counts_match_table6() {
        // Table 6: AF 114, AS 213, EU 185, NA 93, OC 16, SA 48.
        let expect = [114u32, 213, 185, 93, 16, 48];
        let countries = build_countries();
        for (ci, want) in expect.iter().enumerate() {
            let cont = netaddr::CONTINENTS[ci];
            let sum: u32 = countries
                .iter()
                .filter(|c| c.continent == cont)
                .map(|c| c.cell_ases)
                .sum();
            assert_eq!(sum, *want, "{cont}");
        }
        let total: u32 = countries.iter().map(|c| c.cell_ases).sum();
        assert_eq!(total, 669); // paper's 668 is the post-filter count; ±1
    }

    #[test]
    fn v6_deployment_matches_section_4_3() {
        let countries = build_countries();
        let total: u32 = countries.iter().map(|c| c.v6_cell_ases).sum();
        assert_eq!(total, 52, "§4.3: 52 IPv6 cellular ASes");
        let n_countries = countries.iter().filter(|c| c.v6_cell_ases > 0).count();
        assert!(
            (20..=30).contains(&n_countries),
            "§4.3 says ~24 countries, got {n_countries}"
        );
        // Brazil leads, then MM/US/JP with 5 each.
        let find = |code: &str| {
            countries
                .iter()
                .find(|c| c.code.as_str() == code)
                .unwrap()
                .v6_cell_ases
        };
        assert_eq!(find("BR"), 6);
        assert_eq!(find("US"), 5);
        assert_eq!(find("MM"), 5);
        assert_eq!(find("JP"), 5);
    }

    #[test]
    fn filler_codes_are_unique_and_disjoint_from_named() {
        let countries = build_countries();
        let mut codes: Vec<&str> = countries.iter().map(|c| c.code.as_str()).collect();
        let before = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicate country code generated");
    }

    #[test]
    fn continent_block_targets_match_table4() {
        let total24: u64 = CONTINENT_TARGETS.iter().map(|t| t.cell24).sum();
        let total48: u64 = CONTINENT_TARGETS.iter().map(|t| t.cell48).sum();
        assert_eq!(total24, 350_687, "Table 4 total cellular /24");
        assert_eq!(total48, 23_230, "Table 4 total cellular /48");
        // Active space ≈ BEACON dataset sizes (Table 2).
        let active24: u64 = CONTINENT_TARGETS.iter().map(|t| t.active24).sum();
        let active48: u64 = CONTINENT_TARGETS.iter().map(|t| t.active48).sum();
        assert!((4_500_000..5_100_000).contains(&active24), "{active24}");
        assert!((1_600_000..2_000_000).contains(&active48), "{active48}");
    }

    #[test]
    fn cfd_anchors_reproduce_continent_ordering() {
        // Weighted continent cellular fraction must order like Table 8:
        // AS ≳ AF > OC > NA > SA > EU.
        let mut frac = [0.0f64; 6];
        for (ci, cont) in netaddr::CONTINENTS.iter().enumerate() {
            let (cell, total): (f64, f64) = NAMED_COUNTRIES
                .iter()
                .filter(|a| a.continent == *cont)
                .fold((0.0, 0.0), |(c, t), a| {
                    (c + a.cell_share, t + a.cell_share / a.cfd)
                });
            frac[ci] = cell / total;
        }
        let af = frac[0];
        let asia = frac[1];
        let eu = frac[2];
        let na = frac[3];
        let oc = frac[4];
        let sa = frac[5];
        assert!(asia > na && af > na, "Asia/Africa above North America");
        assert!(oc > na, "Oceania above North America");
        assert!(na > sa && sa > eu, "NA > SA > EU");
    }
}
