//! Operator (AS-level) generation.
//!
//! Turns the country calibration table into a concrete population of
//! autonomous systems: dedicated and mixed cellular operators with their
//! demand shares, fixed-line ISPs, the three classes of AS-filter victims
//! (tiny cellular operators, low-RUM-visibility operators, cloud/proxy
//! networks), and filler content/enterprise ASes that pad the platform's
//! AS census to the paper's 46,936.
//!
//! Demand here is expressed in *global cellular percent* units: the sum of
//! all cellular demand across named countries is ≈99.8 (the paper's
//! continent totals), and each country's fixed-line demand is derived from
//! its cellular fraction anchor. The CDN simulator later normalizes all of
//! it to 100,000 Demand Units.

use asdb::AsKind;
use netaddr::{Asn, Continent, CountryCode};
use serde::{Deserialize, Serialize};

use crate::config::WorldConfig;
use crate::countries::{continent_targets, CountrySpec};
use crate::sampling::{rng_for, stochastic_round, uniform, weighted_choice, zipf_split, GenRng};

/// Why an operator exists in the generated population; drives both block
/// generation and the expectations of the AS-filter experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum OperatorRole {
    /// A genuine access operator (cellular, mixed, or fixed-only).
    Normal,
    /// Cellular operator with < 0.1 DU of demand (rule-1 victim).
    TinyCell,
    /// Real demand, negligible RUM visibility (rule-2 victim).
    LowBeacon,
    /// Cloud/proxy network carrying cellular-labeled hits (rule-3 victim).
    Proxy,
    /// Census filler: small content/enterprise/transit AS.
    Filler,
}

/// One generated autonomous system with everything block generation and
/// the DNS substrate need to know about it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OperatorInfo {
    /// Assigned AS number.
    pub asn: Asn,
    /// Synthetic operator name.
    pub name: String,
    /// Ground-truth kind (dedicated/mixed/fixed/proxy/…).
    pub kind: AsKind,
    /// Why this operator exists in the population.
    pub role: OperatorRole,
    /// Registration country.
    pub country: CountryCode,
    /// Continent of that country.
    pub continent: Continent,
    /// Cellular demand weight (global-cellular-percent units).
    pub cell_demand: f64,
    /// Fixed-line demand weight (same units).
    pub fixed_demand: f64,
    /// Active cellular /24 blocks (already world-scaled).
    pub cell_blocks24: u64,
    /// Allocated-but-mostly-idle cellular /24 blocks beyond the active
    /// ones (they appear in carrier ground truth and as ratio-0 space).
    pub cell_alloc_extra24: u64,
    /// Active fixed-line /24 blocks.
    pub fixed_blocks24: u64,
    /// Active cellular /48 blocks (0 for non-IPv6 operators).
    pub cell_blocks48: u64,
    /// Active fixed-line /48 blocks.
    pub fixed_blocks48: u64,
    /// CGN heavy-hitter tier size: how many /24s concentrate nearly all of
    /// the operator's cellular demand (§6.2, Fig. 8).
    pub cgn_blocks: u64,
    /// Share of cellular demand carried by the CGN tier (≈0.993 for the
    /// showcase mixed operator).
    pub cgn_share: f64,
    /// Fraction of this operator's demand that flows over its IPv6 blocks.
    pub v6_demand_frac: f64,
    /// Tethering/hotspot rate: P(wifi label | cellular block) baseline.
    pub tether_rate: f64,
    /// Multiplier on RUM visibility (rule-2 victims sit near zero).
    pub beacon_coverage: f64,
    /// Cellular-label rate on proxy-front blocks (proxy ASes only).
    pub proxy_cell_rate: f64,
    /// Fraction of DNS demand resolved through public resolvers (Fig. 10).
    pub public_dns_fraction: f64,
    /// Resolver pool size for the DNS substrate.
    pub n_resolvers: u32,
    /// For mixed operators: fraction of resolvers shared between cellular
    /// and fixed clients (Fig. 9 shows ≈60% shared at the median AS).
    pub resolver_shared_fraction: f64,
    /// Mixed operator whose shared resolvers are geographically distant
    /// from cellular clients (the paper's Brazilian example).
    pub distant_cell_resolvers: bool,
}

impl OperatorInfo {
    /// Total demand weight across access types.
    pub fn total_demand(&self) -> f64 {
        self.cell_demand + self.fixed_demand
    }

    /// Ground-truth cellular fraction of demand.
    pub fn true_cfd(&self) -> f64 {
        let t = self.total_demand();
        if t <= 0.0 {
            0.0
        } else {
            self.cell_demand / t
        }
    }
}

/// The generated operator population plus the designated showcase and
/// validation-carrier ASes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OperatorSet {
    /// All operators.
    pub ops: Vec<OperatorInfo>,
    /// Fig. 6a's large dedicated US operator (also validation Carrier B).
    pub showcase_dedicated: Asn,
    /// Fig. 6b / Fig. 8's large mixed European operator (also Carrier A).
    pub showcase_mixed: Asn,
    /// Validation Carrier C: a large mixed Middle-East operator.
    pub carrier_c: Asn,
    /// A large mixed Brazilian operator with distant cellular resolvers
    /// (§6.3's geolocation example).
    pub brazil_mixed: Asn,
}

impl OperatorSet {
    /// Look up an operator by ASN (linear; used in tests and setup paths).
    pub fn get(&self, asn: Asn) -> Option<&OperatorInfo> {
        self.ops.iter().find(|o| o.asn == asn)
    }
}

/// Explicit top-rank cellular demand shares for countries the paper's
/// Table 7 pins down (global-cellular-percent units), with the kind of
/// each of those top operators.
fn top_op_plan(code: &str) -> &'static [(f64, AsKind)] {
    use AsKind::{DedicatedCellular as D, MixedAccess as M};
    match code {
        // Table 7: US holds ranks 1, 2, 3, 5 — all dedicated.
        "US" => &[(9.4, D), (9.2, D), (5.7, D), (3.8, D)],
        // Rank 4: India, dedicated.
        "IN" => &[(4.5, D)],
        // Ranks 6, 7, 10: Japan — one dedicated, two mixed.
        "JP" => &[(3.3, D), (2.4, M), (1.0, M)],
        // Rank 8: Indonesia, dedicated.
        "ID" => &[(1.5, D)],
        // Rank 9: Australia, mixed.
        "AU" => &[(1.2, M)],
        // The showcase mixed European operator leads the UK market.
        "GB" => &[(1.15, M)],
        // Carrier C leads the Saudi market as a mixed operator.
        "SA" => &[(0.30, M)],
        // The §6.3 Brazilian mixed operator with distant resolvers.
        "BR" => &[(0.70, M)],
        _ => &[],
    }
}

/// Sequentially allocates ASNs, reserving a couple of recognizable proxy
/// ASNs (populated later by proxy generation).
struct AsnAlloc {
    next: u32,
}

impl AsnAlloc {
    fn new() -> Self {
        AsnAlloc { next: 100 }
    }

    fn next(&mut self) -> Asn {
        // Skip the reserved proxy ASNs.
        while self.next == 15_169 || self.next == 21_837 {
            self.next += 1;
        }
        let asn = Asn(self.next);
        self.next += 1;
        asn
    }
}

/// Generate the full operator population for the given countries.
pub fn generate_operators(cfg: &WorldConfig, countries: &[CountrySpec]) -> OperatorSet {
    let mut alloc = AsnAlloc::new();
    let mut ops: Vec<OperatorInfo> = Vec::new();
    let mut showcase_dedicated = None;
    let mut showcase_mixed = None;
    let mut carrier_c = None;
    let mut brazil_mixed = None;

    let continent_cell_share: [f64; 6] = {
        let mut s = [0.0; 6];
        for c in countries {
            s[c.continent.index()] += c.cell_share;
        }
        s
    };
    let continent_total_share: [f64; 6] = {
        let mut s = [0.0; 6];
        for c in countries {
            s[c.continent.index()] += c.cell_share / c.cfd;
        }
        s
    };

    for (country_idx, country) in countries.iter().enumerate() {
        let mut rng = rng_for(cfg.seed, 0x10_0000 + country_idx as u64);
        let tgt = continent_targets(country.continent);

        // --- cellular operators -----------------------------------------
        let n_cell = country.cell_ases as usize;
        let plan = top_op_plan(country.code.as_str());
        let planned: f64 = plan.iter().map(|(s, _)| *s).sum();
        let remainder = (country.cell_share - planned).max(country.cell_share * 0.02);
        let tail_n = n_cell.saturating_sub(plan.len());
        let tail_shares = zipf_split(&mut rng, remainder, tail_n, 1.15, 0.25);

        let mut cell_shares: Vec<(f64, Option<AsKind>)> = plan
            .iter()
            .map(|(s, k)| (*s, Some(*k)))
            .chain(tail_shares.into_iter().map(|s| (s, None)))
            .collect();
        // Keep the invariant: shares sum to the country's anchor.
        let sum: f64 = cell_shares.iter().map(|(s, _)| *s).sum();
        for (s, _) in &mut cell_shares {
            *s *= country.cell_share / sum;
        }

        // Decide mixing for unplanned operators so the continental mixed
        // fraction lands on target.
        let mixed_target = stochastic_round(&mut rng, n_cell as f64 * tgt.mixed_fraction) as usize;
        let planned_mixed = plan
            .iter()
            .filter(|(_, k)| *k == AsKind::MixedAccess)
            .count();
        let mut unplanned_mixed_left = mixed_target.saturating_sub(planned_mixed);

        // Country block budgets.
        let cont_i = country.continent.index();
        let cell24_budget = tgt.cell24 as f64
            * (country.cell_share / continent_cell_share[cont_i])
            * cfg.block_scale;
        let country_total = country.cell_share / country.cfd;
        let fixed24_budget = (tgt.active24 - tgt.cell24) as f64
            * (country_total / continent_total_share[cont_i])
            * cfg.block_scale;
        let fixed48_budget = (tgt.active48.saturating_sub(tgt.cell48)) as f64
            * (country_total / continent_total_share[cont_i])
            * cfg.block_scale;

        // Cellular block allocation weights: sub-linear in demand so small
        // operators keep disproportionate address space (Africa's block
        // counts vs. its demand depend on this).
        let blk_weights: Vec<f64> = cell_shares
            .iter()
            .map(|(s, _)| s.powf(0.6) * uniform(&mut rng, 0.7, 1.4))
            .collect();
        let blk_wsum: f64 = blk_weights.iter().sum();

        // IPv6 deployers: the top `v6_cell_ases` operators by demand.
        let n_v6 = country.v6_cell_ases as usize;
        let cell48_budget = tgt.cell48 as f64
            * (if n_v6 > 0 {
                // Weight continents' v6 space toward this country by its
                // demand share among v6-deploying countries.
                let v6_weight_sum: f64 = countries
                    .iter()
                    .filter(|c| c.continent == country.continent && c.v6_cell_ases > 0)
                    .map(|c| c.cell_share * c.v6_cell_ases as f64)
                    .sum();
                country.cell_share * n_v6 as f64 / v6_weight_sum.max(1e-12)
            } else {
                0.0
            })
            * cfg.block_scale;

        let mut country_cell_ops: Vec<usize> = Vec::new();
        for (rank, (share, planned_kind)) in cell_shares.iter().enumerate() {
            let kind = planned_kind.unwrap_or_else(|| {
                // Fill the continent's mixed quota, biased away from the
                // top ranks: large cellular demand is mostly carried by
                // dedicated MNOs (Table 7: the top 6 global ASes are all
                // dedicated; mixed ASes hold only 32.7% of cellular
                // demand despite outnumbering dedicated ones).
                let remaining = n_cell - rank;
                let need = unplanned_mixed_left;
                let take = if need == 0 {
                    false
                } else if need >= remaining {
                    true
                } else {
                    let base = need as f64 / remaining as f64;
                    let bias = if rank < 2 {
                        0.35
                    } else if rank < 5 {
                        0.9
                    } else {
                        1.35
                    };
                    rng.gen_bool_like((base * bias).min(1.0))
                };
                if take {
                    unplanned_mixed_left -= 1;
                    AsKind::MixedAccess
                } else {
                    AsKind::DedicatedCellular
                }
            });

            let blocks24 = stochastic_round(
                &mut rng,
                (cell24_budget * blk_weights[rank] / blk_wsum).max(0.0),
            )
            .max(1);
            let has_v6 = rank < n_v6;
            let blocks48 = if has_v6 {
                stochastic_round(&mut rng, (cell48_budget / n_v6.max(1) as f64).max(0.0)).max(1)
            } else {
                0
            };

            // CGN concentration tier: a handful of /24s carry nearly all
            // cellular demand (§6.2). Tier size grows slowly with space.
            let cgn_blocks = ((blocks24 as f64).sqrt() * 1.1).round().clamp(1.0, 30.0) as u64;
            let cgn_share = uniform(&mut rng, 0.985, 0.997);

            let v6_demand_frac = if has_v6 {
                match country.continent {
                    Continent::NorthAmerica => uniform(&mut rng, 0.20, 0.50),
                    _ => uniform(&mut rng, 0.05, 0.30),
                }
            } else {
                0.0
            };

            let idx = ops.len();
            ops.push(OperatorInfo {
                asn: alloc.next(),
                name: format!("{}-{} {}", country.code, rank + 1, kind_label(kind)),
                kind,
                role: OperatorRole::Normal,
                country: country.code,
                continent: country.continent,
                cell_demand: *share,
                fixed_demand: 0.0, // assigned below for mixed operators
                cell_blocks24: blocks24,
                cell_alloc_extra24: stochastic_round(&mut rng, blocks24 as f64 * 1.5),
                fixed_blocks24: 0,
                cell_blocks48: blocks48,
                fixed_blocks48: 0,
                cgn_blocks,
                cgn_share,
                v6_demand_frac,
                // Large dedicated carriers get a moderate tether rate so
                // their hotspot-heavy gateways stay in Fig. 6a's 0.7-0.9
                // band (and above the 0.5 detection threshold).
                tether_rate: if kind == AsKind::DedicatedCellular && *share > 3.0 {
                    uniform(&mut rng, 0.08, 0.16)
                } else {
                    uniform(&mut rng, cfg.tether_rate_range.0, cfg.tether_rate_range.1)
                },
                beacon_coverage: 1.0,
                proxy_cell_rate: 0.0,
                public_dns_fraction: (country.public_dns * uniform(&mut rng, 0.5, 1.6))
                    .clamp(0.0, 0.99),
                n_resolvers: (2.0 + share.sqrt() * 12.0).round() as u32,
                resolver_shared_fraction: if kind == AsKind::MixedAccess {
                    uniform(&mut rng, 0.35, 0.85)
                } else {
                    0.0
                },
                distant_cell_resolvers: false,
            });
            country_cell_ops.push(idx);
        }

        // --- fixed-line demand and fixed-only ISPs ----------------------
        let fixed_total = country.cell_share * (1.0 - country.cfd) / country.cfd;
        let n_fixed_only = ((2.0 + (1.0 + country_total).ln() * 1.5).round() as usize).max(1);
        let mixed_ops: Vec<usize> = country_cell_ops
            .iter()
            .copied()
            .filter(|&i| ops[i].kind == AsKind::MixedAccess)
            .collect();

        // Fixed demand holders: fixed-only ISPs first, then mixed ASes.
        let n_holders = n_fixed_only + mixed_ops.len();
        let fixed_shares = zipf_split(&mut rng, fixed_total, n_holders, 1.1, 0.5);
        // Randomize which holder occupies which Zipf rank so mixed ASes do
        // not always rank below fixed-only ISPs — but usually hand the
        // incumbent's share (rank 1) to the largest mixed operator: real
        // mixed ASes are incumbent telecoms whose fixed arm dwarfs their
        // cellular side, which is what keeps large mixed operators below
        // the 0.9 CFD dedication threshold (Table 7's mixed entries).
        let mut order: Vec<usize> = (0..n_holders).collect();
        shuffle_idx(&mut rng, &mut order);
        if !mixed_ops.is_empty() && rng.gen_bool_like(0.7) {
            let top_mixed_holder = n_fixed_only; // first mixed op = largest
            let pos = order
                .iter()
                .position(|&h| h == top_mixed_holder)
                .expect("holder indices are a permutation");
            order.swap(0, pos);
        }
        // fixed_shares is in descending Zipf-rank order; holder `order[k]`
        // receives the k-th largest share.
        let mut holder_share = vec![0.0f64; n_holders];
        for (k, &h) in order.iter().enumerate() {
            holder_share[h] = fixed_shares[k];
        }
        let fixed_shares = holder_share;

        let fixed_blk_weights: Vec<f64> = fixed_shares
            .iter()
            .map(|s| s.powf(0.75) * uniform(&mut rng, 0.7, 1.4))
            .collect();
        let fixed_blk_wsum: f64 = fixed_blk_weights.iter().sum::<f64>().max(1e-12);

        for h in 0..n_holders {
            let blocks24 = stochastic_round(
                &mut rng,
                fixed24_budget * fixed_blk_weights[h] / fixed_blk_wsum,
            )
            .max(1);
            let blocks48 = stochastic_round(
                &mut rng,
                fixed48_budget * fixed_blk_weights[h] / fixed_blk_wsum,
            );
            if h < n_fixed_only {
                ops.push(OperatorInfo {
                    asn: alloc.next(),
                    name: format!("{}-Fixed-{}", country.code, h + 1),
                    kind: AsKind::FixedOnly,
                    role: OperatorRole::Normal,
                    country: country.code,
                    continent: country.continent,
                    cell_demand: 0.0,
                    fixed_demand: fixed_shares[h],
                    cell_blocks24: 0,
                    cell_alloc_extra24: 0,
                    fixed_blocks24: blocks24,
                    cell_blocks48: 0,
                    fixed_blocks48: blocks48,
                    cgn_blocks: 0,
                    cgn_share: 0.0,
                    v6_demand_frac: if blocks48 > 0 {
                        uniform(&mut rng, 0.02, 0.15)
                    } else {
                        0.0
                    },
                    tether_rate: 0.0,
                    beacon_coverage: 1.0,
                    proxy_cell_rate: 0.0,
                    public_dns_fraction: (country.public_dns * uniform(&mut rng, 0.3, 1.2))
                        .clamp(0.0, 0.99),
                    n_resolvers: (2.0 + fixed_shares[h].sqrt() * 10.0).round() as u32,
                    resolver_shared_fraction: 0.0,
                    distant_cell_resolvers: false,
                });
            } else {
                let op = &mut ops[mixed_ops[h - n_fixed_only]];
                op.fixed_demand = fixed_shares[h];
                op.fixed_blocks24 = blocks24;
                op.fixed_blocks48 = blocks48;
            }
        }

        // --- showcase / carrier designation and overrides ----------------
        if country.code.as_str() == "US" && showcase_dedicated.is_none() {
            let i = country_cell_ops[0];
            // Carrier B's ground truth is ≈3k cellular CIDRs; force the
            // showcase dedicated operator's space to that magnitude.
            ops[i].cell_blocks24 = ((2_972.0 * cfg.block_scale).round() as u64).max(30);
            // Fig. 6a: ~40% of its /24s are ratio-0 infrastructure.
            ops[i].cell_alloc_extra24 = 0;
            ops[i].cgn_blocks = ((ops[i].cell_blocks24 as f64) * 0.02)
                .round()
                .clamp(3.0, 40.0) as u64;
            ops[i].cgn_share = 0.97;
            // Fig. 6a: its gateway ratios sit in the 0.7-0.9 band — a
            // hotspot-heavy population with a moderate tether rate keeps
            // every gateway above the 0.5 detection threshold.
            ops[i].tether_rate = 0.12;
            showcase_dedicated = Some(ops[i].asn);
        }
        if country.code.as_str() == "GB" && showcase_mixed.is_none() {
            let i = country_cell_ops[0];
            let op = &mut ops[i];
            op.kind = AsKind::MixedAccess;
            // Paper: cellular is 4.9% of this AS's demand.
            op.fixed_demand = op.cell_demand * (1.0 / 0.049 - 1.0);
            // Paper: 514 active cellular /24s, 24-25 carrying 99.3-99.5%.
            op.cell_blocks24 = ((514.0 * cfg.block_scale).round() as u64).max(40);
            // The allocated:active ratio (≈9:1) is what generates Carrier
            // A's false negatives; keep it even at small world scales.
            op.cell_alloc_extra24 =
                ((4_608.0 * cfg.block_scale).round() as u64).max(op.cell_blocks24 * 9);
            op.fixed_blocks24 = ((57_000.0 * cfg.block_scale).round() as u64).max(400);
            op.cgn_blocks = (25.0 * cfg.block_scale.max(0.04)).round().clamp(5.0, 25.0) as u64;
            op.cgn_share = 0.994;
            op.resolver_shared_fraction = 0.6;
            showcase_mixed = Some(op.asn);
        }
        if country.code.as_str() == "SA" && carrier_c.is_none() {
            let i = country_cell_ops[0];
            let op = &mut ops[i];
            op.kind = AsKind::MixedAccess;
            op.cell_blocks24 = ((460.0 * cfg.block_scale).round() as u64).max(25);
            op.cell_alloc_extra24 = ((90.0 * cfg.block_scale).round() as u64).max(8);
            op.fixed_blocks24 = ((3_050.0 * cfg.block_scale).round() as u64).max(60);
            if op.fixed_demand <= 0.0 {
                op.fixed_demand = op.cell_demand * 2.0;
            }
            carrier_c = Some(op.asn);
        }
        if country.code.as_str() == "BR" && brazil_mixed.is_none() {
            let i = country_cell_ops[0];
            let op = &mut ops[i];
            op.kind = AsKind::MixedAccess;
            if op.fixed_demand <= 0.0 {
                op.fixed_demand = op.cell_demand * 3.0;
            }
            op.distant_cell_resolvers = true;
            op.resolver_shared_fraction = 0.7;
            brazil_mixed = Some(op.asn);
        }
    }

    generate_rule_victims(cfg, countries, &mut alloc, &mut ops);
    generate_fillers(cfg, countries, &mut alloc, &mut ops);

    OperatorSet {
        ops,
        showcase_dedicated: showcase_dedicated.expect("US is always in the country table"),
        showcase_mixed: showcase_mixed.expect("GB is always in the country table"),
        carrier_c: carrier_c.expect("SA is always in the country table"),
        brazil_mixed: brazil_mixed.expect("BR is always in the country table"),
    }
}

fn kind_label(kind: AsKind) -> &'static str {
    match kind {
        AsKind::DedicatedCellular => "Mobile",
        AsKind::MixedAccess => "Telecom",
        _ => "Net",
    }
}

/// Tiny cellular ASes (rule 1), low-visibility operators (rule 2), and
/// proxy/cloud ASes (rule 3).
fn generate_rule_victims(
    cfg: &WorldConfig,
    countries: &[CountrySpec],
    alloc: &mut AsnAlloc,
    ops: &mut Vec<OperatorInfo>,
) {
    let mut rng = rng_for(cfg.seed, 0x20_0000);
    let weights: Vec<f64> = countries.iter().map(|c| c.cell_ases as f64).collect();

    for i in 0..cfg.tiny_cell_ases {
        let ci = weighted_choice(&mut rng, &weights).expect("weights are non-zero");
        let country = &countries[ci];
        let kind = if rng.gen_bool_like(0.8) {
            AsKind::DedicatedCellular
        } else {
            AsKind::MixedAccess
        };
        ops.push(OperatorInfo {
            asn: alloc.next(),
            name: format!("{}-MVNO-{}", country.code, i + 1),
            kind,
            role: OperatorRole::TinyCell,
            country: country.code,
            continent: country.continent,
            // Below 0.1 DU, log-uniform across several decades: Fig. 4a
            // shows ~40% of candidate ASes sitting six or more orders of
            // magnitude below the largest cellular AS.
            cell_demand: 10f64.powf(uniform(&mut rng, -6.8, -3.45)),
            fixed_demand: if kind == AsKind::MixedAccess {
                uniform(&mut rng, 0.00002, 0.0002)
            } else {
                0.0
            },
            cell_blocks24: rng.gen_range_u64(1, 4),
            cell_alloc_extra24: rng.gen_range_u64(0, 3),
            fixed_blocks24: u64::from(kind == AsKind::MixedAccess),
            cell_blocks48: 0,
            fixed_blocks48: 0,
            cgn_blocks: 1,
            cgn_share: 0.9,
            v6_demand_frac: 0.0,
            tether_rate: uniform(&mut rng, cfg.tether_rate_range.0, cfg.tether_rate_range.1),
            beacon_coverage: 1.0,
            proxy_cell_rate: 0.0,
            public_dns_fraction: country.public_dns,
            n_resolvers: 1,
            resolver_shared_fraction: 0.0,
            distant_cell_resolvers: false,
        });
    }

    for i in 0..cfg.low_beacon_ases {
        let ci = weighted_choice(&mut rng, &weights).expect("weights are non-zero");
        let country = &countries[ci];
        ops.push(OperatorInfo {
            asn: alloc.next(),
            name: format!("{}-M2M-{}", country.code, i + 1),
            kind: AsKind::DedicatedCellular,
            role: OperatorRole::LowBeacon,
            country: country.code,
            continent: country.continent,
            // Comfortably above 0.1 DU so only rule 2 removes them.
            cell_demand: uniform(&mut rng, 0.0012, 0.01),
            fixed_demand: 0.0,
            cell_blocks24: rng.gen_range_u64(2, 8),
            cell_alloc_extra24: rng.gen_range_u64(0, 5),
            fixed_blocks24: 0,
            cell_blocks48: 0,
            fixed_blocks48: 0,
            cgn_blocks: 1,
            cgn_share: 0.9,
            v6_demand_frac: 0.0,
            tether_rate: uniform(&mut rng, 0.02, 0.1),
            // Machine-to-machine / app-only traffic: almost no JS beacons.
            beacon_coverage: uniform(&mut rng, 0.004, 0.02),
            proxy_cell_rate: 0.0,
            public_dns_fraction: country.public_dns,
            n_resolvers: 1,
            resolver_shared_fraction: 0.0,
            distant_cell_resolvers: false,
        });
    }

    // Proxy/cloud ASes concentrate where cloud regions are.
    let proxy_weights: Vec<f64> = countries
        .iter()
        .map(|c| match c.code.as_str() {
            "US" => 20.0,
            "DE" | "GB" | "NL" | "SG" | "JP" | "IN" | "BR" => 4.0,
            _ if !c.filler => 0.5,
            _ => 0.0,
        })
        .collect();
    for i in 0..cfg.proxy_ases {
        let ci = weighted_choice(&mut rng, &proxy_weights).expect("US weight is non-zero");
        let country = &countries[ci];
        // The first two proxies get the recognizable ASNs of the paper's
        // examples (Google's and Opera's proxy fleets).
        let asn = match i {
            0 => Asn(15_169),
            1 => Asn(21_837),
            _ => alloc.next(),
        };
        ops.push(OperatorInfo {
            asn,
            name: match i {
                0 => "WebGiant Proxy".to_string(),
                1 => "MiniBrowser Proxy".to_string(),
                _ => format!("{}-Cloud-{}", country.code, i + 1),
            },
            kind: AsKind::CloudProxy,
            role: OperatorRole::Proxy,
            country: country.code,
            continent: country.continent,
            // Their *apparent* cellular demand; platform-visible demand on
            // proxy-front blocks.
            cell_demand: uniform(&mut rng, 0.001, 0.05),
            fixed_demand: uniform(&mut rng, 0.0005, 0.01),
            cell_blocks24: rng.gen_range_u64(2, 40),
            cell_alloc_extra24: 0,
            fixed_blocks24: rng.gen_range_u64(2, 20),
            cell_blocks48: 0,
            fixed_blocks48: 0,
            cgn_blocks: 2,
            cgn_share: 0.8,
            v6_demand_frac: 0.0,
            tether_rate: 0.0,
            beacon_coverage: 1.0,
            proxy_cell_rate: uniform(
                &mut rng,
                cfg.proxy_cell_rate_range.0,
                cfg.proxy_cell_rate_range.1,
            ),
            public_dns_fraction: 0.0,
            n_resolvers: 1,
            resolver_shared_fraction: 0.0,
            distant_cell_resolvers: false,
        });
    }
}

/// Census fillers: small content/enterprise/transit ASes with negligible
/// demand, padding the platform AS count to the paper's 46,936.
fn generate_fillers(
    cfg: &WorldConfig,
    countries: &[CountrySpec],
    alloc: &mut AsnAlloc,
    ops: &mut Vec<OperatorInfo>,
) {
    let mut rng = rng_for(cfg.seed, 0x30_0000);
    let existing = ops.len() as u64;
    let target = (cfg.total_ases_target as f64 * cfg.filler_as_scale) as u64;
    let n = target.saturating_sub(existing);
    // Flattened demand weighting so filler ASes spread across countries.
    let weights: Vec<f64> = countries
        .iter()
        .map(|c| (c.cell_share / c.cfd).sqrt())
        .collect();
    for i in 0..n {
        let ci = weighted_choice(&mut rng, &weights).expect("weights are non-zero");
        let country = &countries[ci];
        let kind = match rng.gen_range_u64(0, 100) {
            0..=54 => AsKind::FixedOnly,
            55..=79 => AsKind::Enterprise,
            80..=92 => AsKind::ContentCdn,
            _ => AsKind::TransitOnly,
        };
        ops.push(OperatorInfo {
            asn: alloc.next(),
            name: format!("{}-Org-{}", country.code, i + 1),
            kind,
            role: OperatorRole::Filler,
            country: country.code,
            continent: country.continent,
            cell_demand: 0.0,
            fixed_demand: uniform(&mut rng, 1e-6, 3e-4),
            cell_blocks24: 0,
            cell_alloc_extra24: 0,
            fixed_blocks24: rng.gen_range_u64(1, 5),
            cell_blocks48: 0,
            fixed_blocks48: 0,
            cgn_blocks: 0,
            cgn_share: 0.0,
            v6_demand_frac: 0.0,
            tether_rate: 0.0,
            beacon_coverage: 1.0,
            proxy_cell_rate: 0.0,
            public_dns_fraction: 0.1,
            n_resolvers: 1,
            resolver_shared_fraction: 0.0,
            distant_cell_resolvers: false,
        });
    }
}

/// Fisher–Yates shuffle on holder indices (we avoid pulling in the `rand`
/// SliceRandom trait to keep the RNG surface to the one seeded type).
fn shuffle_idx(rng: &mut GenRng, v: &mut [usize]) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range_u64(0, i as u64) as usize;
        v.swap(i, j);
    }
}

/// Small extension helpers on the generation RNG.
trait RngExt {
    fn gen_bool_like(&mut self, p: f64) -> bool;
    fn gen_range_u64(&mut self, lo: u64, hi_inclusive: u64) -> u64;
}

impl RngExt for GenRng {
    fn gen_bool_like(&mut self, p: f64) -> bool {
        use rand::Rng;
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    fn gen_range_u64(&mut self, lo: u64, hi_inclusive: u64) -> u64 {
        use rand::Rng;
        if lo >= hi_inclusive {
            lo
        } else {
            self.gen_range(lo..=hi_inclusive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countries::build_countries;

    fn demo_ops() -> OperatorSet {
        generate_operators(&WorldConfig::demo(), &build_countries())
    }

    #[test]
    fn asn_allocation_skips_reserved_and_is_unique() {
        let set = demo_ops();
        let mut asns: Vec<u32> = set.ops.iter().map(|o| o.asn.value()).collect();
        let before = asns.len();
        asns.sort();
        asns.dedup();
        assert_eq!(asns.len(), before, "duplicate ASN allocated");
        // Reserved proxies exist exactly once, as proxies.
        for reserved in [15_169u32, 21_837] {
            let hits: Vec<_> = set
                .ops
                .iter()
                .filter(|o| o.asn.value() == reserved)
                .collect();
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].role, OperatorRole::Proxy);
        }
    }

    #[test]
    fn real_cellular_as_count_matches_table6() {
        let set = demo_ops();
        let real_cell = set
            .ops
            .iter()
            .filter(|o| o.role == OperatorRole::Normal && o.kind.is_cellular_access())
            .count();
        assert_eq!(real_cell, 669, "country table pins 669 cellular ASes");
    }

    #[test]
    fn mixed_fraction_is_majority() {
        let set = demo_ops();
        let cell: Vec<_> = set
            .ops
            .iter()
            .filter(|o| o.role == OperatorRole::Normal && o.kind.is_cellular_access())
            .collect();
        let mixed = cell
            .iter()
            .filter(|o| o.kind == AsKind::MixedAccess)
            .count();
        let frac = mixed as f64 / cell.len() as f64;
        assert!(
            (0.50..0.70).contains(&frac),
            "paper: 58.6% mixed; got {frac:.3}"
        );
    }

    #[test]
    fn rule_victim_counts_match_config() {
        let cfg = WorldConfig::demo();
        let set = generate_operators(&cfg, &build_countries());
        let count = |r: OperatorRole| set.ops.iter().filter(|o| o.role == r).count() as u32;
        assert_eq!(count(OperatorRole::TinyCell), cfg.tiny_cell_ases);
        assert_eq!(count(OperatorRole::LowBeacon), cfg.low_beacon_ases);
        assert_eq!(count(OperatorRole::Proxy), cfg.proxy_ases);
    }

    #[test]
    fn total_as_census_near_target() {
        let cfg = WorldConfig::demo();
        let set = generate_operators(&cfg, &build_countries());
        let target = (cfg.total_ases_target as f64 * cfg.filler_as_scale) as usize;
        // Structural ASes may exceed a very small filler target; with demo
        // scale the total should land at or slightly above target.
        assert!(
            set.ops.len() >= target,
            "got {} ops, target {target}",
            set.ops.len()
        );
    }

    #[test]
    fn showcase_overrides_applied() {
        let set = demo_ops();
        let ded = set.get(set.showcase_dedicated).unwrap();
        assert_eq!(ded.kind, AsKind::DedicatedCellular);
        assert_eq!(ded.country.as_str(), "US");
        assert!(ded.fixed_demand == 0.0);

        let mixed = set.get(set.showcase_mixed).unwrap();
        assert_eq!(mixed.kind, AsKind::MixedAccess);
        assert_eq!(mixed.country.as_str(), "GB");
        // Paper: cellular ≈ 4.9% of the AS's demand.
        assert!(
            (0.03..0.07).contains(&mixed.true_cfd()),
            "showcase mixed CFD = {:.3}",
            mixed.true_cfd()
        );
        assert!(mixed.cell_alloc_extra24 > mixed.cell_blocks24 * 4);

        let c = set.get(set.carrier_c).unwrap();
        assert_eq!(c.kind, AsKind::MixedAccess);
        assert_eq!(c.country.as_str(), "SA");

        let br = set.get(set.brazil_mixed).unwrap();
        assert!(br.distant_cell_resolvers);
    }

    #[test]
    fn demand_totals_preserved_per_country() {
        let countries = build_countries();
        let set = demo_ops();
        for code in ["US", "GB", "GH", "JP"] {
            let anchor = countries.iter().find(|c| c.code.as_str() == code).unwrap();
            let cell: f64 = set
                .ops
                .iter()
                .filter(|o| o.country.as_str() == code && o.role == OperatorRole::Normal)
                .map(|o| o.cell_demand)
                .sum();
            assert!(
                (cell - anchor.cell_share).abs() < anchor.cell_share * 0.05,
                "{code}: cellular demand {cell} vs anchor {}",
                anchor.cell_share
            );
        }
    }

    #[test]
    fn top_us_operators_match_table7_shares() {
        let set = demo_ops();
        let mut us: Vec<&OperatorInfo> = set
            .ops
            .iter()
            .filter(|o| {
                o.country.as_str() == "US"
                    && o.role == OperatorRole::Normal
                    && o.kind.is_cellular_access()
            })
            .collect();
        us.sort_by(|a, b| b.cell_demand.total_cmp(&a.cell_demand));
        // Table 7: 9.4, 9.2, 5.7, 3.8 — allow the renormalization wiggle.
        assert!(
            (us[0].cell_demand - 9.4).abs() < 0.5,
            "{}",
            us[0].cell_demand
        );
        assert!((us[1].cell_demand - 9.2).abs() < 0.5);
        assert!((us[2].cell_demand - 5.7).abs() < 0.4);
        assert!(us
            .iter()
            .take(4)
            .all(|o| o.kind == AsKind::DedicatedCellular));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = demo_ops();
        let b = demo_ops();
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.kind, y.kind);
            assert!((x.cell_demand - y.cell_demand).abs() < 1e-12);
            assert_eq!(x.cell_blocks24, y.cell_blocks24);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_operators(&WorldConfig::demo().with_seed(1), &build_countries());
        let b = generate_operators(&WorldConfig::demo().with_seed(2), &build_countries());
        let diff = a
            .ops
            .iter()
            .zip(&b.ops)
            .filter(|(x, y)| (x.cell_demand - y.cell_demand).abs() > 1e-12)
            .count();
        assert!(diff > 0, "seeds produced identical worlds");
    }
}
