//! World assembly: countries → operators → blocks → AS database → carriers.

use std::collections::HashMap;

use asdb::{AsClass, AsDatabase, AsRecord, CarrierGroundTruth};
use netaddr::Asn;
use serde::{Deserialize, Serialize};

use crate::blocks::{generate_blocks, BlockSet};
use crate::carriers::build_carriers;
use crate::config::WorldConfig;
use crate::countries::{build_countries, CountrySpec};
use crate::operators::{generate_operators, OperatorInfo, OperatorRole, OperatorSet};
use crate::sampling::rng_for;

/// The fully generated synthetic world: the ground truth the measurement
/// pipeline is evaluated against.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct World {
    /// The configuration this world was generated from.
    pub config: WorldConfig,
    /// All countries (named anchors + fillers).
    pub countries: Vec<CountrySpec>,
    /// The operator population with showcase designations.
    pub operators: OperatorSet,
    /// Public AS metadata (what the pipeline is allowed to see).
    pub as_db: AsDatabase,
    /// All active blocks plus per-operator allocation spans.
    pub blocks: BlockSet,
    /// Validation carriers (ground-truth prefix lists).
    pub carriers: Vec<CarrierGroundTruth>,
    #[serde(skip)]
    op_index: HashMap<Asn, usize>,
}

impl World {
    /// Generate a world from the configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`WorldConfig::validate`] — a
    /// nonsense config is a programming error, not a runtime condition.
    pub fn generate(config: WorldConfig) -> World {
        World::generate_with(config, &cellobs::Observer::disabled())
    }

    /// [`World::generate`] with observability: each construction step
    /// runs under a span (`worldgen/<step>`), and block/operator counts
    /// land in counters. The world — and therefore every counter — is a
    /// pure function of the config, identical across thread counts.
    ///
    /// # Panics
    /// Panics if the configuration fails [`WorldConfig::validate`], like
    /// [`World::generate`].
    pub fn generate_with(config: WorldConfig, obs: &cellobs::Observer) -> World {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid WorldConfig: {e}"));
        let mut root = obs.span("worldgen");
        let countries = build_countries();
        let operators = {
            let mut span = obs.span("operators");
            let ops = generate_operators(&config, &countries);
            span.set_items(ops.ops.len() as u64);
            ops
        };
        let blocks = {
            let mut span = obs.span("blocks");
            let blocks = generate_blocks(&config, &operators);
            span.set_items(blocks.records.len() as u64);
            blocks
        };
        let as_db = build_as_db(&config, &operators);
        let carriers = if config.with_carriers {
            build_carriers(&operators, &blocks.spans)
        } else {
            Vec::new()
        };
        root.set_items(blocks.records.len() as u64);
        drop(root);
        if obs.is_enabled() {
            obs.counter("worldgen.operators")
                .add(operators.ops.len() as u64);
            obs.counter("worldgen.blocks")
                .add(blocks.records.len() as u64);
            obs.counter("worldgen.carriers").add(carriers.len() as u64);
        }
        let op_index = operators
            .ops
            .iter()
            .enumerate()
            .map(|(i, o)| (o.asn, i))
            .collect();
        World {
            config,
            countries,
            operators,
            as_db,
            blocks,
            carriers,
            op_index,
        }
    }

    /// Look up an operator by ASN in O(1).
    pub fn operator(&self, asn: Asn) -> Option<&OperatorInfo> {
        if self.op_index.len() != self.operators.ops.len() {
            // Deserialized worlds lose the skip-serialized index.
            return self.operators.ops.iter().find(|o| o.asn == asn);
        }
        self.op_index.get(&asn).map(|&i| &self.operators.ops[i])
    }

    /// Rebuild the operator index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.op_index = self
            .operators
            .ops
            .iter()
            .enumerate()
            .map(|(i, o)| (o.asn, i))
            .collect();
    }

    /// Total raw demand weight across all blocks (the quantity the CDN
    /// simulator normalizes to 100,000 DU).
    ///
    /// Summed over fixed-size chunks whose partials are merged in chunk
    /// order, so the (non-associative) float total is identical for any
    /// thread count.
    pub fn total_demand_weight(&self) -> f64 {
        use rayon::prelude::*;
        self.blocks
            .records
            .par_chunks(SUM_CHUNK)
            .map(|chunk| chunk.iter().map(|r| r.demand_weight as f64).sum::<f64>())
            .collect::<Vec<f64>>()
            .iter()
            .sum()
    }

    /// Ground-truth summary counters, used by calibration tests and the
    /// experiment harness for paper-vs-measured reporting.
    pub fn summary(&self) -> WorldSummary {
        use rayon::prelude::*;
        let mut s = WorldSummary {
            operators: self.operators.ops.len(),
            ..WorldSummary::default()
        };
        for op in &self.operators.ops {
            if op.role == OperatorRole::Normal && op.kind.is_cellular_access() {
                s.true_cellular_ases += 1;
                if op.kind == asdb::AsKind::MixedAccess {
                    s.true_mixed_ases += 1;
                }
            }
        }
        // Per-chunk partials accumulated sequentially inside each
        // fixed-size chunk, merged in chunk order: deterministic float
        // sums regardless of thread count.
        let partials: Vec<SummaryPartial> = self
            .blocks
            .records
            .par_chunks(SUM_CHUNK)
            .map(|chunk| {
                let mut p = SummaryPartial::default();
                for r in chunk {
                    let d = r.demand_weight as f64;
                    p.total_demand += d;
                    match r.block {
                        netaddr::BlockId::V4(_) => {
                            p.blocks24 += 1;
                            if r.beacon_weight > 0.0 {
                                p.beacon_blocks24 += 1;
                            }
                            if r.access.is_cellular() {
                                p.cell_blocks24 += 1;
                                p.cell_demand += d;
                            }
                        }
                        netaddr::BlockId::V6(_) => {
                            p.blocks48 += 1;
                            if r.beacon_weight > 0.0 {
                                p.beacon_blocks48 += 1;
                            }
                            if r.access.is_cellular() {
                                p.cell_blocks48 += 1;
                                p.cell_demand += d;
                            }
                        }
                    }
                }
                p
            })
            .collect();
        let mut cell_demand = 0.0f64;
        let mut total_demand = 0.0f64;
        for p in &partials {
            s.blocks24 += p.blocks24;
            s.blocks48 += p.blocks48;
            s.beacon_blocks24 += p.beacon_blocks24;
            s.beacon_blocks48 += p.beacon_blocks48;
            s.cell_blocks24 += p.cell_blocks24;
            s.cell_blocks48 += p.cell_blocks48;
            cell_demand += p.cell_demand;
            total_demand += p.total_demand;
        }
        s.cell_demand_fraction = if total_demand > 0.0 {
            cell_demand / total_demand
        } else {
            0.0
        };
        s
    }
}

/// Chunk size for parallel summary/demand sums. Fixed (never derived from
/// the thread count) so chunk boundaries — and therefore float-summation
/// order — depend only on the data.
const SUM_CHUNK: usize = 8192;

/// Per-chunk accumulator for [`World::summary`].
#[derive(Clone, Copy, Debug, Default)]
struct SummaryPartial {
    blocks24: usize,
    blocks48: usize,
    beacon_blocks24: usize,
    beacon_blocks48: usize,
    cell_blocks24: usize,
    cell_blocks48: usize,
    cell_demand: f64,
    total_demand: f64,
}

/// Ground-truth counters for a generated world.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorldSummary {
    /// Total operators (the platform's AS census).
    pub operators: usize,
    /// Genuine cellular access ASes (dedicated + mixed).
    pub true_cellular_ases: usize,
    /// Mixed ASes among them.
    pub true_mixed_ases: usize,
    /// Active IPv4 /24 blocks.
    pub blocks24: usize,
    /// Active IPv6 /48 blocks.
    pub blocks48: usize,
    /// IPv4 blocks visible to RUM beacons.
    pub beacon_blocks24: usize,
    /// IPv6 blocks visible to RUM beacons.
    pub beacon_blocks48: usize,
    /// Ground-truth cellular IPv4 blocks.
    pub cell_blocks24: usize,
    /// Ground-truth cellular IPv6 blocks.
    pub cell_blocks48: usize,
    /// Ground-truth fraction of demand that is cellular.
    pub cell_demand_fraction: f64,
}

/// The public AS database: every operator surfaces its CAIDA-style class.
/// A fraction of proxy ASes surface as `Unknown` — absent from the
/// classification dataset — which rule 3 filters just the same.
fn build_as_db(cfg: &WorldConfig, ops: &OperatorSet) -> AsDatabase {
    use rand::Rng;
    let mut rng = rng_for(cfg.seed, 0x60_0000);
    let mut db = AsDatabase::new();
    for op in &ops.ops {
        let mut rec = AsRecord::new(op.asn, op.name.clone(), op.country, op.continent, op.kind);
        if op.role == OperatorRole::Proxy && rng.gen::<f64>() < 0.4 {
            rec.class = AsClass::Unknown;
        }
        db.insert(rec);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_world_generates_and_summarizes() {
        let world = World::generate(WorldConfig::mini());
        let s = world.summary();
        assert_eq!(s.operators, world.operators.ops.len());
        assert_eq!(s.true_cellular_ases, 669);
        // Mixed majority (paper: 58.6%).
        let frac = s.true_mixed_ases as f64 / s.true_cellular_ases as f64;
        assert!((0.5..0.7).contains(&frac), "mixed fraction {frac}");
        assert!(s.blocks24 > 5_000, "blocks24 = {}", s.blocks24);
        assert!(s.cell_blocks24 > 300, "cell24 = {}", s.cell_blocks24);
        assert!(s.blocks48 > 0 && s.cell_blocks48 > 0);
        // Ground-truth global cellular demand fraction near the paper's
        // 16.2% (the country table makes ~15-20% the natural landing zone).
        assert!(
            (0.12..0.24).contains(&s.cell_demand_fraction),
            "cellular demand fraction {:.4}",
            s.cell_demand_fraction
        );
        assert_eq!(world.carriers.len(), 3);
    }

    #[test]
    fn operator_lookup_works() {
        let world = World::generate(WorldConfig::mini());
        let asn = world.operators.showcase_mixed;
        assert_eq!(world.operator(asn).unwrap().asn, asn);
        assert!(world.operator(Asn(4_294_000_000)).is_none());
    }

    #[test]
    fn as_db_covers_all_operators_with_some_unknown_proxies() {
        let world = World::generate(WorldConfig::mini());
        assert_eq!(world.as_db.len(), world.operators.ops.len());
        let unknown = world
            .as_db
            .iter()
            .filter(|r| r.class == AsClass::Unknown)
            .count();
        assert!(unknown > 0, "some proxies must surface as Unknown class");
    }

    #[test]
    fn beacon_visibility_is_partial() {
        let world = World::generate(WorldConfig::mini());
        let s = world.summary();
        // Table 2: BEACON sees ~73% of DEMAND /24 blocks.
        let frac = s.beacon_blocks24 as f64 / s.blocks24 as f64;
        assert!(
            (0.55..0.92).contains(&frac),
            "beacon /24 coverage {frac:.3}"
        );
    }
}
