//! World generation configuration and presets.

use serde::{Deserialize, Serialize};

/// Tunable knobs for the synthetic world.
///
/// Two presets matter in practice: [`WorldConfig::paper`] reproduces the
/// study's magnitudes (≈6.8M active IPv4 /24 blocks, ≈350k cellular) and is
/// what the experiment harness runs; [`WorldConfig::demo`] scales block
/// counts down ~50× for examples and integration tests while keeping the
/// AS-level structure (operator counts, mixing, filter-rule victims) at
/// full size so AS-level experiments remain meaningful.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every random quantity derives from it.
    pub seed: u64,
    /// Multiplier on per-AS block counts (1.0 = paper magnitudes).
    pub block_scale: f64,
    /// Multiplier on the *non-candidate* AS population (fixed-only ISPs per
    /// country are never scaled below their structural minimum; this mostly
    /// controls filler content/enterprise ASes).
    pub filler_as_scale: f64,
    /// Total ASes observed by the platform at paper scale (paper: 46,936).
    pub total_ases_target: u64,
    /// Global NetInfo-enabled beacon hit budget for the BEACON month.
    /// The paper reports "several hundreds of millions"; 300M at scale 1.
    /// Scaled presets reduce this proportionally so per-block hit counts
    /// stay realistic.
    pub netinfo_hits_total: f64,
    /// Tiny cellular operators whose whole-AS cellular demand lands below
    /// 0.1 DU — the victims of AS-filter rule 1 (paper: 493).
    pub tiny_cell_ases: u32,
    /// Operators with real demand but almost no RUM visibility (non-web
    /// traffic) — victims of rule 2's < 300-hit threshold (paper: 53).
    pub low_beacon_ases: u32,
    /// Cloud/proxy ASes whose blocks carry cellular NetInfo labels —
    /// victims of rule 3's CAIDA-class filter (paper: 49).
    pub proxy_ases: u32,
    /// Per-operator tethering/hotspot rate range: the probability that a
    /// NetInfo hit from a genuinely cellular block reports `wifi` because
    /// the measuring device sits behind a phone's hotspot (§3.1).
    pub tether_rate_range: (f64, f64),
    /// Probability that a hit from a fixed-line block reports `cellular`
    /// (interface switch between IP capture and API poll — §3.1 calls this
    /// the rarer case).
    pub fixed_cell_noise: f64,
    /// Cellular-label rate range on proxy-front blocks in cloud ASes.
    pub proxy_cell_rate_range: (f64, f64),
    /// Fraction of demand-weighted activity also visible to RUM beacons
    /// (BEACON captures 92% of platform demand; the remaining demand-only
    /// blocks have JS-free clients).
    pub beacon_demand_coverage: f64,
    /// Extra IPv4 blocks present in DEMAND but absent from BEACON at paper
    /// scale (Table 2: 6.8M vs 4.7M).
    pub demand_only_blocks24: u64,
    /// Fraction of IPv6 BEACON blocks that also appear in the one-week
    /// DEMAND snapshot (Table 2: 909K of 1.8M ≈ 0.5; the rest are
    /// ephemeral v6 prefixes seen only across the month).
    pub v6_demand_coverage: f64,
    /// Build the three validation carriers' ground-truth lists.
    pub with_carriers: bool,
    /// Share of global demand routed through IPv6 blocks.
    pub v6_demand_share: f64,
}

impl WorldConfig {
    /// Paper-scale world: ≈6.8M active /24, ≈1.8M /48, 46,936 ASes.
    pub fn paper() -> Self {
        WorldConfig {
            seed: 0xCE11_5B07,
            block_scale: 1.0,
            filler_as_scale: 1.0,
            total_ases_target: 46_936,
            netinfo_hits_total: 300.0e6,
            tiny_cell_ases: 493,
            low_beacon_ases: 53,
            proxy_ases: 49,
            tether_rate_range: (0.04, 0.30),
            fixed_cell_noise: 0.0003,
            proxy_cell_rate_range: (0.55, 0.95),
            beacon_demand_coverage: 0.92,
            demand_only_blocks24: 2_000_000,
            v6_demand_coverage: 0.50,
            with_carriers: true,
            v6_demand_share: 0.07,
        }
    }

    /// Demo-scale world: block counts ÷50, full AS structure. Generates in
    /// well under a second; used by examples and integration tests.
    pub fn demo() -> Self {
        WorldConfig {
            block_scale: 0.02,
            filler_as_scale: 0.02,
            netinfo_hits_total: 6.0e6,
            demand_only_blocks24: 40_000,
            ..Self::paper()
        }
    }

    /// Miniature world for unit tests: block counts ÷500.
    pub fn mini() -> Self {
        WorldConfig {
            block_scale: 0.002,
            filler_as_scale: 0.002,
            netinfo_hits_total: 0.6e6,
            demand_only_blocks24: 4_000,
            tiny_cell_ases: 60,
            low_beacon_ases: 10,
            proxy_ases: 10,
            ..Self::paper()
        }
    }

    /// Override the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the block scale (builder style).
    pub fn with_block_scale(mut self, scale: f64) -> Self {
        self.block_scale = scale;
        self
    }

    /// The beacon-hit threshold for AS-filter rule 2, scaled consistently
    /// with this world's hit budget (paper: 300 hits at a 300M budget).
    pub fn scaled_min_beacon_hits(&self) -> f64 {
        300.0 * (self.netinfo_hits_total / 300.0e6)
    }

    /// Validate knob ranges; generation panics early on nonsense configs.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.block_scale > 0.0 && self.block_scale <= 4.0) {
            return Err(format!("block_scale {} out of (0, 4]", self.block_scale));
        }
        if self.netinfo_hits_total <= 0.0 {
            return Err("netinfo_hits_total must be positive".into());
        }
        for (name, (lo, hi)) in [
            ("tether_rate_range", self.tether_rate_range),
            ("proxy_cell_rate_range", self.proxy_cell_rate_range),
        ] {
            if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                return Err(format!("{name} {:?} is not a sub-range of [0,1]", (lo, hi)));
            }
        }
        if !(0.0..=0.2).contains(&self.fixed_cell_noise) {
            return Err(format!(
                "fixed_cell_noise {} out of [0, 0.2]",
                self.fixed_cell_noise
            ));
        }
        if !(0.0..=1.0).contains(&self.beacon_demand_coverage)
            || !(0.0..=1.0).contains(&self.v6_demand_coverage)
            || !(0.0..=1.0).contains(&self.v6_demand_share)
        {
            return Err("coverage/share knobs must lie in [0,1]".into());
        }
        Ok(())
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self::demo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        WorldConfig::paper().validate().unwrap();
        WorldConfig::demo().validate().unwrap();
        WorldConfig::mini().validate().unwrap();
    }

    #[test]
    fn builders_override() {
        let c = WorldConfig::demo().with_seed(7).with_block_scale(0.5);
        assert_eq!(c.seed, 7);
        assert!((c.block_scale - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_hits_threshold_scales_with_budget() {
        assert!((WorldConfig::paper().scaled_min_beacon_hits() - 300.0).abs() < 1e-9);
        assert!((WorldConfig::demo().scaled_min_beacon_hits() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let mut c = WorldConfig::demo();
        c.block_scale = 0.0;
        assert!(c.validate().is_err());
        let mut c = WorldConfig::demo();
        c.tether_rate_range = (0.5, 0.2);
        assert!(c.validate().is_err());
        let mut c = WorldConfig::demo();
        c.fixed_cell_noise = 0.5;
        assert!(c.validate().is_err());
    }
}
