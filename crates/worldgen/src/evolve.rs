//! Temporal evolution of the world — the paper's §8 future-work
//! direction ("how cellular addresses evolve over time, both in their
//! assignment to cellular end-users, and how demand shifts across
//! cellular address space").
//!
//! [`evolve_blocks`] produces the block set as it would look `month`
//! months after the base snapshot:
//!
//! * **Address churn**: each month a fraction of cellular blocks is
//!   renumbered — its traffic moves to a previously idle block inside the
//!   operator's allocation (CGN pools rotate much faster than fixed
//!   assignments, per the paper's observation that cellular space is
//!   CGN-concentrated).
//! * **Demand drift**: per-operator demand random-walks month over month.
//! * **Cellular growth**: cellular demand compounds relative to fixed
//!   demand, mirroring the era's mobile traffic growth.
//!
//! Evolution is deterministic in `(seed, month)` and months are
//! *cumulative*: month 3 applies three months of churn to the base world.

use serde::{Deserialize, Serialize};

use netaddr::{Block24, BlockId};

use crate::blocks::BlockSet;
use crate::sampling::{lognormal_jitter, rng_for, uniform};
use crate::world::World;

/// Evolution knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Monthly probability that a cellular block is renumbered.
    pub cell_block_churn: f64,
    /// Monthly probability that a fixed block is renumbered.
    pub fixed_block_churn: f64,
    /// Log-normal sigma of the per-operator monthly demand drift.
    pub demand_drift_sigma: f64,
    /// Monthly multiplicative growth of cellular demand (1.04 ≈ the
    /// 40-60%/year mobile growth the era's industry reports describe).
    pub cellular_growth: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            cell_block_churn: 0.08,
            fixed_block_churn: 0.01,
            demand_drift_sigma: 0.10,
            cellular_growth: 1.04,
        }
    }
}

/// The world's blocks `month` months after the base snapshot
/// (`month = 0` returns an identical copy).
pub fn evolve_blocks(world: &World, cfg: &ChurnConfig, month: u32) -> BlockSet {
    let mut out = world.blocks.clone();
    if month == 0 {
        return out;
    }

    // Per-operator demand drift factors, compounded over months. Derive
    // each month's factor from its own stream so that month k is a true
    // prefix of month k+1's history.
    let mut op_factor: std::collections::HashMap<netaddr::Asn, f64> = Default::default();
    for (oi, op) in world.operators.ops.iter().enumerate() {
        let mut f = 1.0;
        for m in 1..=month {
            let mut rng = rng_for(
                world.config.seed ^ 0xE0_0000_0000,
                (m as u64) << 32 | oi as u64,
            );
            f *= lognormal_jitter(&mut rng, cfg.demand_drift_sigma);
        }
        op_factor.insert(op.asn, f);
    }
    let growth = cfg.cellular_growth.powi(month as i32);

    // Span lookup for renumbering targets.
    let span_of: std::collections::HashMap<netaddr::Asn, &crate::blocks::OpSpans> =
        world.blocks.spans.iter().map(|s| (s.asn, s)).collect();

    for (i, r) in out.records.iter_mut().enumerate() {
        let factor = op_factor.get(&r.asn).copied().unwrap_or(1.0);
        let g = if r.access.is_cellular() { growth } else { 1.0 };
        r.demand_weight = (r.demand_weight as f64 * factor * g) as f32;
        r.beacon_weight = (r.beacon_weight as f64 * factor * g) as f32;

        // Renumbering: each record owns a single lifetime draw `u`; it
        // survives through month m iff `u < (1-churn)^m`. This makes the
        // snapshots a coherent time series — a block that survived month
        // m has, by construction, survived every earlier month — so
        // consecutive-month transitions measure exactly one month of
        // churn. The jump destination is likewise fixed per record.
        let churn = if r.access.is_cellular() {
            cfg.cell_block_churn
        } else {
            cfg.fixed_block_churn
        };
        let survive = (1.0 - churn).powi(month as i32);
        let mut rng = rng_for(world.config.seed ^ 0xE1_0000_0000, i as u64);
        if uniform(&mut rng, 0.0, 1.0) >= survive {
            if let (BlockId::V4(_), Some(span)) = (r.block, span_of.get(&r.asn)) {
                let (start, len) = if r.access.is_cellular() {
                    (span.cell24_start, span.cell24_active + span.cell24_extra)
                } else {
                    (span.fixed24_start, span.fixed24_active + span.fixed24_extra)
                };
                if len > 0 {
                    let offset = (uniform(&mut rng, 0.0, 1.0) * len as f64) as u32 % len;
                    r.block = BlockId::V4(Block24::from_index(start + offset));
                }
            }
        }
    }

    // Renumbering can land two records on the same index; keep the
    // higher-demand one per block (the CGN pool that actually uses it).
    out.records.sort_by(|a, b| {
        a.block.cmp(&b.block).then(
            b.demand_weight
                .partial_cmp(&a.demand_weight)
                .expect("weights are finite"),
        )
    });
    out.records.dedup_by_key(|r| r.block);
    out
}

/// A world snapshot for one month: the evolved blocks plus the month id,
/// ready to feed the CDN simulator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MonthSnapshot {
    /// Months since the base world.
    pub month: u32,
    /// Evolved block set.
    pub blocks: BlockSet,
}

/// Evolve a world over `months` months (inclusive of month 0).
pub fn evolve_timeline(world: &World, cfg: &ChurnConfig, months: u32) -> Vec<MonthSnapshot> {
    (0..=months)
        .map(|month| MonthSnapshot {
            month,
            blocks: evolve_blocks(world, cfg, month),
        })
        .collect()
}

/// Swap a world's blocks for an evolved snapshot, producing a world whose
/// datasets the CDN simulator can sample. Cheap at demo scale; clones the
/// block set.
pub fn world_at_month(world: &World, cfg: &ChurnConfig, month: u32) -> World {
    let mut w = world.clone();
    w.blocks = evolve_blocks(world, cfg, month);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn base() -> World {
        World::generate(WorldConfig::mini())
    }

    #[test]
    fn month_zero_is_identity() {
        let world = base();
        let evolved = evolve_blocks(&world, &ChurnConfig::default(), 0);
        assert_eq!(world.blocks.records.len(), evolved.records.len());
        for (a, b) in world.blocks.records.iter().zip(&evolved.records) {
            assert_eq!(a.block, b.block);
            assert_eq!(a.demand_weight, b.demand_weight);
        }
    }

    #[test]
    fn evolution_is_deterministic() {
        let world = base();
        let cfg = ChurnConfig::default();
        let a = evolve_blocks(&world, &cfg, 3);
        let b = evolve_blocks(&world, &cfg, 3);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.block, y.block);
            assert_eq!(x.demand_weight, y.demand_weight);
        }
    }

    #[test]
    fn cellular_blocks_churn_faster_than_fixed() {
        let world = base();
        let cfg = ChurnConfig::default();
        let evolved = evolve_blocks(&world, &cfg, 6);
        let evolved_ids: std::collections::HashSet<BlockId> =
            evolved.records.iter().map(|r| r.block).collect();
        let (mut cell_kept, mut cell_total) = (0usize, 0usize);
        let (mut fixed_kept, mut fixed_total) = (0usize, 0usize);
        for r in &world.blocks.records {
            if !r.block.is_v4() {
                continue;
            }
            if r.access.is_cellular() {
                cell_total += 1;
                cell_kept += usize::from(evolved_ids.contains(&r.block));
            } else {
                fixed_total += 1;
                fixed_kept += usize::from(evolved_ids.contains(&r.block));
            }
        }
        let cell_rate = cell_kept as f64 / cell_total as f64;
        let fixed_rate = fixed_kept as f64 / fixed_total as f64;
        assert!(
            cell_rate < fixed_rate,
            "cellular persistence {cell_rate:.3} should trail fixed {fixed_rate:.3}"
        );
        // Six months at 8%/month → ~60% survival; renumbering-in-place
        // keeps some indexes occupied, so allow a broad band.
        assert!((0.40..0.90).contains(&cell_rate), "cellular {cell_rate:.3}");
        assert!(fixed_rate > 0.90, "fixed {fixed_rate:.3}");
    }

    #[test]
    fn cellular_demand_grows_relative_to_fixed() {
        let world = base();
        let cfg = ChurnConfig {
            demand_drift_sigma: 0.0,
            ..Default::default()
        };
        let evolved = evolve_blocks(&world, &cfg, 12);
        let sum = |blocks: &BlockSet, cellular: bool| -> f64 {
            blocks
                .records
                .iter()
                .filter(|r| r.access.is_cellular() == cellular)
                .map(|r| r.demand_weight as f64)
                .sum()
        };
        let cell_growth = sum(&evolved, true) / sum(&world.blocks, true);
        let fixed_growth = sum(&evolved, false) / sum(&world.blocks, false);
        // 1.04^12 ≈ 1.60 for cellular; fixed only loses a little demand
        // to renumbering dedup.
        assert!(
            (1.3..1.9).contains(&cell_growth),
            "cellular {cell_growth:.3}"
        );
        assert!(
            (0.9..1.1).contains(&fixed_growth),
            "fixed {fixed_growth:.3}"
        );
    }

    #[test]
    fn survival_is_monotone_across_months() {
        // A block still at its original index in month m must also have
        // been there in month m-1 — the snapshots form a coherent
        // time series, not independent redraws.
        let world = base();
        let cfg = ChurnConfig::default();
        let original: std::collections::HashSet<BlockId> =
            world.blocks.records.iter().map(|r| r.block).collect();
        let mut prev_kept: Option<std::collections::HashSet<BlockId>> = None;
        for m in 1..=5 {
            let evolved = evolve_blocks(&world, &cfg, m);
            let kept: std::collections::HashSet<BlockId> = evolved
                .records
                .iter()
                .map(|r| r.block)
                .filter(|b| original.contains(b))
                .collect();
            if let Some(prev) = &prev_kept {
                // Blocks can also be *re-occupied* by a churned record
                // jumping onto an original index; restrict to blocks kept
                // both months and require near-total containment.
                let regressions = kept.difference(prev).count();
                assert!(
                    regressions as f64 <= kept.len() as f64 * 0.02,
                    "month {m}: {regressions} blocks reappeared out of {}",
                    kept.len()
                );
            }
            prev_kept = Some(kept);
        }
    }

    #[test]
    fn no_duplicate_blocks_after_churn() {
        let world = base();
        let evolved = evolve_blocks(&world, &ChurnConfig::default(), 4);
        let mut ids: Vec<BlockId> = evolved.records.iter().map(|r| r.block).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
