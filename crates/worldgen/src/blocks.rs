//! Block-level generation: turns the operator population into concrete
//! /24 and /48 subnet records with ground-truth access types, demand
//! weights, RUM visibility, and latent NetInfo label rates.
//!
//! The demand model inside an operator follows the paper's observations:
//!
//! * **Cellular**: a small CGN tier of /24s carries nearly all demand
//!   (§6.2: 24-25 blocks ≈ 99.3-99.5% in the showcase mixed AS), a long
//!   tail of active-but-idle blocks carries almost nothing, and dedicated
//!   operators additionally expose ratio-0 infrastructure space (Fig. 6a:
//!   ~40% of the dedicated showcase's /24s).
//! * **Fixed**: demand spreads gradually across orders of magnitude more
//!   blocks (Fig. 8's fixed curve).
//! * **Proxies**: connection-terminating proxies inside cellular ASes have
//!   demand but no RUM beacons; proxy-front blocks in cloud ASes have
//!   beacons whose NetInfo labels reflect the *clients'* cellular links.

use asdb::{AccessType, AsKind};
use netaddr::{Asn, Block24, Block48, BlockId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::config::WorldConfig;
use crate::operators::{OperatorInfo, OperatorRole, OperatorSet};
use crate::sampling::{rng_for, uniform, zipf_split, GenRng};

/// What a block is for, in ground truth. Analyses never read this — it
/// exists for the generator and for test oracles.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BlockRole {
    /// Ordinary eyeball space (cellular or fixed).
    Eyeball,
    /// Cellular CGN gateway block: concentrates the operator's demand.
    CgnGateway,
    /// Active cellular block with negligible demand (idle pool).
    IdlePool,
    /// Cellular-side infrastructure: ratio-0, essentially no demand.
    Infra,
    /// Connection-terminating HTTP proxy inside a cellular AS: demand but
    /// no RUM beacons (the paper's "dedicated operator at 0.9 CFD" case).
    TermProxy,
    /// Proxy/VPN front block in a cloud AS: beacons carry the clients'
    /// cellular labels (§5's false positives).
    ProxyFront,
}

/// One active measurement block with its latent ground truth.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SubnetRecord {
    /// The /24 or /48 block.
    pub block: BlockId,
    /// Owning AS.
    pub asn: Asn,
    /// Ground-truth access type of the lines behind this block.
    pub access: AccessType,
    /// Generative role (oracle only).
    pub role: BlockRole,
    /// Raw platform demand weight (global units; the CDN simulator
    /// normalizes the world to 100,000 DU). Zero means the block never
    /// appears in the DEMAND dataset.
    pub demand_weight: f32,
    /// Raw RUM beacon volume weight. Zero means the block never appears in
    /// the BEACON dataset.
    pub beacon_weight: f32,
    /// Latent probability that a NetInfo-enabled hit from this block
    /// reports `cellular`.
    pub cell_rate: f32,
}

/// Address-space allocation for one operator: contiguous index runs for
/// each section. Carrier ground-truth lists are derived from these spans
/// (allocated space includes blocks that never appear in any dataset).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OpSpans {
    /// Owning AS.
    pub asn: Asn,
    /// First /24 index of the cellular run.
    pub cell24_start: u32,
    /// Active cellular /24s (traffic + idle + infra).
    pub cell24_active: u32,
    /// The traffic-bearing prefix of the cellular run (CGN tier plus the
    /// idle tail, excluding terminating proxies and ratio-0 infra). Some
    /// carriers' ground truth covers only this section.
    pub cell24_traffic: u32,
    /// Allocated-but-unobserved cellular /24s following the active run.
    pub cell24_extra: u32,
    /// First /24 index of the fixed run.
    pub fixed24_start: u32,
    /// Active fixed /24s.
    pub fixed24_active: u32,
    /// Allocated-but-unobserved fixed /24s.
    pub fixed24_extra: u32,
    /// First /48 index of the cellular IPv6 run.
    pub cell48_start: u64,
    /// Active cellular /48s.
    pub cell48_active: u64,
    /// First /48 index of the fixed IPv6 run.
    pub fixed48_start: u64,
    /// Active fixed /48s.
    pub fixed48_active: u64,
}

/// Output of block generation.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BlockSet {
    /// All active blocks across the world.
    pub records: Vec<SubnetRecord>,
    /// Per-operator allocation spans (same order as the operator set).
    pub spans: Vec<OpSpans>,
}

/// First /24 index handed out (1.0.0.0; the low space is left unused the
/// way the real v4 space reserves 0/8).
const BASE24: u32 = 0x0001_0000;
/// First /48 index handed out (2001::/16 space).
const BASE48: u64 = 0x2001_0000_0000;

/// Generate all blocks for the operator population.
pub fn generate_blocks(cfg: &WorldConfig, ops: &OperatorSet) -> BlockSet {
    // Phase 1: sequential address allocation.
    let mut cursor24: u32 = BASE24;
    let mut cursor48: u64 = BASE48;
    let mut spans = Vec::with_capacity(ops.ops.len());
    let mut layout_rng = rng_for(cfg.seed, 0x40_0000);

    // Demand-only blocks ride along with fixed space, apportioned by fixed
    // demand share.
    let fixed_demand_total: f64 = ops.ops.iter().map(|o| o.fixed_demand).sum();

    // Pre-compute per-op infra expansion and reserves.
    let mut layouts: Vec<OpLayout> = Vec::with_capacity(ops.ops.len());
    for op in &ops.ops {
        let infra_frac = infra_fraction(&mut layout_rng, op, ops);
        let traffic = op.cell_blocks24;
        let infra = if traffic > 0 {
            ((traffic as f64) * infra_frac / (1.0 - infra_frac)).round() as u64
        } else {
            0
        };
        let demand_only = if fixed_demand_total > 0.0 {
            (cfg.demand_only_blocks24 as f64 * op.fixed_demand / fixed_demand_total).round() as u64
        } else {
            0
        };
        let fixed_reserve = if op.asn == ops.showcase_mixed {
            // Carrier A's ground truth has ~89.6k fixed CIDRs against ~57k
            // active ones.
            (op.fixed_blocks24 as f64 * 0.57).round() as u64
        } else {
            (op.fixed_blocks24 as f64 * 0.10).round() as u64
        };
        layouts.push(OpLayout {
            traffic_cell24: traffic,
            infra_cell24: infra,
            demand_only24: demand_only,
            fixed_reserve24: fixed_reserve,
        });
    }

    for (op, layout) in ops.ops.iter().zip(&layouts) {
        let cell_active = (layout.traffic_cell24 + layout.infra_cell24) as u32;
        let cell_extra = op.cell_alloc_extra24 as u32;
        let fixed_active = (op.fixed_blocks24 + layout.demand_only24) as u32;
        let fixed_extra = layout.fixed_reserve24 as u32;
        let span = OpSpans {
            asn: op.asn,
            cell24_start: cursor24,
            cell24_active: cell_active,
            cell24_traffic: layout.traffic_cell24 as u32,
            cell24_extra: cell_extra,
            fixed24_start: cursor24 + cell_active + cell_extra,
            fixed24_active: fixed_active,
            fixed24_extra: fixed_extra,
            cell48_start: cursor48,
            cell48_active: op.cell_blocks48,
            fixed48_start: cursor48 + op.cell_blocks48,
            fixed48_active: op.fixed_blocks48,
        };
        cursor24 = span.fixed24_start + fixed_active + fixed_extra;
        cursor48 = span.fixed48_start + op.fixed_blocks48;
        assert!(
            cursor24 < 0x00FF_0000,
            "IPv4 /24 space exhausted; lower block_scale"
        );
        spans.push(span);
    }

    // Phase 2: per-operator block records, each from its own RNG stream so
    // the result is independent of iteration strategy.
    //
    // The beacon floor (the trickle of hits idle blocks attract) is
    // expressed in the same weight units as demand, so it must be sized
    // relative to the world's total weight and hit budget: a floor block
    // should land ~3 NetInfo hits whether the world is paper-scale or a
    // 500× reduction.
    let total_weight: f64 = ops.ops.iter().map(|o| o.total_demand()).sum::<f64>() * 1.08;
    let per_block_floor = 3.0 * total_weight / cfg.netinfo_hits_total;
    // Operators are independent — each has its own RNG stream keyed by
    // its position — so phase 2 fans out across threads; per-operator
    // record vectors are concatenated in operator order, making the
    // output bit-identical to a sequential pass for any thread count.
    let per_op: Vec<Vec<SubnetRecord>> = ops
        .ops
        .par_iter()
        .enumerate()
        .map(|(i, op)| {
            let mut rng = rng_for(cfg.seed, 0x50_0000 + i as u64);
            // Some CGN gateways front app-only (JS-free) traffic and never
            // beacon; their demand is real but invisible to classification —
            // the source of the paper's demand-weighted false negatives
            // (Carrier A's demand recall is 0.82, not 1.0). The showcase
            // mixed operator carries a paper-calibrated share of such space.
            // Elsewhere the rate is zero: a dark rank-1 gateway would siphon
            // 15-20% of an operator's cellular demand and silently flip
            // dedicated operators below the 0.9 CFD threshold.
            let dark_cgn_rate = if op.asn == ops.showcase_mixed {
                0.12
            } else {
                0.0
            };
            // Fig. 6a: large dedicated operators' demand concentrates at
            // ratios 0.7-0.9 — their gateway blocks are hotspot-heavy.
            let cgn_hotspot_prob = if op.asn == ops.showcase_dedicated
                || (op.kind == AsKind::DedicatedCellular && op.cell_demand > 3.0)
            {
                0.85
            } else {
                0.25
            };
            let tuning = OpTuning {
                floor_weight: per_block_floor,
                dark_cgn_rate,
                cgn_hotspot_prob,
            };
            let mut out = Vec::new();
            generate_op_blocks(cfg, op, &spans[i], &layouts[i], &tuning, &mut rng, &mut out);
            out
        })
        .collect();
    let mut records = Vec::with_capacity(per_op.iter().map(Vec::len).sum());
    for v in per_op {
        records.extend(v);
    }

    BlockSet { records, spans }
}

struct OpLayout {
    traffic_cell24: u64,
    infra_cell24: u64,
    demand_only24: u64,
    fixed_reserve24: u64,
}

/// Per-operator sampling knobs resolved by `generate_blocks`.
struct OpTuning {
    /// Beacon-weight floor giving idle blocks ~3 NetInfo hits.
    floor_weight: f64,
    /// Share of CGN gateways that are RUM-invisible (demand FNs).
    dark_cgn_rate: f64,
    /// Probability a gateway is hotspot-heavy (ratio 0.65-0.9).
    cgn_hotspot_prob: f64,
}

/// Fraction of an operator's active cellular space that is ratio-0
/// infrastructure. The showcase dedicated operator is pinned at the
/// paper's 40% (Fig. 6a).
fn infra_fraction(rng: &mut GenRng, op: &OperatorInfo, ops: &OperatorSet) -> f64 {
    if op.asn == ops.showcase_dedicated {
        0.40
    } else if op.asn == ops.showcase_mixed {
        // Fig. 6b: the mixed showcase's cellular space is dominated by the
        // idle tail rather than infra.
        0.05
    } else {
        match op.kind {
            // Large dedicated carriers hold big ratio-0 infrastructure
            // pools (Fig. 6a's ~40%); the showcase selection may land on
            // any of the top US operators, so the shape must hold for all
            // of them.
            AsKind::DedicatedCellular if op.cell_demand > 3.0 => uniform(rng, 0.32, 0.45),
            AsKind::DedicatedCellular => uniform(rng, 0.05, 0.45),
            AsKind::MixedAccess => uniform(rng, 0.02, 0.15),
            _ => 0.0,
        }
    }
}

fn generate_op_blocks(
    cfg: &WorldConfig,
    op: &OperatorInfo,
    span: &OpSpans,
    layout: &OpLayout,
    tuning: &OpTuning,
    rng: &mut GenRng,
    out: &mut Vec<SubnetRecord>,
) {
    let beacon_cov = cfg.beacon_demand_coverage * op.beacon_coverage;
    // Per-block beacon floor: active eyeball space attracts a trickle of
    // hits regardless of demand (idle pools still host a few devices).
    let floor = tuning.floor_weight * op.beacon_coverage;

    // ---------------- IPv4 cellular ----------------
    let v4_cell_demand = op.cell_demand * (1.0 - op.v6_demand_frac);
    let n_traffic = layout.traffic_cell24 as usize;
    if n_traffic > 0 && op.role != OperatorRole::Proxy {
        let n_cgn = (op.cgn_blocks as usize).min(n_traffic).max(1);
        let n_tail = n_traffic - n_cgn;
        // Dedicated operators sometimes host terminating proxies that
        // siphon demand into beacon-invisible blocks (§6.1's 0.9-CFD
        // dedicated Asian operator).
        let term_proxy = op.kind == AsKind::DedicatedCellular
            && op.role == OperatorRole::Normal
            && n_traffic >= 20
            && layout.infra_cell24 >= 2
            && uniform(rng, 0.0, 1.0) < 0.06;
        let proxy_demand = if term_proxy {
            v4_cell_demand * uniform(rng, 0.04, 0.10)
        } else {
            0.0
        };
        let eyeball_demand = v4_cell_demand - proxy_demand;

        // With no tail blocks the CGN tier absorbs everything — otherwise
        // the tail share would silently vanish.
        let cgn_demand = if n_tail == 0 {
            eyeball_demand
        } else {
            eyeball_demand * op.cgn_share
        };
        let tail_demand = eyeball_demand - cgn_demand;
        let cgn_shares = zipf_split(rng, cgn_demand, n_cgn, 0.8, 0.3);
        let tail_shares = zipf_split(rng, tail_demand, n_tail, 1.5, 0.6);
        // Deterministic count of dark gateways, taken from the ranks just
        // below the top so the largest gateway always stays RUM-visible
        // and the dark share of demand is roughly scale-independent.
        let n_dark =
            ((tuning.dark_cgn_rate * n_cgn as f64).round() as usize).min(n_cgn.saturating_sub(1));

        for (j, &d) in cgn_shares.iter().chain(tail_shares.iter()).enumerate() {
            let is_cgn = j < n_cgn;
            let role = if is_cgn {
                BlockRole::CgnGateway
            } else if d < eyeball_demand * 1e-6 {
                BlockRole::IdlePool
            } else {
                BlockRole::Eyeball
            };
            // Tethering depresses the cellular label rate. Most CGN
            // gateways stay above 0.9 (Fig. 2: most cellular *demand*
            // sits above ratio 0.9), but a quarter are hotspot-heavy and
            // land in the 0.65-0.9 band — the source of the paper's
            // intermediate-ratio demand mass (6.9% of IPv4 demand) and of
            // Fig. 6a's 0.7-0.9 concentration.
            let cell_rate = match role {
                BlockRole::CgnGateway => {
                    if uniform(rng, 0.0, 1.0) < tuning.cgn_hotspot_prob {
                        1.0 - op.tether_rate * uniform(rng, 0.8, 2.0)
                    } else {
                        1.0 - op.tether_rate * uniform(rng, 0.1, 0.35)
                    }
                }
                BlockRole::Eyeball => 1.0 - op.tether_rate * uniform(rng, 0.3, 0.8),
                _ => 1.0 - op.tether_rate * uniform(rng, 0.05, 0.3),
            }
            .clamp(0.35, 1.0);
            let dark = is_cgn && n_dark > 0 && (1..=n_dark).contains(&j);
            out.push(SubnetRecord {
                block: BlockId::V4(Block24::from_index(span.cell24_start + j as u32)),
                asn: op.asn,
                access: AccessType::Cellular,
                role,
                demand_weight: d as f32,
                beacon_weight: if dark {
                    0.0
                } else {
                    (d * beacon_cov + floor) as f32
                },
                cell_rate: cell_rate as f32,
            });
        }

        // Terminating proxy blocks sit right after the traffic run, inside
        // the cellular span (they are cellular infrastructure addresses,
        // but no radio sits in front of the *proxy's* own traffic).
        if term_proxy {
            let n_proxy = 2usize;
            let shares = zipf_split(rng, proxy_demand, n_proxy, 0.5, 0.2);
            for (j, &d) in shares.iter().enumerate() {
                out.push(SubnetRecord {
                    block: BlockId::V4(Block24::from_index(
                        span.cell24_start + (n_traffic + j) as u32,
                    )),
                    asn: op.asn,
                    access: AccessType::Fixed,
                    role: BlockRole::TermProxy,
                    demand_weight: d as f32,
                    beacon_weight: 0.0,
                    cell_rate: 0.0,
                });
            }
        }

        // Infra blocks: ratio-0 space with a trickle of non-cellular hits.
        let infra_start = n_traffic + if term_proxy { 2 } else { 0 };
        let infra_end = (layout.traffic_cell24 + layout.infra_cell24) as usize;
        for j in infra_start..infra_end {
            out.push(SubnetRecord {
                block: BlockId::V4(Block24::from_index(span.cell24_start + j as u32)),
                asn: op.asn,
                access: AccessType::Cellular,
                role: BlockRole::Infra,
                demand_weight: 1.0e-8,
                // A full beacon floor so nearly every infra block gets a
                // defined (zero) ratio — Fig. 6a plots them at ratio 0.
                beacon_weight: floor as f32,
                cell_rate: 0.0,
            });
        }
    }

    // Proxy-front blocks for cloud ASes: labeled space reflects clients.
    if op.role == OperatorRole::Proxy && layout.traffic_cell24 > 0 {
        let n = layout.traffic_cell24 as usize;
        let shares = zipf_split(rng, op.cell_demand, n, 1.0, 0.4);
        for (j, &d) in shares.iter().enumerate() {
            let rate = (op.proxy_cell_rate * uniform(rng, 0.85, 1.1)).clamp(0.0, 1.0);
            out.push(SubnetRecord {
                block: BlockId::V4(Block24::from_index(span.cell24_start + j as u32)),
                asn: op.asn,
                access: AccessType::Fixed,
                role: BlockRole::ProxyFront,
                demand_weight: d as f32,
                beacon_weight: (d * beacon_cov + floor) as f32,
                cell_rate: rate as f32,
            });
        }
    }

    // ---------------- IPv4 fixed ----------------
    // Fixed-line IPv6 demand share: operators with fixed /48 space carry
    // some demand over it even when their *cellular* side has no IPv6
    // (the common mixed-incumbent case).
    let v6_fixed_frac = if op.fixed_blocks48 > 0 {
        if op.v6_demand_frac > 0.0 {
            op.v6_demand_frac * 0.4
        } else {
            0.08
        }
    } else {
        0.0
    };
    let n_fixed = op.fixed_blocks24 as usize;
    if n_fixed > 0 {
        let v4_fixed_demand = op.fixed_demand * (1.0 - v6_fixed_frac);
        // Gradual spread: much flatter than the cellular tiers (Fig. 8).
        let shares = zipf_split(rng, v4_fixed_demand, n_fixed, 0.85, 0.4);
        for (j, &d) in shares.iter().enumerate() {
            out.push(SubnetRecord {
                block: BlockId::V4(Block24::from_index(span.fixed24_start + j as u32)),
                asn: op.asn,
                access: AccessType::Fixed,
                role: BlockRole::Eyeball,
                demand_weight: d as f32,
                beacon_weight: (d * beacon_cov + floor) as f32,
                cell_rate: cfg.fixed_cell_noise as f32,
            });
        }
    }

    // Demand-only fixed blocks: seen by the platform, invisible to RUM.
    let n_donly = layout.demand_only24 as usize;
    if n_donly > 0 {
        // These carry the demand RUM misses (≈8% of platform demand);
        // apportioned off the operator's fixed demand.
        let donly_total = op.fixed_demand * (1.0 - cfg.beacon_demand_coverage);
        let shares = zipf_split(rng, donly_total, n_donly, 0.9, 0.4);
        for (j, &d) in shares.iter().enumerate() {
            out.push(SubnetRecord {
                block: BlockId::V4(Block24::from_index(
                    span.fixed24_start + (n_fixed + j) as u32,
                )),
                asn: op.asn,
                access: AccessType::Fixed,
                role: BlockRole::Eyeball,
                demand_weight: d as f32,
                beacon_weight: 0.0,
                cell_rate: 0.0,
            });
        }
    }

    // ---------------- IPv6 ----------------
    let n_cell48 = op.cell_blocks48 as usize;
    if n_cell48 > 0 {
        let v6_demand = op.cell_demand * op.v6_demand_frac;
        let n_cgn = ((n_cell48 as f64).sqrt().round() as usize)
            .clamp(1, 12)
            .min(n_cell48);
        let cgn = v6_demand * 0.97;
        let mut shares = zipf_split(rng, cgn, n_cgn, 0.8, 0.3);
        shares.extend(zipf_split(rng, v6_demand - cgn, n_cell48 - n_cgn, 1.4, 0.5));
        for (j, &d) in shares.iter().enumerate() {
            let in_demand = uniform(rng, 0.0, 1.0) < cfg.v6_demand_coverage || d > v6_demand * 0.01;
            let cell_rate = (1.0 - op.tether_rate * uniform(rng, 0.6, 1.4)).clamp(0.35, 1.0);
            out.push(SubnetRecord {
                block: BlockId::V6(Block48::from_index(span.cell48_start + j as u64)),
                asn: op.asn,
                access: AccessType::Cellular,
                role: if j < n_cgn {
                    BlockRole::CgnGateway
                } else {
                    BlockRole::IdlePool
                },
                demand_weight: if in_demand { d as f32 } else { 0.0 },
                beacon_weight: (d * beacon_cov + floor) as f32,
                cell_rate: cell_rate as f32,
            });
        }
    }

    let n_fixed48 = op.fixed_blocks48 as usize;
    if n_fixed48 > 0 {
        let v6_fixed = op.fixed_demand * v6_fixed_frac;
        let shares = zipf_split(rng, v6_fixed, n_fixed48, 0.9, 0.4);
        for (j, &d) in shares.iter().enumerate() {
            let in_demand = uniform(rng, 0.0, 1.0) < cfg.v6_demand_coverage || d > v6_fixed * 0.01;
            out.push(SubnetRecord {
                block: BlockId::V6(Block48::from_index(span.fixed48_start + j as u64)),
                asn: op.asn,
                access: AccessType::Fixed,
                role: BlockRole::Eyeball,
                demand_weight: if in_demand { d as f32 } else { 0.0 },
                beacon_weight: (d * beacon_cov + floor) as f32,
                cell_rate: cfg.fixed_cell_noise as f32,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countries::build_countries;
    use crate::operators::generate_operators;

    fn mini_blocks() -> (OperatorSet, BlockSet) {
        let cfg = WorldConfig::mini();
        let ops = generate_operators(&cfg, &build_countries());
        let blocks = generate_blocks(&cfg, &ops);
        (ops, blocks)
    }

    #[test]
    fn spans_do_not_overlap_and_cover_records() {
        let (_, bs) = mini_blocks();
        let mut spans = bs.spans.clone();
        spans.sort_by_key(|s| s.cell24_start);
        for w in spans.windows(2) {
            let end = w[0].fixed24_start + w[0].fixed24_active + w[0].fixed24_extra;
            assert!(
                end <= w[1].cell24_start,
                "overlapping /24 spans: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        // Every v4 record lands inside its operator's span.
        let by_asn: std::collections::HashMap<_, _> = bs.spans.iter().map(|s| (s.asn, s)).collect();
        for r in &bs.records {
            if let BlockId::V4(b) = r.block {
                let s = by_asn[&r.asn];
                let idx = b.index();
                let in_cell = idx >= s.cell24_start && idx < s.cell24_start + s.cell24_active;
                let in_fixed = idx >= s.fixed24_start && idx < s.fixed24_start + s.fixed24_active;
                assert!(in_cell || in_fixed, "record {r:?} outside spans {s:?}");
            }
        }
    }

    #[test]
    fn block_ids_are_unique() {
        let (_, bs) = mini_blocks();
        let mut ids: Vec<BlockId> = bs.records.iter().map(|r| r.block).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate block generated");
    }

    #[test]
    fn demand_is_preserved_per_operator() {
        let (ops, bs) = mini_blocks();
        let mut by_asn: std::collections::HashMap<Asn, f64> = Default::default();
        for r in &bs.records {
            // Use beacon-invisible demand too: compare on demand_weight
            // for blocks that are in DEMAND plus the v6 out-of-window cut.
            *by_asn.entry(r.asn).or_default() += r.demand_weight as f64;
        }
        for op in &ops.ops {
            let got = by_asn.get(&op.asn).copied().unwrap_or(0.0);
            let expect = op.total_demand();
            // The v6 demand-window cut and demand-only apportioning allow
            // some slack; v4-only operators should land close.
            if expect > 1e-6 && op.cell_blocks48 == 0 && op.fixed_blocks48 == 0 {
                let lo = expect * 0.9;
                let hi = expect * 1.15;
                assert!(
                    (lo..hi).contains(&got),
                    "{}: demand {got} vs expected {expect}",
                    op.asn
                );
            }
        }
    }

    #[test]
    fn cellular_blocks_have_high_cell_rates() {
        let (_, bs) = mini_blocks();
        let mut cgn_rates = Vec::new();
        let mut fixed_rates = Vec::new();
        for r in &bs.records {
            match (r.access, r.role) {
                (AccessType::Cellular, BlockRole::CgnGateway) => cgn_rates.push(r.cell_rate),
                (AccessType::Fixed, BlockRole::Eyeball) => fixed_rates.push(r.cell_rate),
                _ => {}
            }
        }
        assert!(!cgn_rates.is_empty() && !fixed_rates.is_empty());
        let cgn_mean: f32 = cgn_rates.iter().sum::<f32>() / cgn_rates.len() as f32;
        let fixed_max = fixed_rates.iter().cloned().fold(0.0f32, f32::max);
        assert!(cgn_mean > 0.6, "CGN mean cell rate {cgn_mean}");
        assert!(
            fixed_max <= 0.01,
            "fixed blocks must almost never label cellular (max {fixed_max})"
        );
    }

    #[test]
    fn showcase_dedicated_has_infra_share() {
        let (ops, bs) = mini_blocks();
        let recs: Vec<_> = bs
            .records
            .iter()
            .filter(|r| r.asn == ops.showcase_dedicated && r.block.is_v4())
            .collect();
        let infra = recs.iter().filter(|r| r.role == BlockRole::Infra).count();
        let frac = infra as f64 / recs.len() as f64;
        assert!(
            (0.30..0.50).contains(&frac),
            "Fig 6a pins ~40% infra; got {frac:.3} of {}",
            recs.len()
        );
    }

    #[test]
    fn showcase_mixed_cgn_concentration() {
        let (ops, bs) = mini_blocks();
        let mut cell: Vec<f64> = bs
            .records
            .iter()
            .filter(|r| {
                r.asn == ops.showcase_mixed && r.access == AccessType::Cellular && r.block.is_v4()
            })
            .map(|r| r.demand_weight as f64)
            .collect();
        cell.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = cell.iter().sum();
        let cgn = ops.get(ops.showcase_mixed).unwrap().cgn_blocks as usize;
        let top: f64 = cell.iter().take(cgn).sum();
        assert!(
            top / total > 0.97,
            "CGN tier should hold ≈99.4% of cellular demand; got {:.4}",
            top / total
        );
    }

    #[test]
    fn proxy_blocks_are_fixed_access_with_cellular_labels() {
        let (ops, bs) = mini_blocks();
        let proxy_asns: std::collections::HashSet<Asn> = ops
            .ops
            .iter()
            .filter(|o| o.role == OperatorRole::Proxy)
            .map(|o| o.asn)
            .collect();
        let fronts: Vec<_> = bs
            .records
            .iter()
            .filter(|r| proxy_asns.contains(&r.asn) && r.role == BlockRole::ProxyFront)
            .collect();
        assert!(!fronts.is_empty());
        for r in &fronts {
            assert_eq!(r.access, AccessType::Fixed);
            assert!(r.cell_rate > 0.4, "proxy front rate {}", r.cell_rate);
        }
    }

    #[test]
    fn demand_only_blocks_have_no_beacon_weight() {
        let (_, bs) = mini_blocks();
        let demand_only = bs
            .records
            .iter()
            .filter(|r| r.beacon_weight == 0.0 && r.demand_weight > 0.0)
            .count();
        assert!(demand_only > 0, "demand-only blocks must exist (Table 2)");
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = mini_blocks();
        let (_, b) = mini_blocks();
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.block, y.block);
            assert_eq!(x.demand_weight, y.demand_weight);
            assert_eq!(x.cell_rate, y.cell_rate);
        }
    }
}
