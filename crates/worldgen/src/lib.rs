//! # worldgen — synthetic global-Internet ground truth
//!
//! The Cell Spotting study measured the real Internet through Akamai's
//! platform; that vantage point is proprietary, so this crate generates a
//! synthetic world with the same *structure*: countries calibrated to the
//! paper's demand anchors (Fig. 11/12, Table 8), operator populations with
//! the paper's dedicated/mixed split and AS-filter victims (§5), per-block
//! demand with CGN concentration (§6.2), RUM visibility gaps (Table 2),
//! and latent NetInfo label rates encoding the tethering/interface-switch
//! noise the paper documents (§3.1).
//!
//! The output [`World`] is pure ground truth. The `cdnsim` crate samples
//! the observable datasets (BEACON, DEMAND) from it; the `cellspot` crate
//! then runs the paper's actual methodology over those observations and
//! is scored against this ground truth.
//!
//! ```
//! use worldgen::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig::mini().with_seed(7));
//! let s = world.summary();
//! assert!(s.cell_blocks24 > 0);
//! assert_eq!(s.true_cellular_ases, 669);
//! ```

mod blocks;
mod carriers;
mod config;
mod countries;
mod evolve;
mod operators;
pub mod sampling;
mod world;

pub use blocks::{BlockRole, BlockSet, OpSpans, SubnetRecord};
pub use carriers::build_carriers;
pub use config::WorldConfig;
pub use countries::{
    build_countries, continent_targets, default_public_dns, ContinentTargets, CountryAnchor,
    CountrySpec, CONTINENT_TARGETS, NAMED_COUNTRIES,
};
pub use evolve::{evolve_blocks, evolve_timeline, world_at_month, ChurnConfig, MonthSnapshot};
pub use operators::{generate_operators, OperatorInfo, OperatorRole, OperatorSet};
pub use world::{World, WorldSummary};
