//! Deterministic samplers and seed plumbing.
//!
//! Every random quantity in the synthetic world flows from a single `u64`
//! master seed through [`split_seed`], so generation is reproducible and —
//! because each AS/block derives its own stream — independent of iteration
//! order and thread scheduling.

use rand::distributions::Distribution;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG used throughout generation. ChaCha8 is deterministic across
/// platforms and fast enough that it never dominates generation time.
pub type GenRng = ChaCha8Rng;

/// Derive a child seed from `(parent, stream)` with SplitMix64 finalization.
///
/// The mixing constants come from the reference SplitMix64 (Vigna); the
/// point is avalanche behaviour, so consecutive stream ids yield unrelated
/// child seeds.
pub fn split_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG seeded from `(parent, stream)`.
pub fn rng_for(parent: u64, stream: u64) -> GenRng {
    GenRng::seed_from_u64(split_seed(parent, stream))
}

/// Zipf weights `i^-alpha` for ranks `1..=n`, normalized to sum to 1.
///
/// `alpha = 0` gives a uniform split; large `alpha` concentrates all mass
/// in the first ranks. Returns an empty vector for `n == 0`.
pub fn zipf_weights(n: usize, alpha: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut w: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-alpha)).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// Split a total into `n` shares that follow Zipf weights with mild
/// multiplicative jitter, preserving the exact total.
pub fn zipf_split(rng: &mut GenRng, total: f64, n: usize, alpha: f64, jitter: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut shares: Vec<f64> = zipf_weights(n, alpha)
        .into_iter()
        .map(|w| w * lognormal_jitter(rng, jitter))
        .collect();
    let sum: f64 = shares.iter().sum();
    for s in &mut shares {
        *s = *s / sum * total;
    }
    shares
}

/// A multiplicative jitter factor: `exp(N(0, sigma))`. `sigma = 0` returns
/// exactly 1.
pub fn lognormal_jitter(rng: &mut GenRng, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let z: f64 = standard_normal(rng);
    (sigma * z).exp()
}

/// Standard normal via Box–Muller (we avoid the `rand_distr` dependency —
/// only a handful of distributions are needed and they are tiny).
pub fn standard_normal(rng: &mut GenRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Sample from a Poisson distribution.
///
/// Knuth's method below `lambda = 30`, normal approximation (clamped at
/// zero) above — the large-lambda case only feeds aggregate hit counts
/// where ±1 precision is irrelevant.
pub fn poisson(rng: &mut GenRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            // Guard against pathological f64 behaviour; lambda < 30 makes
            // k > 400 astronomically unlikely.
            if k > 4000 {
                return k;
            }
        }
    } else {
        let z = standard_normal(rng);
        let v = lambda + lambda.sqrt() * z;
        if v < 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

/// Sample from Binomial(n, p).
///
/// Exact Bernoulli summation for small `n`, normal approximation for large
/// `n` (the aggregate-mode beacon generator draws millions of these).
pub fn binomial(rng: &mut GenRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    if n <= 64 || var < 25.0 {
        let mut k = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        k
    } else {
        let z = standard_normal(rng);
        let v = (mean + var.sqrt() * z).round();
        v.clamp(0.0, n as f64) as u64
    }
}

/// Weighted index selection over non-negative weights; returns `None` when
/// all weights are zero or the slice is empty.
pub fn weighted_choice(rng: &mut GenRng, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return Some(i);
        }
    }
    Some(weights.len() - 1)
}

/// A Pareto (power-law tail) sample with minimum `xmin` and shape `alpha`.
pub fn pareto(rng: &mut GenRng, xmin: f64, alpha: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    xmin / u.powf(1.0 / alpha)
}

/// Uniform sample helper re-exported to keep call sites on one RNG type.
pub fn uniform(rng: &mut GenRng, lo: f64, hi: f64) -> f64 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

/// Sample an integer count proportional to `expected`, randomizing the
/// fractional part so that expectation is preserved (used when scaling
/// block counts by a world-scale factor: `expected = 3.4` yields 3 or 4).
pub fn stochastic_round(rng: &mut GenRng, expected: f64) -> u64 {
    if expected <= 0.0 {
        return 0;
    }
    let base = expected.floor();
    let frac = expected - base;
    base as u64 + u64::from(rng.gen::<f64>() < frac)
}

/// Dirichlet-like share split: `n` positive shares summing to 1, with
/// concentration controlled by `sigma` (log-normal weights, normalized).
pub fn share_split(rng: &mut GenRng, n: usize, sigma: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut w: Vec<f64> = (0..n).map(|_| lognormal_jitter(rng, sigma)).collect();
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x /= sum;
    }
    w
}

/// `Distribution`-style adapter so call sites can use `sample_iter` where
/// convenient.
pub struct ZipfRanks {
    cumulative: Vec<f64>,
}

impl ZipfRanks {
    /// Build a sampler over ranks `0..n` with Zipf(alpha) probabilities.
    pub fn new(n: usize, alpha: f64) -> Self {
        let w = zipf_weights(n, alpha);
        let mut cumulative = Vec::with_capacity(w.len());
        let mut acc = 0.0;
        for x in w {
            acc += x;
            cumulative.push(acc);
        }
        ZipfRanks { cumulative }
    }
}

impl Distribution<usize> for ZipfRanks {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len().saturating_sub(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> GenRng {
        rng_for(42, 0)
    }

    #[test]
    fn split_seed_avalanches() {
        let a = split_seed(1, 0);
        let b = split_seed(1, 1);
        let c = split_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(split_seed(1, 0), a);
    }

    #[test]
    fn zipf_weights_normalized_and_decreasing() {
        let w = zipf_weights(100, 1.2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(zipf_weights(0, 1.0).is_empty());
        // alpha = 0 is uniform.
        let u = zipf_weights(4, 0.0);
        for x in u {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_split_preserves_total() {
        let mut r = rng();
        let shares = zipf_split(&mut r, 1000.0, 17, 1.1, 0.3);
        assert_eq!(shares.len(), 17);
        assert!((shares.iter().sum::<f64>() - 1000.0).abs() < 1e-6);
        assert!(shares.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = rng();
        for lambda in [0.5, 5.0, 80.0] {
            let n = 4000;
            let total: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda={lambda}, mean={mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -3.0), 0);
    }

    #[test]
    fn binomial_bounds_and_mean() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
        for (n, p) in [(40u64, 0.3), (10_000u64, 0.7)] {
            let trials = 300;
            let mut total = 0u64;
            for _ in 0..trials {
                let k = binomial(&mut r, n, p);
                assert!(k <= n);
                total += k;
            }
            let mean = total as f64 / trials as f64;
            let expect = n as f64 * p;
            assert!(
                (mean - expect).abs() < expect * 0.08,
                "n={n} p={p} mean={mean}"
            );
        }
    }

    #[test]
    fn weighted_choice_respects_zeros() {
        let mut r = rng();
        assert_eq!(weighted_choice(&mut r, &[]), None);
        assert_eq!(weighted_choice(&mut r, &[0.0, 0.0]), None);
        for _ in 0..100 {
            assert_eq!(weighted_choice(&mut r, &[0.0, 1.0, 0.0]), Some(1));
        }
    }

    #[test]
    fn stochastic_round_expectation() {
        let mut r = rng();
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| stochastic_round(&mut r, 2.25)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 2.25).abs() < 0.05, "mean={mean}");
        assert_eq!(stochastic_round(&mut r, 0.0), 0);
        assert_eq!(stochastic_round(&mut r, 5.0), 5);
    }

    #[test]
    fn share_split_sums_to_one() {
        let mut r = rng();
        let s = share_split(&mut r, 12, 0.8);
        assert_eq!(s.len(), 12);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = rng_for(7, 3);
        let mut b = rng_for(7, 3);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn zipf_ranks_prefers_low_ranks() {
        let dist = ZipfRanks::new(50, 1.5);
        let mut r = rng();
        let mut counts = [0usize; 50];
        for _ in 0..5000 {
            counts[dist.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49]);
    }
}
