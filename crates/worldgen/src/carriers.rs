//! Validation-carrier ground truth.
//!
//! The paper validates its classifier against labeled prefix lists from
//! three operators (§4.2): Carrier A, a large mixed European provider;
//! Carrier B, a large dedicated US MNO; and Carrier C, a large mixed
//! Middle-East MNO. We derive equivalent lists from the generated world:
//! each carrier's ground truth is the *allocated* address space of its
//! designated operator — including blocks that never appear in any
//! dataset, which is exactly what produces the paper's large
//! false-negative counts for Carrier A (inactive cellular space cannot be
//! detected from beacons).

use asdb::{AccessType, CarrierGroundTruth, GroundTruthEntry};
use netaddr::Block24;

use crate::blocks::OpSpans;
use crate::operators::OperatorSet;

/// Build the three validation carriers from the generated allocations.
pub fn build_carriers(ops: &OperatorSet, spans: &[OpSpans]) -> Vec<CarrierGroundTruth> {
    let span_of = |asn| {
        spans
            .iter()
            .find(|s| s.asn == asn)
            .expect("every operator has an allocation span")
    };
    vec![
        // Carriers A and C handed over their *full* address plan —
        // including allocated-but-idle cellular space, which becomes the
        // paper's false negatives. Carrier B's list covers only the
        // subnets actively assigned to cellular customers, which is why
        // its Table 3 recall is near-perfect.
        carrier_from_span("Carrier A", span_of(ops.showcase_mixed), true, false),
        carrier_from_span("Carrier B", span_of(ops.showcase_dedicated), false, true),
        carrier_from_span("Carrier C", span_of(ops.carrier_c), true, false),
    ]
}

/// Ground truth for one operator: the allocated cellular run labeled
/// cellular (optionally restricted to the traffic-bearing section), and
/// (for mixed operators) the full fixed run labeled fixed. Runs are
/// expressed as minimal CIDR covers, mirroring the mixed-length lists
/// real operators provide.
fn carrier_from_span(
    name: &str,
    span: &OpSpans,
    include_fixed: bool,
    traffic_only: bool,
) -> CarrierGroundTruth {
    let mut entries = Vec::new();
    let cell_total = if traffic_only {
        span.cell24_traffic
    } else {
        span.cell24_active + span.cell24_extra
    };
    for net in Block24::cover(Block24::from_index(span.cell24_start), cell_total) {
        entries.push(GroundTruthEntry::V4(net, AccessType::Cellular));
    }
    if include_fixed {
        let fixed_total = span.fixed24_active + span.fixed24_extra;
        for net in Block24::cover(Block24::from_index(span.fixed24_start), fixed_total) {
            entries.push(GroundTruthEntry::V4(net, AccessType::Fixed));
        }
    }
    CarrierGroundTruth::new(name, vec![span.asn], entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::generate_blocks;
    use crate::config::WorldConfig;
    use crate::countries::build_countries;
    use crate::operators::generate_operators;

    #[test]
    fn carriers_cover_their_allocations() {
        let cfg = WorldConfig::mini();
        let ops = generate_operators(&cfg, &build_countries());
        let blocks = generate_blocks(&cfg, &ops);
        let carriers = build_carriers(&ops, &blocks.spans);
        assert_eq!(carriers.len(), 3);
        assert_eq!(carriers[0].name, "Carrier A");

        // Carrier B (dedicated) has no fixed entries; A and C have both.
        let count_by = |c: &CarrierGroundTruth, a: AccessType| {
            c.entries.iter().filter(|e| e.access() == a).count()
        };
        assert_eq!(count_by(&carriers[1], AccessType::Fixed), 0);
        assert!(count_by(&carriers[0], AccessType::Fixed) > 0);
        assert!(count_by(&carriers[0], AccessType::Cellular) > 0);
        assert!(count_by(&carriers[2], AccessType::Fixed) > 0);

        // Block enumeration matches allocated sizes.
        let span = blocks
            .spans
            .iter()
            .find(|s| s.asn == ops.showcase_mixed)
            .unwrap();
        let (cell, fixed) = carriers[0].count_blocks24();
        assert_eq!(cell as u32, span.cell24_active + span.cell24_extra);
        assert_eq!(fixed as u32, span.fixed24_active + span.fixed24_extra);

        // Carrier A: inactive (extra) cellular space dominates the list —
        // the source of the paper's false negatives.
        assert!(span.cell24_extra > span.cell24_active * 2);

        // Every active cellular block of the showcase AS labels cellular.
        for r in blocks
            .records
            .iter()
            .filter(|r| r.asn == ops.showcase_mixed && r.block.is_v4())
        {
            let b = r.block.as_v4().unwrap();
            let label = carriers[0].label_block24(b).expect("block inside GT");
            let idx = b.index();
            let in_cell = idx < span.cell24_start + span.cell24_active + span.cell24_extra
                && idx >= span.cell24_start;
            assert_eq!(label == AccessType::Cellular, in_cell);
        }
    }
}
