//! Pins the compatibility contract behind the `query_mix` → cellload
//! migration: the `steady` preset must reproduce the historical ad-hoc
//! generator **byte for byte**, so every BENCH_lookup / BENCH_serve
//! trajectory point measured before the migration stays comparable
//! with every point measured after it.

use bench::{build_bundle, config_for_scale, query_mix};
use cellload::{Preset, TraceSpec, Universe};
use cellserve::IpKey;
use cellspot::Classification;
use netaddr::BlockId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A verbatim copy of the pre-cellload `bench::query_mix`
/// implementation, kept here as the frozen reference stream.
fn legacy_query_mix(class: &Classification, lookups: usize, seed: u64) -> Vec<IpKey> {
    let mut v4_blocks = Vec::new();
    let mut v6_blocks = Vec::new();
    for (block, _) in class.iter() {
        match block {
            BlockId::V4(b) => v4_blocks.push(b),
            BlockId::V6(b) => v6_blocks.push(b),
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB37C_5E11);
    let mut queries = Vec::with_capacity(lookups);
    for _ in 0..lookups {
        let roll: f64 = rng.gen();
        if roll < 0.55 && !v4_blocks.is_empty() {
            let b = v4_blocks[rng.gen_range(0..v4_blocks.len())];
            queries.push(IpKey::V4(b.addr(rng.gen())));
        } else if roll < 0.70 && !v6_blocks.is_empty() {
            let b = v6_blocks[rng.gen_range(0..v6_blocks.len())];
            queries.push(IpKey::V6(b.addr(rng.gen(), rng.gen())));
        } else if roll < 0.85 {
            // TEST-NET-1: never generated, guaranteed miss.
            queries.push(IpKey::V4(0xC000_0200 | rng.gen_range(0u32..256)));
        } else {
            queries.push(IpKey::V4(rng.gen()));
        }
    }
    queries
}

#[test]
fn steady_preset_reproduces_the_legacy_query_mix_byte_for_byte() {
    let bundle = build_bundle(config_for_scale("mini").expect("mini scale"));
    let class = &bundle.study.classification;
    assert!(!class.is_empty(), "mini world classifies some blocks");
    for seed in [0, 7, 0xDEAD_BEEF] {
        let legacy = legacy_query_mix(class, 20_000, seed);
        // The shim itself...
        assert_eq!(query_mix(class, 20_000, seed), legacy, "seed {seed}");
        // ...and the preset API it delegates to.
        let spec = TraceSpec {
            preset: Preset::Steady,
            seed,
            queries: 20_000,
            epochs: 1,
        };
        let universe = Universe::from_classification(class);
        let trace = spec.generate(std::slice::from_ref(&universe));
        assert_eq!(trace.segments.len(), 1);
        assert_eq!(trace.segments[0].queries, legacy, "seed {seed}");
    }
}
