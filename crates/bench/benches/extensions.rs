//! Benchmarks for the extension analyses: design-choice ablations,
//! confidence-aware classification, and temporal evolution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bench::build_bundle;
use cellspot::{
    asn_level_ablation, classify_with_confidence, granularity_sweep, rule_ablation, AsnStrategy,
    FilterConfig,
};
use worldgen::{evolve_blocks, ChurnConfig, WorldConfig};

fn bench_extensions(c: &mut Criterion) {
    let bundle = build_bundle(WorldConfig::mini());
    let study = &bundle.study;

    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);

    g.bench_function("asn_level_ablation", |b| {
        b.iter(|| {
            black_box(asn_level_ablation(
                &study.index,
                &study.classification,
                &study.as_aggregates,
                AsnStrategy::MajorityDemand,
            ))
        })
    });

    g.bench_function("granularity_sweep", |b| {
        b.iter(|| black_box(granularity_sweep(&study.index, &study.classification)))
    });

    g.bench_function("rule_ablation", |b| {
        b.iter(|| {
            black_box(rule_ablation(
                &study.as_aggregates,
                &bundle.world.as_db,
                &FilterConfig {
                    min_cell_du: study.config.min_cell_du,
                    min_netinfo_hits: study.config.min_netinfo_hits,
                },
            ))
        })
    });

    g.bench_function("confidence_classification", |b| {
        b.iter(|| black_box(classify_with_confidence(&study.index, 0.5, 1.96)))
    });

    g.bench_function("evolve_one_month", |b| {
        let churn = ChurnConfig::default();
        b.iter(|| black_box(evolve_blocks(&bundle.world, &churn, 1)))
    });

    g.bench_function("evolve_six_months", |b| {
        let churn = ChurnConfig::default();
        b.iter(|| black_box(evolve_blocks(&bundle.world, &churn, 6)))
    });
    g.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
