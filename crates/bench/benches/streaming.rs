//! Streaming-vs-batch ingest: wall-clock of folding the epoch-sliced
//! event stream against one-shot batch generation, plus the engine's
//! peak live-state footprint (printed once per run — the point of the
//! streaming path is bounded memory, not raw speed, so both numbers
//! matter).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cdnsim::{generate_datasets, CdnConfig, EventSource};
use cellstream::{IngestEngine, ResolverMap, StreamConfig};
use worldgen::{World, WorldConfig};

fn stream_world(world: &World, shards: u32, epochs: u32) -> (usize, u64) {
    let source = EventSource::new(world, CdnConfig::default(), epochs);
    let mut engine = IngestEngine::for_source(
        StreamConfig {
            shards,
            ..Default::default()
        },
        &source,
        ResolverMap::empty(),
    );
    let mut peak = 0usize;
    while !engine.finished() {
        engine.ingest_epoch(&source);
        peak = peak.max(engine.state_bytes());
    }
    let events = engine.events_seen();
    black_box(engine.finalize());
    (peak, events)
}

fn bench_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming");
    g.sample_size(10);

    let mini = World::generate(WorldConfig::mini());
    let demo = World::generate(WorldConfig::demo());

    // The batch baseline the stream is tested equivalent to.
    g.bench_function("batch_mini", |b| {
        b.iter(|| black_box(generate_datasets(&mini)))
    });
    g.bench_function("batch_demo", |b| {
        b.iter(|| black_box(generate_datasets(&demo)))
    });

    for (label, shards, epochs) in [
        ("stream_mini_1shard_4epochs", 1u32, 4u32),
        ("stream_mini_8shards_4epochs", 8, 4),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(stream_world(&mini, shards, epochs)))
        });
    }
    g.bench_function("stream_demo_8shards_8epochs", |b| {
        b.iter(|| black_box(stream_world(&demo, 8, 8)))
    });

    // One-off state report: peak live bytes vs the materialized batch.
    let (peak, events) = stream_world(&demo, 8, 8);
    let (beacons, demand) = generate_datasets(&demo);
    eprintln!(
        "streaming demo (8 shards, 8 epochs): {events} events, peak state {} KiB; \
         batch materializes {} beacon + {} demand records",
        peak / 1024,
        beacons.len(),
        demand.len()
    );
    g.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
