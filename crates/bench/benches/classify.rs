//! Classification-core benchmarks: the BEACON ⨝ DEMAND join, threshold
//! classification, and the Fig. 2 ratio distributions, on a demo-scale
//! world (~170k blocks).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cdnsim::generate_datasets;
use cellspot::{BlockIndex, Classification, RatioDistributions};
use worldgen::{World, WorldConfig};

fn bench_classify(c: &mut Criterion) {
    let world = World::generate(WorldConfig::demo());
    let (beacons, demand) = generate_datasets(&world);
    let index = BlockIndex::build(&beacons, &demand);
    let blocks = index.len() as u64;

    let mut g = c.benchmark_group("classify");
    g.sample_size(10);
    g.throughput(Throughput::Elements(blocks));

    g.bench_function("join_beacon_demand", |b| {
        b.iter(|| black_box(BlockIndex::build(&beacons, &demand)))
    });
    g.bench_function("threshold_classification", |b| {
        b.iter(|| black_box(Classification::new(&index, 0.5)))
    });
    g.bench_function("ratio_distributions_fig2", |b| {
        b.iter(|| black_box(RatioDistributions::build(&index)))
    });

    let class = Classification::new(&index, 0.5);
    g.bench_function("membership_lookups", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for o in index.iter() {
                if class.is_cellular(o.block) {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
