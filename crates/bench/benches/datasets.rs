//! Substrate benchmarks: world generation and dataset sampling at mini
//! and demo scales.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cdnsim::{generate_beacons, generate_demand, CdnConfig};
use worldgen::{World, WorldConfig};

fn bench_datasets(c: &mut Criterion) {
    let mut g = c.benchmark_group("datasets");
    g.sample_size(10);

    g.bench_function("worldgen_mini", |b| {
        b.iter(|| black_box(World::generate(WorldConfig::mini())))
    });
    g.bench_function("worldgen_demo", |b| {
        b.iter(|| black_box(World::generate(WorldConfig::demo())))
    });

    let world = World::generate(WorldConfig::demo());
    let cfg = CdnConfig::default();
    g.bench_function("beacon_sampling_demo", |b| {
        b.iter(|| black_box(generate_beacons(&world, &cfg)))
    });
    g.bench_function("demand_sampling_demo", |b| {
        b.iter(|| black_box(generate_demand(&world, &cfg)))
    });

    let mini = World::generate(WorldConfig::mini());
    g.bench_function("event_simulation_mini", |b| {
        let ecfg = cdnsim::EventSimConfig {
            page_loads: 50_000,
            ..Default::default()
        };
        b.iter(|| black_box(cdnsim::simulate_events(&mini, &ecfg)))
    });

    g.bench_function("dns_generation_mini", |b| {
        b.iter(|| black_box(dnssim::generate_dns(&mini)))
    });
    g.finish();
}

criterion_group!(benches, bench_datasets);
criterion_main!(benches);
