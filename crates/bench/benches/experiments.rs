//! Per-experiment regeneration benchmarks: one Criterion bench per table
//! and figure of the paper, measuring how long each artifact takes to
//! rebuild from a finished study.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bench::build_bundle;
use report::experiments as e;
use worldgen::WorldConfig;

fn bench_experiments(c: &mut Criterion) {
    let bundle = build_bundle(WorldConfig::mini());
    let study = &bundle.study;
    let db = &bundle.world.as_db;
    let dns = &bundle.dns;

    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    g.bench_function("table1_related_work", |b| {
        b.iter(|| black_box(e::table1_related_work()))
    });
    g.bench_function("table2_datasets", |b| {
        b.iter(|| black_box(e::table2_datasets(study)))
    });
    g.bench_function("fig1_netinfo_adoption", |b| {
        b.iter(|| black_box(e::fig1_netinfo_adoption()))
    });
    g.bench_function("fig2_ratio_cdfs", |b| {
        b.iter(|| black_box(e::fig2_ratio_cdfs(study)))
    });
    g.bench_function("fig3_threshold_sweeps", |b| {
        b.iter(|| black_box(e::fig3_threshold_sweeps(study)))
    });
    g.bench_function("table3_validation", |b| {
        b.iter(|| black_box(e::table3_validation(study)))
    });
    g.bench_function("table4_subnets", |b| {
        b.iter(|| black_box(e::table4_subnets(study)))
    });
    g.bench_function("fig4_as_distributions", |b| {
        b.iter(|| black_box(e::fig4_as_distributions(study)))
    });
    g.bench_function("table5_filters", |b| {
        b.iter(|| black_box(e::table5_filters(study)))
    });
    g.bench_function("table6_cellular_ases", |b| {
        b.iter(|| black_box(e::table6_cellular_ases(study, db)))
    });
    g.bench_function("fig5_mixed_cdfs", |b| {
        b.iter(|| black_box(e::fig5_mixed_cdfs(study)))
    });
    g.bench_function("fig6_showcases", |b| {
        b.iter(|| black_box(e::fig6_showcases(study, db)))
    });
    g.bench_function("fig7_ranked_demand", |b| {
        b.iter(|| black_box(e::fig7_ranked_demand(study)))
    });
    g.bench_function("table7_top10", |b| {
        b.iter(|| black_box(e::table7_top10(study)))
    });
    g.bench_function("fig8_subnet_demand", |b| {
        b.iter(|| black_box(e::fig8_subnet_demand(study, db)))
    });
    g.bench_function("fig9_resolver_sharing", |b| {
        b.iter(|| black_box(e::fig9_resolver_sharing(study, dns)))
    });
    g.bench_function("fig10_public_dns", |b| {
        b.iter(|| black_box(e::fig10_public_dns(study, dns, db)))
    });
    g.bench_function("table8_continent_demand", |b| {
        b.iter(|| black_box(e::table8_continent_demand(study)))
    });
    g.bench_function("fig11_top_countries", |b| {
        b.iter(|| black_box(e::fig11_top_countries(study)))
    });
    g.bench_function("fig12_country_scatter", |b| {
        b.iter(|| black_box(e::fig12_country_scatter(study)))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
