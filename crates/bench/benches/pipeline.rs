//! End-to-end pipeline benchmarks: the full §4–§7 study over generated
//! datasets, plus the heavier individual stages.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cdnsim::generate_datasets;
use cellspot::{
    aggregate_by_as, identify_cellular_ases, threshold_sweep, BlockIndex, Classification,
    FilterConfig, Pipeline, StudyConfig, WorldView,
};
use worldgen::{World, WorldConfig};

fn bench_pipeline(c: &mut Criterion) {
    let wcfg = WorldConfig::mini();
    let min_hits = wcfg.scaled_min_beacon_hits();
    let world = World::generate(wcfg);
    let (beacons, demand) = generate_datasets(&world);
    let dns = dnssim::generate_dns(&world);
    let index = BlockIndex::build(&beacons, &demand);
    let class = Classification::new(&index, 0.5);

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    g.bench_function("full_study_mini", |b| {
        b.iter(|| {
            black_box(
                Pipeline::new(&beacons, &demand)
                    .as_db(&world.as_db)
                    .carriers(&world.carriers)
                    .dns(&dns)
                    .study_config(StudyConfig::default().with_min_hits(min_hits))
                    .run()
                    .expect("default study config is valid"),
            )
        })
    });

    g.bench_function("as_aggregation", |b| {
        b.iter(|| black_box(aggregate_by_as(&index, &class)))
    });

    let aggs = aggregate_by_as(&index, &class);
    g.bench_function("as_filter_rules", |b| {
        b.iter(|| {
            black_box(identify_cellular_ases(
                &aggs,
                &world.as_db,
                &FilterConfig {
                    min_cell_du: 0.1,
                    min_netinfo_hits: min_hits,
                },
            ))
        })
    });

    g.bench_function("threshold_sweep_carrier_a", |b| {
        b.iter(|| black_box(threshold_sweep(&world.carriers[0], &index, 50)))
    });

    g.bench_function("world_view_rollup", |b| {
        b.iter(|| black_box(WorldView::build(&index, &class, &world.as_db)))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
