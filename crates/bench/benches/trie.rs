//! Prefix-trie microbenchmarks: insertion and longest-prefix match, the
//! primitive behind carrier ground-truth joins.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netaddr::{Ipv4Net, PrefixTrie};
use rand::{Rng, SeedableRng};

fn build_trie(n: usize) -> PrefixTrie<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut trie = PrefixTrie::new();
    for i in 0..n {
        let addr: u32 = rng.gen();
        let len = rng.gen_range(8..=24);
        let net = Ipv4Net::new(addr, len).expect("len ≤ 32");
        trie.insert(net, i as u32);
    }
    trie
}

fn bench_trie(c: &mut Criterion) {
    let mut g = c.benchmark_group("trie");
    g.sample_size(20);

    g.bench_function("insert_100k_prefixes", |b| {
        b.iter(|| black_box(build_trie(100_000)))
    });

    let trie = build_trie(100_000);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let keys: Vec<u32> = (0..10_000).map(|_| rng.gen()).collect();
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("lpm_10k_lookups", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in &keys {
                if trie.lookup_v4(*k).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_trie);
criterion_main!(benches);
