//! Shared setup for the `repro` harness and the Criterion benches: build
//! a world, sample its datasets, and run the full study in one call.
//! The serving workloads themselves live in `cellload`; [`query_mix`]
//! is kept as a thin shim over its `steady` preset.

use cdnsim::{generate_datasets_observed, BeaconDataset, DemandDataset};
use cellload::Universe;
use cellobs::Observer;
use cellserve::IpKey;
use cellspot::{Classification, Pipeline, Study, StudyConfig, TimingReport};
use dnssim::DnsSim;
use worldgen::{World, WorldConfig};

/// Everything a harness needs, bundled.
pub struct Bundle {
    /// The generated ground-truth world.
    pub world: World,
    /// Sampled BEACON dataset.
    pub beacons: BeaconDataset,
    /// Sampled DEMAND dataset.
    pub demand: DemandDataset,
    /// Generated DNS substrate.
    pub dns: DnsSim,
    /// The full study output.
    pub study: Study,
    /// Wall-clock for the setup stages (world generation, dataset
    /// sampling, DNS substrate); the study's own stage timings live in
    /// `study.timing`.
    pub timing: TimingReport,
}

/// Generate world + datasets + DNS and run the full study, timing each
/// setup stage along the way.
pub fn build_bundle(config: WorldConfig) -> Bundle {
    build_bundle_with(config, &Observer::disabled())
}

/// [`build_bundle`] with an observer: world generation, dataset
/// sampling, and every study stage report spans and counters into `obs`
/// (a disabled observer records nothing at near-zero cost).
pub fn build_bundle_with(config: WorldConfig, obs: &Observer) -> Bundle {
    let mut timing = TimingReport::new();
    let min_hits = config.scaled_min_beacon_hits();
    let world = timing.stage(
        "worldgen",
        |w: &World| w.blocks.records.len() as u64,
        || World::generate_with(config, obs),
    );
    let (beacons, demand) = timing.stage(
        "datasets",
        |(b, d): &(BeaconDataset, DemandDataset)| (b.len() + d.len()) as u64,
        || generate_datasets_observed(&world, obs),
    );
    let dns = timing.stage(
        "dns",
        |d: &DnsSim| d.resolvers.len() as u64,
        || dnssim::generate_dns(&world),
    );
    let study = Pipeline::new(&beacons, &demand)
        .as_db(&world.as_db)
        .carriers(&world.carriers)
        .dns(&dns)
        .study_config(StudyConfig::default().with_min_hits(min_hits))
        .observer(obs.clone())
        .run()
        .expect("the default study config is valid")
        .into_study();
    Bundle {
        world,
        beacons,
        demand,
        dns,
        study,
        timing,
    }
}

/// Resolve a scale argument (`mini`, `demo`, `paper`, or a float block
/// scale) into a world config.
pub fn config_for_scale(scale: &str) -> Result<WorldConfig, String> {
    match scale {
        "mini" => Ok(WorldConfig::mini()),
        "demo" => Ok(WorldConfig::demo()),
        "paper" => Ok(WorldConfig::paper()),
        other => {
            let s: f64 = other
                .parse()
                .map_err(|_| format!("unknown scale {other:?} (use mini|demo|paper|<float>)"))?;
            if !(s > 0.0 && s <= 4.0) {
                return Err(format!("scale {s} out of (0, 4]"));
            }
            let mut cfg = WorldConfig::paper();
            cfg.block_scale = s;
            cfg.filler_as_scale = s.min(1.0);
            cfg.netinfo_hits_total = 300.0e6 * s;
            cfg.demand_only_blocks24 = (2_000_000.0 * s) as u64;
            Ok(cfg)
        }
    }
}

/// The historical serving-benchmark query mix: ~70% addresses inside
/// classified cellular blocks and ~30% TEST-NET / random misses, from
/// a single seeded RNG stream. Now a shim over `cellload`'s `steady`
/// preset, which reproduces this stream byte for byte (pinned by
/// `tests/steady_mix.rs`) so pre-cellload BENCH trajectory points stay
/// comparable. New callers should build a [`cellload::TraceSpec`]
/// instead.
pub fn query_mix(class: &Classification, lookups: usize, seed: u64) -> Vec<IpKey> {
    cellload::steady_queries(&Universe::from_classification(class), lookups, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert!(config_for_scale("mini").is_ok());
        assert!(config_for_scale("demo").is_ok());
        assert!(config_for_scale("paper").is_ok());
        let c = config_for_scale("0.1").unwrap();
        assert!((c.block_scale - 0.1).abs() < 1e-12);
        assert!((c.netinfo_hits_total - 30.0e6).abs() < 1.0);
        assert!(config_for_scale("nope").is_err());
        assert!(config_for_scale("9.5").is_err());
        assert!(config_for_scale("-1").is_err());
    }

    #[test]
    fn bundle_builds_at_mini_scale() {
        let b = build_bundle(WorldConfig::mini());
        assert!(b.study.classification.len() > 100);
        assert!(!b.beacons.is_empty());
        assert!(!b.demand.is_empty());
        // The shared benchmark query mix replays byte-identically for a
        // fixed seed, and differs for another.
        let a = query_mix(&b.study.classification, 500, 7);
        assert_eq!(a, query_mix(&b.study.classification, 500, 7));
        assert_ne!(a, query_mix(&b.study.classification, 500, 8));
    }
}
