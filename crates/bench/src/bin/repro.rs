//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale mini|demo|paper|<float>] [--seed N] [--out DIR] [ids…]
//! ```
//!
//! Without ids, all 25 artifacts are produced (the paper's 20 tables and
//! figures plus five extension experiments). Each artifact is printed
//! and written to `DIR/<id>.txt` and `DIR/<id>.csv`; a `summary.txt`
//! collects every headline note (measured vs. paper).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use bench::{build_bundle, config_for_scale};

fn main() {
    let mut scale = "demo".to_string();
    let mut seed: Option<u64> = None;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().unwrap_or_else(|| usage("missing --scale value")),
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                seed = Some(v.parse().unwrap_or_else(|_| usage("bad --seed value")));
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage("missing --out value")))
            }
            "--help" | "-h" => usage(""),
            id => ids.push(id.to_string()),
        }
    }

    let mut config = config_for_scale(&scale).unwrap_or_else(|e| usage(&e));
    if let Some(s) = seed {
        config.seed = s;
    }

    eprintln!(
        "generating world (block_scale {:.3}, seed {:#x}) …",
        config.block_scale, config.seed
    );
    let t0 = Instant::now();
    let bundle = build_bundle(config);
    eprintln!(
        "world: {} operators, {} blocks; BEACON {} blocks, DEMAND {} blocks ({:.1}s)",
        bundle.world.operators.ops.len(),
        bundle.world.blocks.records.len(),
        bundle.beacons.len(),
        bundle.demand.len(),
        t0.elapsed().as_secs_f64()
    );

    let mut artifacts = report::all_artifacts(&bundle.study, &bundle.world.as_db, &bundle.dns);
    artifacts.extend(report::ablation_artifacts(&bundle.study, &bundle.world.as_db));
    artifacts.push(temporal_artifact(&bundle));
    fs::create_dir_all(&out_dir).expect("create output directory");

    let mut summary = String::new();
    summary.push_str(&format!(
        "Cell Spotting reproduction — scale {scale}, seed {:#x}\n\n",
        bundle.world.config.seed
    ));
    let mut produced = 0;
    for a in &artifacts {
        if !ids.is_empty() && !ids.iter().any(|i| i == a.id) {
            continue;
        }
        let text = a.render();
        println!("{text}");
        fs::write(out_dir.join(format!("{}.txt", a.id)), &text).expect("write artifact text");
        fs::write(out_dir.join(format!("{}.csv", a.id)), a.to_csv()).expect("write artifact csv");
        summary.push_str(&format!("== {} — {} ==\n", a.id, a.title));
        for n in &a.notes {
            summary.push_str(&format!("  - {n}\n"));
        }
        summary.push('\n');
        produced += 1;
    }
    fs::write(out_dir.join("summary.txt"), &summary).expect("write summary");
    eprintln!(
        "wrote {produced} artifacts to {} in {:.1}s total",
        out_dir.display(),
        t0.elapsed().as_secs_f64()
    );
    if produced == 0 {
        usage("no artifact ids matched; valid ids are table1..table8, fig1..fig12");
    }
}

/// The §8 future-work extension: evolve the world over six months,
/// re-measure and re-classify each month, and analyze the stability of
/// the cellular set.
fn temporal_artifact(bundle: &bench::Bundle) -> report::Artifact {
    let churn = worldgen::ChurnConfig::default();
    let months: Vec<(cellspot::Classification, cellspot::BlockIndex)> = (0..=6)
        .map(|m| {
            let w = worldgen::world_at_month(&bundle.world, &churn, m);
            let (beacons, demand) = cdnsim::generate_datasets(&w);
            let index = cellspot::BlockIndex::build(&beacons, &demand);
            let class = cellspot::Classification::with_default_threshold(&index);
            (class, index)
        })
        .collect();
    let analysis = cellspot::TemporalAnalysis::build(&months);
    report::experiments::ext_temporal(&analysis)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale mini|demo|paper|<float>] [--seed N] [--out DIR] [ids…]\n\
         ids: table1 table2 table3 table4 table5 table6 table7 table8\n\
              fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12\n\
              ext-asn-level ext-granularity ext-rules ext-confidence ext-temporal"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
