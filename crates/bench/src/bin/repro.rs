//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale mini|demo|paper|<float>] [--seed N] [--threads N]
//!       [--out DIR] [--metrics FILE [--metrics-format json|prometheus]]
//!       [ids…]
//! ```
//!
//! Without ids, all 25 artifacts are produced (the paper's 20 tables and
//! figures plus five extension experiments). Each artifact is printed
//! and written to `DIR/<id>.txt` and `DIR/<id>.csv`; a `summary.txt`
//! collects every headline note (measured vs. paper), and
//! `DIR/timings.json` records per-stage wall-clock and item counts.
//!
//! `--metrics FILE` additionally exports the full observability snapshot
//! — spans, counters, gauges, histograms — in canonical JSON (default)
//! or Prometheus text format.
//!
//! `--threads N` (or the `CELLSPOT_THREADS` environment variable) pins
//! the rayon pool for reproducible benchmarking; every result is
//! byte-identical regardless of the thread count.

use std::fs;
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Instant;

use bench::{build_bundle_with, config_for_scale};
use cellobs::{ExportFormat, Observer};

fn main() {
    let mut scale = "demo".to_string();
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut out_dir = PathBuf::from("results");
    let mut metrics: Option<PathBuf> = None;
    let mut metrics_format = ExportFormat::Json;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                seed = Some(v.parse().unwrap_or_else(|_| usage("bad --seed value")));
            }
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --threads value"));
                threads = Some(v.parse().unwrap_or_else(|_| usage("bad --threads value")));
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage("missing --out value")))
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("missing --metrics value")),
                ))
            }
            "--metrics-format" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --metrics-format value"));
                metrics_format = ExportFormat::from_str(&v).unwrap_or_else(|e| usage(&e));
            }
            "--help" | "-h" => usage(""),
            id => ids.push(id.to_string()),
        }
    }

    // Shared precedence: --threads beats CELLSPOT_THREADS beats auto.
    let choice = cellspot::resolve_threads(threads);
    if let Some(n) = cellspot::configure_threads(choice) {
        eprintln!(
            "rayon pool pinned to {n} thread(s) (from {})",
            choice.source()
        );
    }

    let mut config = config_for_scale(&scale).unwrap_or_else(|e| usage(&e));
    if let Some(s) = seed {
        config.seed = s;
    }

    let obs = if metrics.is_some() {
        Observer::enabled()
    } else {
        Observer::disabled()
    };

    eprintln!(
        "generating world (block_scale {:.3}, seed {:#x}) …",
        config.block_scale, config.seed
    );
    let t0 = Instant::now();
    let bundle = build_bundle_with(config, &obs);
    eprintln!(
        "world: {} operators, {} blocks; BEACON {} blocks, DEMAND {} blocks ({:.1}s)",
        bundle.world.operators.ops.len(),
        bundle.world.blocks.records.len(),
        bundle.beacons.len(),
        bundle.demand.len(),
        t0.elapsed().as_secs_f64()
    );

    let t_artifacts = Instant::now();
    let mut artifacts = report::all_artifacts(&bundle.study, &bundle.world.as_db, &bundle.dns);
    artifacts.extend(report::ablation_artifacts(
        &bundle.study,
        &bundle.world.as_db,
    ));
    artifacts.push(temporal_artifact(&bundle));
    let artifact_millis = t_artifacts.elapsed().as_secs_f64() * 1e3;
    fs::create_dir_all(&out_dir).expect("create output directory");

    // Per-stage timings: setup stages from the bundle, study stages from
    // the pipeline, artifact rendering measured here.
    let mut timings = bundle.timing.clone();
    timings.extend(&bundle.study.timing);
    timings.push("artifacts", artifact_millis, artifacts.len() as u64);
    fs::write(
        out_dir.join("timings.json"),
        serde_json::to_string_pretty(&timings).expect("serialize timings"),
    )
    .expect("write timings.json");

    let mut summary = String::new();
    summary.push_str(&format!(
        "Cell Spotting reproduction — scale {scale}, seed {:#x}\n\n",
        bundle.world.config.seed
    ));
    let mut produced = 0;
    for a in &artifacts {
        if !ids.is_empty() && !ids.iter().any(|i| i == a.id) {
            continue;
        }
        let text = a.render();
        println!("{text}");
        fs::write(out_dir.join(format!("{}.txt", a.id)), &text).expect("write artifact text");
        fs::write(out_dir.join(format!("{}.csv", a.id)), a.to_csv()).expect("write artifact csv");
        summary.push_str(&format!("== {} — {} ==\n", a.id, a.title));
        for n in &a.notes {
            summary.push_str(&format!("  - {n}\n"));
        }
        summary.push('\n');
        produced += 1;
    }
    fs::write(out_dir.join("summary.txt"), &summary).expect("write summary");
    if let Some(path) = &metrics {
        fs::write(path, metrics_format.render(&obs.snapshot())).expect("write metrics export");
        eprintln!("metrics ({metrics_format}) → {}", path.display());
    }
    eprintln!(
        "wrote {produced} artifacts to {} in {:.1}s total",
        out_dir.display(),
        t0.elapsed().as_secs_f64()
    );
    if produced == 0 {
        usage("no artifact ids matched; valid ids are table1..table8, fig1..fig12");
    }
}

/// The §8 future-work extension: evolve the world over six months,
/// re-measure and re-classify each month, and analyze the stability of
/// the cellular set.
fn temporal_artifact(bundle: &bench::Bundle) -> report::Artifact {
    use rayon::prelude::*;
    let churn = worldgen::ChurnConfig::default();
    // Months are independent (each derives deterministically from the
    // base world and its month index), so they re-measure in parallel
    // and collect in month order.
    let month_ids: Vec<u32> = (0..=6).collect();
    let months: Vec<(cellspot::Classification, cellspot::BlockIndex)> = month_ids
        .par_iter()
        .map(|&m| {
            let w = worldgen::world_at_month(&bundle.world, &churn, m);
            let (beacons, demand) = cdnsim::generate_datasets(&w);
            let index = cellspot::BlockIndex::build(&beacons, &demand);
            let class = cellspot::Classification::with_default_threshold(&index);
            (class, index)
        })
        .collect();
    let analysis = cellspot::TemporalAnalysis::build(&months);
    report::experiments::ext_temporal(&analysis)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale mini|demo|paper|<float>] [--seed N] [--threads N] [--out DIR]\n\
         \x20            [--metrics FILE [--metrics-format json|prometheus]] [ids…]\n\
         ids: table1 table2 table3 table4 table5 table6 table7 table8\n\
              fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12\n\
              ext-asn-level ext-granularity ext-rules ext-confidence ext-temporal"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
