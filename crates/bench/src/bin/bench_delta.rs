//! `bench_delta` — incremental refresh vs full rebuild, summarized as
//! `BENCH_delta.json`.
//!
//! ```text
//! bench_delta [--seed N] [--epochs N] [--blocks N] [--ases N]
//!             [--churn-per-mille N] [--out FILE]
//! ```
//!
//! Runs a seeded [`celldelta::ChurnWorld`] for `--epochs` epochs and
//! measures, per epoch, the three costs that matter to a label-refresh
//! deployment:
//!
//! * `full_rebuild` — classify every block from scratch and seal the
//!   full `CELLSERV` artifact (what `cellspot index build` does);
//! * `delta_build` — the memoized incremental classification plus
//!   sealing only the changed labels as a `CELLDELT` delta (what
//!   `cellspot delta build` / `stream --emit-deltas` do);
//! * `delta_apply` — patching the previous artifact with that delta
//!   (what the serving daemon's `--delta-watch` does).
//!
//! Every epoch also asserts `apply(base, delta)` is byte-identical to
//! the full rebuild, so a bench run doubles as an end-to-end soundness
//! check. The record carries wall-clock totals, the byte sizes of
//! deltas vs full artifacts, and the memoization hit/miss counts.
//!
//! CI's bench-smoke step runs this at the demo preset and validates the
//! keys.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use celldelta::{apply_delta, build_delta, classify_epoch, ChurnWorld, IncrementalClassifier};
use cellobs::Observer;
use cellspot::DEFAULT_THRESHOLD;

/// Seal an index in the v2 format — the default the delta chain runs on.
fn seal(index: &cellserve::FrozenIndex) -> Vec<u8> {
    cellserve::Artifact::encode(index, cellserve::ArtifactFormat::V2)
}

fn main() {
    let mut world = ChurnWorld::demo(42);
    let mut epochs: u64 = 8;
    let mut out = PathBuf::from("BENCH_delta.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .unwrap_or_else(|| usage(&format!("missing {name} value")))
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad {name} value")))
        };
        match arg.as_str() {
            "--seed" => world.seed = num("--seed"),
            "--epochs" => epochs = num("--epochs"),
            "--blocks" => {
                // Keep the demo world's 5:1 v4:v6 split at any size.
                let n = num("--blocks").clamp(6, u32::MAX as u64) as u32;
                world.v4_blocks = n - n / 6;
                world.v6_blocks = n / 6;
            }
            "--ases" => world.ases = num("--ases").clamp(1, u32::MAX as u64) as u32,
            "--churn-per-mille" => {
                world.churn_per_mille = num("--churn-per-mille").clamp(1, 1000) as u32
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage("missing --out value")))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if epochs < 2 {
        usage("--epochs must be at least 2 (epoch 1 is the base)");
    }

    eprintln!(
        "churn world: {} blocks over {} ASes, {}‰ churn/epoch, seed {:#x}, {epochs} epochs …",
        world.total_blocks(),
        world.ases,
        world.churn_per_mille,
        world.seed
    );

    let obs = Observer::enabled();
    let mut incremental = IncrementalClassifier::new(DEFAULT_THRESHOLD, obs.clone());

    // Epoch 1 is the base generation: both paths start from the same
    // sealed artifact, unmeasured.
    let base_counters = world.epoch_counters(1);
    let mut live = seal(&incremental.classify(&base_counters));
    assert_eq!(
        live,
        seal(&classify_epoch(&base_counters, DEFAULT_THRESHOLD)),
        "incremental and one-shot classification must agree on the base epoch"
    );
    let mut live_epoch = 1u64;

    let mut full_time = Duration::ZERO;
    let mut build_time = Duration::ZERO;
    let mut apply_time = Duration::ZERO;
    let mut full_bytes = 0u64;
    let mut delta_bytes = 0u64;
    let mut delta_ops = 0u64;

    for epoch in 2..=epochs {
        let counters = world.epoch_counters(epoch);

        let t = Instant::now();
        let full = seal(&classify_epoch(&counters, DEFAULT_THRESHOLD));
        full_time += t.elapsed();

        let t = Instant::now();
        let target = seal(&incremental.classify(&counters));
        let delta = build_delta(&live, &target, live_epoch, epoch)
            .expect("consecutive epochs produce a valid delta");
        build_time += t.elapsed();

        let t = Instant::now();
        let patched = apply_delta(&live, &delta).expect("a fresh delta applies to its base");
        apply_time += t.elapsed();

        assert_eq!(
            patched, full,
            "epoch {epoch}: apply(base, delta) must equal the full rebuild byte for byte"
        );
        full_bytes += full.len() as u64;
        delta_bytes += delta.len() as u64;
        delta_ops += celldelta::Delta::from_bytes(&delta)
            .expect("sealed delta re-parses")
            .op_count() as u64;
        live = patched;
        live_epoch = epoch;
    }

    let snapshot = obs.snapshot();
    let memo_hits = snapshot
        .counters
        .get("delta.memo.hits")
        .copied()
        .unwrap_or(0);
    let memo_misses = snapshot
        .counters
        .get("delta.memo.misses")
        .copied()
        .unwrap_or(0);
    let measured = epochs - 1;
    let ratio = delta_bytes as f64 / full_bytes.max(1) as f64;
    let speedup = full_time.as_secs_f64() / (build_time + apply_time).as_secs_f64().max(1e-9);

    let record = serde_json::json!({
        "seed": world.seed,
        "epochs": epochs,
        "blocks": world.total_blocks(),
        "ases": world.ases,
        "churn_per_mille": world.churn_per_mille,
        "full_rebuild_millis": full_time.as_secs_f64() * 1e3,
        "delta_build_millis": build_time.as_secs_f64() * 1e3,
        "delta_apply_millis": apply_time.as_secs_f64() * 1e3,
        "speedup_vs_full": speedup,
        "full_bytes_total": full_bytes,
        "delta_bytes_total": delta_bytes,
        "delta_ops_total": delta_ops,
        "delta_size_ratio": ratio,
        "memo": { "hits": memo_hits, "misses": memo_misses },
        "byte_identical_epochs": measured,
    });
    fs::write(
        &out,
        serde_json::to_string_pretty(&record).expect("serialize benchmark record"),
    )
    .expect("write benchmark record");
    eprintln!(
        "{measured} epoch(s): deltas {delta_bytes} B vs full {full_bytes} B ({:.1}%), \
         {speedup:.1}x vs rebuild, memo {memo_hits}/{} reused → {}",
        ratio * 100.0,
        memo_hits + memo_misses,
        out.display()
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: bench_delta [--seed N] [--epochs N] [--blocks N] [--ases N]\n\
         \x20                  [--churn-per-mille N] [--out FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
