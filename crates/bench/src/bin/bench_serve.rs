//! `bench_serve` — daemon serving throughput over the framed TCP
//! protocol, summarized as `BENCH_serve.json`.
//!
//! ```text
//! bench_serve [--scale mini|demo|paper|<float>] [--seed N] [--lookups N]
//!             [--preset steady|diurnal|flashcrowd|scan]
//!             [--clients N] [--batch N] [--workers N] [--out FILE]
//! ```
//!
//! Builds a world, classifies it, freezes the classification, and boots
//! an in-process [`cellserved::Daemon`] on an ephemeral TCP port. A
//! seeded `cellload` preset trace (default `steady` — the same stream
//! `bench_lookup` replays in-process) is driven through
//! [`cellload::replay_framed`]: N closed-loop clients, each sending
//! `--batch` queries per framed request, so the measurement covers the
//! full serving path: framing, the coalescing batch queue, and the
//! chunked query engine. The record carries:
//!
//! * `wall_millis`, `requests_per_sec`, `lookups_per_sec` — closed-loop
//!   client throughput;
//! * `latency_ns` — engine-side p50/p99/p999 from the `serve.lookup.ns`
//!   histogram (per-lookup samples, bucket upper bounds);
//! * `batch_fill_p50` — how full coalesced batches ran;
//! * `keepalive` — TCP connections opened, frames served on a reused
//!   connection, and the resulting requests-per-connection ratio, so
//!   connection churn regressions show up in the record;
//! * `stats` — matched count plus the daemon-side lookup total, which
//!   must equal the client-side query count (asserted every run).
//!
//! CI's bench-smoke step runs this at mini scale and validates the keys.

use std::fs;
use std::path::PathBuf;

use bench::config_for_scale;
use cellload::{replay_framed, Preset, ReplayConfig, TraceSpec, Universe};
use cellobs::Observer;
use cellserve::FrozenIndex;
use cellserved::{Daemon, ServeConfig};
use cellspot::Pipeline;

fn main() {
    let mut scale = "mini".to_string();
    let mut seed: Option<u64> = None;
    let mut lookups: usize = 200_000;
    let mut clients: usize = 4;
    let mut batch: usize = 64;
    let mut workers: usize = 2;
    let mut preset = Preset::Steady;
    let mut out = PathBuf::from("BENCH_serve.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                seed = Some(v.parse().unwrap_or_else(|_| usage("bad --seed value")));
            }
            "--lookups" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --lookups value"));
                lookups = v.parse().unwrap_or_else(|_| usage("bad --lookups value"));
            }
            "--clients" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --clients value"));
                clients = v.parse().unwrap_or_else(|_| usage("bad --clients value"));
            }
            "--batch" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --batch value"));
                batch = v.parse().unwrap_or_else(|_| usage("bad --batch value"));
            }
            "--workers" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --workers value"));
                workers = v.parse().unwrap_or_else(|_| usage("bad --workers value"));
            }
            "--preset" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --preset value"));
                preset =
                    Preset::parse(&v).unwrap_or_else(|| usage(&format!("unknown preset {v:?}")));
                if preset == Preset::Churn {
                    usage("the churn preset needs delta hot-patching; use `cellspot replay --preset churn`");
                }
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage("missing --out value")))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if lookups == 0 || clients == 0 || batch == 0 || workers == 0 {
        usage("--lookups, --clients, --batch, and --workers must all be at least 1");
    }

    let mut config = config_for_scale(&scale).unwrap_or_else(|e| usage(&e));
    if let Some(s) = seed {
        config.seed = s;
    }
    let seed = config.seed;

    // Build → classify → freeze, mirroring `cellspot index build`.
    eprintln!("building {scale} world (seed {seed:#x}) and freezing its classification …");
    let world = worldgen::World::generate(config);
    let (beacons, demand) = cdnsim::generate_datasets(&world);
    let (_index, class) = Pipeline::new(&beacons, &demand)
        .classify()
        .expect("generated datasets classify at the default threshold");
    let frozen = FrozenIndex::from_classification(&class, None);
    let artifact_bytes =
        cellserve::Artifact::encode(&frozen, cellserve::ArtifactFormat::V2).len();
    let (v4_prefixes, v6_prefixes) = frozen.prefix_counts();

    let universe = Universe::from_classification(&class);
    let trace = TraceSpec {
        preset,
        seed,
        queries: lookups,
        epochs: 1,
    }
    .generate(std::slice::from_ref(&universe));
    let trace_digest = cellserve::hash_hex(trace.digest());
    eprintln!(
        "artifact: {v4_prefixes} v4 + {v6_prefixes} v6 prefixes, {artifact_bytes} bytes; \
         {clients} client(s) × {batch}-query frames over {} `{}` queries …",
        trace.total_queries(),
        preset.name()
    );

    let obs = Observer::enabled();
    let daemon = Daemon::start_with_index(
        ServeConfig {
            tcp_listen: Some("127.0.0.1:0".to_string()),
            workers,
            ..ServeConfig::default()
        },
        frozen,
        obs.clone(),
    )
    .expect("boot the daemon on an ephemeral port");
    let addr = daemon.tcp_addr().expect("tcp endpoint is configured");

    // Closed loop via the shared replay driver: each client owns a
    // contiguous slice of the trace and sends it one frame at a time,
    // waiting for each answer.
    let outcome = replay_framed(
        addr,
        &trace,
        &ReplayConfig {
            clients,
            frame: batch,
            ..ReplayConfig::default()
        },
        &obs,
        |_| Ok(()),
    )
    .expect("replay the trace against the daemon");
    assert_eq!(outcome.dropped, 0, "the daemon must answer every query");
    let wall_secs = outcome.wall_secs;
    let matched = outcome.matched;

    let snapshot = daemon.shutdown();
    let requests = snapshot
        .histograms
        .get("replay.frame.ns")
        .map(|h| h.count)
        .unwrap_or(0);
    let served = snapshot.counters.get("serve.lookups").copied().unwrap_or(0);
    assert_eq!(
        served,
        trace.total_queries() as u64,
        "daemon-side lookup count must equal the client-side query count"
    );
    let lookup_ns = snapshot.histograms.get("serve.lookup.ns");
    assert_eq!(
        lookup_ns.map(|h| h.count).unwrap_or(0),
        served,
        "every lookup must contribute one latency sample"
    );
    let quantile = |q: f64| lookup_ns.and_then(|h| h.quantile(q)).unwrap_or(0);
    let fill_p50 = snapshot
        .histograms
        .get("served.batch.fill")
        .and_then(|h| h.quantile(0.50))
        .unwrap_or(0);
    let connections = snapshot
        .counters
        .get("served.tcp.connections")
        .copied()
        .unwrap_or(0);
    let reuses = snapshot
        .counters
        .get("served.tcp.keepalive.reuses")
        .copied()
        .unwrap_or(0);

    let n = trace.total_queries() as f64;
    let lookup_rate = n / wall_secs.max(1e-9);
    let request_rate = requests as f64 / wall_secs.max(1e-9);
    let record = serde_json::json!({
        "scale": scale,
        "seed": seed,
        "preset": preset.name(),
        "trace_digest": trace_digest,
        "answer_digest": cellserve::hash_hex(outcome.answer_digest),
        "lookups": trace.total_queries(),
        "clients": clients,
        "batch": batch,
        "workers": workers,
        "artifact_bytes": artifact_bytes,
        "prefixes": { "v4": v4_prefixes, "v6": v6_prefixes },
        "wall_millis": wall_secs * 1e3,
        "requests": requests,
        "requests_per_sec": request_rate,
        "lookups_per_sec": lookup_rate,
        "latency_ns": {
            "p50": quantile(0.50),
            "p99": quantile(0.99),
            "p999": quantile(0.999),
        },
        "batch_fill_p50": fill_p50,
        "keepalive": {
            "connections": connections,
            "reuses": reuses,
            "requests_per_conn": if connections > 0 {
                requests as f64 / connections as f64
            } else {
                0.0
            },
        },
        "stats": {
            "matched": matched,
            "served_lookups": served,
        },
    });
    fs::write(
        &out,
        serde_json::to_string_pretty(&record).expect("serialize benchmark record"),
    )
    .expect("write benchmark record");
    eprintln!(
        "{clients} client(s): {request_rate:.0} req/s, {lookup_rate:.0} lookups/s, \
         engine p99 ≤ {} ns → {}",
        quantile(0.99),
        out.display()
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: bench_serve [--scale mini|demo|paper|<float>] [--seed N] [--lookups N]\n\
         \x20                  [--preset steady|diurnal|flashcrowd|scan]\n\
         \x20                  [--clients N] [--batch N] [--workers N] [--out FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
