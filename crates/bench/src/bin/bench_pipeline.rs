//! `bench_pipeline` — one instrumented end-to-end run, summarized as
//! `BENCH_pipeline.json`.
//!
//! ```text
//! bench_pipeline [--scale mini|demo|paper|<float>] [--seed N] [--threads N]
//!                [--epochs E] [--shards N] [--out FILE]
//! ```
//!
//! Runs the batch pipeline (world → datasets → full study) under an
//! enabled observer, then streams the same world's event stream through
//! the ingest engine, and writes a machine-readable benchmark record:
//!
//! * `stages` — wall-clock milliseconds and item counts per pipeline
//!   stage (setup + all study stages, in execution order);
//! * `stream` — event count, wall clock, events/sec, and the engine's
//!   peak live-state bytes for the streaming leg;
//! * `counters` — the deterministic observability counters (byte-wise
//!   identical across thread counts, so CI can diff them).
//!
//! CI's bench-smoke step runs this at mini scale and validates the keys.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use bench::{build_bundle_with, config_for_scale};
use cellobs::Observer;

fn main() {
    let mut scale = "mini".to_string();
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut epochs: u32 = 4;
    let mut shards: u32 = 4;
    let mut out = PathBuf::from("BENCH_pipeline.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                seed = Some(v.parse().unwrap_or_else(|_| usage("bad --seed value")));
            }
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --threads value"));
                threads = Some(v.parse().unwrap_or_else(|_| usage("bad --threads value")));
            }
            "--epochs" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --epochs value"));
                epochs = v.parse().unwrap_or_else(|_| usage("bad --epochs value"));
            }
            "--shards" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --shards value"));
                shards = v.parse().unwrap_or_else(|_| usage("bad --shards value"));
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage("missing --out value")))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if epochs == 0 || shards == 0 {
        usage("--epochs and --shards must be at least 1");
    }

    let choice = cellspot::resolve_threads(threads);
    if let Some(n) = cellspot::configure_threads(choice) {
        eprintln!(
            "rayon pool pinned to {n} thread(s) (from {})",
            choice.source()
        );
    }

    let mut config = config_for_scale(&scale).unwrap_or_else(|e| usage(&e));
    if let Some(s) = seed {
        config.seed = s;
    }
    let seed = config.seed;

    // Batch leg: world + datasets + full study, observed.
    let obs = Observer::enabled();
    eprintln!("batch pipeline at scale {scale} (seed {seed:#x}) …");
    let bundle = build_bundle_with(config, &obs);
    let mut stages = bundle.timing.clone();
    stages.extend(&bundle.study.timing);

    // Streaming leg: fold the same world's event stream.
    eprintln!("streaming {epochs} epoch(s) across {shards} shard(s) …");
    let resolvers = cellstream::ResolverMap::from_dns(&bundle.dns);
    let source = cdnsim::EventSource::new(&bundle.world, cdnsim::CdnConfig::default(), epochs);
    let mut engine = cellstream::IngestEngine::for_source(
        cellstream::StreamConfig {
            shards,
            ..Default::default()
        },
        &source,
        resolvers,
    )
    .with_observer(obs.clone());
    let t_stream = Instant::now();
    engine.run_to_end(&source);
    let stream_secs = t_stream.elapsed().as_secs_f64();
    stages.push("stream_ingest", stream_secs * 1e3, engine.events_seen());

    let snapshot = obs.snapshot();
    let peak_state_bytes = snapshot
        .gauges
        .get("stream.state_bytes.peak")
        .copied()
        .unwrap_or(engine.state_bytes() as u64);
    let events = engine.events_seen();
    let record = serde_json::json!({
        "scale": scale,
        "seed": seed,
        "threads": choice.pinned(),
        "stages": serde_json::to_value(&stages.stages).expect("serialize stage timings"),
        "stream": {
            "epochs": epochs,
            "shards": shards,
            "events": events,
            "wall_millis": stream_secs * 1e3,
            "events_per_sec": events as f64 / stream_secs.max(1e-9),
            "peak_state_bytes": peak_state_bytes,
        },
        "counters": snapshot.counters,
    });
    fs::write(
        &out,
        serde_json::to_string_pretty(&record).expect("serialize benchmark record"),
    )
    .expect("write benchmark record");
    eprintln!(
        "{} stages, {events} streamed events ({:.0}/s, peak state {} KiB) → {}",
        stages.stages.len(),
        events as f64 / stream_secs.max(1e-9),
        peak_state_bytes / 1024,
        out.display()
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: bench_pipeline [--scale mini|demo|paper|<float>] [--seed N] [--threads N]\n\
         \x20                     [--epochs E] [--shards N] [--out FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
