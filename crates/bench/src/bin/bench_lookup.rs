//! `bench_lookup` — frozen-index serving throughput, summarized as
//! `BENCH_lookup.json`.
//!
//! ```text
//! bench_lookup [--scale mini|demo|paper|<float>] [--seed N] [--lookups N]
//!              [--preset steady|diurnal|flashcrowd|scan] [--threads N] [--out FILE]
//! ```
//!
//! Builds a world, classifies it, freezes the classification into the
//! sealed serving artifact, then replays a seeded `cellload` preset
//! (default `steady`, the historical query mix) through the
//! [`cellserve::QueryEngine`] at one thread and at N threads — each in
//! its own private rayon pool, so the two measurements run in one
//! process without fighting over the global pool. The record carries:
//!
//! * `artifact_bytes` — size of the sealed (v2, the default) artifact;
//! * `single` / `multi` — wall clock and lookups/sec at each width;
//! * `speedup` — multi ÷ single throughput;
//! * `stats` — match/cache counters, asserted identical across widths
//!   (the engine's determinism contract, checked on every bench run);
//! * `formats.v1` / `formats.v2` — same-run per-format legs: sealed
//!   size, a cold start from disk through [`cellserve::Artifact::open`]
//!   (wall time plus `bytes_copied`, the handle's own accounting of
//!   every byte it copied to become servable — the number the v2 mmap
//!   path exists to shrink), and single-thread lookups/sec over the
//!   opened handle. Answers are asserted identical across formats.
//!
//! CI's bench-smoke step runs this at mini scale, validates the keys,
//! and holds the v2 leg to a no-regression bound against v1.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use bench::config_for_scale;
use cellload::{Preset, TraceSpec, Universe};
use cellserve::{
    Artifact, ArtifactFormat, ArtifactHandle, BatchStats, FrozenIndex, IndexView, IpKey,
    QueryEngine,
};
use cellspot::{aggregate_by_as, MixedAnalysis, Pipeline, DEDICATED_CFD};
use netaddr::Asn;

fn main() {
    let mut scale = "mini".to_string();
    let mut seed: Option<u64> = None;
    let mut lookups: usize = 200_000;
    let mut threads: Option<usize> = None;
    let mut preset = Preset::Steady;
    let mut out = PathBuf::from("BENCH_lookup.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                seed = Some(v.parse().unwrap_or_else(|_| usage("bad --seed value")));
            }
            "--lookups" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --lookups value"));
                lookups = v.parse().unwrap_or_else(|_| usage("bad --lookups value"));
            }
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --threads value"));
                threads = Some(v.parse().unwrap_or_else(|_| usage("bad --threads value")));
            }
            "--preset" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --preset value"));
                preset =
                    Preset::parse(&v).unwrap_or_else(|| usage(&format!("unknown preset {v:?}")));
                if preset == Preset::Churn {
                    usage("the churn preset needs the replay driver; use `cellspot replay --preset churn`");
                }
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage("missing --out value")))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if lookups == 0 {
        usage("--lookups must be at least 1");
    }
    let multi_threads = threads
        .or_else(|| std::thread::available_parallelism().ok().map(usize::from))
        .unwrap_or(2)
        .max(1);

    let mut config = config_for_scale(&scale).unwrap_or_else(|e| usage(&e));
    if let Some(s) = seed {
        config.seed = s;
    }
    let seed = config.seed;

    // Build → classify → freeze, mirroring `cellspot index build`.
    eprintln!("building {scale} world (seed {seed:#x}) and freezing its classification …");
    let world = worldgen::World::generate(config);
    let (beacons, demand) = cdnsim::generate_datasets(&world);
    let (index, class) = Pipeline::new(&beacons, &demand)
        .classify()
        .expect("generated datasets classify at the default threshold");
    let aggs = aggregate_by_as(&index, &class);
    let mut candidates: Vec<Asn> = aggs
        .iter()
        .filter(|(_, a)| a.cell_blocks() > 0)
        .map(|(&asn, _)| asn)
        .collect();
    candidates.sort_unstable();
    let mixed = MixedAnalysis::build(&candidates, &aggs, DEDICATED_CFD);
    let frozen = FrozenIndex::from_classification(&class, Some(&mixed));
    let v1_bytes = Artifact::encode(&frozen, ArtifactFormat::V1);
    let v2_bytes = Artifact::encode(&frozen, ArtifactFormat::V2);
    let artifact_bytes = v2_bytes.len();
    let (v4_prefixes, v6_prefixes) = frozen.prefix_counts();

    let universe = Universe::from_classification(&class);
    let trace = TraceSpec {
        preset,
        seed,
        queries: lookups,
        epochs: 1,
    }
    .generate(std::slice::from_ref(&universe));
    let trace_digest = cellserve::hash_hex(trace.digest());
    let queries = trace
        .segments
        .into_iter()
        .next()
        .expect("single-segment preset")
        .queries;
    eprintln!(
        "artifact: {v4_prefixes} v4 + {v6_prefixes} v6 prefixes, {artifact_bytes} bytes; \
         replaying {} `{}` queries …",
        queries.len(),
        preset.name()
    );

    let engine = QueryEngine::new(&frozen);
    let (single_secs, single_stats) = measure(&engine, &queries, 1);
    let (multi_secs, multi_stats) = measure(&engine, &queries, multi_threads);
    assert_eq!(
        single_stats, multi_stats,
        "lookup stats must not depend on thread count"
    );

    // Per-format legs: open each sealed artifact from disk the way a
    // serving process boots, then run the same trace single-threaded
    // over the opened handle. The two formats must answer identically.
    let (v1_handle, v1_open_secs) = cold_start(&v1_bytes, "v1");
    let (v2_handle, v2_open_secs) = cold_start(&v2_bytes, "v2");
    let (v1_secs, v1_stats) = measure(&QueryEngine::new(&v1_handle), &queries, 1);
    let (v2_secs, v2_stats) = measure(&QueryEngine::new(&v2_handle), &queries, 1);
    assert_eq!(
        single_stats, v1_stats,
        "v1 handle answers must match the owned index"
    );
    assert_eq!(
        single_stats, v2_stats,
        "v2 handle answers must match the owned index"
    );

    let n = queries.len() as f64;
    let single_rate = n / single_secs.max(1e-9);
    let multi_rate = n / multi_secs.max(1e-9);
    let v1_rate = n / v1_secs.max(1e-9);
    let v2_rate = n / v2_secs.max(1e-9);
    let record = serde_json::json!({
        "scale": scale,
        "seed": seed,
        "preset": preset.name(),
        "trace_digest": trace_digest,
        "lookups": queries.len(),
        "artifact_bytes": artifact_bytes,
        "prefixes": { "v4": v4_prefixes, "v6": v6_prefixes },
        "single": {
            "threads": 1,
            "wall_millis": single_secs * 1e3,
            "lookups_per_sec": single_rate,
        },
        "multi": {
            "threads": multi_threads,
            "wall_millis": multi_secs * 1e3,
            "lookups_per_sec": multi_rate,
        },
        "speedup": multi_rate / single_rate.max(1e-9),
        "stats": {
            "matched": single_stats.matched,
            "cache_hits": single_stats.cache_hits,
            "cache_misses": single_stats.cache_misses,
            "uncached": single_stats.uncached,
        },
        "formats": {
            "v1": {
                "artifact_bytes": v1_bytes.len(),
                "cold_start": {
                    "bytes_copied": v1_handle.copied_bytes(),
                    "open_millis": v1_open_secs * 1e3,
                    "mapped": v1_handle.is_mapped(),
                },
                "lookups_per_sec": v1_rate,
            },
            "v2": {
                "artifact_bytes": v2_bytes.len(),
                "cold_start": {
                    "bytes_copied": v2_handle.copied_bytes(),
                    "open_millis": v2_open_secs * 1e3,
                    "mapped": v2_handle.is_mapped(),
                },
                "lookups_per_sec": v2_rate,
            },
        },
    });
    fs::write(
        &out,
        serde_json::to_string_pretty(&record).expect("serialize benchmark record"),
    )
    .expect("write benchmark record");
    eprintln!(
        "single {:.0}/s, {multi_threads}-thread {:.0}/s ({:.2}x); \
         v1 {:.0}/s ({} bytes copied), v2 {:.0}/s ({} bytes copied, mapped={}) → {}",
        single_rate,
        multi_rate,
        multi_rate / single_rate.max(1e-9),
        v1_rate,
        v1_handle.copied_bytes(),
        v2_rate,
        v2_handle.copied_bytes(),
        v2_handle.is_mapped(),
        out.display()
    );
}

/// Seal `bytes` to a scratch file and boot a handle from it the way a
/// serving process does, returning the handle and the open wall time.
fn cold_start(bytes: &[u8], name: &str) -> (ArtifactHandle, f64) {
    let path = std::env::temp_dir().join(format!(
        "bench-lookup-{}-{name}.cellserv",
        std::process::id()
    ));
    fs::write(&path, bytes).expect("write sealed artifact to scratch file");
    let t = Instant::now();
    let handle = Artifact::open(&path).expect("open sealed artifact");
    let secs = t.elapsed().as_secs_f64();
    // Unlinking while mapped is fine on unix; the mapping keeps the
    // pages alive for the handle's lifetime.
    fs::remove_file(&path).ok();
    (handle, secs)
}

/// Run the batch once to warm up, then time it in a private pool pinned
/// to `threads`, returning wall seconds and the (deterministic) stats.
fn measure<V: IndexView + ?Sized>(
    engine: &QueryEngine<'_, V>,
    queries: &[IpKey],
    threads: usize,
) -> (f64, BatchStats) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    pool.install(|| engine.run(queries));
    let t = Instant::now();
    let (_, stats) = pool.install(|| engine.run(queries));
    (t.elapsed().as_secs_f64(), stats)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: bench_lookup [--scale mini|demo|paper|<float>] [--seed N] [--lookups N]\n\
         \x20                   [--preset steady|diurnal|flashcrowd|scan] [--threads N] [--out FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
