//! `bench_lookup` — frozen-index serving throughput, summarized as
//! `BENCH_lookup.json`.
//!
//! ```text
//! bench_lookup [--scale mini|demo|paper|<float>] [--seed N] [--lookups N]
//!              [--preset steady|diurnal|flashcrowd|scan] [--threads N] [--out FILE]
//! ```
//!
//! Builds a world, classifies it, freezes the classification into the
//! sealed serving artifact, then replays a seeded `cellload` preset
//! (default `steady`, the historical query mix) through the
//! [`cellserve::QueryEngine`] at one thread and at N threads — each in
//! its own private rayon pool, so the two measurements run in one
//! process without fighting over the global pool. The record carries:
//!
//! * `artifact_bytes` — size of the sealed artifact;
//! * `single` / `multi` — wall clock and lookups/sec at each width;
//! * `speedup` — multi ÷ single throughput;
//! * `stats` — match/cache counters, asserted identical across widths
//!   (the engine's determinism contract, checked on every bench run).
//!
//! CI's bench-smoke step runs this at mini scale and validates the keys.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use bench::config_for_scale;
use cellload::{Preset, TraceSpec, Universe};
use cellserve::{BatchStats, FrozenIndex, IpKey, QueryEngine};
use cellspot::{aggregate_by_as, MixedAnalysis, Pipeline, DEDICATED_CFD};
use netaddr::Asn;

fn main() {
    let mut scale = "mini".to_string();
    let mut seed: Option<u64> = None;
    let mut lookups: usize = 200_000;
    let mut threads: Option<usize> = None;
    let mut preset = Preset::Steady;
    let mut out = PathBuf::from("BENCH_lookup.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                seed = Some(v.parse().unwrap_or_else(|_| usage("bad --seed value")));
            }
            "--lookups" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --lookups value"));
                lookups = v.parse().unwrap_or_else(|_| usage("bad --lookups value"));
            }
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --threads value"));
                threads = Some(v.parse().unwrap_or_else(|_| usage("bad --threads value")));
            }
            "--preset" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --preset value"));
                preset =
                    Preset::parse(&v).unwrap_or_else(|| usage(&format!("unknown preset {v:?}")));
                if preset == Preset::Churn {
                    usage("the churn preset needs the replay driver; use `cellspot replay --preset churn`");
                }
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage("missing --out value")))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if lookups == 0 {
        usage("--lookups must be at least 1");
    }
    let multi_threads = threads
        .or_else(|| std::thread::available_parallelism().ok().map(usize::from))
        .unwrap_or(2)
        .max(1);

    let mut config = config_for_scale(&scale).unwrap_or_else(|e| usage(&e));
    if let Some(s) = seed {
        config.seed = s;
    }
    let seed = config.seed;

    // Build → classify → freeze, mirroring `cellspot index build`.
    eprintln!("building {scale} world (seed {seed:#x}) and freezing its classification …");
    let world = worldgen::World::generate(config);
    let (beacons, demand) = cdnsim::generate_datasets(&world);
    let (index, class) = Pipeline::new(&beacons, &demand)
        .classify()
        .expect("generated datasets classify at the default threshold");
    let aggs = aggregate_by_as(&index, &class);
    let mut candidates: Vec<Asn> = aggs
        .iter()
        .filter(|(_, a)| a.cell_blocks() > 0)
        .map(|(&asn, _)| asn)
        .collect();
    candidates.sort_unstable();
    let mixed = MixedAnalysis::build(&candidates, &aggs, DEDICATED_CFD);
    let frozen = FrozenIndex::from_classification(&class, Some(&mixed));
    let artifact_bytes = cellserve::to_bytes(&frozen).len();
    let (v4_prefixes, v6_prefixes) = frozen.prefix_counts();

    let universe = Universe::from_classification(&class);
    let trace = TraceSpec {
        preset,
        seed,
        queries: lookups,
        epochs: 1,
    }
    .generate(std::slice::from_ref(&universe));
    let trace_digest = cellserve::hash_hex(trace.digest());
    let queries = trace
        .segments
        .into_iter()
        .next()
        .expect("single-segment preset")
        .queries;
    eprintln!(
        "artifact: {v4_prefixes} v4 + {v6_prefixes} v6 prefixes, {artifact_bytes} bytes; \
         replaying {} `{}` queries …",
        queries.len(),
        preset.name()
    );

    let engine = QueryEngine::new(&frozen);
    let (single_secs, single_stats) = measure(&engine, &queries, 1);
    let (multi_secs, multi_stats) = measure(&engine, &queries, multi_threads);
    assert_eq!(
        single_stats, multi_stats,
        "lookup stats must not depend on thread count"
    );

    let n = queries.len() as f64;
    let single_rate = n / single_secs.max(1e-9);
    let multi_rate = n / multi_secs.max(1e-9);
    let record = serde_json::json!({
        "scale": scale,
        "seed": seed,
        "preset": preset.name(),
        "trace_digest": trace_digest,
        "lookups": queries.len(),
        "artifact_bytes": artifact_bytes,
        "prefixes": { "v4": v4_prefixes, "v6": v6_prefixes },
        "single": {
            "threads": 1,
            "wall_millis": single_secs * 1e3,
            "lookups_per_sec": single_rate,
        },
        "multi": {
            "threads": multi_threads,
            "wall_millis": multi_secs * 1e3,
            "lookups_per_sec": multi_rate,
        },
        "speedup": multi_rate / single_rate.max(1e-9),
        "stats": {
            "matched": single_stats.matched,
            "cache_hits": single_stats.cache_hits,
            "cache_misses": single_stats.cache_misses,
            "uncached": single_stats.uncached,
        },
    });
    fs::write(
        &out,
        serde_json::to_string_pretty(&record).expect("serialize benchmark record"),
    )
    .expect("write benchmark record");
    eprintln!(
        "single {:.0}/s, {multi_threads}-thread {:.0}/s ({:.2}x) → {}",
        single_rate,
        multi_rate,
        multi_rate / single_rate.max(1e-9),
        out.display()
    );
}

/// Run the batch once to warm up, then time it in a private pool pinned
/// to `threads`, returning wall seconds and the (deterministic) stats.
fn measure(engine: &QueryEngine<'_>, queries: &[IpKey], threads: usize) -> (f64, BatchStats) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    pool.install(|| engine.run(queries));
    let t = Instant::now();
    let (_, stats) = pool.install(|| engine.run(queries));
    (t.elapsed().as_secs_f64(), stats)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: bench_lookup [--scale mini|demo|paper|<float>] [--seed N] [--lookups N]\n\
         \x20                   [--preset steady|diurnal|flashcrowd|scan] [--threads N] [--out FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
