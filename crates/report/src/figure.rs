//! Figure artifacts: named series with CSV export and a small ascii
//! plotter for terminal inspection.

use serde::{Deserialize, Serialize};

/// One named data series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// Axis scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Log10 axis (non-positive values are dropped from the plot).
    Log,
}

/// A renderable figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure {
    /// Caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// New linear-scale figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }

    /// Add a series (builder style).
    pub fn with(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Switch the y-axis to log scale (builder style).
    pub fn log_y(mut self) -> Self {
        self.y_scale = Scale::Log;
        self
    }

    /// Switch the x-axis to log scale (builder style).
    pub fn log_x(mut self) -> Self {
        self.x_scale = Scale::Log;
        self
    }

    /// Long-format CSV: `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                out.push_str(&format!("{},{x},{y}\n", s.name.replace(',', ";")));
            }
        }
        out
    }

    /// Render an ascii plot (distinct glyph per series).
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
        let width = width.clamp(20, 200);
        let height = height.clamp(5, 60);

        let tx = |v: f64| -> Option<f64> {
            match self.x_scale {
                Scale::Linear => Some(v),
                Scale::Log => (v > 0.0).then(|| v.log10()),
            }
        };
        let ty = |v: f64| -> Option<f64> {
            match self.y_scale {
                Scale::Linear => Some(v),
                Scale::Log => (v > 0.0).then(|| v.log10()),
            }
        };

        let mut pts: Vec<(usize, f64, f64)> = Vec::new();
        for (si, s) in self.series.iter().enumerate() {
            for (x, y) in &s.points {
                if let (Some(x), Some(y)) = (tx(*x), ty(*y)) {
                    pts.push((si, x, y));
                }
            }
        }
        if pts.is_empty() {
            return format!("{} (no plottable points)\n", self.title);
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, x, y) in &pts {
            x0 = x0.min(*x);
            x1 = x1.max(*x);
            y0 = y0.min(*y);
            y1 = y1.max(*y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }

        let mut grid = vec![vec![' '; width]; height];
        for (si, x, y) in &pts {
            let cx = (((x - x0) / (x1 - x0)) * (width as f64 - 1.0)).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = GLYPHS[si % GLYPHS.len()];
        }

        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        for row in &grid {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out.push_str(&format!(
            "x: {} [{:.3}..{:.3}{}]  y: {} [{:.3}..{:.3}{}]\n",
            self.x_label,
            x0,
            x1,
            if self.x_scale == Scale::Log {
                " log10"
            } else {
                ""
            },
            self.y_label,
            y0,
            y1,
            if self.y_scale == Scale::Log {
                " log10"
            } else {
                ""
            },
        ));
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_long_format() {
        let fig = Figure::new("t", "x", "y")
            .with(Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]))
            .with(Series::new("b,c", vec![(0.5, 0.5)]));
        let csv = fig.to_csv();
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("a,0,1\n"));
        assert!(csv.contains("b;c,0.5,0.5\n"));
    }

    #[test]
    fn ascii_plot_contains_glyphs_and_legend() {
        let fig = Figure::new("demo", "rank", "share").with(Series::new(
            "cell",
            vec![(1.0, 10.0), (2.0, 5.0), (3.0, 1.0)],
        ));
        let s = fig.render_ascii(40, 10);
        assert!(s.contains('*'));
        assert!(s.contains("cell"));
        assert!(s.contains("x: rank"));
    }

    #[test]
    fn log_scale_drops_nonpositive() {
        let fig = Figure::new("d", "x", "y")
            .log_y()
            .with(Series::new("s", vec![(1.0, 0.0), (2.0, 10.0)]));
        let s = fig.render_ascii(30, 8);
        // Only one plottable point survives.
        assert!(s.contains("log10"));
        let empty = Figure::new("e", "x", "y")
            .log_y()
            .with(Series::new("s", vec![(1.0, 0.0)]));
        assert!(empty.render_ascii(30, 8).contains("no plottable points"));
    }
}
