//! Plain-text table rendering with CSV export.

use serde::{Deserialize, Serialize};

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A renderable table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Per-column alignment; missing entries default to `Right`.
    pub aligns: Vec<Align>,
    /// Row cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers; first column left-aligned, rest right.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        let mut aligns = vec![Align::Right; headers.len()];
        if !aligns.is_empty() {
            aligns[0] = Align::Left;
        }
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller to control
    /// formatting).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as a boxed plain-text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w.saturating_sub(cell.chars().count());
                let align = self.aligns.get(i).copied().unwrap_or(Align::Right);
                match align {
                    Align::Left => s.push_str(&format!(" {cell}{} |", " ".repeat(pad))),
                    Align::Right => s.push_str(&format!(" {}{cell} |", " ".repeat(pad))),
                }
            }
            s
        };
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }

    /// CSV export (headers + rows; cells quoted when they contain commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format helpers shared by the experiment builders.
pub mod fmt {
    /// Thousands-separated integer.
    pub fn int(v: u64) -> String {
        let s = v.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    }

    /// Fixed-point float.
    pub fn f(v: f64, digits: usize) -> String {
        format!("{v:.digits$}")
    }

    /// Percent with one decimal.
    pub fn pct(v: f64) -> String {
        format!("{v:.1}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_boxes() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.starts_with("Demo\n+"));
        assert!(s.contains("| alpha |     1 |"));
        assert!(s.contains("| b     | 12345 |"));
        // Three separator lines: top, under-header, bottom.
        let sep_lines = s.lines().filter(|l| l.starts_with("+-")).count();
        assert_eq!(sep_lines, 3);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt::int(0), "0");
        assert_eq!(fmt::int(999), "999");
        assert_eq!(fmt::int(1_000), "1,000");
        assert_eq!(fmt::int(350_687), "350,687");
        assert_eq!(fmt::f(1.23456, 2), "1.23");
        assert_eq!(fmt::pct(16.24), "16.2%");
    }
}
