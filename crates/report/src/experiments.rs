//! One builder per table and figure of the paper's evaluation.
//!
//! Each builder consumes the [`cellspot::Study`] output (plus auxiliary
//! inputs such as the AS database or the DNS simulation) and produces an
//! [`Artifact`]: renderable tables/figures plus free-form notes with the
//! headline quantities. The `repro` harness writes these to disk and
//! compares the notes against the paper's reported values.

use asdb::AsDatabase;
use cellspot::{AsRatioBreakdown, RatioDistributions, Study, SubnetDemandProfile};
use dnssim::{DnsSim, PUBLIC_DNS_SERVICES};
use netaddr::{Asn, Continent, CONTINENTS};

use crate::figure::{Figure, Series};
use crate::table::{fmt, Table};

/// A rendered experiment: tables, figures, and headline notes.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Stable id: `table2`, `fig7`, …
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Tables to render.
    pub tables: Vec<Table>,
    /// Figures to render.
    pub figures: Vec<Figure>,
    /// Headline quantities, one per line.
    pub notes: Vec<String>,
}

impl Artifact {
    fn new(id: &'static str, title: impl Into<String>) -> Self {
        Artifact {
            id,
            title: title.into(),
            tables: Vec::new(),
            figures: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Full plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for f in &self.figures {
            out.push_str(&f.render_ascii(72, 18));
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("notes:\n");
            for n in &self.notes {
                out.push_str(&format!("  - {n}\n"));
            }
        }
        out
    }

    /// CSV rendering (tables then figures, concatenated with headers).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&format!("# table: {}\n", t.title));
            out.push_str(&t.to_csv());
        }
        for f in &self.figures {
            out.push_str(&format!("# figure: {}\n", f.title));
            out.push_str(&f.to_csv());
        }
        out
    }
}

/// Table 1: qualitative related-work comparison (static content from the
/// paper; regenerated for completeness of the artifact set).
pub fn table1_related_work() -> Artifact {
    let mut a = Artifact::new(
        "table1",
        "Comparison of existing analyses of cellular usage",
    );
    let mut t = Table::new(
        "Table 1: granularity / global / comparative-cellular by source",
        &["Source", "Granularity", "Global", "Comp. Cellular"],
    );
    for (src, gran, glob, comp) in [
        ("Ericsson", "Continent", "yes", "yes"),
        ("Cisco", "Continent", "yes", "yes"),
        ("Sandvine", "Continent", "yes", "no"),
        ("Akamai SoTI", "Country", "yes", "no"),
        ("OpenSignal", "Country", "yes", "no"),
        ("Flow analysis", "Operator", "no", "no"),
        ("Instr. handsets", "Handset", "no", "no"),
        ("This approach", "IP-level", "yes", "yes"),
    ] {
        t.row(vec![src.into(), gran.into(), glob.into(), comp.into()]);
    }
    a.tables.push(t);
    a
}

/// Table 2: dataset sizes.
pub fn table2_datasets(study: &Study) -> Artifact {
    let mut a = Artifact::new("table2", "Datasets used for cellular address analysis");
    let (_total4, _total6) = study.index.block_counts();
    // Reconstruct per-dataset counts from the join: BEACON blocks have
    // hits, DEMAND blocks have DU.
    let mut b4 = 0u64;
    let mut b6 = 0u64;
    let mut d4 = 0u64;
    let mut d6 = 0u64;
    for o in study.index.iter() {
        if o.beacon_hits > 0 {
            if o.block.is_v4() {
                b4 += 1;
            } else {
                b6 += 1;
            }
        }
        if o.du > 0.0 {
            if o.block.is_v4() {
                d4 += 1;
            } else {
                d6 += 1;
            }
        }
    }
    let mut t = Table::new(
        "Table 2: CDN datasets (block counts)",
        &["Source", "Period", "/24", "/48"],
    );
    t.row(vec![
        "BEACON".into(),
        "Dec 2016 (monthly)".into(),
        fmt::int(b4),
        fmt::int(b6),
    ]);
    t.row(vec![
        "DEMAND".into(),
        "Dec 24-31 2016 (week)".into(),
        fmt::int(d4),
        fmt::int(d6),
    ]);
    a.notes.push(format!(
        "paper: BEACON 4.7M /24, 1.8M /48; DEMAND 6.8M /24, 909K /48; measured BEACON {b4} /24, {b6} /48; DEMAND {d4} /24, {d6} /48"
    ));
    a.notes.push(format!(
        "BEACON covers {:.0}% of DEMAND /24 blocks (paper: 73%)",
        100.0 * b4 as f64 / d4.max(1) as f64
    ));
    a.tables.push(t);
    a
}

/// Fig. 1: Network Information API adoption over time, by browser.
pub fn fig1_netinfo_adoption() -> Artifact {
    let mut a = Artifact::new("fig1", "NetInfo API share of beacon hits by month");
    let tl = cdnsim::netinfo_timeline();
    let series = |name: &str, f: fn(&cdnsim::MonthShare) -> f64| {
        Series::new(
            name,
            tl.iter()
                .map(|m| (m.month_index as f64, f(m)))
                .collect::<Vec<_>>(),
        )
    };
    let fig = Figure::new(
        "Figure 1: NetInfo-enabled share of hits (percent, stacked by browser)",
        "months since 2015-09",
        "% of hits",
    )
    .with(series("Chrome Mobile", |m| m.chrome_mobile))
    .with(series("Android Webkit", |m| m.android_webkit))
    .with(series("Total", |m| m.total()));
    let dec = cdnsim::netinfo_share(cdnsim::DEC_2016);
    let jun = cdnsim::netinfo_share(cdnsim::JUN_2017);
    a.notes.push(format!(
        "Dec 2016 total {:.1}% (paper 13.2%), Jun 2017 {:.1}% (paper 15%)",
        dec.total(),
        jun.total()
    ));
    let google = (dec.chrome_mobile + dec.android_webkit + dec.chrome_desktop) / dec.total();
    a.notes.push(format!(
        "Google browsers carry {:.1}% of enabled hits in Dec 2016 (paper 96.7%)",
        100.0 * google
    ));
    a.figures.push(fig);
    a
}

/// Fig. 2: cellular ratio distributions.
pub fn fig2_ratio_cdfs(study: &Study) -> Artifact {
    let mut a = Artifact::new("fig2", "Distribution of cellular ratios");
    let d = &study.ratio_distributions;
    let fig = Figure::new(
        "Figure 2: CDF of cellular ratios (subnets and demand-weighted)",
        "cellular ratio",
        "CDF",
    )
    .with(Series::new(
        "IPv4 Subnets",
        d.v4_subnets.series(0.0, 1.0, 100),
    ))
    .with(Series::new(
        "IPv4 Demand",
        d.v4_demand.series(0.0, 1.0, 100),
    ))
    .with(Series::new(
        "IPv6 Subnets",
        d.v6_subnets.series(0.0, 1.0, 100),
    ))
    .with(Series::new(
        "IPv6 Demand",
        d.v6_demand.series(0.0, 1.0, 100),
    ));
    let (b4, a4, m4) = RatioDistributions::cuts(&d.v4_subnets);
    let (b6, a6, _) = RatioDistributions::cuts(&d.v6_subnets);
    let (bd4, ad4, md4) = RatioDistributions::cuts(&d.v4_demand);
    a.notes.push(format!(
        "/24 subnets: {:.1}% below 0.1 (paper 91.3%), {:.1}% above 0.9 (paper 5.8%), {:.1}% intermediate (paper 2.9%)",
        100.0 * b4, 100.0 * a4, 100.0 * m4
    ));
    a.notes.push(format!(
        "/48 subnets: {:.1}% below 0.1 (paper 98.7%), {:.1}% above 0.9 (paper 1.2%)",
        100.0 * b6,
        100.0 * a6
    ));
    a.notes.push(format!(
        "IPv4 demand: {:.1}% below 0.1 (paper 80%), {:.1}% above 0.9 (paper 13.1%), {:.1}% intermediate (paper 6.9%)",
        100.0 * bd4, 100.0 * ad4, 100.0 * md4
    ));
    a.figures.push(fig);
    a
}

/// Fig. 3: threshold sensitivity curves for the validation carriers.
pub fn fig3_threshold_sweeps(study: &Study) -> Artifact {
    let mut a = Artifact::new("fig3", "Sensitivity of cellular ratio thresholds");
    let mut fig = Figure::new(
        "Figure 3: F1 score vs. classification threshold (demand-weighted)",
        "cellular ratio threshold",
        "F1 score",
    );
    for curve in &study.sweeps {
        fig = fig.with(Series::new(
            format!("{} F1", curve.carrier),
            curve
                .points
                .iter()
                .map(|p| (p.threshold, p.f1_demand))
                .collect::<Vec<_>>(),
        ));
        if let Some((lo, hi)) = curve.stable_range(0.05) {
            a.notes.push(format!(
                "{}: F1 within 0.05 of max across [{lo:.2}, {hi:.2}] (paper: stable 0.1-0.96)",
                curve.carrier
            ));
        }
    }
    a.figures.push(fig);
    a
}

/// Table 3: classification accuracy per carrier.
pub fn table3_validation(study: &Study) -> Artifact {
    let mut a = Artifact::new(
        "table3",
        "Classification accuracy for three mobile operators",
    );
    let mut t = Table::new(
        "Table 3: confusion matrices at threshold 0.5",
        &[
            "Carrier",
            "Basis",
            "TP",
            "FP",
            "TN",
            "FN",
            "Precision",
            "Recall",
            "F1",
        ],
    );
    for v in &study.validations {
        for (basis, c) in [("CIDR", &v.by_cidr), ("Demand", &v.by_demand)] {
            t.row(vec![
                v.carrier.clone(),
                basis.into(),
                fmt::f(c.tp, if basis == "CIDR" { 0 } else { 2 }),
                fmt::f(c.fp, if basis == "CIDR" { 0 } else { 2 }),
                fmt::f(c.tn, if basis == "CIDR" { 0 } else { 2 }),
                fmt::f(c.fn_, if basis == "CIDR" { 0 } else { 2 }),
                fmt::f(c.precision(), 2),
                fmt::f(c.recall(), 2),
                fmt::f(c.f1(), 2),
            ]);
        }
    }
    a.notes.push(
        "paper: precision ≥ 0.97 everywhere; Carrier A CIDR recall 0.10 vs demand recall 0.82; Carrier B ≈ 0.99/0.99; Carrier C 0.79/0.98".into(),
    );
    a.tables.push(t);
    a
}

/// Table 4: detected cellular subnets by continent.
pub fn table4_subnets(study: &Study) -> Artifact {
    let mut a = Artifact::new("table4", "Detected cellular subnets by continent");
    let mut t = Table::new(
        "Table 4: cellular /24 and /48 counts and share of active space",
        &[
            "Continent",
            "# /24",
            "# /48",
            "% Active IPv4",
            "% Active IPv6",
        ],
    );
    let mut tot24 = 0usize;
    let mut tot48 = 0usize;
    let mut act24 = 0usize;
    let mut act48 = 0usize;
    for c in CONTINENTS {
        let s = &study.view.subnets[c.index()];
        t.row(vec![
            c.name().into(),
            fmt::int(s.cell24 as u64),
            fmt::int(s.cell48 as u64),
            fmt::pct(s.pct_active_v4()),
            fmt::pct(s.pct_active_v6()),
        ]);
        tot24 += s.cell24;
        tot48 += s.cell48;
        act24 += s.active24;
        act48 += s.active48;
    }
    t.row(vec![
        "Total".into(),
        fmt::int(tot24 as u64),
        fmt::int(tot48 as u64),
        fmt::pct(100.0 * tot24 as f64 / act24.max(1) as f64),
        fmt::pct(100.0 * tot48 as f64 / act48.max(1) as f64),
    ]);
    a.notes.push(format!(
        "measured {tot24} cellular /24 and {tot48} /48 (paper: 350,687 and 23,230 at full scale)"
    ));
    a.notes.push(format!(
        "cellular share of active space: {:.1}% of /24 (paper 7.3%), {:.1}% of /48 (paper 1.2%)",
        100.0 * tot24 as f64 / act24.max(1) as f64,
        100.0 * tot48 as f64 / act48.max(1) as f64
    ));
    a.tables.push(t);
    a
}

/// Table 4 with the §4.3 IPv6-deployment notes (needs the AS database for
/// country attribution).
pub fn table4_with_v6(study: &Study, as_db: &AsDatabase) -> Artifact {
    let mut a = table4_subnets(study);
    let v6 = cellspot::v6_deployment(
        &study.filter.cellular_ases,
        &study.index,
        &study.classification,
        as_db,
    );
    a.notes.push(format!(
        "{} of {} cellular ASes deploy IPv6 ({:.1}%; paper: 52 of 668 = 7.7%) across {} countries (paper: 24)",
        v6.v6_ases,
        v6.cellular_ases,
        100.0 * v6.fraction(),
        v6.countries
    ));
    let top: Vec<String> = v6
        .top_countries
        .iter()
        .take(4)
        .map(|(c, n)| format!("{c} {n}"))
        .collect();
    a.notes.push(format!(
        "IPv6-cellular AS leaders: {} (paper: BR 6, then MM/US/JP with 5 each)",
        top.join(", ")
    ));
    a
}

/// Fig. 4: distributions over the straw-man candidate AS set.
pub fn fig4_as_distributions(study: &Study) -> Artifact {
    let mut a = Artifact::new("fig4", "Demand and beacon hits per candidate AS");
    let mut demand_vals = Vec::new();
    let mut hit_vals = Vec::new();
    let mut cell_hit_vals = Vec::new();
    for asn in &study.filter.candidates {
        let agg = &study.as_aggregates[asn];
        demand_vals.push(agg.cell_du.max(1e-6));
        hit_vals.push(agg.netinfo_hits as f64 + 0.1);
        // Cellular hits proxy: hits scaled by the AS's cellular fraction.
        cell_hit_vals.push((agg.netinfo_hits as f64 * agg.cfd()).max(0.1));
    }
    let cdf_series = |name: &str, vals: &[f64]| {
        let cdf = cellspot::Ecdf::new(vals.iter().copied().map(|v| v.log10()));
        Series::new(name, cdf.series(-6.0, 8.0, 200))
    };
    a.figures.push(
        Figure::new(
            "Figure 4a: CDF of cellular demand per candidate AS (log10 DU)",
            "log10(cellular demand, DU)",
            "CDF",
        )
        .with(cdf_series("Demand", &demand_vals)),
    );
    a.figures.push(
        Figure::new(
            "Figure 4b: CDF of NetInfo beacon hits per candidate AS (log10)",
            "log10(hits)",
            "CDF",
        )
        .with(cdf_series("Cellular", &cell_hit_vals))
        .with(cdf_series("Total", &hit_vals)),
    );
    if !demand_vals.is_empty() {
        let max = demand_vals.iter().cloned().fold(f64::MIN, f64::max);
        let below = demand_vals.iter().filter(|v| **v < max / 1e6).count() as f64
            / demand_vals.len() as f64;
        a.notes.push(format!(
            "{:.0}% of candidate ASes sit ≥6 orders of magnitude below the largest (paper: 40%)",
            100.0 * below
        ));
    }
    a
}

/// Table 5: the AS filter pipeline.
pub fn table5_filters(study: &Study) -> Artifact {
    let mut a = Artifact::new("table5", "Application of AS filtering rules");
    let (c, r1, r2, r3) = study.filter.table5_counts();
    let mut t = Table::new(
        "Table 5: filtering rule outcomes",
        &["Rule", "Filtered", "Remaining"],
    );
    t.row(vec![
        "0. ASes with ≥1 cellular CIDR (candidates)".into(),
        "-".into(),
        fmt::int(c as u64),
    ]);
    t.row(vec![
        "1. Exclude cellular demand < 0.1 DU".into(),
        fmt::int(study.filter.removed_low_demand.len() as u64),
        fmt::int(r1 as u64),
    ]);
    t.row(vec![
        "2. Exclude < min beacon hits".into(),
        fmt::int(study.filter.removed_low_hits.len() as u64),
        fmt::int(r2 as u64),
    ]);
    t.row(vec![
        "3. Exclude by CAIDA AS class".into(),
        fmt::int(study.filter.removed_class.len() as u64),
        fmt::int(r3 as u64),
    ]);
    a.notes.push(format!(
        "measured pipeline {c} → {r1} → {r2} → {r3} (paper: 1,263 → 770 → 717 → 668)"
    ));
    a.tables.push(t);
    a
}

/// Table 6: cellular ASes per continent.
pub fn table6_cellular_ases(study: &Study, as_db: &AsDatabase) -> Artifact {
    let mut a = Artifact::new("table6", "Detected cellular ASes by continent");
    let (counts, avg) = cellspot::WorldView::table6(&study.filter.cellular_ases, as_db);
    let mut t = Table::new(
        "Table 6: cellular AS counts",
        &["", "AF", "AS", "EU", "NA", "OC", "SA"],
    );
    t.row(
        std::iter::once("# ASN".to_string())
            .chain(
                CONTINENTS
                    .iter()
                    .map(|c| fmt::int(counts[c.index()] as u64)),
            )
            .collect(),
    );
    t.row(
        std::iter::once("Avg./Country".to_string())
            .chain(CONTINENTS.iter().map(|c| fmt::f(avg[c.index()], 1)))
            .collect(),
    );
    a.notes.push(format!(
        "total {} cellular ASes (paper: 668; per continent AF 114, AS 213, EU 185, NA 93, OC 16, SA 48)",
        counts.iter().sum::<usize>()
    ));
    a.tables.push(t);
    a
}

/// Fig. 5: per-AS cellular demand and subnet fractions.
pub fn fig5_mixed_cdfs(study: &Study) -> Artifact {
    let mut a = Artifact::new(
        "fig5",
        "Cellular demand and subnet fraction per cellular AS",
    );
    let (cfd_cdf, subnet_cdf) = study.mixed.fig5();
    let fig = Figure::new(
        "Figure 5: CDFs over the 668-style cellular AS set",
        "fraction",
        "CDF",
    )
    .with(Series::new(
        "Cell. Demand Fraction",
        cfd_cdf.series(0.0, 1.0, 100),
    ))
    .with(Series::new(
        "Cell. Subnet Fraction",
        subnet_cdf.series(0.0, 1.0, 100),
    ));
    let (mixed, dedicated) = study.mixed.counts();
    a.notes.push(format!(
        "{mixed} mixed / {dedicated} dedicated = {:.1}% mixed (paper: 392/276 = 58.6%)",
        100.0 * study.mixed.mixed_fraction()
    ));
    a.notes.push(format!(
        "{:.1}% of cellular demand originates in mixed ASes (paper: 32.7%)",
        100.0 * study.mixed.mixed_demand_share()
    ));
    let gap = (0..=100)
        .map(|i| i as f64 / 100.0)
        .map(|x| (subnet_cdf.eval(x) - cfd_cdf.eval(x)).abs())
        .fold(0.0f64, f64::max);
    a.notes.push(format!(
        "max gap between subnet- and demand-fraction CDFs: {gap:.2} (paper: > 0.5 at median)"
    ));
    a.figures.push(fig);
    a
}

/// Pick the showcase operators from observable data only: the largest
/// dedicated US operator, and the largest *strongly* mixed European
/// operator — the paper's Fig. 6b/Fig. 8 subject is a major EU telecom
/// whose cellular side is only ~5% of its demand, so we require a low
/// cellular fraction rather than just "not dedicated".
pub fn select_showcases(study: &Study, as_db: &AsDatabase) -> (Option<Asn>, Option<Asn>) {
    let mut dedicated_us = None;
    for row in &study.ranking.rows {
        let Some(rec) = as_db.get(row.asn) else {
            continue;
        };
        if !row.mixed && rec.country.as_str() == "US" {
            dedicated_us = Some(row.asn);
            break;
        }
    }
    // Verdicts are sorted by descending cellular demand; take the first
    // European AS with a strongly mixed profile (CFD < 0.3).
    let mixed_eu = study
        .mixed
        .verdicts
        .iter()
        .find(|v| {
            v.is_mixed
                && v.cfd < 0.3
                && as_db
                    .get(v.asn)
                    .map(|r| r.continent == Continent::Europe)
                    .unwrap_or(false)
        })
        .map(|v| v.asn);
    (dedicated_us, mixed_eu)
}

/// Fig. 6: ratio breakdown of one dedicated and one mixed operator.
pub fn fig6_showcases(study: &Study, as_db: &AsDatabase) -> Artifact {
    let mut a = Artifact::new("fig6", "Breakdown of two large cellular ASes");
    let (ded, mixed) = select_showcases(study, as_db);
    for (label, asn) in [("dedicated US", ded), ("mixed EU", mixed)] {
        let Some(asn) = asn else {
            a.notes.push(format!("no {label} operator found"));
            continue;
        };
        let b = AsRatioBreakdown::build(asn, &study.index);
        let fig = Figure::new(
            format!("Figure 6 ({label}, {asn}): CDFs over cellular ratio"),
            "cellular ratio",
            "CDF",
        )
        .with(Series::new(
            "Subnet Fraction",
            b.subnet_cdf.series(0.0, 1.0, 100),
        ))
        .with(Series::new(
            "Demand Fraction",
            b.demand_cdf.series(0.0, 1.0, 100),
        ));
        if label == "dedicated US" {
            a.notes.push(format!(
                "dedicated: {:.0}% of /24s at ratio 0 (paper: 40%), demand concentrated at ratios 0.7-0.9",
                100.0 * b.subnet_cdf.eval(0.0)
            ));
        } else {
            a.notes.push(format!(
                "mixed: {:.1}% of /24s above ratio 0.2 (paper: <2%)",
                100.0 * (1.0 - b.subnet_cdf.eval(0.2))
            ));
        }
        a.figures.push(fig);
    }
    a
}

/// Fig. 7: ranked per-AS cellular demand.
pub fn fig7_ranked_demand(study: &Study) -> Artifact {
    let mut a = Artifact::new("fig7", "Cellular demand distribution across operators");
    let fig = Figure::new(
        "Figure 7: share of global cellular demand by AS rank",
        "AS rank",
        "share of cellular demand",
    )
    .log_x()
    .log_y()
    .with(Series::new(
        "Cellular demand",
        study
            .ranking
            .series()
            .into_iter()
            .map(|(r, s)| (r as f64, s.max(1e-9)))
            .collect::<Vec<_>>(),
    ));
    a.notes.push(format!(
        "top-5 ASes hold {:.1}% (paper 35.9%), top-10 hold {:.1}% (paper 38%)",
        100.0 * study.ranking.top_share(5),
        100.0 * study.ranking.top_share(10)
    ));
    if study.ranking.rows.len() >= 10 {
        a.notes.push(format!(
            "rank-1 AS holds {:.1}x the demand of rank 10 (paper: 8.8x)",
            study.ranking.rows[0].cell_share / study.ranking.rows[9].cell_share.max(1e-12)
        ));
    }
    a.figures.push(fig);
    a
}

/// Table 7: top-10 cellular ASes.
pub fn table7_top10(study: &Study) -> Artifact {
    let mut a = Artifact::new("table7", "Top ten ASes by cellular demand");
    let mut t = Table::new(
        "Table 7: top operators",
        &["Rank", "Country", "Demand (%)", "Mixed"],
    );
    for row in study.ranking.top(10) {
        t.row(vec![
            row.rank.to_string(),
            row.country.as_str().into(),
            fmt::pct(100.0 * row.cell_share),
            if row.mixed { "yes" } else { "" }.into(),
        ]);
    }
    let us_top = study
        .ranking
        .top(10)
        .iter()
        .filter(|r| r.country.as_str() == "US")
        .count();
    let mixed_top = study.ranking.top(10).iter().filter(|r| r.mixed).count();
    a.notes.push(format!(
        "{us_top} of the top 10 are US (paper: 4 of top 5 US); {mixed_top} of top 10 mixed (paper: 3)"
    ));
    a.tables.push(t);
    a
}

/// Fig. 8: ranked subnet demand inside the large mixed European operator.
pub fn fig8_subnet_demand(study: &Study, as_db: &AsDatabase) -> Artifact {
    let mut a = Artifact::new(
        "fig8",
        "Subnet demand, cellular vs fixed, mixed EU operator",
    );
    let (_, mixed_eu) = select_showcases(study, as_db);
    let Some(asn) = mixed_eu else {
        a.notes.push("no mixed European operator found".into());
        return a;
    };
    let profile = SubnetDemandProfile::build(asn, &study.index, &study.classification);
    let ranked = |vals: &[f64]| -> Vec<(f64, f64)> {
        vals.iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.0)
            .map(|(i, v)| ((i + 1) as f64, *v))
            .collect()
    };
    let fig = Figure::new(
        format!("Figure 8 ({asn}): DU per ranked /24 subnet"),
        "subnet rank",
        "Demand Units",
    )
    .log_x()
    .log_y()
    .with(Series::new("Cellular", ranked(&profile.cellular)))
    .with(Series::new("Fixed", ranked(&profile.fixed)));
    let k25 = profile.cellular_top_share(25);
    a.notes.push(format!(
        "top 25 cellular /24s hold {:.1}% of cellular demand (paper: 99.3%)",
        100.0 * k25
    ));
    a.notes.push(format!(
        "blocks covering 99% of demand: cellular {}, fixed {} (paper: cellular ~25, fixed 3 orders of magnitude more)",
        profile.cellular_blocks_for_share(0.99),
        profile.fixed_blocks_for_share(0.99)
    ));
    a.figures.push(fig);
    a
}

/// Fig. 9: resolver sharing in mixed cellular networks.
pub fn fig9_resolver_sharing(study: &Study, dns: &DnsSim) -> Artifact {
    let mut a = Artifact::new(
        "fig9",
        "Cellular demand fraction across resolvers in mixed ASes",
    );
    let Some(analysis) = &study.dns else {
        a.notes.push("study ran without DNS data".into());
        return a;
    };
    let mixed = study.mixed.mixed_asns();
    let cdf = analysis.mixed_resolver_cdf(dns, &mixed);
    let fig = Figure::new(
        "Figure 9: CDF of resolver cellular fraction (mixed ASes)",
        "resolver cellular fraction",
        "CDF",
    )
    .with(Series::new(
        "Resolver Cellular Fraction",
        cdf.series(0.0, 1.0, 100),
    ));
    let shared = analysis.shared_fraction(dns, &mixed, 0.02);
    a.notes.push(format!(
        "{:.0}% of resolvers in mixed ASes serve both populations (paper: ~60%)",
        100.0 * shared
    ));
    if let Some(median) = cdf.quantile(0.5) {
        a.notes.push(format!(
            "median resolver cellular fraction {median:.2} (paper: ≈0.25)"
        ));
    }
    let distant = analysis.distant_shared_resolvers(dns, &mixed, 5.0);
    a.notes.push(format!(
        "{} shared resolvers sit ≥5x farther from their cellular clients (paper's Brazilian case: 1,470 miles)",
        distant.len()
    ));
    a.figures.push(fig);
    a
}

/// Fig. 10: public DNS usage for ten selected operators.
pub fn fig10_public_dns(study: &Study, dns: &DnsSim, as_db: &AsDatabase) -> Artifact {
    let mut a = Artifact::new("fig10", "Public DNS usage in selected cellular networks");
    let Some(analysis) = &study.dns else {
        a.notes.push("study ran without DNS data".into());
        return a;
    };
    let usage = analysis.public_dns_by_as(dns, &study.index, &study.classification, true);

    // The paper's selection: two US, then BR VN SA IN, two HK, NG DZ.
    let wanted = [
        ("US1", "US", 0),
        ("US2", "US", 1),
        ("BR1", "BR", 0),
        ("VN1", "VN", 0),
        ("SA1", "SA", 0),
        ("IN1", "IN", 0),
        ("HK1", "HK", 0),
        ("HK2", "HK", 1),
        ("NG1", "NG", 0),
        ("DZ1", "DZ", 0),
    ];
    let mut t = Table::new(
        "Figure 10 (as a table): fraction of demand via public DNS",
        &[
            "Operator",
            "GoogleDNS",
            "OpenDNS",
            "Level 3",
            "Total public",
        ],
    );
    for (label, cc, nth) in wanted {
        let Some(row) = study
            .ranking
            .rows
            .iter()
            .filter(|r| {
                as_db
                    .get(r.asn)
                    .map(|rec| rec.country.as_str() == cc)
                    .unwrap_or(false)
            })
            .nth(nth)
        else {
            continue;
        };
        let Some(u) = usage.get(&row.asn) else {
            continue;
        };
        let mut cells = vec![label.to_string()];
        for svc in PUBLIC_DNS_SERVICES {
            cells.push(fmt::f(u.fraction(svc), 3));
        }
        cells.push(fmt::f(u.total_fraction(), 3));
        t.row(cells);
        if cc == "US" {
            a.notes.push(format!(
                "{label}: public fraction {:.3} (paper: US operators < 0.02)",
                u.total_fraction()
            ));
        }
        if cc == "DZ" {
            a.notes.push(format!(
                "{label}: public fraction {:.2} (paper: 0.97 via a DNS forwarder)",
                u.total_fraction()
            ));
        }
    }
    a.tables.push(t);
    a
}

/// Table 8: cellular demand statistics by continent.
pub fn table8_continent_demand(study: &Study) -> Artifact {
    let mut a = Artifact::new("table8", "Cellular demand statistics by continent");
    let mut t = Table::new(
        "Table 8: continent-level cellular demand",
        &[
            "Continent",
            "Cellular Fraction (%)",
            "Global Cellular (%)",
            "Subscribers (M)",
            "Demand/1000 Subs",
        ],
    );
    // The paper's row order: OC, AF, SA, EU, NA, AS.
    let order = [
        Continent::Oceania,
        Continent::Africa,
        Continent::SouthAmerica,
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::Asia,
    ];
    for c in order {
        let d = &study.view.demand[c.index()];
        t.row(vec![
            c.name().into(),
            fmt::pct(d.cellular_fraction_pct()),
            fmt::pct(study.view.continent_cell_share_pct(c)),
            fmt::f(netaddr::ituc_subscribers_millions(c), 1),
            fmt::f(study.view.demand_per_1000_subscribers(c), 4),
        ]);
    }
    t.row(vec![
        "Overall".into(),
        fmt::pct(study.view.global_cellular_pct()),
        "100.0%".into(),
        fmt::f(5_824.3, 1),
        fmt::f(study.view.global_cell_du / (5_824.3 * 1_000.0), 4),
    ]);
    a.notes.push(format!(
        "global cellular fraction {:.1}% (paper: 16.2%)",
        study.view.global_cellular_pct()
    ));
    a.notes.push(
        "paper row anchors: OC 23.4/3.0, AF 25.5/2.9, SA 12.5/4.1, EU 11.8/15.9, NA 16.6/35, AS 26.0/38.9".into(),
    );
    a.tables.push(t);
    a
}

/// Fig. 11: top-10 countries per continent by global cellular share.
pub fn fig11_top_countries(study: &Study) -> Artifact {
    let mut a = Artifact::new("fig11", "Global cellular demand share by country");
    for c in CONTINENTS {
        let top = study.view.top_countries(c, 10);
        if top.is_empty() {
            continue;
        }
        let mut t = Table::new(
            format!(
                "Figure 11 ({}): top countries by global cellular share",
                c.name()
            ),
            &["Country", "Share of global cellular (%)"],
        );
        for (code, share) in &top {
            t.row(vec![code.as_str().into(), fmt::f(100.0 * share, 3)]);
        }
        a.tables.push(t);
    }
    let us = study
        .view
        .top_countries(Continent::NorthAmerica, 1)
        .first()
        .map(|(c, s)| (c.as_str().to_string(), *s));
    if let Some((code, share)) = us {
        a.notes.push(format!(
            "largest country {code} holds {:.1}% of global cellular demand (paper: US > 30%)",
            100.0 * share
        ));
    }
    // Top-5 / top-20 shares across all countries.
    let mut all: Vec<f64> = study.view.countries.values().map(|c| c.cell_du).collect();
    all.sort_by(|a, b| b.partial_cmp(a).expect("DU finite"));
    let total: f64 = all.iter().sum();
    if total > 0.0 {
        let top5: f64 = all.iter().take(5).sum::<f64>() / total;
        let top20: f64 = all.iter().take(20).sum::<f64>() / total;
        a.notes.push(format!(
            "top-5 countries hold {:.1}% (paper 55.7%), top-20 hold {:.1}% (paper 80%)",
            100.0 * top5,
            100.0 * top20
        ));
    }
    a
}

/// Fig. 12: country scatter of cellular fraction vs cellular demand.
pub fn fig12_country_scatter(study: &Study) -> Artifact {
    let mut a = Artifact::new(
        "fig12",
        "Countries by cellular fraction and cellular demand",
    );
    let rows = study.view.country_scatter();
    let fig = Figure::new(
        "Figure 12: cellular demand ratio (x) vs cellular DU (y)",
        "cellular fraction of country demand",
        "cellular DU",
    )
    .log_y()
    .with(Series::new(
        "Countries",
        rows.iter()
            .map(|(_, cfd, du)| (*cfd, *du))
            .collect::<Vec<_>>(),
    ));
    for code in ["US", "GH", "LA", "ID", "FR"] {
        if let Some((_, cfd, du)) = rows.iter().find(|(c, _, _)| c.as_str() == code) {
            a.notes.push(format!(
                "{code}: cellular fraction {cfd:.3}, cellular demand {du:.1} DU (paper anchors: US .166, GH .959, LA .871, ID .63, FR .121)"
            ));
        }
    }
    a.figures.push(fig);
    a
}

// ---------------------------------------------------------------------
// Extension experiments: ablations of the paper's design choices and the
// §8 future-work temporal study. These have no direct paper counterpart
// table/figure; EXPERIMENTS.md discusses them as extensions.
// ---------------------------------------------------------------------

/// Ext. A: ASN-level vs prefix-level identification (the paper's central
/// methodological claim quantified).
pub fn ext_asn_level(study: &Study) -> Artifact {
    use cellspot::{asn_level_ablation, AsnStrategy};
    let mut a = Artifact::new(
        "ext-asn-level",
        "Ablation: ASN-granularity vs prefix-granularity identification",
    );
    let mut t = Table::new(
        "Demand mislabeled when classifying whole ASes instead of /24 blocks",
        &[
            "Strategy",
            "Cellular ASes",
            "Overcounted DU",
            "Undercounted DU",
            "Relative error",
        ],
    );
    for strategy in [
        AsnStrategy::AnyCellularBlock,
        AsnStrategy::MajorityBlocks,
        AsnStrategy::MajorityDemand,
    ] {
        let abl = asn_level_ablation(
            &study.index,
            &study.classification,
            &study.as_aggregates,
            strategy,
        );
        t.row(vec![
            format!("{strategy:?}"),
            fmt::int(abl.cellular_ases.len() as u64),
            fmt::f(abl.overcounted_du, 1),
            fmt::f(abl.undercounted_du, 1),
            fmt::f(abl.relative_error(), 3),
        ]);
        if strategy == AsnStrategy::AnyCellularBlock {
            a.notes.push(format!(
                "straw-man AS labeling misestimates cellular demand by {:.0}% — the paper's case for prefix-level identification",
                100.0 * abl.relative_error()
            ));
        }
    }
    a.tables.push(t);
    a
}

/// Ext. B: aggregation-granularity ablation (§4.1's /24 choice).
pub fn ext_granularity(study: &Study) -> Artifact {
    use cellspot::granularity_sweep;
    let mut a = Artifact::new(
        "ext-granularity",
        "Ablation: classification grain from /24 up to /16",
    );
    let mut t = Table::new(
        "Label churn when beacons are aggregated above /24",
        &[
            "Prefix",
            "Cellular aggregates",
            "Relabeled blocks",
            "Relabeled DU",
        ],
    );
    let sweep = granularity_sweep(&study.index, &study.classification);
    for g in &sweep {
        t.row(vec![
            format!("/{}", g.prefix_len),
            fmt::int(g.cellular_aggregates as u64),
            format!("{:.2}%", 100.0 * g.relabeled_blocks_fraction),
            fmt::f(g.relabeled_du, 1),
        ]);
    }
    if let (Some(fine), Some(coarse)) = (sweep.first(), sweep.last()) {
        a.notes.push(format!(
            "coarsening /{} → /{} relabels {:.1} DU of demand — /24 homogeneity (Lee & Spring) is what makes the method viable",
            fine.prefix_len, coarse.prefix_len, coarse.relabeled_du
        ));
    }
    a.tables.push(t);
    a
}

/// Ext. C: AS-filter rule ablation (§5.1): re-run the filter with one
/// rule disabled at a time. Because rules apply in sequence, an AS an
/// early rule rejected may still fall to a later one, so the true extra
/// admissions come from the re-run, not from the removal lists.
pub fn ext_rule_ablation(study: &Study, as_db: &AsDatabase) -> Artifact {
    use cellspot::{rule_ablation, FilterConfig};
    let mut a = Artifact::new(
        "ext-rules",
        "Ablation: disabling each AS-filter rule in turn",
    );
    let cfg = FilterConfig {
        min_cell_du: study.config.min_cell_du,
        min_netinfo_hits: study.config.min_netinfo_hits,
    };
    let abl = rule_ablation(&study.as_aggregates, as_db, &cfg);
    let base = abl.baseline.cellular_ases.len();
    let extra = abl.extra_admitted();
    let mut t = Table::new(
        "Cellular AS set size with one rule disabled",
        &["Variant", "Cellular ASes", "Extra admitted"],
    );
    t.row(vec![
        "baseline (all rules)".into(),
        fmt::int(base as u64),
        "0".into(),
    ]);
    for (name, e) in [
        ("without rule 1 (demand)", extra[0]),
        ("without rule 2 (hits)", extra[1]),
        ("without rule 3 (class)", extra[2]),
    ] {
        t.row(vec![
            name.into(),
            fmt::int((base + e) as u64),
            fmt::int(e as u64),
        ]);
    }
    a.notes.push(format!(
        "rule 1 guards against {} spurious ASes, rule 2 against {}, rule 3 against {} (paper: 493 / 53 / 49)",
        study.filter.removed_low_demand.len(),
        study.filter.removed_low_hits.len(),
        study.filter.removed_class.len()
    ));
    a.tables.push(t);
    a
}

/// Ext. D: temporal stability of cellular address space (§8 future work).
/// Takes per-month classifications prepared by the harness.
pub fn ext_temporal(analysis: &cellspot::TemporalAnalysis) -> Artifact {
    let mut a = Artifact::new(
        "ext-temporal",
        "Extension: monthly evolution of cellular address space",
    );
    let mut t = Table::new(
        "Cellular /24 set stability month over month",
        &[
            "Month",
            "Cellular blocks",
            "Persisted",
            "Appeared",
            "Gone",
            "Jaccard",
            "Persisted demand",
        ],
    );
    for tr in &analysis.transitions {
        t.row(vec![
            tr.month.to_string(),
            fmt::int(tr.cellular as u64),
            fmt::int(tr.persisted as u64),
            fmt::int(tr.appeared as u64),
            fmt::int(tr.disappeared as u64),
            fmt::f(tr.jaccard, 3),
            format!("{:.1}%", 100.0 * tr.persisted_demand_fraction),
        ]);
    }
    a.notes.push(format!(
        "mean monthly persistence {:.1}% of cellular blocks, but {:.1}% of cellular demand stays on persistent blocks — churn lives in the idle tail",
        100.0 * analysis.mean_persistence(),
        100.0 * analysis.mean_persisted_demand()
    ));
    a.tables.push(t);
    a
}

/// Ext. E: evidence-aware classification — how much of the cellular set
/// and its demand survives an explicit confidence requirement.
pub fn ext_confidence(study: &Study) -> Artifact {
    use cellspot::classify_with_confidence;
    let mut a = Artifact::new(
        "ext-confidence",
        "Extension: Wilson-confidence classification",
    );
    let mut t = Table::new(
        "Cellular labels under increasing evidence requirements (threshold 0.5)",
        &[
            "z",
            "Confidence",
            "Cellular blocks",
            "Uncertain blocks",
            "Cellular DU",
            "Uncertain DU",
        ],
    );
    let mut first_cell = None;
    let mut last = None;
    for (z, label) in [
        (0.0, "none (paper)"),
        (1.96, "95%"),
        (2.58, "99%"),
        (3.29, "99.9%"),
    ] {
        let s = classify_with_confidence(&study.index, study.config.threshold, z);
        t.row(vec![
            fmt::f(z, 2),
            label.into(),
            fmt::int(s.cellular as u64),
            fmt::int(s.uncertain as u64),
            fmt::f(s.cellular_du, 1),
            fmt::f(s.uncertain_du, 1),
        ]);
        if first_cell.is_none() {
            first_cell = Some(s.clone());
        }
        last = Some(s);
    }
    if let (Some(base), Some(strict)) = (first_cell, last) {
        let kept_blocks = strict.cellular as f64 / base.cellular.max(1) as f64;
        let kept_du = strict.cellular_du / base.cellular_du.max(1e-9);
        a.notes.push(format!(
            "at 99.9% confidence only {:.0}% of cellular blocks survive, but {:.0}% of cellular demand does — the paper's 'high confidence lower bound' is demand-robust, not block-robust",
            100.0 * kept_blocks,
            100.0 * kept_du
        ));
    }
    a.tables.push(t);
    a
}
