//! # report — tables, figures, and per-experiment artifacts
//!
//! Rendering layer for the reproduction: a plain-text [`Table`] renderer
//! with CSV export, a [`Figure`] type with long-format CSV and an ascii
//! plotter, and — in [`experiments`] — one builder per table and figure
//! of the paper, each consuming a [`cellspot::Study`] and emitting an
//! [`Artifact`] with headline notes that quote the paper's reported
//! values next to the measured ones.

mod figure;
mod table;

pub mod experiments;

pub use experiments::Artifact;
pub use figure::{Figure, Scale, Series};
pub use table::{fmt, Align, Table};

use asdb::AsDatabase;
use cellspot::Study;
use dnssim::DnsSim;

/// Build every artifact of the paper's evaluation, in paper order.
pub fn all_artifacts(study: &Study, as_db: &AsDatabase, dns: &DnsSim) -> Vec<Artifact> {
    use experiments as e;
    vec![
        e::table1_related_work(),
        e::table2_datasets(study),
        e::fig1_netinfo_adoption(),
        e::fig2_ratio_cdfs(study),
        e::fig3_threshold_sweeps(study),
        e::table3_validation(study),
        e::table4_with_v6(study, as_db),
        e::fig4_as_distributions(study),
        e::table5_filters(study),
        e::table6_cellular_ases(study, as_db),
        e::fig5_mixed_cdfs(study),
        e::fig6_showcases(study, as_db),
        e::fig7_ranked_demand(study),
        e::table7_top10(study),
        e::fig8_subnet_demand(study, as_db),
        e::fig9_resolver_sharing(study, dns),
        e::fig10_public_dns(study, dns, as_db),
        e::table8_continent_demand(study),
        e::fig11_top_countries(study),
        e::fig12_country_scatter(study),
    ]
}

/// Build the extension artifacts: the design-choice ablations DESIGN.md
/// calls out. (The temporal extension needs multi-month datasets, which
/// the harness prepares; see [`experiments::ext_temporal`].)
pub fn ablation_artifacts(study: &Study, as_db: &AsDatabase) -> Vec<Artifact> {
    use experiments as e;
    vec![
        e::ext_asn_level(study),
        e::ext_granularity(study),
        e::ext_rule_ablation(study, as_db),
        e::ext_confidence(study),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnsim::generate_datasets;
    use cellspot::{Pipeline, StudyConfig};
    use worldgen::{World, WorldConfig};

    #[test]
    fn all_artifacts_render_without_panicking() {
        let wcfg = WorldConfig::mini();
        let min_hits = wcfg.scaled_min_beacon_hits();
        let world = World::generate(wcfg);
        let (beacons, demand) = generate_datasets(&world);
        let dns = dnssim::generate_dns(&world);
        let study = Pipeline::new(&beacons, &demand)
            .as_db(&world.as_db)
            .carriers(&world.carriers)
            .dns(&dns)
            .study_config(StudyConfig::default().with_min_hits(min_hits))
            .run()
            .expect("default study config is valid")
            .into_study();
        let artifacts = all_artifacts(&study, &world.as_db, &dns);
        assert_eq!(artifacts.len(), 20, "every table and figure is covered");
        let mut ids: Vec<&str> = artifacts.iter().map(|a| a.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 20, "artifact ids are unique");
        for a in &artifacts {
            let text = a.render();
            assert!(text.contains(a.id), "{} rendering lacks its id", a.id);
            assert!(!text.trim().is_empty());
            let _csv = a.to_csv();
        }
        // Spot-check specific content.
        let t7 = artifacts.iter().find(|a| a.id == "table7").unwrap();
        assert!(t7.render().contains("US"), "top-10 contains US operators");
        let f12 = artifacts.iter().find(|a| a.id == "fig12").unwrap();
        assert!(f12.notes.iter().any(|n| n.starts_with("GH:")));
    }
}
