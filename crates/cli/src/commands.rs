//! Command implementations for the `cellspot` binary. Each command takes
//! parsed inputs and returns its output as a string (plus files written
//! by the caller), so tests can exercise them directly.

use asdb::{AsDatabase, CarrierGroundTruth};
use cdnsim::{BeaconDataset, DemandDataset};
use celldelta::{Delta, DeltaError, EpochCounters};
use cellserve::{Artifact, ArtifactFormat, IndexView, IpKey, QueryEngine, ServeError};
use cellspot::{
    aggregate_by_as, identify_cellular_ases, threshold_sweep, validate_carrier, BlockIndex,
    CellspotError, Classification, FilterConfig, MixedAnalysis, Pipeline, WorldView, DEDICATED_CFD,
    DEFAULT_THRESHOLD,
};
use netaddr::CONTINENTS;

use crate::io::block_to_string;

/// `classify`: label every block and emit a CSV of the cellular ones.
///
/// Output columns: `block,asn,cellular_ratio,netinfo_hits,du`.
///
/// Errors (instead of panicking) when a classified block cannot be found
/// in the joined index — possible only when the input CSVs violate the
/// datasets' uniqueness invariant (duplicate block rows survive release
/// builds), so adversarial input reaches the CLI's error path.
pub fn classify(
    beacons: &BeaconDataset,
    demand: &DemandDataset,
    threshold: Option<f64>,
    obs: &cellobs::Observer,
) -> Result<(String, usize), CellspotError> {
    let t = threshold.unwrap_or(DEFAULT_THRESHOLD);
    let (index, class) = Pipeline::new(beacons, demand)
        .threshold(t)
        .observer(obs.clone())
        .classify()?;
    let mut out = String::from("block,asn,cellular_ratio,netinfo_hits,du\n");
    for (block, asn) in class.iter() {
        let obs = index.get(block).ok_or_else(|| {
            CellspotError::InconsistentDatasets(format!(
                "classified block {} is missing from the joined index \
                 (duplicate block rows?)",
                block_to_string(block)
            ))
        })?;
        out.push_str(&format!(
            "{},{},{:.4},{},{:.4}\n",
            block_to_string(block),
            asn.value(),
            obs.cellular_ratio().unwrap_or(0.0),
            obs.netinfo_hits,
            obs.du
        ));
    }
    let n = class.len();
    Ok((out, n))
}

/// `identify-as`: run the §5 pipeline and emit the cellular AS list plus
/// a human-readable funnel report.
pub fn identify_as(
    beacons: &BeaconDataset,
    demand: &DemandDataset,
    as_db: &AsDatabase,
    min_cell_du: f64,
    min_hits: f64,
) -> (String, String) {
    let index = BlockIndex::build(beacons, demand);
    let class = Classification::with_default_threshold(&index);
    let aggs = aggregate_by_as(&index, &class);
    let outcome = identify_cellular_ases(
        &aggs,
        as_db,
        &FilterConfig {
            min_cell_du,
            min_netinfo_hits: min_hits,
        },
    );
    let mixed = MixedAnalysis::build(&outcome.cellular_ases, &aggs, DEDICATED_CFD);

    let mut csv = String::from("asn,country,cell_du,total_du,cfd,kind\n");
    for v in &mixed.verdicts {
        let country = as_db
            .get(v.asn)
            .map(|r| r.country.as_str().to_string())
            .unwrap_or_else(|| "??".into());
        csv.push_str(&format!(
            "{},{},{:.4},{:.4},{:.4},{}\n",
            v.asn.value(),
            country,
            v.cell_du,
            v.cell_du / v.cfd.max(1e-12),
            v.cfd,
            if v.is_mixed { "mixed" } else { "dedicated" }
        ));
    }

    let (c, r1, r2, r3) = outcome.table5_counts();
    let (n_mixed, n_dedicated) = mixed.counts();
    let report = format!(
        "candidates {c} -> after demand rule {r1} -> after hits rule {r2} -> final {r3}\n\
         mixed {n_mixed} / dedicated {n_dedicated} ({:.1}% mixed)\n",
        100.0 * mixed.mixed_fraction()
    );
    (csv, report)
}

/// `index build`: run the classification and freeze it into a sealed
/// serving artifact. Returns the artifact bytes (the caller writes them
/// atomically) plus a one-line human summary carrying the artifact's
/// content hash, for correlating with the daemon's `/generation`.
///
/// Every AS holding at least one cellular block gets a mixed/dedicated
/// verdict here — the §5 demand/hits funnel filters *which ASes count as
/// cellular operators*, but the serving artifact must label every prefix
/// it ships, so the funnel is deliberately not applied.
///
/// Routed through [`celldelta::classify_epoch`], the same canonical
/// classifier the delta pipeline uses, so `delta apply` on an artifact
/// built here is byte-identical to rebuilding from scratch.
pub fn index_build(
    beacons: &BeaconDataset,
    demand: &DemandDataset,
    threshold: Option<f64>,
    format: ArtifactFormat,
    obs: &cellobs::Observer,
) -> Result<(Vec<u8>, String), CellspotError> {
    let t = threshold.unwrap_or(DEFAULT_THRESHOLD);
    let index = BlockIndex::build(beacons, demand);
    let counters = EpochCounters::from_index(0, &index);
    let frozen = celldelta::classify_epoch(&counters, t);
    let bytes = Artifact::encode(&frozen, format);
    let hash = cellserve::content_hash(&bytes);
    obs.counter("index.blocks").add(counters.len() as u64);
    obs.counter("index.ases").add(frozen.as_count() as u64);
    obs.gauge("index.artifact.hash").set(hash);
    let (v4, v6) = frozen.prefix_counts();
    let summary = format!(
        "frozen {v4} IPv4 + {v6} IPv6 prefixes, {} labels over {} ASes from {} blocks, \
         {} bytes (format v{}), content hash {}\n",
        frozen.label_count(),
        frozen.as_count(),
        counters.len(),
        bytes.len(),
        format.version(),
        cellserve::hash_hex(hash),
    );
    Ok((bytes, summary))
}

/// `index migrate`: convert a sealed artifact between formats without
/// reclassifying anything. The conversion is byte-deterministic — both
/// encoders are canonical, so migrating the same input always yields the
/// same output, and a v1→v2→v1 round trip reproduces the v1 bytes.
/// Migrating to the format the artifact already has is an error (the
/// output would be the input; copy the file instead).
pub fn index_migrate(bytes: &[u8], to: ArtifactFormat) -> Result<(Vec<u8>, String), ServeError> {
    let from = Artifact::sniff_format(bytes).ok_or_else(|| {
        ServeError::Corrupt("unrecognized artifact (bad magic or unknown version)".into())
    })?;
    if from == to {
        return Err(ServeError::Corrupt(format!(
            "artifact is already {to}; nothing to migrate"
        )));
    }
    let handle = Artifact::from_bytes(bytes)?;
    let migrated = Artifact::encode(&handle.to_frozen(), to);
    let summary = format!(
        "migrated {from} ({} bytes, hash {}) -> {to} ({} bytes, hash {})\n",
        bytes.len(),
        cellserve::hash_hex(cellserve::content_hash(bytes)),
        migrated.len(),
        cellserve::hash_hex(cellserve::content_hash(&migrated)),
    );
    Ok((migrated, summary))
}

/// `delta build`: classify the given datasets at `epoch` and seal the
/// changes against `base_bytes` as a CELLDELT delta chained on the
/// base's content hash. Returns the delta bytes (the caller writes them
/// atomically) plus a one-line summary.
pub fn delta_build(
    base_bytes: &[u8],
    beacons: &BeaconDataset,
    demand: &DemandDataset,
    threshold: Option<f64>,
    base_epoch: u64,
    epoch: u64,
    obs: &cellobs::Observer,
) -> Result<(Vec<u8>, String), DeltaError> {
    let t = threshold.unwrap_or(DEFAULT_THRESHOLD);
    let index = BlockIndex::build(beacons, demand);
    let counters = EpochCounters::from_index(epoch, &index);
    // Deltas chain within one format, so the freshly classified target
    // is sealed in whatever format the supplied base already has.
    let format = Artifact::sniff_format(base_bytes).ok_or_else(|| {
        DeltaError::Artifact("unrecognized base artifact (bad magic or unknown version)".into())
    })?;
    let target = Artifact::encode(&celldelta::classify_epoch(&counters, t), format);
    let bytes = celldelta::build_delta(base_bytes, &target, base_epoch, epoch)?;
    let delta = Delta::from_bytes(&bytes)?;
    obs.counter("delta.ops").add(delta.op_count() as u64);
    obs.gauge("delta.bytes").set(bytes.len() as u64);
    let summary = format!(
        "delta {} op(s), {} bytes ({:.1}% of the {}-byte full artifact), \
         epoch {} -> {}, base {} -> target {}\n",
        delta.op_count(),
        bytes.len(),
        100.0 * bytes.len() as f64 / target.len() as f64,
        target.len(),
        base_epoch,
        epoch,
        cellserve::hash_hex(delta.base_hash),
        cellserve::hash_hex(delta.target_hash),
    );
    Ok((bytes, summary))
}

/// `delta apply`: patch a base artifact with a sealed delta, verifying
/// the base-hash chain before patching and the promised target hash
/// after. Returns the patched artifact bytes plus a one-line summary.
pub fn delta_apply(base_bytes: &[u8], delta_bytes: &[u8]) -> Result<(Vec<u8>, String), DeltaError> {
    let patched = celldelta::apply_delta(base_bytes, delta_bytes)?;
    let summary = format!(
        "patched artifact {} bytes, content hash {}\n",
        patched.len(),
        cellserve::hash_hex(cellserve::content_hash(&patched)),
    );
    Ok((patched, summary))
}

/// `lookup`: answer a batch of IPs against any loaded artifact view —
/// an owned [`cellserve::FrozenIndex`] or a zero-copy
/// [`cellserve::ArtifactHandle`] straight off an mmap.
///
/// Streams the result CSV (`ip,prefix,asn,class`, with `-` columns for
/// misses, one row per query in input order) straight to `out` — the
/// batch is never materialized as one string, so output size is bounded
/// by the writer, not by memory. Returns the stderr summary line with
/// the match rate and cache counters; an empty batch says so instead of
/// reporting a fake 0% match rate.
pub fn lookup_batch<V: IndexView + ?Sized>(
    index: &V,
    queries: &[IpKey],
    obs: &cellobs::Observer,
    out: &mut dyn std::io::Write,
) -> std::io::Result<String> {
    let engine = QueryEngine::new(index).with_observer(obs.clone());
    let (results, stats) = engine.run(queries);
    out.write_all(b"ip,prefix,asn,class\n")?;
    for (ip, res) in queries.iter().zip(&results) {
        match res {
            Some(m) => writeln!(
                out,
                "{ip},{},{},{}",
                m.prefix,
                m.label.asn.value(),
                m.label.class
            )?,
            None => writeln!(out, "{ip},-,-,-")?,
        }
    }
    out.flush()?;
    if stats.lookups == 0 {
        return Ok("0 lookups\n".to_string());
    }
    let pct = 100.0 * stats.matched as f64 / stats.lookups as f64;
    Ok(format!(
        "{} lookups: {} matched ({pct:.1}%), cache {} hit(s) / {} miss(es) / {} uncached\n",
        stats.lookups, stats.matched, stats.cache_hits, stats.cache_misses, stats.uncached,
    ))
}

/// `stream`: summarize a finalized streaming ingest run — dataset sizes,
/// classification counts over the streamed snapshot, and the sketch
/// estimates with their error bounds.
pub fn stream_summary(
    outputs: &cellstream::StreamOutputs,
    threshold: Option<f64>,
) -> Result<String, CellspotError> {
    let t = threshold.unwrap_or(DEFAULT_THRESHOLD);
    let (_, class) = Pipeline::new(&outputs.beacons, &outputs.demand)
        .threshold(t)
        .classify()?;
    let (v4, v6) = class.block_counts();
    let s = &outputs.sketches;
    let mut out = String::new();
    out.push_str(&format!(
        "beacons: {} blocks / {} hits; demand: {} blocks / {:.0} du\n",
        outputs.beacons.len(),
        outputs.beacons.hits_total(),
        outputs.demand.len(),
        outputs.demand.total_du()
    ));
    out.push_str(&format!(
        "cellular blocks at threshold {t:.2}: {} ({v4} /24, {v6} /48)\n",
        class.len()
    ));
    if let Some(busiest) = s
        .resolver_clients
        .iter()
        .max_by(|a, b| a.estimated_clients.total_cmp(&b.estimated_clients))
    {
        out.push_str(&format!(
            "resolvers sketched: {} (busiest ~{:.0} distinct client blocks, std error {:.1}%)\n",
            s.resolver_clients.len(),
            busiest.estimated_clients,
            100.0 * busiest.std_error,
        ));
    }
    out.push_str(&format!(
        "top demand blocks (over-count <= {:.3} of {:.1} raw demand):\n",
        s.heavy_error_bound, s.total_demand_weight
    ));
    for h in s.heavy_hitters.iter().take(5) {
        out.push_str(&format!(
            "  {} est {:.3} (err <= {:.3})\n",
            block_to_string(h.block),
            h.weight,
            h.error
        ));
    }
    Ok(out)
}

/// `validate`: score against ground truth at the default threshold and
/// report the F1 sweep.
pub fn validate(
    beacons: &BeaconDataset,
    demand: &DemandDataset,
    gt: &CarrierGroundTruth,
    sweep_steps: usize,
) -> String {
    let index = BlockIndex::build(beacons, demand);
    let class = Classification::with_default_threshold(&index);
    let v = validate_carrier(gt, &class, &index);
    let mut out = String::new();
    out.push_str(&format!(
        "{} at threshold {:.2}:\n",
        gt.name, DEFAULT_THRESHOLD
    ));
    for (basis, c) in [("cidr", &v.by_cidr), ("demand", &v.by_demand)] {
        out.push_str(&format!(
            "  {basis:<7} tp {:.1} fp {:.1} tn {:.1} fn {:.1}  precision {:.3} recall {:.3} f1 {:.3}\n",
            c.tp, c.fp, c.tn, c.fn_, c.precision(), c.recall(), c.f1()
        ));
    }
    if sweep_steps > 0 {
        let curve = threshold_sweep(gt, &index, sweep_steps);
        out.push_str("threshold,f1_cidr,f1_demand\n");
        for p in &curve.points {
            out.push_str(&format!(
                "{:.3},{:.4},{:.4}\n",
                p.threshold, p.f1_cidr, p.f1_demand
            ));
        }
        if let Some((lo, hi)) = curve.stable_range(0.05) {
            out.push_str(&format!("stable range: [{lo:.2}, {hi:.2}]\n"));
        }
    }
    out
}

/// `stats`: the geographic rollup (Tables 4 and 8 in one report).
pub fn stats(beacons: &BeaconDataset, demand: &DemandDataset, as_db: &AsDatabase) -> String {
    let index = BlockIndex::build(beacons, demand);
    let class = Classification::with_default_threshold(&index);
    let view = WorldView::build(&index, &class, as_db);
    let mut out = String::new();
    out.push_str("continent,cell24,cell48,pct_active_v4,pct_active_v6,cell_fraction_pct,global_cell_share_pct\n");
    for c in CONTINENTS {
        let s = &view.subnets[c.index()];
        let d = &view.demand[c.index()];
        out.push_str(&format!(
            "{},{},{},{:.2},{:.2},{:.2},{:.2}\n",
            c.code(),
            s.cell24,
            s.cell48,
            s.pct_active_v4(),
            s.pct_active_v6(),
            d.cellular_fraction_pct(),
            view.continent_cell_share_pct(c)
        ));
    }
    out.push_str(&format!(
        "global cellular: {:.2}% of demand\n",
        view.global_cellular_pct()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnsim::generate_datasets;
    use worldgen::{World, WorldConfig};

    fn setup() -> (World, BeaconDataset, DemandDataset) {
        let world = World::generate(WorldConfig::mini());
        let (b, d) = generate_datasets(&world);
        (world, b, d)
    }

    #[test]
    fn classify_emits_csv_rows() {
        let (_, b, d) = setup();
        let obs = cellobs::Observer::disabled();
        let (csv, n) = classify(&b, &d, None, &obs).expect("consistent datasets classify");
        assert!(n > 100);
        assert_eq!(csv.lines().count(), n + 1);
        assert!(csv.starts_with("block,asn,"));
        // Higher threshold → fewer rows.
        let (_, n95) = classify(&b, &d, Some(0.95), &obs).expect("consistent datasets classify");
        assert!(n95 < n);
        // An enabled observer sees the two front stages.
        let obs = cellobs::Observer::enabled();
        classify(&b, &d, None, &obs).expect("classifies");
        let snap = obs.snapshot();
        assert!(snap.counters.contains_key("pipeline.join.items"));
        assert!(snap.counters.contains_key("pipeline.classify.items"));
    }

    #[test]
    fn identify_as_reports_funnel() {
        let (world, b, d) = setup();
        let min_hits = world.config.scaled_min_beacon_hits();
        let (csv, report) = identify_as(&b, &d, &world.as_db, 0.1, min_hits);
        assert!(csv.lines().count() > 500, "most of the 669 ASes detected");
        assert!(report.contains("candidates"));
        assert!(report.contains("% mixed"));
    }

    #[test]
    fn stream_summary_reports_counts_and_sketches() {
        let (world, b, d) = setup();
        let dns = dnssim::generate_dns(&world);
        let source = cdnsim::EventSource::new(&world, cdnsim::CdnConfig::default(), 3);
        let mut engine = cellstream::IngestEngine::for_source(
            cellstream::StreamConfig::default(),
            &source,
            cellstream::ResolverMap::from_dns(&dns),
        );
        engine.run_to_end(&source);
        let outputs = engine.finalize();
        // The streamed datasets equal the batch ones, so the summary's
        // classification count matches a direct batch classification.
        let (_, batch_class) = Pipeline::new(&b, &d).classify().expect("default threshold");
        let out = stream_summary(&outputs, None).expect("valid threshold");
        assert!(out.contains("beacons:"));
        assert!(out.contains(&format!(
            "cellular blocks at threshold 0.50: {}",
            batch_class.len()
        )));
        assert!(out.contains("resolvers sketched:"));
        assert!(out.contains("top demand blocks"));
    }

    #[test]
    fn validate_scores_carrier() {
        let (world, b, d) = setup();
        let out = validate(&b, &d, &world.carriers[1], 10);
        assert!(out.contains("Carrier B"));
        assert!(out.contains("precision"));
        assert!(out.contains("stable range"));
    }

    #[test]
    fn index_build_freezes_the_classification() {
        let (_, b, d) = setup();
        let obs = cellobs::Observer::disabled();
        let (bytes, summary) =
            index_build(&b, &d, None, ArtifactFormat::V2, &obs).expect("consistent datasets");
        assert!(summary.contains("IPv4"), "{summary}");
        assert!(summary.contains("format v2"), "{summary}");
        let frozen = Artifact::from_bytes(&bytes).expect("sealed artifact loads");
        let (_, class) = Pipeline::new(&b, &d).classify().expect("default threshold");
        assert_eq!(frozen.len(), class.len());
        // Every classified block answers a lookup with its own AS, and
        // carries a definite mixed/dedicated verdict (no Unknowns: every
        // AS with a cellular block is analyzed at build time).
        for (block, asn) in class.iter() {
            let got = match block {
                netaddr::BlockId::V4(blk) => frozen.lookup_v4(blk.addr(9)).map(|(_, l)| l),
                netaddr::BlockId::V6(blk) => frozen.lookup_v6(blk.addr(3, 9)).map(|(_, l)| l),
            };
            let label = got.expect("classified block is served");
            assert_eq!(label.asn, asn);
            assert_ne!(label.class, cellserve::AsClass::Unknown);
        }
    }

    #[test]
    fn index_build_reports_hash_and_counts() {
        let (_, b, d) = setup();
        let obs = cellobs::Observer::enabled();
        let (bytes, summary) =
            index_build(&b, &d, None, ArtifactFormat::V2, &obs).expect("consistent datasets");
        let hash = cellserve::content_hash(&bytes);
        assert!(summary.contains(&cellserve::hash_hex(hash)), "{summary}");
        assert!(summary.contains("ASes"), "{summary}");
        let snap = obs.snapshot();
        assert_eq!(snap.gauges["index.artifact.hash"], hash);
        assert!(snap.counters["index.blocks"] > 0);
        assert!(snap.counters["index.ases"] > 0);
    }

    #[test]
    fn delta_build_then_apply_matches_a_full_index_build() {
        let (_, b, d) = setup();
        let obs = cellobs::Observer::enabled();
        let (base, _) = index_build(&b, &d, None, ArtifactFormat::V2, &obs).expect("base build");
        // A different threshold guarantees label churn between "epochs".
        let (delta, summary) =
            delta_build(&base, &b, &d, Some(0.95), 0, 1, &obs).expect("delta build");
        assert!(summary.contains("op(s)"), "{summary}");
        assert!(summary.contains("epoch 0 -> 1"), "{summary}");

        let (patched, apply_summary) = delta_apply(&base, &delta).expect("delta apply");
        let (full, _) =
            index_build(&b, &d, Some(0.95), ArtifactFormat::V2, &obs).expect("full build");
        assert_eq!(patched, full, "apply(base, delta) == full rebuild");
        assert!(
            apply_summary.contains(&cellserve::hash_hex(cellserve::content_hash(&full))),
            "{apply_summary}"
        );
        assert!(obs.snapshot().counters["delta.ops"] > 0);

        // A flipped delta byte never applies; the base is untouched.
        let mut bad = delta.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x04;
        assert!(delta_apply(&base, &bad).is_err());
        // Wrong base: the patched artifact is not the delta's base.
        assert!(matches!(
            delta_apply(&patched, &delta),
            Err(DeltaError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn index_migrate_is_deterministic_and_roundtrips() {
        let (_, b, d) = setup();
        let obs = cellobs::Observer::disabled();
        let (v1, _) = index_build(&b, &d, None, ArtifactFormat::V1, &obs).expect("v1 build");
        let (v2_direct, _) = index_build(&b, &d, None, ArtifactFormat::V2, &obs).expect("v2 build");

        let (v2, summary) = index_migrate(&v1, ArtifactFormat::V2).expect("v1 -> v2");
        assert!(summary.contains("migrated v1"), "{summary}");
        assert_eq!(v2, v2_direct, "migration equals building v2 directly");
        let (v2_again, _) = index_migrate(&v1, ArtifactFormat::V2).expect("repeat migrate");
        assert_eq!(v2, v2_again, "byte-deterministic");

        let (back, _) = index_migrate(&v2, ArtifactFormat::V1).expect("v2 -> v1");
        assert_eq!(back, v1, "round trip reproduces the v1 bytes");

        // Same-format migration is refused, as is garbage input.
        assert!(index_migrate(&v2, ArtifactFormat::V2).is_err());
        assert!(index_migrate(b"CELLJUNK", ArtifactFormat::V2).is_err());
    }

    #[test]
    fn lookup_batch_reports_rows_and_match_rate() {
        let (_, b, d) = setup();
        let obs = cellobs::Observer::disabled();
        let (bytes, _) =
            index_build(&b, &d, None, ArtifactFormat::V2, &obs).expect("consistent datasets");
        // The batch runs over the zero-copy handle, not a decoded copy.
        let frozen = Artifact::from_bytes(&bytes).expect("artifact loads");
        let (_, class) = Pipeline::new(&b, &d).classify().expect("default threshold");
        let probe = class
            .iter()
            .find_map(|(block, _)| match block {
                netaddr::BlockId::V4(blk) => Some(blk.addr(1)),
                netaddr::BlockId::V6(_) => None,
            })
            .expect("mini world has v4 cellular blocks");
        let (net, label) = frozen.lookup_v4(probe).expect("classified block hits");
        let queries = [
            cellserve::IpKey::V4(net.first()),
            cellserve::IpKey::V4(net.first()), // repeat → a cache hit
            cellserve::IpKey::parse("192.0.2.1").expect("valid"),
        ];
        let mut sink = Vec::new();
        let summary = lookup_batch(&frozen, &queries, &obs, &mut sink).expect("vec write");
        let csv = String::from_utf8(sink).expect("utf-8 csv");
        assert_eq!(csv.lines().count(), 4, "header + one row per query");
        assert!(csv.starts_with("ip,prefix,asn,class\n"));
        assert!(
            csv.contains(&format!("{net},{}", label.asn.value())),
            "{csv}"
        );
        assert!(csv.contains("192.0.2.1,-,-,-"), "miss renders dashes");
        assert!(summary.contains("3 lookups: 2 matched"), "{summary}");
        assert!(summary.contains("uncached"), "{summary}");
    }

    #[test]
    fn lookup_batch_with_no_queries_says_so() {
        let (_, b, d) = setup();
        let obs = cellobs::Observer::disabled();
        let (bytes, _) =
            index_build(&b, &d, None, ArtifactFormat::V2, &obs).expect("consistent datasets");
        let frozen = Artifact::from_bytes(&bytes).expect("artifact loads");
        let mut sink = Vec::new();
        let summary = lookup_batch(&frozen, &[], &obs, &mut sink).expect("vec write");
        assert_eq!(summary, "0 lookups\n", "no fabricated match rate");
        assert_eq!(
            String::from_utf8(sink).expect("utf-8"),
            "ip,prefix,asn,class\n"
        );
    }

    #[test]
    fn stats_rolls_up_continents() {
        let (world, b, d) = setup();
        let out = stats(&b, &d, &world.as_db);
        assert!(out.contains("global cellular:"));
        for code in ["AF", "AS", "EU", "NA", "OC", "SA"] {
            assert!(
                out.contains(&format!("\n{code},")) || out.starts_with(&format!("{code},")),
                "missing {code} row"
            );
        }
    }
}
