//! `cellspot` — command-line interface to the Cell Spotting methodology.
//!
//! Run `cellspot --help` for usage. All heavy lifting lives in the
//! library (`cli::commands`); this file only parses arguments and does
//! file I/O. Failures exit with documented codes (see `cli::error`):
//! 2 usage, 3 I/O, 4 bad data, 5 pipeline, 6 streaming.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::str::FromStr;
use std::sync::Arc;

use cellobs::{ExportFormat, Observer};
use cli::{commands, io, CliError};

/// Minimal signal handling without a dependency: `signal(2)` handlers
/// that set a flag, installed for SIGINT and SIGTERM so `serve` drains
/// gracefully under process supervisors as well as on stdin EOF.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: a single atomic store.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Install the handlers; call once, before serving.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Whether SIGINT or SIGTERM has been received.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing command");
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "synth" => synth(rest),
        "stream" => stream(rest),
        "classify" => classify(rest),
        "identify-as" => identify_as(rest),
        "validate" => validate(rest),
        "stats" => stats(rest),
        "index" => index(rest),
        "delta" => delta(rest),
        "lookup" => lookup(rest),
        "serve" => serve(rest),
        "replay" => replay(rest),
        "--help" | "-h" | "help" => {
            usage("");
        }
        other => usage(&format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(e.exit_code());
    }
}

type CmdResult = Result<(), CliError>;

/// Pull the value following a `--flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn required(args: &[String], flag: &str) -> Result<String, CliError> {
    flag_value(args, flag).ok_or_else(|| CliError::Usage(format!("missing required {flag} FILE")))
}

fn read(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))
}

fn write(path: &PathBuf, content: &str) -> Result<(), CliError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)
            .map_err(|e| CliError::Io(format!("{}: {e}", parent.display())))?;
    }
    fs::write(path, content).map_err(|e| CliError::Io(format!("{}: {e}", path.display())))
}

fn load_datasets(
    args: &[String],
) -> Result<(cdnsim::BeaconDataset, cdnsim::DemandDataset), CliError> {
    let beacons = io::parse_beacons(&read(&required(args, "--beacons")?)?)
        .map_err(|e| CliError::Data(format!("beacons: {e}")))?;
    let demand = io::parse_demand(&read(&required(args, "--demand")?)?)
        .map_err(|e| CliError::Data(format!("demand: {e}")))?;
    Ok((beacons, demand))
}

/// Parse the shared `--threshold` knob (cellular-ratio cutoff in 0..1).
fn parse_threshold(args: &[String]) -> Result<Option<f64>, CliError> {
    match flag_value(args, "--threshold") {
        Some(t) => Ok(Some(
            t.parse::<f64>()
                .ok()
                .filter(|t| (0.0..=1.0).contains(t))
                .ok_or_else(|| CliError::Usage("bad --threshold (expected 0..1)".into()))?,
        )),
        None => Ok(None),
    }
}

/// Apply the shared `--threads` knob: flag beats `CELLSPOT_THREADS`
/// beats rayon's auto width. Every subcommand accepts it; results never
/// depend on the resolved width.
fn setup_threads(args: &[String]) -> Result<(), CliError> {
    let flag = match flag_value(args, "--threads") {
        Some(v) => Some(v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
            CliError::Usage("bad --threads (expected a positive integer)".into())
        })?),
        None => None,
    };
    let choice = cellspot::resolve_threads(flag);
    if let Some(n) = cellspot::configure_threads(choice) {
        eprintln!("thread pool pinned to {n} (from {})", choice.source());
    }
    Ok(())
}

/// Parse the shared `--metrics FILE [--metrics-format json|prometheus]`
/// knobs. `--metrics-format` without `--metrics` is a usage error.
fn parse_metrics(args: &[String]) -> Result<Option<(PathBuf, ExportFormat)>, CliError> {
    let path = flag_value(args, "--metrics");
    let format = flag_value(args, "--metrics-format");
    match (path, format) {
        (Some(p), f) => {
            let fmt = match f {
                Some(f) => ExportFormat::from_str(&f).map_err(CliError::Usage)?,
                None => ExportFormat::Json,
            };
            Ok(Some((PathBuf::from(p), fmt)))
        }
        (None, Some(_)) => Err(CliError::Usage(
            "--metrics-format needs --metrics FILE".into(),
        )),
        (None, None) => Ok(None),
    }
}

/// An observer wired to the `--metrics` knobs: enabled only when an
/// export was requested (a disabled observer is near-zero cost).
fn observer_for(metrics: &Option<(PathBuf, ExportFormat)>) -> Observer {
    if metrics.is_some() {
        Observer::enabled()
    } else {
        Observer::disabled()
    }
}

/// Render and write the metrics export, if one was requested.
fn write_metrics(metrics: &Option<(PathBuf, ExportFormat)>, obs: &Observer) -> CmdResult {
    if let Some((path, format)) = metrics {
        write(path, &format.render(&obs.snapshot()))?;
        eprintln!("metrics ({format}) → {}", path.display());
    }
    Ok(())
}

fn world_config(args: &[String]) -> Result<(String, worldgen::WorldConfig), CliError> {
    let scale = flag_value(args, "--scale").unwrap_or_else(|| "demo".into());
    let mut config = match scale.as_str() {
        "mini" => worldgen::WorldConfig::mini(),
        "demo" => worldgen::WorldConfig::demo(),
        "paper" => worldgen::WorldConfig::paper(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown scale {other:?} (mini|demo|paper)"
            )))
        }
    };
    if let Some(seed) = flag_value(args, "--seed") {
        config.seed = seed
            .parse()
            .map_err(|_| CliError::Usage("bad --seed value".into()))?;
    }
    Ok((scale, config))
}

/// `synth`: generate a world and write its observable datasets as CSVs.
fn synth(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let (scale, config) = world_config(args)?;
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| "data".into()));
    let min_hits = config.scaled_min_beacon_hits();
    eprintln!("generating {scale} world (seed {:#x}) …", config.seed);
    let world = worldgen::World::generate(config);
    let (beacons, demand) = cdnsim::generate_datasets(&world);
    write(&out.join("beacons.csv"), &io::beacons_to_csv(&beacons))?;
    write(&out.join("demand.csv"), &io::demand_to_csv(&demand))?;
    write(&out.join("asdb.csv"), &io::asdb_to_csv(&world.as_db))?;
    for gt in &world.carriers {
        let mut csv = String::from(io::GROUNDTRUTH_HEADER);
        csv.push('\n');
        for e in &gt.entries {
            match e {
                asdb::GroundTruthEntry::V4(net, a) => {
                    csv.push_str(&format!("{net},{a}\n"));
                }
                asdb::GroundTruthEntry::V6(net, a) => {
                    csv.push_str(&format!("{net},{a}\n"));
                }
            }
        }
        let name = gt.name.to_lowercase().replace(' ', "_");
        write(&out.join(format!("{name}_groundtruth.csv")), &csv)?;
    }
    eprintln!(
        "wrote beacons.csv ({} blocks), demand.csv ({} blocks), asdb.csv ({} ASes), \
         3 ground-truth files to {} (rule-2 hit threshold for this scale: {min_hits})",
        beacons.len(),
        demand.len(),
        world.as_db.len(),
        out.display()
    );
    Ok(())
}

/// `stream`: run the streaming ingest engine over the built-in world's
/// event stream, with optional per-epoch checkpointing and resume.
fn stream(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let (scale, config) = world_config(args)?;
    let epochs: u32 = flag_value(args, "--epochs")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| CliError::Usage("bad --epochs".into()))?
        .unwrap_or(8);
    let shards: u32 = flag_value(args, "--shards")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| CliError::Usage("bad --shards".into()))?
        .unwrap_or(4);
    if epochs == 0 || shards == 0 {
        return Err(CliError::Usage(
            "--epochs and --shards must be at least 1".into(),
        ));
    }
    let stop_after: Option<u32> = flag_value(args, "--stop-after-epoch")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| CliError::Usage("bad --stop-after-epoch".into()))?;
    let threshold = parse_threshold(args)?;
    let retain: usize = flag_value(args, "--retain")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| CliError::Usage("bad --retain".into()))?
        .unwrap_or(cellstream::DEFAULT_RETAIN);
    if retain == 0 {
        return Err(CliError::Usage("--retain must be at least 1".into()));
    }
    let metrics = parse_metrics(args)?;
    let obs = observer_for(&metrics);
    let ckpt_store = flag_value(args, "--checkpoint").map(|d| {
        cellstream::CheckpointStore::new(PathBuf::from(d), retain).with_observer(obs.clone())
    });
    let fault_plan = flag_value(args, "--fault-plan");
    let resume = args.iter().any(|a| a == "--resume");
    let out_dir = flag_value(args, "--out").map(PathBuf::from);
    let emit_dir = flag_value(args, "--emit-deltas").map(PathBuf::from);
    if emit_dir.is_some() && fault_plan.is_some() {
        return Err(CliError::Usage(
            "--emit-deltas needs the plain epoch loop; drop --fault-plan".into(),
        ));
    }

    eprintln!("generating {scale} world (seed {:#x}) …", config.seed);
    let world = worldgen::World::generate_with(config, &obs);
    let dns = dnssim::generate_dns(&world);
    let resolvers = cellstream::ResolverMap::from_dns(&dns);
    let stream_cfg = cellstream::StreamConfig {
        shards,
        ..Default::default()
    };

    if let Some(plan_path) = fault_plan {
        // Chaos mode: run the whole stream under the fault plan's injected
        // failures, recovering through the checkpoint store.
        let store = ckpt_store
            .as_ref()
            .ok_or_else(|| CliError::Usage("--fault-plan needs --checkpoint DIR".into()))?;
        if stop_after.is_some() {
            return Err(CliError::Usage(
                "--fault-plan runs the full stream; drop --stop-after-epoch".into(),
            ));
        }
        let plan = cellstream::FaultPlan::read_from(Path::new(&plan_path))
            .map_err(|e| CliError::Data(format!("{plan_path}: {e}")))?;
        let injector = Arc::new(cellstream::FaultInjector::new(plan));
        let gate: Arc<dyn cdnsim::EpochGate> = injector.clone();
        let source =
            cdnsim::EventSource::new(&world, cdnsim::CdnConfig::default(), epochs).with_gate(gate);
        let mut span = obs.span("ingest");
        let (engine, report) = cellstream::run_chaos_observed(
            &source, stream_cfg, &resolvers, store, &injector, 32, &obs,
        )
        .map_err(cellstream::StreamError::from)?;
        span.set_items(engine.events_seen());
        drop(span);
        for line in &report.log {
            eprintln!("chaos: {line}");
        }
        eprintln!(
            "chaos run survived {} crash(es), {} shard recovery(ies) ({} epoch(s) replayed), \
             {} stall(s); {} checkpoint read(s) rejected",
            report.crashes,
            report.shard_recoveries,
            report.replayed_epochs,
            report.stalls,
            report.checkpoints_rejected
        );
        let outputs = engine.finalize();
        write_stream_outputs(&out_dir, &outputs)?;
        print!("{}", commands::stream_summary(&outputs, threshold)?);
        write_metrics(&metrics, &obs)?;
        return Ok(());
    }

    let source = cdnsim::EventSource::new(&world, cdnsim::CdnConfig::default(), epochs);

    let mut engine = if resume {
        let store = ckpt_store
            .as_ref()
            .ok_or_else(|| CliError::Usage("--resume needs --checkpoint DIR".into()))?;
        let rec = store
            .load_latest_good()
            .map_err(|e| CliError::Io(format!("{}: {e}", store.dir().display())))?;
        for (path, why) in &rec.skipped {
            eprintln!(
                "warning: skipping corrupt checkpoint {}: {why}",
                path.display()
            );
        }
        let (snap, path) = rec.snapshot.ok_or_else(|| {
            CliError::Data(format!("no usable checkpoint in {}", store.dir().display()))
        })?;
        if snap.epochs_total != epochs || snap.config.shards != shards {
            return Err(CliError::Usage(format!(
                "checkpoint layout mismatch: {} epochs / {} shards on disk vs \
                 {epochs} / {shards} requested",
                snap.epochs_total, snap.config.shards
            )));
        }
        eprintln!(
            "resuming at epoch {}/{} from {}",
            snap.epochs_done,
            snap.epochs_total,
            path.display()
        );
        cellstream::IngestEngine::try_restore(&snap, resolvers)
            .map_err(cellstream::StreamError::from)?
    } else {
        cellstream::IngestEngine::try_for_source(stream_cfg, &source, resolvers)
            .map_err(cellstream::StreamError::from)?
    }
    .with_observer(obs.clone());

    let wants_more = |done: u32| match stop_after {
        Some(k) => done < k,
        None => true,
    };
    let mut delta_emitter = match emit_dir {
        Some(dir) => Some(DeltaEmitter::new(dir, threshold, &obs)?),
        None => None,
    };
    let mut span = obs.span("ingest");
    while !engine.finished() && wants_more(engine.epochs_done()) {
        let e = engine
            .try_ingest_epoch(&source, None)
            .map_err(cellstream::StreamError::from)?;
        eprintln!(
            "epoch {}/{epochs}: {} events folded, ~{} KiB live state",
            e + 1,
            engine.events_seen(),
            engine.state_bytes() / 1024
        );
        if let Some(store) = &ckpt_store {
            store
                .save(&engine.snapshot())
                .map_err(|e| CliError::Io(format!("{}: {e}", store.dir().display())))?;
        }
        if let Some(em) = &mut delta_emitter {
            em.emit_epoch(&engine)?;
        }
    }
    span.set_items(engine.events_seen());
    drop(span);
    if let Some(em) = &delta_emitter {
        em.finish();
    }
    if !engine.finished() {
        eprintln!(
            "stopped after epoch {} of {epochs}; continue with --resume --checkpoint DIR",
            engine.epochs_done()
        );
        write_metrics(&metrics, &obs)?;
        return Ok(());
    }
    let outputs = engine.finalize();
    write_stream_outputs(&out_dir, &outputs)?;
    print!("{}", commands::stream_summary(&outputs, threshold)?);
    write_metrics(&metrics, &obs)?;
    Ok(())
}

/// Write the streamed datasets as CSVs when `--out` was given.
fn write_stream_outputs(
    out_dir: &Option<PathBuf>,
    outputs: &cellstream::StreamOutputs,
) -> CmdResult {
    if let Some(dir) = out_dir {
        write(
            &dir.join("beacons.csv"),
            &io::beacons_to_csv(&outputs.beacons),
        )?;
        write(&dir.join("demand.csv"), &io::demand_to_csv(&outputs.demand))?;
        eprintln!(
            "wrote streamed beacons.csv and demand.csv to {}",
            dir.display()
        );
    }
    Ok(())
}

/// `classify`: beacons + demand → cellular block CSV.
fn classify(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let (beacons, demand) = load_datasets(args)?;
    let threshold = parse_threshold(args)?;
    let metrics = parse_metrics(args)?;
    let obs = observer_for(&metrics);
    let (csv, n) = commands::classify(&beacons, &demand, threshold, &obs)?;
    match flag_value(args, "--out") {
        Some(path) => {
            write(&PathBuf::from(&path), &csv)?;
            eprintln!("{n} cellular blocks → {path}");
        }
        None => print!("{csv}"),
    }
    write_metrics(&metrics, &obs)?;
    Ok(())
}

/// `identify-as`: the §5 AS pipeline.
fn identify_as(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let (beacons, demand) = load_datasets(args)?;
    let as_db = io::parse_asdb(&read(&required(args, "--asdb")?)?)
        .map_err(|e| CliError::Data(format!("asdb: {e}")))?;
    let min_du: f64 = flag_value(args, "--min-du")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| CliError::Usage("bad --min-du".into()))?
        .unwrap_or(0.1);
    let min_hits: f64 = flag_value(args, "--min-hits")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| CliError::Usage("bad --min-hits".into()))?
        .unwrap_or(300.0);
    let (csv, report) = commands::identify_as(&beacons, &demand, &as_db, min_du, min_hits);
    eprint!("{report}");
    match flag_value(args, "--out") {
        Some(path) => write(&PathBuf::from(path), &csv)?,
        None => print!("{csv}"),
    }
    Ok(())
}

/// `validate`: score against a ground-truth CSV.
fn validate(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let (beacons, demand) = load_datasets(args)?;
    let gt_path = required(args, "--ground-truth")?;
    let gt = io::parse_ground_truth("ground truth", &read(&gt_path)?)
        .map_err(|e| CliError::Data(format!("ground truth: {e}")))?;
    let sweep = if args.iter().any(|a| a == "--sweep") {
        50
    } else {
        0
    };
    print!("{}", commands::validate(&beacons, &demand, &gt, sweep));
    Ok(())
}

/// `stats`: the geographic rollup.
fn stats(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let (beacons, demand) = load_datasets(args)?;
    let as_db = io::parse_asdb(&read(&required(args, "--asdb")?)?)
        .map_err(|e| CliError::Data(format!("asdb: {e}")))?;
    print!("{}", commands::stats(&beacons, &demand, &as_db));
    Ok(())
}

/// `index build` / `index migrate`: freeze the classification into a
/// sealed serving artifact file, or convert an already-sealed artifact
/// between formats without reclassifying.
fn index(args: &[String]) -> CmdResult {
    match args.first().map(String::as_str) {
        Some("build") => index_build(&args[1..]),
        Some("migrate") => index_migrate(&args[1..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown index subcommand {other:?} (expected build or migrate)"
        ))),
        None => Err(CliError::Usage(
            "missing index subcommand (expected build or migrate)".into(),
        )),
    }
}

/// `--format v1|v2` style flag; `None` when absent so each command picks
/// its own default (v2 everywhere today).
fn parse_format(
    args: &[String],
    flag: &str,
) -> Result<Option<cellserve::ArtifactFormat>, CliError> {
    flag_value(args, flag)
        .map(|v| {
            cellserve::ArtifactFormat::parse(&v)
                .ok_or_else(|| CliError::Usage(format!("bad {flag} {v:?} (expected v1 or v2)")))
        })
        .transpose()
}

fn index_build(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let (beacons, demand) = load_datasets(args)?;
    let threshold = parse_threshold(args)?;
    let format = parse_format(args, "--format")?.unwrap_or(cellserve::ArtifactFormat::V2);
    let out = PathBuf::from(required(args, "--out")?);
    let metrics = parse_metrics(args)?;
    let obs = observer_for(&metrics);
    let (bytes, summary) = commands::index_build(&beacons, &demand, threshold, format, &obs)?;
    // Same crash-safe sequence the checkpoint store uses: temp file →
    // fsync → rename → parent-dir fsync. A serving artifact must never
    // be observable half-written.
    cellstream::write_atomic_bytes(&out, &bytes)
        .map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
    eprint!("{summary}");
    eprintln!("artifact → {}", out.display());
    write_metrics(&metrics, &obs)?;
    Ok(())
}

fn index_migrate(args: &[String]) -> CmdResult {
    let in_path = required(args, "--in")?;
    let bytes = fs::read(&in_path).map_err(|e| CliError::Io(format!("{in_path}: {e}")))?;
    let to = parse_format(args, "--to")?.unwrap_or(cellserve::ArtifactFormat::V2);
    let out = PathBuf::from(required(args, "--out")?);
    // A malformed or already-converted input is bad data (exit 4), the
    // same contract as `lookup` on a corrupt artifact.
    let (migrated, summary) = commands::index_migrate(&bytes, to)
        .map_err(|e| CliError::Data(format!("{in_path}: {e}")))?;
    cellstream::write_atomic_bytes(&out, &migrated)
        .map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
    eprint!("{summary}");
    eprintln!("artifact → {}", out.display());
    Ok(())
}

/// `delta build` / `delta apply`: incremental refresh of a sealed
/// artifact. `build` classifies the given datasets as a new epoch and
/// seals only the labels that changed relative to a base artifact,
/// chained on the base's content hash; `apply` patches a base artifact
/// with such a delta, reproducing the full rebuild byte for byte.
fn delta(args: &[String]) -> CmdResult {
    match args.first().map(String::as_str) {
        Some("build") => delta_build(&args[1..]),
        Some("apply") => delta_apply(&args[1..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown delta subcommand {other:?} (expected build or apply)"
        ))),
        None => Err(CliError::Usage(
            "missing delta subcommand (expected build or apply)".into(),
        )),
    }
}

fn delta_build(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let base_path = required(args, "--base")?;
    let base = fs::read(&base_path).map_err(|e| CliError::Io(format!("{base_path}: {e}")))?;
    let (beacons, demand) = load_datasets(args)?;
    let threshold = parse_threshold(args)?;
    let parse_epoch = |flag: &str, default: u64| -> Result<u64, CliError> {
        flag_value(args, flag)
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| CliError::Usage(format!("bad {flag} (expected an integer epoch)")))
            .map(|v| v.unwrap_or(default))
    };
    let base_epoch = parse_epoch("--base-epoch", 0)?;
    let epoch = parse_epoch("--epoch", base_epoch + 1)?;
    let out = PathBuf::from(required(args, "--out")?);
    let metrics = parse_metrics(args)?;
    let obs = observer_for(&metrics);
    // A malformed base or an epoch that does not advance is bad data
    // (exit 4), matching how `lookup` treats a corrupt artifact.
    let (bytes, summary) =
        commands::delta_build(&base, &beacons, &demand, threshold, base_epoch, epoch, &obs)
            .map_err(|e| CliError::Data(format!("{base_path}: {e}")))?;
    cellstream::write_atomic_bytes(&out, &bytes)
        .map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
    eprint!("{summary}");
    eprintln!("delta → {}", out.display());
    write_metrics(&metrics, &obs)?;
    Ok(())
}

fn delta_apply(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let base_path = required(args, "--base")?;
    let base = fs::read(&base_path).map_err(|e| CliError::Io(format!("{base_path}: {e}")))?;
    let delta_path = required(args, "--delta")?;
    let delta = fs::read(&delta_path).map_err(|e| CliError::Io(format!("{delta_path}: {e}")))?;
    let out = PathBuf::from(required(args, "--out")?);
    let (bytes, summary) = commands::delta_apply(&base, &delta)
        .map_err(|e| CliError::Data(format!("{delta_path}: {e}")))?;
    cellstream::write_atomic_bytes(&out, &bytes)
        .map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
    eprint!("{summary}");
    eprintln!("patched artifact → {}", out.display());
    Ok(())
}

/// Per-epoch delta emitter behind `stream --emit-deltas DIR`: the first
/// ingested epoch seals the full base artifact (`base.cellserv`); every
/// later epoch re-classifies with per-AS memoization and seals only the
/// changed labels as a `CELLDELT` delta chained on the previous
/// artifact's content hash. Each delta lands both under its epoch name
/// and as an atomically-replaced `latest.cdlt` — the file a serving
/// daemon's `--delta-watch` follows.
struct DeltaEmitter {
    dir: PathBuf,
    classifier: celldelta::IncrementalClassifier,
    obs: Observer,
    /// Last sealed artifact bytes and the epoch they labeled.
    live: Option<(Vec<u8>, u64)>,
}

impl DeltaEmitter {
    fn new(
        dir: PathBuf,
        threshold: Option<f64>,
        export_obs: &Observer,
    ) -> Result<DeltaEmitter, CliError> {
        fs::create_dir_all(&dir).map_err(|e| CliError::Io(format!("{}: {e}", dir.display())))?;
        // Memo-hit accounting should be real even without --metrics, so
        // the classifier always gets an enabled observer; with --metrics
        // it shares the export observer and the counters ship in the
        // export too.
        let obs = if export_obs.is_enabled() {
            export_obs.clone()
        } else {
            Observer::enabled()
        };
        Ok(DeltaEmitter {
            dir,
            classifier: celldelta::IncrementalClassifier::new(
                threshold.unwrap_or(cellspot::DEFAULT_THRESHOLD),
                obs.clone(),
            ),
            obs,
            live: None,
        })
    }

    fn write_file(&self, name: &str, bytes: &[u8]) -> CmdResult {
        let path = self.dir.join(name);
        cellstream::write_atomic_bytes(&path, bytes)
            .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))
    }

    fn emit_epoch(&mut self, engine: &cellstream::IngestEngine) -> CmdResult {
        let epoch = u64::from(engine.epochs_done());
        let counters = celldelta::EpochCounters::from_engine(epoch, engine);
        let target = cellserve::Artifact::encode(
            &self.classifier.classify(&counters),
            cellserve::ArtifactFormat::V2,
        );
        match self.live.take() {
            None => {
                self.write_file("base.cellserv", &target)?;
                eprintln!(
                    "epoch {epoch}: base artifact {} bytes (hash {}) → base.cellserv",
                    target.len(),
                    cellserve::hash_hex(cellserve::content_hash(&target)),
                );
            }
            Some((live, live_epoch)) => {
                let delta = celldelta::build_delta(&live, &target, live_epoch, epoch)
                    .map_err(|e| CliError::Data(format!("epoch {epoch} delta: {e}")))?;
                let name = format!("delta-ep{epoch:06}.cdlt");
                self.write_file(&name, &delta)?;
                self.write_file("latest.cdlt", &delta)?;
                eprintln!(
                    "epoch {epoch}: delta {} bytes vs {} full → {name} (+ latest.cdlt)",
                    delta.len(),
                    target.len(),
                );
            }
        }
        self.live = Some((target, epoch));
        Ok(())
    }

    fn finish(&self) {
        let snap = self.obs.snapshot();
        let hits = snap.counters.get("delta.memo.hits").copied().unwrap_or(0);
        let misses = snap.counters.get("delta.memo.misses").copied().unwrap_or(0);
        eprintln!(
            "delta series → {} ({hits} memoized AS classification(s) reused, {misses} recomputed)",
            self.dir.display()
        );
    }
}

/// `lookup`: batch longest-prefix-match queries against a sealed
/// artifact. The artifact is opened through [`cellserve::Artifact`], so
/// a v2 file is served zero-copy straight off an mmap while a v1 file
/// decodes into the owned index — the batch below is generic over both.
/// A corrupt or truncated artifact is bad data (exit 4), not an I/O
/// failure.
fn lookup(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let index_path = required(args, "--index")?;
    let frozen = cellserve::Artifact::open(std::path::Path::new(&index_path)).map_err(
        |e| match e {
            cellserve::ServeError::Io(why) => CliError::Io(why),
            other => CliError::Data(format!("{index_path}: {other}")),
        },
    )?;
    let ips_path = required(args, "--ips")?;
    let queries = io::parse_ip_list(&read(&ips_path)?)
        .map_err(|e| CliError::Data(format!("{ips_path}: {e}")))?;
    let metrics = parse_metrics(args)?;
    let obs = observer_for(&metrics);
    // Rows stream to the destination as they are produced; the result
    // set is never held in memory as one string.
    let summary = match flag_value(args, "--out") {
        Some(path) => {
            let path = PathBuf::from(&path);
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent)
                    .map_err(|e| CliError::Io(format!("{}: {e}", parent.display())))?;
            }
            let file = fs::File::create(&path)
                .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
            let mut out = std::io::BufWriter::new(file);
            let summary = commands::lookup_batch(&frozen, &queries, &obs, &mut out)
                .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
            eprintln!("lookup results → {}", path.display());
            summary
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            commands::lookup_batch(&frozen, &queries, &obs, &mut out)
                .map_err(|e| CliError::Io(format!("stdout: {e}")))?
        }
    };
    eprint!("{summary}");
    write_metrics(&metrics, &obs)?;
    Ok(())
}

/// `serve`: run the long-lived lookup daemon over a sealed artifact.
/// Shuts down on SIGTERM/SIGINT, stdin EOF, a `quit` line, or after
/// `--shutdown-after-ms` — whichever the caller wired up; every path
/// drains in-flight queries before exiting. A corrupt or truncated
/// artifact is bad data (exit 4), matching `lookup`.
fn serve(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    sig::install();
    let index_path = required(args, "--index")?;
    let metrics = parse_metrics(args)?;
    let parse_ms = |flag: &str, default: u64| -> Result<u64, CliError> {
        flag_value(args, flag)
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| CliError::Usage(format!("bad {flag} (expected milliseconds)")))
            .map(|v| v.unwrap_or(default))
    };
    let workers: usize = flag_value(args, "--workers")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| CliError::Usage("bad --workers (expected a positive integer)".into()))?
        .unwrap_or(2);
    let queue_depth: usize = flag_value(args, "--queue-depth")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| CliError::Usage("bad --queue-depth (expected a positive integer)".into()))?
        .unwrap_or(64 * cellserve::QUERY_CHUNK);
    if workers == 0 || queue_depth == 0 {
        return Err(CliError::Usage(
            "--workers and --queue-depth must be at least 1".into(),
        ));
    }
    let parse_count = |flag: &str, default: usize| -> Result<usize, CliError> {
        flag_value(args, flag)
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| CliError::Usage(format!("bad {flag} (expected a count; 0 = unlimited)")))
            .map(|v| v.unwrap_or(default))
    };
    let defaults = cellserved::ServeConfig::default();
    let config = cellserved::ServeConfig {
        http_listen: Some(flag_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:7077".into())),
        tcp_listen: flag_value(args, "--tcp"),
        workers,
        queue_depth,
        max_linger: std::time::Duration::from_micros(
            flag_value(args, "--max-linger-us")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError::Usage("bad --max-linger-us (expected microseconds)".into()))?
                .unwrap_or(200),
        ),
        reload_watch: args.iter().any(|a| a == "--reload-watch"),
        reload_poll: std::time::Duration::from_millis(parse_ms("--reload-poll-ms", 250)?),
        delta_watch: flag_value(args, "--delta-watch").map(PathBuf::from),
        // Hardening knobs: connection budget, per-socket deadlines,
        // keep-alive request cap. 0 disables each one.
        max_conns: parse_count("--max-conns", defaults.max_conns)?,
        io_timeout: std::time::Duration::from_millis(parse_ms(
            "--io-timeout-ms",
            defaults.io_timeout.as_millis() as u64,
        )?),
        max_requests_per_conn: parse_count(
            "--max-requests-per-conn",
            defaults.max_requests_per_conn,
        )?,
        drain_timeout: std::time::Duration::from_millis(parse_ms(
            "--drain-timeout-ms",
            defaults.drain_timeout.as_millis() as u64,
        )?),
    };
    let shutdown_after = flag_value(args, "--shutdown-after-ms")
        .map(|v| v.parse::<u64>())
        .transpose()
        .map_err(|_| CliError::Usage("bad --shutdown-after-ms (expected milliseconds)".into()))?;

    // The daemon always observes itself: /metrics serves live quantiles
    // whether or not a --metrics export file was requested.
    let obs = Observer::enabled();
    let daemon = cellserved::Daemon::start(config, Path::new(&index_path), obs.clone())
        .map_err(|e| served_error(&index_path, e))?;
    if let Some(addr) = daemon.http_addr() {
        eprintln!("http endpoint on {addr} (/lookup /metrics /healthz /generation)");
    }
    if let Some(addr) = daemon.tcp_addr() {
        eprintln!("framed tcp endpoint on {addr}");
    }

    match shutdown_after {
        Some(ms) => {
            // Bounded run (tests, smoke checks): sleep in short slices so
            // a signal still ends it early.
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(ms);
            while !sig::requested() {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    break;
                }
                std::thread::sleep(left.min(std::time::Duration::from_millis(50)));
            }
        }
        None => {
            eprintln!("serving; stdin EOF, a 'quit' line, or SIGTERM shuts down gracefully");
            // stdin blocks, so it gets its own thread; the main thread
            // polls the signal flag between channel timeouts.
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::spawn(move || {
                let mut line = String::new();
                loop {
                    line.clear();
                    match std::io::stdin().read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) if matches!(line.trim(), "quit" | "shutdown") => break,
                        Ok(_) => {}
                    }
                }
                let _ = tx.send(());
            });
            while !sig::requested() {
                match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                    Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                }
            }
        }
    }
    if sig::requested() {
        eprintln!("signal received; shutting down gracefully");
    }

    let snap = daemon.shutdown();
    let lookups = snap.counters.get("serve.lookups").copied().unwrap_or(0);
    let generation = snap.gauges.get("served.generation").copied().unwrap_or(1);
    let p99 = snap.gauges.get("serve.lookup.ns.p99").copied().unwrap_or(0);
    eprintln!(
        "shutdown: {lookups} lookup(s) served, final generation {generation}, p99 ≤ {p99} ns"
    );
    write_metrics(&metrics, &obs)?;
    Ok(())
}

/// `replay`: generate (or load) a sealed seeded query trace for a named
/// workload preset and replay it closed-loop — directly through the
/// query engine, or against an in-process daemon over framed TCP or
/// bulk HTTP — writing a `BENCH_replay.json` record. The `workload`
/// half of the record is a pure function of `(preset, seed, queries,
/// epochs, universe)` and is byte-identical at any `--threads`; the
/// `replay` half carries the measured numbers. The `churn` preset
/// crosses delta epochs: each segment boundary seals a `CELLDELT` delta
/// and hot-patches the daemon before that epoch's traffic flows.
fn replay(args: &[String]) -> CmdResult {
    setup_threads(args)?;
    let metrics = parse_metrics(args)?;
    let threshold = parse_threshold(args)?.unwrap_or(cellspot::DEFAULT_THRESHOLD);
    let mode = flag_value(args, "--mode").unwrap_or_else(|| "engine".into());
    if !matches!(mode.as_str(), "engine" | "tcp" | "http") {
        return Err(CliError::Usage(format!(
            "unknown mode {mode:?} (expected engine, tcp, or http)"
        )));
    }
    let parse_count = |flag: &str, default: usize| -> Result<usize, CliError> {
        flag_value(args, flag)
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| CliError::Usage(format!("bad {flag} (expected a positive integer)")))
            .map(|v| v.unwrap_or(default))
            .and_then(|n| {
                if n == 0 {
                    Err(CliError::Usage(format!("{flag} must be at least 1")))
                } else {
                    Ok(n)
                }
            })
    };
    let clients = parse_count("--clients", 4)?;
    let frame = parse_count("--frame", 256)?;
    let workers = parse_count("--workers", 2)?;
    let queries = parse_count("--queries", 100_000)?;
    let epochs_flag = parse_count("--epochs", 4)? as u64;
    let out =
        PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| "BENCH_replay.json".into()));

    // Trace source: a sealed CELLLOAD file replays verbatim; otherwise
    // the preset generates one (deterministically, at any --threads).
    let trace_in = match flag_value(args, "--trace-in") {
        Some(path) => {
            let bytes = fs::read(&path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            Some(
                cellload::Trace::from_bytes(&bytes)
                    .map_err(|e| CliError::Data(format!("{path}: {e}")))?,
            )
        }
        None => None,
    };
    let preset = match (&trace_in, flag_value(args, "--preset")) {
        (Some(t), flag) => {
            let p = cellload::Preset::parse(&t.preset).ok_or_else(|| {
                CliError::Data(format!("trace carries unknown preset {:?}", t.preset))
            })?;
            if flag.is_some_and(|f| f != t.preset) {
                return Err(CliError::Usage(format!(
                    "--preset conflicts with the trace's preset {:?}",
                    t.preset
                )));
            }
            p
        }
        (None, Some(f)) => cellload::Preset::parse(&f).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown preset {f:?} (steady|diurnal|flashcrowd|scan|churn)"
            ))
        })?,
        (None, None) => {
            return Err(CliError::Usage(
                "missing --preset (steady|diurnal|flashcrowd|scan|churn)".into(),
            ))
        }
    };
    let epochs = match &trace_in {
        Some(t) => t.segments.iter().map(|s| s.epoch).max().unwrap_or(0) + 1,
        None if preset == cellload::Preset::Churn => epochs_flag.max(2),
        None => 1,
    };

    // Per-epoch serving indexes and their prefix universes. Non-churn
    // presets serve one frozen classification; churn classifies every
    // epoch of the built-in churn world so segment boundaries have real
    // label deltas to cross.
    let mut arcs: Vec<Arc<cellserve::FrozenIndex>> = Vec::new();
    let mut artifacts: Vec<Vec<u8>> = Vec::new();
    let mut universes: Vec<cellload::Universe> = Vec::new();
    let seed;
    if preset == cellload::Preset::Churn {
        seed = flag_value(args, "--seed")
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| CliError::Usage("bad --seed value".into()))?
            .unwrap_or(42);
        eprintln!("churn world (seed {seed:#x}): classifying {epochs} epoch(s) …");
        let world = celldelta::ChurnWorld::demo(seed);
        for e in 0..epochs {
            let frozen = celldelta::classify_epoch(&world.epoch_counters(e), threshold);
            universes.push(cellload::Universe::from_frozen(&frozen));
            artifacts.push(cellserve::Artifact::encode(
                &frozen,
                cellserve::ArtifactFormat::V2,
            ));
            arcs.push(Arc::new(frozen));
        }
    } else {
        let (scale, config) = world_config(args)?;
        seed = config.seed;
        eprintln!("generating {scale} world (seed {seed:#x}) and freezing its classification …");
        let world = worldgen::World::generate(config);
        let (beacons, demand) = cdnsim::generate_datasets(&world);
        let (_, class) = cellspot::Pipeline::new(&beacons, &demand)
            .threshold(threshold)
            .classify()?;
        let frozen = cellserve::FrozenIndex::from_classification(&class, None);
        universes.push(cellload::Universe::from_classification(&class));
        artifacts.push(cellserve::Artifact::encode(
            &frozen,
            cellserve::ArtifactFormat::V2,
        ));
        arcs.push(Arc::new(frozen));
    }

    let trace = match trace_in {
        Some(t) => t,
        None => cellload::TraceSpec {
            preset,
            seed,
            queries,
            epochs,
        }
        .generate(&universes),
    };
    if let Some(path) = flag_value(args, "--trace-out") {
        let path = PathBuf::from(path);
        cellstream::write_atomic_bytes(&path, &trace.to_bytes())
            .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        eprintln!(
            "sealed trace ({} queries, digest {}) → {}",
            trace.total_queries(),
            cellserve::hash_hex(trace.digest()),
            path.display()
        );
    }

    // The record always carries latency and cache numbers, so the
    // replay observer is enabled even without a --metrics export.
    let obs = Observer::enabled();
    let last = arcs.len() - 1;
    let outcome = match mode.as_str() {
        "engine" => cellload::replay_engine(&trace, &obs, |e| arcs[(e as usize).min(last)].clone()),
        _ => {
            // Seal consecutive-epoch deltas up front; the segment hook
            // hot-patches the daemon right before each epoch's traffic.
            let mut deltas: Vec<Vec<u8>> = Vec::new();
            for (i, pair) in artifacts.windows(2).enumerate() {
                let e = i as u64;
                deltas.push(
                    celldelta::build_delta(&pair[0], &pair[1], e, e + 1)
                        .map_err(|err| CliError::Data(format!("epoch {} delta: {err}", e + 1)))?,
                );
            }
            let listen = Some("127.0.0.1:0".to_string());
            let config = cellserved::ServeConfig {
                http_listen: if mode == "http" { listen.clone() } else { None },
                tcp_listen: if mode == "tcp" { listen } else { None },
                workers,
                ..cellserved::ServeConfig::default()
            };
            let base = cellserve::Artifact::decode(&artifacts[0])
                .map_err(|e| CliError::Data(format!("base artifact: {e}")))?;
            let daemon = cellserved::Daemon::start_with_index(config, base, obs.clone())
                .map_err(|e| served_error("in-process daemon", e))?;
            let hook = |epoch: u64| -> Result<(), cellload::ReplayError> {
                if epoch == 0 {
                    return Ok(());
                }
                let delta = deltas.get(epoch as usize - 1).ok_or_else(|| {
                    cellload::ReplayError::Hook(format!("no delta sealed for epoch {epoch}"))
                })?;
                daemon.apply_delta_now(delta).map_err(|e| {
                    cellload::ReplayError::Hook(format!("epoch {epoch} hot-patch: {e}"))
                })?;
                Ok(())
            };
            let cfg = cellload::ReplayConfig {
                clients,
                frame,
                ..cellload::ReplayConfig::default()
            };
            let result = match mode.as_str() {
                "tcp" => {
                    let addr = daemon.tcp_addr().expect("tcp endpoint configured");
                    cellload::replay_framed(addr, &trace, &cfg, &obs, hook)
                }
                _ => {
                    let addr = daemon.http_addr().expect("http endpoint configured");
                    cellload::replay_http(addr, &trace, &cfg, &obs, hook)
                }
            };
            let outcome = result.map_err(|e| CliError::Io(format!("replay ({mode}): {e}")))?;
            daemon.shutdown();
            outcome
        }
    };
    if outcome.dropped > 0 {
        return Err(CliError::Data(format!(
            "replay dropped {} of {} queries",
            outcome.dropped,
            trace.total_queries()
        )));
    }

    let record = cellload::bench_replay_record(
        rayon::current_num_threads(),
        cellload::workload_json(&trace, &universes[0]),
        cellload::replay_json(&outcome, &obs),
    );
    write(
        &out,
        &serde_json::to_string_pretty(&record).expect("serialize replay record"),
    )?;
    eprintln!(
        "{} `{}` queries replayed ({mode}): {:.0} lookups/s, {} matched, \
         answer digest {} → {}",
        outcome.lookups,
        preset.name(),
        outcome.lookups_per_sec(),
        outcome.matched,
        cellserve::hash_hex(outcome.answer_digest),
        out.display()
    );
    write_metrics(&metrics, &obs)?;
    Ok(())
}

/// Map daemon start-up failures onto the CLI's exit-code taxonomy.
fn served_error(index_path: &str, e: cellserved::ServedError) -> CliError {
    match e {
        cellserved::ServedError::Artifact(a) => CliError::Data(format!("{index_path}: {a}")),
        cellserved::ServedError::Delta(d) => CliError::Data(format!("{index_path}: {d}")),
        cellserved::ServedError::Io(io) => CliError::Io(format!("{index_path}: {io}")),
        other => CliError::Usage(other.to_string()),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "cellspot — cellular subnet identification from CDN logs\n\
         \n\
         commands:\n\
           synth       --scale mini|demo|paper [--seed N] [--out DIR]\n\
           stream      --scale mini|demo|paper [--seed N] [--epochs E] [--shards N]\n\
                       [--checkpoint DIR] [--retain N] [--resume] [--stop-after-epoch K]\n\
                       [--fault-plan FILE] [--threshold T] [--out DIR] [--emit-deltas DIR]\n\
           classify    --beacons F --demand F [--threshold T] [--out F]\n\
           identify-as --beacons F --demand F --asdb F [--min-du X] [--min-hits N] [--out F]\n\
           validate    --beacons F --demand F --ground-truth F [--sweep]\n\
           stats       --beacons F --demand F --asdb F\n\
           index build --beacons F --demand F [--threshold T] [--format v1|v2] --out ARTIFACT\n\
           index migrate --in ARTIFACT [--to v1|v2] --out ARTIFACT\n\
           delta build --base ARTIFACT --beacons F --demand F [--threshold T]\n\
                       [--base-epoch N] [--epoch N] --out DELTA\n\
           delta apply --base ARTIFACT --delta DELTA --out ARTIFACT\n\
           lookup      --index ARTIFACT --ips F [--out F]\n\
           serve       --index ARTIFACT [--listen ADDR] [--tcp ADDR] [--workers N]\n\
                       [--queue-depth N] [--max-linger-us N] [--reload-watch]\n\
                       [--reload-poll-ms N] [--delta-watch FILE] [--shutdown-after-ms N]\n\
                       [--max-conns N] [--io-timeout-ms N] [--max-requests-per-conn N]\n\
                       [--drain-timeout-ms N]   (0 disables the respective limit)\n\
           replay      --preset steady|diurnal|flashcrowd|scan|churn [--seed N]\n\
                       [--queries N] [--epochs E] [--scale mini|demo|paper]\n\
                       [--mode engine|tcp|http] [--clients N] [--frame N] [--workers N]\n\
                       [--trace-out FILE] [--trace-in FILE] [--out BENCH_replay.json]\n\
         \n\
         global flags:\n\
           --threads N                 pin the rayon pool (flag > CELLSPOT_THREADS > auto)\n\
           --metrics FILE              export observability metrics (classify, stream,\n\
                                       index build, delta build, lookup)\n\
           --metrics-format json|prometheus   export format (default json)\n\
         \n\
         exit codes: 2 usage, 3 I/O, 4 bad data, 5 pipeline, 6 streaming\n\
         CSV formats: see crates/cli/src/io.rs docs."
    );
    exit(if err.is_empty() { 0 } else { 2 });
}
