//! `cellspot` — command-line interface to the Cell Spotting methodology.
//!
//! Run `cellspot --help` for usage. All heavy lifting lives in the
//! library (`cli::commands`); this file only parses arguments and does
//! file I/O.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;

use cli::{commands, io};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing command");
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "synth" => synth(rest),
        "stream" => stream(rest),
        "classify" => classify(rest),
        "identify-as" => identify_as(rest),
        "validate" => validate(rest),
        "stats" => stats(rest),
        "--help" | "-h" | "help" => {
            usage("");
        }
        other => usage(&format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

type CmdResult = Result<(), String>;

/// Pull the value following a `--flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn required(args: &[String], flag: &str) -> Result<String, String> {
    flag_value(args, flag).ok_or_else(|| format!("missing required {flag} FILE"))
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn write(path: &PathBuf, content: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
    }
    fs::write(path, content).map_err(|e| format!("{}: {e}", path.display()))
}

fn load_datasets(
    args: &[String],
) -> Result<(cdnsim::BeaconDataset, cdnsim::DemandDataset), String> {
    let beacons = io::parse_beacons(&read(&required(args, "--beacons")?)?)
        .map_err(|e| format!("beacons: {e}"))?;
    let demand = io::parse_demand(&read(&required(args, "--demand")?)?)
        .map_err(|e| format!("demand: {e}"))?;
    Ok((beacons, demand))
}

/// `synth`: generate a world and write its observable datasets as CSVs.
fn synth(args: &[String]) -> CmdResult {
    let scale = flag_value(args, "--scale").unwrap_or_else(|| "demo".into());
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| "data".into()));
    let mut config = match scale.as_str() {
        "mini" => worldgen::WorldConfig::mini(),
        "demo" => worldgen::WorldConfig::demo(),
        "paper" => worldgen::WorldConfig::paper(),
        other => return Err(format!("unknown scale {other:?} (mini|demo|paper)")),
    };
    if let Some(seed) = flag_value(args, "--seed") {
        config.seed = seed.parse().map_err(|_| "bad --seed value".to_string())?;
    }
    let min_hits = config.scaled_min_beacon_hits();
    eprintln!("generating {scale} world (seed {:#x}) …", config.seed);
    let world = worldgen::World::generate(config);
    let (beacons, demand) = cdnsim::generate_datasets(&world);
    write(&out.join("beacons.csv"), &io::beacons_to_csv(&beacons))?;
    write(&out.join("demand.csv"), &io::demand_to_csv(&demand))?;
    write(&out.join("asdb.csv"), &io::asdb_to_csv(&world.as_db))?;
    for gt in &world.carriers {
        let mut csv = String::from(io::GROUNDTRUTH_HEADER);
        csv.push('\n');
        for e in &gt.entries {
            match e {
                asdb::GroundTruthEntry::V4(net, a) => {
                    csv.push_str(&format!("{net},{a}\n"));
                }
                asdb::GroundTruthEntry::V6(net, a) => {
                    csv.push_str(&format!("{net},{a}\n"));
                }
            }
        }
        let name = gt.name.to_lowercase().replace(' ', "_");
        write(&out.join(format!("{name}_groundtruth.csv")), &csv)?;
    }
    eprintln!(
        "wrote beacons.csv ({} blocks), demand.csv ({} blocks), asdb.csv ({} ASes), \
         3 ground-truth files to {} (rule-2 hit threshold for this scale: {min_hits})",
        beacons.len(),
        demand.len(),
        world.as_db.len(),
        out.display()
    );
    Ok(())
}

/// `stream`: run the streaming ingest engine over the built-in world's
/// event stream, with optional per-epoch checkpointing and resume.
fn stream(args: &[String]) -> CmdResult {
    let scale = flag_value(args, "--scale").unwrap_or_else(|| "demo".into());
    let mut config = match scale.as_str() {
        "mini" => worldgen::WorldConfig::mini(),
        "demo" => worldgen::WorldConfig::demo(),
        "paper" => worldgen::WorldConfig::paper(),
        other => return Err(format!("unknown scale {other:?} (mini|demo|paper)")),
    };
    if let Some(seed) = flag_value(args, "--seed") {
        config.seed = seed.parse().map_err(|_| "bad --seed value".to_string())?;
    }
    let epochs: u32 = flag_value(args, "--epochs")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --epochs")?
        .unwrap_or(8);
    let shards: u32 = flag_value(args, "--shards")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --shards")?
        .unwrap_or(4);
    if epochs == 0 || shards == 0 {
        return Err("--epochs and --shards must be at least 1".into());
    }
    let stop_after: Option<u32> = flag_value(args, "--stop-after-epoch")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --stop-after-epoch")?;
    let threshold = match flag_value(args, "--threshold") {
        Some(t) => Some(
            t.parse::<f64>()
                .ok()
                .filter(|t| (0.0..=1.0).contains(t))
                .ok_or("bad --threshold (expected 0..1)")?,
        ),
        None => None,
    };
    let retain: usize = flag_value(args, "--retain")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --retain")?
        .unwrap_or(cellstream::DEFAULT_RETAIN);
    if retain == 0 {
        return Err("--retain must be at least 1".into());
    }
    let ckpt_store = flag_value(args, "--checkpoint")
        .map(|d| cellstream::CheckpointStore::new(PathBuf::from(d), retain));
    let fault_plan = flag_value(args, "--fault-plan");
    let resume = args.iter().any(|a| a == "--resume");
    let out_dir = flag_value(args, "--out").map(PathBuf::from);

    eprintln!("generating {scale} world (seed {:#x}) …", config.seed);
    let world = worldgen::World::generate(config);
    let dns = dnssim::generate_dns(&world);
    let resolvers = cellstream::ResolverMap::from_dns(&dns);
    let stream_cfg = cellstream::StreamConfig {
        shards,
        ..Default::default()
    };

    if let Some(plan_path) = fault_plan {
        // Chaos mode: run the whole stream under the fault plan's injected
        // failures, recovering through the checkpoint store.
        let store = ckpt_store
            .as_ref()
            .ok_or("--fault-plan needs --checkpoint DIR")?;
        if stop_after.is_some() {
            return Err("--fault-plan runs the full stream; drop --stop-after-epoch".into());
        }
        let plan = cellstream::FaultPlan::read_from(Path::new(&plan_path))
            .map_err(|e| format!("{plan_path}: {e}"))?;
        let injector = Arc::new(cellstream::FaultInjector::new(plan));
        let gate: Arc<dyn cdnsim::EpochGate> = injector.clone();
        let source =
            cdnsim::EventSource::new(&world, cdnsim::CdnConfig::default(), epochs).with_gate(gate);
        let (engine, report) =
            cellstream::run_chaos(&source, stream_cfg, &resolvers, store, &injector, 32)
                .map_err(|e| e.to_string())?;
        for line in &report.log {
            eprintln!("chaos: {line}");
        }
        eprintln!(
            "chaos run survived {} crash(es), {} shard recovery(ies) ({} epoch(s) replayed), \
             {} stall(s); {} checkpoint read(s) rejected",
            report.crashes,
            report.shard_recoveries,
            report.replayed_epochs,
            report.stalls,
            report.checkpoints_rejected
        );
        let outputs = engine.finalize();
        write_stream_outputs(&out_dir, &outputs)?;
        print!("{}", commands::stream_summary(&outputs, threshold));
        return Ok(());
    }

    let source = cdnsim::EventSource::new(&world, cdnsim::CdnConfig::default(), epochs);

    let mut engine = if resume {
        let store = ckpt_store
            .as_ref()
            .ok_or("--resume needs --checkpoint DIR")?;
        let rec = store
            .load_latest_good()
            .map_err(|e| format!("{}: {e}", store.dir().display()))?;
        for (path, why) in &rec.skipped {
            eprintln!(
                "warning: skipping corrupt checkpoint {}: {why}",
                path.display()
            );
        }
        let (snap, path) = rec
            .snapshot
            .ok_or_else(|| format!("no usable checkpoint in {}", store.dir().display()))?;
        if snap.epochs_total != epochs || snap.config.shards != shards {
            return Err(format!(
                "checkpoint layout mismatch: {} epochs / {} shards on disk vs \
                 {epochs} / {shards} requested",
                snap.epochs_total, snap.config.shards
            ));
        }
        eprintln!(
            "resuming at epoch {}/{} from {}",
            snap.epochs_done,
            snap.epochs_total,
            path.display()
        );
        cellstream::IngestEngine::try_restore(&snap, resolvers).map_err(|e| e.to_string())?
    } else {
        cellstream::IngestEngine::try_for_source(stream_cfg, &source, resolvers)
            .map_err(|e| e.to_string())?
    };

    let wants_more = |done: u32| match stop_after {
        Some(k) => done < k,
        None => true,
    };
    while !engine.finished() && wants_more(engine.epochs_done()) {
        let e = engine
            .try_ingest_epoch(&source, None)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "epoch {}/{epochs}: {} events folded, ~{} KiB live state",
            e + 1,
            engine.events_seen(),
            engine.state_bytes() / 1024
        );
        if let Some(store) = &ckpt_store {
            store
                .save(&engine.snapshot())
                .map_err(|e| format!("{}: {e}", store.dir().display()))?;
        }
    }
    if !engine.finished() {
        eprintln!(
            "stopped after epoch {} of {epochs}; continue with --resume --checkpoint DIR",
            engine.epochs_done()
        );
        return Ok(());
    }
    let outputs = engine.finalize();
    write_stream_outputs(&out_dir, &outputs)?;
    print!("{}", commands::stream_summary(&outputs, threshold));
    Ok(())
}

/// Write the streamed datasets as CSVs when `--out` was given.
fn write_stream_outputs(
    out_dir: &Option<PathBuf>,
    outputs: &cellstream::StreamOutputs,
) -> CmdResult {
    if let Some(dir) = out_dir {
        write(
            &dir.join("beacons.csv"),
            &io::beacons_to_csv(&outputs.beacons),
        )?;
        write(&dir.join("demand.csv"), &io::demand_to_csv(&outputs.demand))?;
        eprintln!(
            "wrote streamed beacons.csv and demand.csv to {}",
            dir.display()
        );
    }
    Ok(())
}

/// `classify`: beacons + demand → cellular block CSV.
fn classify(args: &[String]) -> CmdResult {
    let (beacons, demand) = load_datasets(args)?;
    let threshold = match flag_value(args, "--threshold") {
        Some(t) => Some(
            t.parse::<f64>()
                .ok()
                .filter(|t| (0.0..=1.0).contains(t))
                .ok_or("bad --threshold (expected 0..1)")?,
        ),
        None => None,
    };
    let (csv, n) = commands::classify(&beacons, &demand, threshold)?;
    match flag_value(args, "--out") {
        Some(path) => {
            write(&PathBuf::from(&path), &csv)?;
            eprintln!("{n} cellular blocks → {path}");
        }
        None => print!("{csv}"),
    }
    Ok(())
}

/// `identify-as`: the §5 AS pipeline.
fn identify_as(args: &[String]) -> CmdResult {
    let (beacons, demand) = load_datasets(args)?;
    let as_db =
        io::parse_asdb(&read(&required(args, "--asdb")?)?).map_err(|e| format!("asdb: {e}"))?;
    let min_du: f64 = flag_value(args, "--min-du")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --min-du")?
        .unwrap_or(0.1);
    let min_hits: f64 = flag_value(args, "--min-hits")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --min-hits")?
        .unwrap_or(300.0);
    let (csv, report) = commands::identify_as(&beacons, &demand, &as_db, min_du, min_hits);
    eprint!("{report}");
    match flag_value(args, "--out") {
        Some(path) => write(&PathBuf::from(path), &csv)?,
        None => print!("{csv}"),
    }
    Ok(())
}

/// `validate`: score against a ground-truth CSV.
fn validate(args: &[String]) -> CmdResult {
    let (beacons, demand) = load_datasets(args)?;
    let gt_path = required(args, "--ground-truth")?;
    let gt = io::parse_ground_truth("ground truth", &read(&gt_path)?)
        .map_err(|e| format!("ground truth: {e}"))?;
    let sweep = if args.iter().any(|a| a == "--sweep") {
        50
    } else {
        0
    };
    print!("{}", commands::validate(&beacons, &demand, &gt, sweep));
    Ok(())
}

/// `stats`: the geographic rollup.
fn stats(args: &[String]) -> CmdResult {
    let (beacons, demand) = load_datasets(args)?;
    let as_db =
        io::parse_asdb(&read(&required(args, "--asdb")?)?).map_err(|e| format!("asdb: {e}"))?;
    print!("{}", commands::stats(&beacons, &demand, &as_db));
    Ok(())
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "cellspot — cellular subnet identification from CDN logs\n\
         \n\
         commands:\n\
           synth       --scale mini|demo|paper [--seed N] [--out DIR]\n\
           stream      --scale mini|demo|paper [--seed N] [--epochs E] [--shards N]\n\
                       [--checkpoint DIR] [--retain N] [--resume] [--stop-after-epoch K]\n\
                       [--fault-plan FILE] [--threshold T] [--out DIR]\n\
           classify    --beacons F --demand F [--threshold T] [--out F]\n\
           identify-as --beacons F --demand F --asdb F [--min-du X] [--min-hits N] [--out F]\n\
           validate    --beacons F --demand F --ground-truth F [--sweep]\n\
           stats       --beacons F --demand F --asdb F\n\
         \n\
         CSV formats: see crates/cli/src/io.rs docs."
    );
    exit(if err.is_empty() { 0 } else { 2 });
}
