//! CLI error type with documented exit codes.
//!
//! Every subcommand returns [`CliError`]; `main` prints it and exits
//! with the matching code, so scripts can tell misuse from bad data
//! from a pipeline failure:
//!
//! | code | variant | meaning |
//! |------|------------|----------------------------------------|
//! | 2 | `Usage` | bad flags or arguments |
//! | 3 | `Io` | file read/write failed |
//! | 4 | `Data` | an input file failed to parse/validate |
//! | 5 | `Pipeline` | the study pipeline refused to run |
//! | 6 | `Stream` | the streaming ingest subsystem failed |

use std::fmt;

use cellspot::CellspotError;
use cellstream::StreamError;

/// Why a `cellspot` subcommand failed, mapped to an exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad flags or arguments (exit 2, same as the usage screen).
    Usage(String),
    /// File I/O failed (exit 3).
    Io(String),
    /// An input file failed to parse or validate (exit 4).
    Data(String),
    /// The study pipeline refused to run (exit 5).
    Pipeline(CellspotError),
    /// The streaming ingest subsystem failed (exit 6).
    Stream(StreamError),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Data(_) => 4,
            CliError::Pipeline(_) => 5,
            CliError::Stream(_) => 6,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(why) => write!(f, "{why}"),
            CliError::Io(why) => write!(f, "{why}"),
            CliError::Data(why) => write!(f, "{why}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::Stream(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Pipeline(e) => Some(e),
            CliError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CellspotError> for CliError {
    fn from(e: CellspotError) -> Self {
        CliError::Pipeline(e)
    }
}

impl From<StreamError> for CliError {
    fn from(e: StreamError) -> Self {
        CliError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Io("x".into()).exit_code(), 3);
        assert_eq!(CliError::Data("x".into()).exit_code(), 4);
        assert_eq!(
            CliError::Pipeline(CellspotError::Config("x".into())).exit_code(),
            5
        );
        assert_eq!(
            CliError::Stream(StreamError::Ingest(cellstream::IngestError::Finished {
                epochs: 1
            }))
            .exit_code(),
            6
        );
    }
}
