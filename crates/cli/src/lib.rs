//! # cli — the `cellspot` command-line tool
//!
//! Library portion of the binary: CSV dataset formats ([`io`]) and the
//! command implementations ([`commands`]), kept out of `main.rs` so unit
//! tests can drive everything without spawning processes.
//!
//! The tool exposes the paper's methodology to network services that
//! have their own beacon/demand logs:
//!
//! ```text
//! cellspot synth    --scale demo --out data/       # built-in world → CSVs
//! cellspot classify --beacons b.csv --demand d.csv --out cellular.csv
//! cellspot identify-as --beacons b.csv --demand d.csv --asdb a.csv
//! cellspot validate --beacons b.csv --demand d.csv --ground-truth gt.csv
//! cellspot stats    --beacons b.csv --demand d.csv --asdb a.csv
//! ```

pub mod commands;
pub mod error;
pub mod io;

pub use error::CliError;
