//! CSV dataset formats for the `cellspot` tool.
//!
//! Three tabular formats cover everything a network service needs to run
//! the methodology on its own logs:
//!
//! * **beacons.csv** — `block,asn,hits_total,netinfo_hits,cellular_hits,
//!   wifi_hits,other_hits`, one row per /24 or /48 block. `block` is a
//!   CIDR (`203.0.113.0/24` or `2001:db8::/48`).
//! * **demand.csv** — `block,asn,du`. DU values are renormalized to
//!   100,000 on load, so any consistent demand unit works.
//! * **groundtruth.csv** — `prefix,label` with label `cellular` or
//!   `fixed`, arbitrary prefix lengths.
//!
//! The `lookup` subcommand additionally reads a plain query list: one IP
//! address per line, blank lines and `#` comments skipped.
//!
//! Parsing is strict with precise line-numbered errors: a measurement
//! tool that silently skips malformed rows produces silently wrong
//! studies.

use std::fmt;
use std::str::FromStr;

use asdb::{AccessType, CarrierGroundTruth, GroundTruthEntry};
use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
use netaddr::{Asn, Block24, Block48, BlockId, Ipv4Net, Ipv6Net};

/// A parse failure with file context.
#[derive(Debug)]
pub struct CsvError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn err(line: usize, message: impl Into<String>) -> CsvError {
    CsvError {
        line,
        message: message.into(),
    }
}

/// Parse a CIDR into the measurement block it denotes. /24-or-longer
/// IPv4 prefixes map to their containing /24; IPv6 to the containing
/// /48. *Shorter* prefixes are rejected — a row must denote one block.
pub fn parse_block(s: &str) -> Result<BlockId, String> {
    if s.contains(':') {
        let net = Ipv6Net::from_str(s).map_err(|e| e.to_string())?;
        if net.len() < 48 {
            return Err(format!("{s}: prefixes shorter than /48 are not blocks"));
        }
        Ok(BlockId::V6(Block48::of_net(&net)))
    } else {
        let net = Ipv4Net::from_str(s).map_err(|e| e.to_string())?;
        if net.len() < 24 {
            return Err(format!("{s}: prefixes shorter than /24 are not blocks"));
        }
        Ok(BlockId::V4(Block24::of_net(&net)))
    }
}

/// Render a block as the CIDR the CSVs use.
pub fn block_to_string(block: BlockId) -> String {
    match block {
        BlockId::V4(b) => b.network().to_string(),
        BlockId::V6(b) => b.network().to_string(),
    }
}

/// Header expected at the top of beacons.csv.
pub const BEACON_HEADER: &str =
    "block,asn,hits_total,netinfo_hits,cellular_hits,wifi_hits,other_hits";
/// Header expected at the top of demand.csv.
pub const DEMAND_HEADER: &str = "block,asn,du";
/// Header expected at the top of groundtruth.csv.
pub const GROUNDTRUTH_HEADER: &str = "prefix,label";

/// Parse beacons.csv content.
pub fn parse_beacons(content: &str) -> Result<BeaconDataset, CsvError> {
    let mut records = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if i == 0 && line.eq_ignore_ascii_case(BEACON_HEADER) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 7 {
            return Err(err(
                lineno,
                format!("expected 7 fields ({BEACON_HEADER}), got {}", fields.len()),
            ));
        }
        let block = parse_block(fields[0]).map_err(|e| err(lineno, e))?;
        let asn: Asn = fields[1]
            .parse()
            .map_err(|_| err(lineno, format!("bad asn {:?}", fields[1])))?;
        let nums: Vec<u64> = fields[2..7]
            .iter()
            .map(|f| {
                f.parse::<u64>()
                    .map_err(|_| err(lineno, format!("bad count {f:?}")))
            })
            .collect::<Result<_, _>>()?;
        let (hits_total, netinfo, cellular, wifi, other) =
            (nums[0], nums[1], nums[2], nums[3], nums[4]);
        if netinfo > hits_total {
            return Err(err(lineno, "netinfo_hits exceeds hits_total"));
        }
        if cellular + wifi + other != netinfo {
            return Err(err(
                lineno,
                "cellular+wifi+other hits must equal netinfo_hits",
            ));
        }
        records.push(BeaconRecord {
            block,
            asn,
            hits_total,
            netinfo_hits: netinfo,
            cellular_hits: cellular,
            wifi_hits: wifi,
            other_hits: other,
        });
    }
    Ok(BeaconDataset::from_records("csv", records))
}

/// Parse demand.csv content (renormalizes to 100,000 DU).
pub fn parse_demand(content: &str) -> Result<DemandDataset, CsvError> {
    let mut records = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if i == 0 && line.eq_ignore_ascii_case(DEMAND_HEADER) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(err(
                lineno,
                format!("expected 3 fields ({DEMAND_HEADER}), got {}", fields.len()),
            ));
        }
        let block = parse_block(fields[0]).map_err(|e| err(lineno, e))?;
        let asn: Asn = fields[1]
            .parse()
            .map_err(|_| err(lineno, format!("bad asn {:?}", fields[1])))?;
        let du: f64 = fields[2]
            .parse()
            .map_err(|_| err(lineno, format!("bad du {:?}", fields[2])))?;
        if !du.is_finite() || du < 0.0 {
            return Err(err(lineno, format!("du must be finite and ≥ 0, got {du}")));
        }
        records.push(DemandRecord { block, asn, du });
    }
    Ok(DemandDataset::from_raw("csv", records))
}

/// Parse groundtruth.csv content into a carrier ground-truth list.
pub fn parse_ground_truth(name: &str, content: &str) -> Result<CarrierGroundTruth, CsvError> {
    let mut entries = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if i == 0 && line.eq_ignore_ascii_case(GROUNDTRUTH_HEADER) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 2 {
            return Err(err(
                lineno,
                format!(
                    "expected 2 fields ({GROUNDTRUTH_HEADER}), got {}",
                    fields.len()
                ),
            ));
        }
        let label = match fields[1].to_ascii_lowercase().as_str() {
            "cellular" | "cell" => AccessType::Cellular,
            "fixed" | "fixed-line" | "wired" => AccessType::Fixed,
            other => return Err(err(lineno, format!("unknown label {other:?}"))),
        };
        if fields[0].contains(':') {
            let net: Ipv6Net = fields[0]
                .parse()
                .map_err(|e: netaddr::NetAddrError| err(lineno, e.to_string()))?;
            entries.push(GroundTruthEntry::V6(net, label));
        } else {
            let net: Ipv4Net = fields[0]
                .parse()
                .map_err(|e: netaddr::NetAddrError| err(lineno, e.to_string()))?;
            entries.push(GroundTruthEntry::V4(net, label));
        }
    }
    if entries.is_empty() {
        return Err(err(0, "ground truth contains no entries"));
    }
    Ok(CarrierGroundTruth::new(name, Vec::new(), entries))
}

/// Serialize a BEACON dataset to CSV.
pub fn beacons_to_csv(ds: &BeaconDataset) -> String {
    let mut out = String::from(BEACON_HEADER);
    out.push('\n');
    for r in ds.iter() {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            block_to_string(r.block),
            r.asn.value(),
            r.hits_total,
            r.netinfo_hits,
            r.cellular_hits,
            r.wifi_hits,
            r.other_hits
        ));
    }
    out
}

/// Serialize a DEMAND dataset to CSV.
pub fn demand_to_csv(ds: &DemandDataset) -> String {
    let mut out = String::from(DEMAND_HEADER);
    out.push('\n');
    for r in ds.iter() {
        out.push_str(&format!(
            "{},{},{}\n",
            block_to_string(r.block),
            r.asn.value(),
            r.du
        ));
    }
    out
}

/// Serialize an AS database to CSV (`asn,country,continent,class,name`).
pub fn asdb_to_csv(db: &asdb::AsDatabase) -> String {
    let mut out = String::from("asn,country,continent,class,name\n");
    for r in db.iter() {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            r.asn.value(),
            r.country,
            r.continent.code(),
            r.class,
            r.name.replace(',', ";")
        ));
    }
    out
}

/// Parse asdb.csv content.
pub fn parse_asdb(content: &str) -> Result<asdb::AsDatabase, CsvError> {
    use asdb::{AsClass, AsKind, AsRecord};
    use netaddr::{Continent, CountryCode};
    let mut records = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if i == 0 && line.to_ascii_lowercase().starts_with("asn,") {
            continue;
        }
        let fields: Vec<&str> = line.splitn(5, ',').map(str::trim).collect();
        if fields.len() != 5 {
            return Err(err(lineno, "expected asn,country,continent,class,name"));
        }
        let asn: Asn = fields[0]
            .parse()
            .map_err(|_| err(lineno, format!("bad asn {:?}", fields[0])))?;
        let country = CountryCode::new(fields[1]).map_err(|e| err(lineno, e.to_string()))?;
        let continent = match fields[2] {
            "AF" => Continent::Africa,
            "AS" => Continent::Asia,
            "EU" => Continent::Europe,
            "NA" => Continent::NorthAmerica,
            "OC" => Continent::Oceania,
            "SA" => Continent::SouthAmerica,
            other => return Err(err(lineno, format!("unknown continent {other:?}"))),
        };
        let class = match fields[3] {
            "Transit/Access" => AsClass::TransitAccess,
            "Content" => AsClass::Content,
            "Enterprise" => AsClass::Enterprise,
            "Unknown" => AsClass::Unknown,
            other => return Err(err(lineno, format!("unknown class {other:?}"))),
        };
        // CSV carries only public metadata; the hidden kind is not part
        // of the format. Reconstruct a record with a kind consistent with
        // the public class (TransitOnly surfaces as Transit/Access too,
        // but the pipeline never reads the kind).
        let kind = match class {
            AsClass::TransitAccess => AsKind::FixedOnly,
            AsClass::Content => AsKind::ContentCdn,
            AsClass::Enterprise => AsKind::Enterprise,
            AsClass::Unknown => AsKind::ContentCdn,
        };
        let mut rec = AsRecord::new(asn, fields[4], country, continent, kind);
        rec.class = class;
        records.push(rec);
    }
    Ok(asdb::AsDatabase::from_records(records))
}

/// Parse a `lookup` query list: one IP address per line (v4 dotted quad
/// or v6 hex groups), blank lines and `#` comments skipped. Strict like
/// the CSV parsers — a malformed address fails the batch with its line
/// number rather than silently shrinking it.
pub fn parse_ip_list(content: &str) -> Result<Vec<cellserve::IpKey>, CsvError> {
    let mut ips = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ip = cellserve::IpKey::parse(line).map_err(|e| err(i + 1, e.to_string()))?;
        ips.push(ip);
    }
    Ok(ips)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_block_forms() {
        assert!(matches!(parse_block("203.0.113.0/24"), Ok(BlockId::V4(_))));
        // Longer-than-/24 maps into its /24.
        let b = parse_block("203.0.113.128/25").unwrap();
        assert_eq!(block_to_string(b), "203.0.113.0/24");
        assert!(matches!(parse_block("2001:db8::/48"), Ok(BlockId::V6(_))));
        assert!(parse_block("10.0.0.0/8").is_err(), "short v4 rejected");
        assert!(parse_block("2001:db8::/32").is_err(), "short v6 rejected");
        assert!(parse_block("garbage").is_err());
    }

    #[test]
    fn beacons_round_trip() {
        let csv = format!(
            "{BEACON_HEADER}\n203.0.113.0/24,64500,100,20,15,5,0\n2001:db8:1:0:0:0:0:0/48,64501,50,10,9,1,0\n"
        );
        let ds = parse_beacons(&csv).expect("valid csv");
        assert_eq!(ds.len(), 2);
        let back = beacons_to_csv(&ds);
        let ds2 = parse_beacons(&back).expect("round trip parses");
        assert_eq!(ds2.len(), 2);
        assert_eq!(ds2.netinfo_hits_total(), 30);
    }

    #[test]
    fn beacons_reject_inconsistent_counts() {
        let bad1 = format!("{BEACON_HEADER}\n203.0.113.0/24,1,10,20,15,5,0\n");
        let e = parse_beacons(&bad1).unwrap_err();
        assert!(e.to_string().contains("exceeds hits_total"), "{e}");
        let bad2 = format!("{BEACON_HEADER}\n203.0.113.0/24,1,100,20,15,1,0\n");
        let e = parse_beacons(&bad2).unwrap_err();
        assert!(e.to_string().contains("must equal netinfo_hits"), "{e}");
        let bad3 = format!("{BEACON_HEADER}\n203.0.113.0/24,1,100\n");
        assert!(parse_beacons(&bad3).is_err());
        // Error carries the right line number.
        let bad4 =
            format!("{BEACON_HEADER}\n203.0.113.0/24,1,10,5,5,0,0\nnot-a-block,1,1,1,1,0,0\n");
        let e = parse_beacons(&bad4).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn demand_parses_and_normalizes() {
        let csv = format!("{DEMAND_HEADER}\n203.0.113.0/24,1,30\n198.51.100.0/24,2,10\n");
        let ds = parse_demand(&csv).expect("valid");
        assert!((ds.total_du() - 100_000.0).abs() < 1e-6);
        assert!(parse_demand("block,asn,du\nx,y,z\n").is_err());
        let neg = format!("{DEMAND_HEADER}\n203.0.113.0/24,1,-3\n");
        assert!(parse_demand(&neg).is_err());
    }

    #[test]
    fn ground_truth_parses_labels() {
        let csv = "prefix,label\n10.0.0.0/20,cellular\n10.1.0.0/20,fixed\n";
        let gt = parse_ground_truth("T", csv).expect("valid");
        let (cell, fixed) = gt.count_blocks24();
        assert_eq!((cell, fixed), (16, 16));
        assert!(parse_ground_truth("T", "prefix,label\n10.0.0.0/20,wireless\n").is_err());
        assert!(
            parse_ground_truth("T", "prefix,label\n").is_err(),
            "empty rejected"
        );
    }

    #[test]
    fn asdb_round_trip() {
        use asdb::{AsKind, AsRecord};
        use netaddr::{Continent, CountryCode};
        let db = asdb::AsDatabase::from_records(vec![AsRecord::new(
            Asn(7018),
            "Example, Inc",
            CountryCode::literal("US"),
            Continent::NorthAmerica,
            AsKind::MixedAccess,
        )]);
        let csv = asdb_to_csv(&db);
        let back = parse_asdb(&csv).expect("round trip");
        let rec = back.get(Asn(7018)).expect("present");
        assert_eq!(rec.class, asdb::AsClass::TransitAccess);
        assert_eq!(rec.country.as_str(), "US");
        assert_eq!(rec.name, "Example; Inc");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let csv = format!("{DEMAND_HEADER}\n# a comment\n\n203.0.113.0/24,1,5\n");
        assert_eq!(parse_demand(&csv).expect("valid").len(), 1);
    }

    #[test]
    fn ip_list_parses_both_families_with_line_numbers() {
        let ips = parse_ip_list("# probes\n203.0.113.5\n\n2001:db8::1\n").expect("valid");
        assert_eq!(ips.len(), 2);
        assert_eq!(ips[0], cellserve::IpKey::V4(0xCB00_7105));
        let e = parse_ip_list("203.0.113.5\nnot-an-ip\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("not-an-ip"), "{e}");
    }
}
