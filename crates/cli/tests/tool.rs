//! End-to-end tests of the `cellspot` binary: synth → classify →
//! identify-as → validate → stats, via real process invocations, plus
//! the serving path (index build → lookup → serve, corrupted-artifact
//! rejection) and error-path behaviour (bad flags, malformed CSV).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cellspot")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary spawns")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cellspot_test_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn full_tool_workflow() {
    let dir = tmpdir("workflow");
    let data = dir.join("data");
    let data_s = data.to_str().expect("utf8 path");

    // synth
    let out = run(&["synth", "--scale", "mini", "--out", data_s]);
    assert!(out.status.success(), "synth failed: {out:?}");
    for f in [
        "beacons.csv",
        "demand.csv",
        "asdb.csv",
        "carrier_a_groundtruth.csv",
    ] {
        assert!(data.join(f).exists(), "{f} missing");
    }
    let beacons = data.join("beacons.csv");
    let demand = data.join("demand.csv");
    let (b, d) = (
        beacons.to_str().expect("utf8"),
        demand.to_str().expect("utf8"),
    );

    // classify to a file
    let cells = dir.join("cellular.csv");
    let out = run(&[
        "classify",
        "--beacons",
        b,
        "--demand",
        d,
        "--out",
        cells.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "classify failed: {out:?}");
    let content = std::fs::read_to_string(&cells).expect("output written");
    assert!(content.starts_with("block,asn,cellular_ratio"));
    assert!(content.lines().count() > 100);

    // identify-as with the scaled hit threshold for a mini world
    let out = run(&[
        "identify-as",
        "--beacons",
        b,
        "--demand",
        d,
        "--asdb",
        data.join("asdb.csv").to_str().expect("utf8"),
        "--min-hits",
        "0.6",
    ]);
    assert!(out.status.success(), "identify-as failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("candidates"), "funnel report on stderr");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.lines().count() > 400, "AS list on stdout");

    // validate against Carrier B (dedicated: near-perfect recall)
    let out = run(&[
        "validate",
        "--beacons",
        b,
        "--demand",
        d,
        "--ground-truth",
        data.join("carrier_b_groundtruth.csv")
            .to_str()
            .expect("utf8"),
        "--sweep",
    ]);
    assert!(out.status.success(), "validate failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("precision 1.000"), "{stdout}");
    assert!(stdout.contains("stable range"));

    // stats
    let out = run(&[
        "stats",
        "--beacons",
        b,
        "--demand",
        d,
        "--asdb",
        data.join("asdb.csv").to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "stats failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("global cellular:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_checkpoints_and_resumes() {
    let dir = tmpdir("stream");
    // Separate checkpoint dirs per scenario: the store retains several
    // checkpoints, and a resume must not see another run's newer files.
    let ckpt_full = dir.join("ckpt_full");
    let ckpt_partial = dir.join("ckpt_partial");
    let args_with_ckpt = |ckpt: &str| {
        vec![
            "stream".to_string(),
            "--scale".to_string(),
            "mini".to_string(),
            "--epochs".to_string(),
            "4".to_string(),
            "--shards".to_string(),
            "3".to_string(),
            "--checkpoint".to_string(),
            ckpt.to_string(),
        ]
    };
    let run_owned = |args: &[String]| {
        let refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        run(&refs)
    };

    // Run to completion in one go, capturing the reference summary.
    let mut full = args_with_ckpt(ckpt_full.to_str().expect("utf8"));
    full.extend([
        "--out".to_string(),
        dir.join("full").to_str().expect("utf8").to_string(),
    ]);
    let out = run_owned(&full);
    assert!(out.status.success(), "stream failed: {out:?}");
    let reference = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        reference.contains("cellular blocks at threshold"),
        "{reference}"
    );
    assert!(reference.contains("top demand blocks"), "{reference}");
    assert!(dir.join("full/beacons.csv").exists());
    assert!(dir.join("full/demand.csv").exists());
    let full_ckpt = std::fs::read_to_string(ckpt_full.join("ckpt-ep000004.json"))
        .expect("final checkpoint written");
    assert!(
        !ckpt_full.join("ckpt-ep000001.json").exists(),
        "default retention prunes the oldest checkpoint"
    );

    // Now "kill" a run after 2 epochs …
    let mut partial = args_with_ckpt(ckpt_partial.to_str().expect("utf8"));
    partial.extend(["--stop-after-epoch".to_string(), "2".to_string()]);
    let out = run_owned(&partial);
    assert!(out.status.success(), "partial stream failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("stopped after epoch 2"));

    // … and resume from its checkpoint: same summary, same final state.
    let mut resumed = args_with_ckpt(ckpt_partial.to_str().expect("utf8"));
    resumed.push("--resume".to_string());
    let out = run_owned(&resumed);
    assert!(out.status.success(), "resume failed: {out:?}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        reference,
        "resumed run must reproduce the uninterrupted summary"
    );
    let resumed_ckpt = std::fs::read_to_string(ckpt_partial.join("ckpt-ep000004.json"))
        .expect("final checkpoint rewritten");
    assert_eq!(
        resumed_ckpt, full_ckpt,
        "final checkpoint must be byte-identical to the uninterrupted run's"
    );

    // A resume that only finds corrupt checkpoints fails cleanly.
    let ckpt_bad = dir.join("ckpt_bad");
    std::fs::create_dir_all(&ckpt_bad).expect("mkdir");
    std::fs::write(ckpt_bad.join("ckpt-ep000002.json"), "{ torn").expect("write");
    let mut from_bad = args_with_ckpt(ckpt_bad.to_str().expect("utf8"));
    from_bad.push("--resume".to_string());
    let out = run_owned(&from_bad);
    assert!(!out.status.success(), "corrupt-only store must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("skipping corrupt checkpoint"),
        "warns per corrupt file: {stderr}"
    );
    assert!(
        stderr.contains("no usable checkpoint"),
        "clean error, no panic: {stderr}"
    );

    // Layout mismatches are rejected instead of silently mixing state.
    let mismatched = vec![
        "stream".to_string(),
        "--scale".to_string(),
        "mini".to_string(),
        "--epochs".to_string(),
        "5".to_string(),
        "--shards".to_string(),
        "3".to_string(),
        "--checkpoint".to_string(),
        ckpt_partial.to_str().expect("utf8").to_string(),
        "--resume".to_string(),
    ];
    let out = run_owned(&mismatched);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("layout mismatch"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_survives_a_fault_plan() {
    let dir = tmpdir("chaos");
    let ckpt_ref = dir.join("ckpt_ref");
    let ckpt_chaos = dir.join("ckpt_chaos");
    let base = |ckpt: &std::path::Path| {
        vec![
            "stream".to_string(),
            "--scale".to_string(),
            "mini".to_string(),
            "--epochs".to_string(),
            "4".to_string(),
            "--shards".to_string(),
            "3".to_string(),
            "--checkpoint".to_string(),
            ckpt.to_str().expect("utf8").to_string(),
        ]
    };
    let run_owned = |args: &[String]| {
        let refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        run(&refs)
    };

    // Fault-free reference.
    let out = run_owned(&base(&ckpt_ref));
    assert!(out.status.success(), "reference stream failed: {out:?}");
    let reference = String::from_utf8_lossy(&out.stdout).to_string();

    // Crash at the epoch-2 boundary with the newest checkpoint bit-flipped:
    // recovery must fall back to the epoch-1 checkpoint and still finish
    // with the exact reference summary.
    let plan = dir.join("plan.json");
    std::fs::write(
        &plan,
        r#"{
  "seed": 9,
  "faults": [
    { "Crash": { "epoch": 2, "after_events": 0 } },
    { "FlipCheckpointBytes": { "epoch": 2, "flips": 2 } }
  ]
}
"#,
    )
    .expect("write plan");
    let mut chaos = base(&ckpt_chaos);
    chaos.extend([
        "--fault-plan".to_string(),
        plan.to_str().expect("utf8").to_string(),
    ]);
    let out = run_owned(&chaos);
    assert!(out.status.success(), "chaos stream failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("crashed process"), "crash fired: {stderr}");
    assert!(
        stderr.contains("rejected checkpoint"),
        "corrupt checkpoint skipped: {stderr}"
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        reference,
        "chaos run must reproduce the fault-free summary"
    );

    // --fault-plan without a checkpoint dir is a clean error.
    let out = run(&[
        "stream",
        "--scale",
        "mini",
        "--epochs",
        "4",
        "--fault-plan",
        plan.to_str().expect("utf8"),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs --checkpoint"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn classification_is_deterministic_across_runs() {
    let dir = tmpdir("determinism");
    let data = dir.join("data");
    let data_s = data.to_str().expect("utf8");
    assert!(run(&["synth", "--scale", "mini", "--out", data_s])
        .status
        .success());
    let beacons = data.join("beacons.csv");
    let demand = data.join("demand.csv");
    let args = [
        "classify",
        "--beacons",
        beacons.to_str().expect("utf8"),
        "--demand",
        demand.to_str().expect("utf8"),
    ];
    let a = run(&args);
    let b = run(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "same inputs, same output");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_paths_are_clean() {
    // Unknown command.
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = run(&["classify", "--beacons", "/nonexistent.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    // Malformed CSV gets a line-numbered error, not a panic.
    let dir = tmpdir("badcsv");
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "block,asn,du\nnot-a-cidr,1,5\n").expect("write");
    let good_beacons = dir.join("beacons.csv");
    std::fs::write(
        &good_beacons,
        "block,asn,hits_total,netinfo_hits,cellular_hits,wifi_hits,other_hits\n\
         203.0.113.0/24,1,10,5,5,0,0\n",
    )
    .expect("write");
    let out = run(&[
        "classify",
        "--beacons",
        good_beacons.to_str().expect("utf8"),
        "--demand",
        bad.to_str().expect("utf8"),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "line-numbered error: {stderr}");

    // --help exits 0.
    let out = run(&["--help"]);
    assert!(out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_build_and_lookup_roundtrip() {
    let dir = tmpdir("serving");
    let data = dir.join("data");
    let data_s = data.to_str().expect("utf8");
    assert!(run(&["synth", "--scale", "mini", "--out", data_s])
        .status
        .success());
    let beacons = data.join("beacons.csv");
    let demand = data.join("demand.csv");
    let (b, d) = (
        beacons.to_str().expect("utf8"),
        demand.to_str().expect("utf8"),
    );

    // Freeze the classification into a sealed artifact.
    let artifact = dir.join("cells.idx");
    let art_s = artifact.to_str().expect("utf8");
    let out = run(&[
        "index",
        "build",
        "--beacons",
        b,
        "--demand",
        d,
        "--out",
        art_s,
    ]);
    assert!(out.status.success(), "index build failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("frozen"), "build summary: {stderr}");
    let sealed = std::fs::read(&artifact).expect("artifact written");
    assert!(!sealed.is_empty());

    // A cellular block from `classify` must resolve through `lookup`;
    // 192.0.2.1 (TEST-NET-1, never generated) must miss.
    let out = run(&["classify", "--beacons", b, "--demand", d]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let hit_net = stdout
        .lines()
        .skip(1)
        .find(|l| !l.contains(':'))
        .and_then(|l| l.split(',').next())
        .expect("a v4 cellular block")
        .to_string();
    let hit_ip = hit_net.split('/').next().expect("cidr has an address");
    let ips = dir.join("ips.txt");
    std::fs::write(&ips, format!("# probes\n{hit_ip}\n192.0.2.1\n")).expect("write");
    let metrics = dir.join("metrics.json");
    let out = run(&[
        "lookup",
        "--index",
        art_s,
        "--ips",
        ips.to_str().expect("utf8"),
        "--metrics",
        metrics.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "lookup failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("ip,prefix,asn,class\n"), "{stdout}");
    assert!(
        stdout.contains(&format!("{hit_ip},{hit_net},")),
        "hit row names its prefix: {stdout}"
    );
    assert!(stdout.contains("192.0.2.1,-,-,-"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 lookups: 1 matched"), "{stderr}");
    let exported = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(exported.contains("serve.lookups"), "{exported}");

    // Lookup results land in a file with --out.
    let results = dir.join("results.csv");
    let out = run(&[
        "lookup",
        "--index",
        art_s,
        "--ips",
        ips.to_str().expect("utf8"),
        "--out",
        results.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "lookup --out failed: {out:?}");
    assert!(std::fs::read_to_string(&results)
        .expect("results written")
        .contains(&hit_net));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifacts_are_rejected_as_bad_data() {
    let dir = tmpdir("corrupt_artifact");
    let data = dir.join("data");
    assert!(run(&[
        "synth",
        "--scale",
        "mini",
        "--out",
        data.to_str().expect("utf8")
    ])
    .status
    .success());
    let artifact = dir.join("cells.idx");
    let art_s = artifact.to_str().expect("utf8");
    assert!(run(&[
        "index",
        "build",
        "--beacons",
        data.join("beacons.csv").to_str().expect("utf8"),
        "--demand",
        data.join("demand.csv").to_str().expect("utf8"),
        "--out",
        art_s,
    ])
    .status
    .success());
    let ips = dir.join("ips.txt");
    std::fs::write(&ips, "192.0.2.1\n").expect("write");
    let ips_s = ips.to_str().expect("utf8");

    // Flip one byte in the middle: exit 4 (bad data), precise error.
    let sealed = std::fs::read(&artifact).expect("artifact");
    let mut torn = sealed.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x40;
    std::fs::write(&artifact, &torn).expect("rewrite");
    let out = run(&["lookup", "--index", art_s, "--ips", ips_s]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "corruption is bad data: {out:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt artifact"), "{stderr}");

    // Truncation is rejected the same way.
    std::fs::write(&artifact, &sealed[..sealed.len() - 7]).expect("rewrite");
    let out = run(&["lookup", "--index", art_s, "--ips", ips_s]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "truncation is bad data: {out:?}"
    );

    // Restore the good artifact: a malformed IP line is also exit 4,
    // with its line number.
    std::fs::write(&artifact, &sealed).expect("restore");
    std::fs::write(&ips, "192.0.2.1\nnot-an-ip\n").expect("write");
    let out = run(&["lookup", "--index", art_s, "--ips", ips_s]);
    assert_eq!(out.status.code(), Some(4), "bad IP is bad data: {out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));

    // Usage errors stay exit 2.
    let out = run(&["index", "frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&["lookup", "--ips", ips_s]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_runs_shuts_down_and_exports_metrics() {
    let dir = tmpdir("serve");
    let data = dir.join("data");
    assert!(run(&[
        "synth",
        "--scale",
        "mini",
        "--out",
        data.to_str().expect("utf8")
    ])
    .status
    .success());
    let artifact = dir.join("cells.idx");
    let art_s = artifact.to_str().expect("utf8");
    assert!(run(&[
        "index",
        "build",
        "--beacons",
        data.join("beacons.csv").to_str().expect("utf8"),
        "--demand",
        data.join("demand.csv").to_str().expect("utf8"),
        "--out",
        art_s,
    ])
    .status
    .success());

    // Boot the daemon on ephemeral ports, let it idle briefly, shut
    // down on the timer, and export the final metrics snapshot.
    let metrics = dir.join("serve-metrics.json");
    let out = run(&[
        "serve",
        "--index",
        art_s,
        "--listen",
        "127.0.0.1:0",
        "--tcp",
        "127.0.0.1:0",
        "--shutdown-after-ms",
        "200",
        "--metrics",
        metrics.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "serve failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("http endpoint on 127.0.0.1:"), "{stderr}");
    assert!(
        stderr.contains("framed tcp endpoint on 127.0.0.1:"),
        "{stderr}"
    );
    assert!(stderr.contains("shutdown:"), "{stderr}");
    let exported = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(exported.contains("served.generation"), "{exported}");

    // A corrupt artifact refuses to serve: exit 4, like `lookup`.
    let sealed = std::fs::read(&artifact).expect("artifact");
    let mut torn = sealed.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x40;
    std::fs::write(&artifact, &torn).expect("rewrite");
    let out = run(&[
        "serve",
        "--index",
        art_s,
        "--listen",
        "127.0.0.1:0",
        "--shutdown-after-ms",
        "50",
    ]);
    assert_eq!(out.status.code(), Some(4), "corrupt artifact: {out:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `delta build` against a base artifact, then `delta apply`, must
/// reproduce a from-scratch `index build` at the new settings byte for
/// byte; corrupt deltas and bogus subcommands fail with the right exit
/// codes.
#[test]
fn delta_build_apply_matches_full_rebuild() {
    let dir = tmpdir("delta_cli");
    let data = dir.join("data");
    assert!(run(&[
        "synth",
        "--scale",
        "mini",
        "--out",
        data.to_str().expect("utf8")
    ])
    .status
    .success());
    let b = data.join("beacons.csv");
    let d = data.join("demand.csv");
    let (b, d) = (b.to_str().expect("utf8"), d.to_str().expect("utf8"));

    // Base artifact at the default threshold, reference artifact at a
    // stricter one — the delta carries exactly the label churn between
    // the two classifications.
    let base = dir.join("base.idx");
    let base_s = base.to_str().expect("utf8");
    assert!(run(&[
        "index",
        "build",
        "--beacons",
        b,
        "--demand",
        d,
        "--out",
        base_s
    ])
    .status
    .success());
    let reference = dir.join("reference.idx");
    let out = run(&[
        "index",
        "build",
        "--beacons",
        b,
        "--demand",
        d,
        "--threshold",
        "0.95",
        "--out",
        reference.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "reference build failed: {out:?}");

    let delta = dir.join("step.cdlt");
    let delta_s = delta.to_str().expect("utf8");
    let out = run(&[
        "delta",
        "build",
        "--base",
        base_s,
        "--beacons",
        b,
        "--demand",
        d,
        "--threshold",
        "0.95",
        "--out",
        delta_s,
    ]);
    assert!(out.status.success(), "delta build failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("op(s)"), "delta summary: {stderr}");
    assert!(stderr.contains("epoch 0 -> 1"), "epoch chain: {stderr}");
    let delta_bytes = std::fs::read(&delta).expect("delta written");
    let reference_bytes = std::fs::read(&reference).expect("reference written");

    let patched = dir.join("patched.idx");
    let out = run(&[
        "delta",
        "apply",
        "--base",
        base_s,
        "--delta",
        delta_s,
        "--out",
        patched.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "delta apply failed: {out:?}");
    assert_eq!(
        std::fs::read(&patched).expect("patched written"),
        reference_bytes,
        "apply(base, delta) must equal the full rebuild byte for byte"
    );

    // A bit-flipped delta is bad data (exit 4), and applying a delta to
    // the wrong base is too.
    let mut torn = delta_bytes.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x20;
    std::fs::write(&delta, &torn).expect("rewrite");
    let out = run(&[
        "delta",
        "apply",
        "--base",
        base_s,
        "--delta",
        delta_s,
        "--out",
        patched.to_str().expect("utf8"),
    ]);
    assert_eq!(out.status.code(), Some(4), "corrupt delta: {out:?}");
    std::fs::write(&delta, &delta_bytes).expect("restore");
    let out = run(&[
        "delta",
        "apply",
        "--base",
        reference.to_str().expect("utf8"),
        "--delta",
        delta_s,
        "--out",
        patched.to_str().expect("utf8"),
    ]);
    assert_eq!(out.status.code(), Some(4), "wrong base: {out:?}");

    // Usage errors stay exit 2.
    let out = run(&["delta", "frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `stream --emit-deltas DIR` seals a base artifact at the first epoch
/// and a chained delta per later epoch; replaying the chain with
/// `delta apply` must stay consistent, and `latest.cdlt` must always be
/// the newest delta.
#[test]
fn stream_emits_a_replayable_delta_chain() {
    let dir = tmpdir("emit_deltas");
    let deltas = dir.join("deltas");
    let deltas_s = deltas.to_str().expect("utf8");
    let out = run(&[
        "stream",
        "--scale",
        "mini",
        "--epochs",
        "3",
        "--emit-deltas",
        deltas_s,
    ]);
    assert!(out.status.success(), "stream failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("base artifact"), "{stderr}");
    assert!(stderr.contains("delta series →"), "{stderr}");

    let base = std::fs::read(deltas.join("base.cellserv")).expect("base sealed");
    let step2 = deltas.join("delta-ep000002.cdlt");
    let step3 = deltas.join("delta-ep000003.cdlt");
    assert_eq!(
        std::fs::read(&step3).expect("epoch-3 delta"),
        std::fs::read(deltas.join("latest.cdlt")).expect("latest delta"),
        "latest.cdlt tracks the newest delta"
    );

    // Replay the chain through the CLI: base —ep2→ —ep3→.
    let a2 = dir.join("a2.idx");
    let a3 = dir.join("a3.idx");
    let base_path = deltas.join("base.cellserv");
    let out = run(&[
        "delta",
        "apply",
        "--base",
        base_path.to_str().expect("utf8"),
        "--delta",
        step2.to_str().expect("utf8"),
        "--out",
        a2.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "epoch-2 apply failed: {out:?}");
    let out = run(&[
        "delta",
        "apply",
        "--base",
        a2.to_str().expect("utf8"),
        "--delta",
        step3.to_str().expect("utf8"),
        "--out",
        a3.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "epoch-3 apply failed: {out:?}");
    // The epoch-3 delta chains on epoch 2's output, never on the base.
    let out = run(&[
        "delta",
        "apply",
        "--base",
        base_path.to_str().expect("utf8"),
        "--delta",
        step3.to_str().expect("utf8"),
        "--out",
        a3.to_str().expect("utf8"),
    ]);
    if std::fs::read(&a2).expect("a2") != base {
        assert_eq!(out.status.code(), Some(4), "skipping an epoch: {out:?}");
    }

    // Chaos mode cannot emit per-epoch deltas; that's a usage error.
    let out = run(&[
        "stream",
        "--scale",
        "mini",
        "--emit-deltas",
        deltas_s,
        "--fault-plan",
        "plan.json",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// The content hash `index build` prints is the same value the daemon
/// exports as the `served.artifact.hash` gauge, so operators can check
/// what a running daemon serves against what they built.
#[test]
fn index_build_hash_correlates_with_served_generation() {
    let dir = tmpdir("hash_corr");
    let data = dir.join("data");
    assert!(run(&[
        "synth",
        "--scale",
        "mini",
        "--out",
        data.to_str().expect("utf8")
    ])
    .status
    .success());
    let artifact = dir.join("cells.idx");
    let art_s = artifact.to_str().expect("utf8");
    let out = run(&[
        "index",
        "build",
        "--beacons",
        data.join("beacons.csv").to_str().expect("utf8"),
        "--demand",
        data.join("demand.csv").to_str().expect("utf8"),
        "--out",
        art_s,
    ]);
    assert!(out.status.success(), "index build failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let hex = stderr
        .split("content hash ")
        .nth(1)
        .map(|rest| &rest[..16])
        .expect("build summary names the content hash");
    let built_hash = u64::from_str_radix(hex, 16).expect("16 hex digits");

    let metrics = dir.join("metrics.json");
    let out = run(&[
        "serve",
        "--index",
        art_s,
        "--listen",
        "127.0.0.1:0",
        "--shutdown-after-ms",
        "100",
        "--metrics",
        metrics.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "serve failed: {out:?}");
    let exported = std::fs::read_to_string(&metrics).expect("metrics written");
    let served_hash: u64 = exported
        .split("\"served.artifact.hash\"")
        .nth(1)
        .map(|rest| {
            rest.chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .expect("gauge exported")
        .parse()
        .expect("decimal gauge value");
    assert_eq!(
        served_hash, built_hash,
        "daemon must serve exactly the artifact the build reported"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// SIGTERM must drain in-flight work and exit cleanly, exactly like
/// stdin EOF: the daemon answers a lookup, takes the signal, and still
/// reports that lookup in its shutdown line.
#[cfg(unix)]
#[test]
fn sigterm_shuts_the_daemon_down_gracefully() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = tmpdir("sigterm");
    let data = dir.join("data");
    assert!(run(&[
        "synth",
        "--scale",
        "mini",
        "--out",
        data.to_str().expect("utf8")
    ])
    .status
    .success());
    let artifact = dir.join("cells.idx");
    let art_s = artifact.to_str().expect("utf8");
    assert!(run(&[
        "index",
        "build",
        "--beacons",
        data.join("beacons.csv").to_str().expect("utf8"),
        "--demand",
        data.join("demand.csv").to_str().expect("utf8"),
        "--out",
        art_s,
    ])
    .status
    .success());

    // No --shutdown-after-ms and a held-open stdin: only the signal can
    // end this process.
    let mut child = Command::new(bin())
        .args(["serve", "--index", art_s, "--listen", "127.0.0.1:0"])
        .stdin(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("daemon stderr") > 0,
            "daemon exited before announcing its endpoint"
        );
        if let Some(rest) = line.trim().strip_prefix("http endpoint on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("addr token")
                .to_string();
        }
    };

    // One real query in flight before the signal.
    let mut conn = std::net::TcpStream::connect(&addr).expect("daemon accepts");
    conn.write_all(b"GET /lookup?ip=192.0.2.1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("request sent");
    let mut resp = String::new();
    conn.read_to_string(&mut resp).expect("response read");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");

    assert!(Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs")
        .success());
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "graceful exit on SIGTERM: {status:?}");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("stderr drained");
    assert!(
        rest.contains("signal received; shutting down gracefully"),
        "{rest}"
    );
    assert!(
        rest.contains("shutdown: 1 lookup(s) served"),
        "the drained lookup shows up in the final accounting: {rest}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The replay acceptance contract: for a fixed preset + seed, the
/// sealed trace file and the record's `workload` section are
/// byte-identical at any `--threads`, and the tcp-mode replay — which
/// hot-patches the daemon with a CELLDELT delta at every segment
/// boundary — answers exactly like the cold engine-mode replay.
#[test]
fn replay_is_thread_invariant_and_mode_agnostic() {
    let dir = tmpdir("replay");
    let record_for = |threads: &str, mode: &str, tag: &str| -> serde_json::Value {
        let trace = dir.join(format!("trace-{tag}.cload"));
        let out_path = dir.join(format!("replay-{tag}.json"));
        let out = run(&[
            "replay",
            "--preset",
            "churn",
            "--seed",
            "9",
            "--queries",
            "6000",
            "--epochs",
            "3",
            "--threads",
            threads,
            "--mode",
            mode,
            "--trace-out",
            trace.to_str().expect("utf8"),
            "--out",
            out_path.to_str().expect("utf8"),
        ]);
        assert!(out.status.success(), "replay {tag} failed: {out:?}");
        serde_json::from_str(&std::fs::read_to_string(&out_path).expect("record written"))
            .expect("valid JSON record")
    };

    let one = record_for("1", "engine", "t1");
    let two = record_for("2", "engine", "t2");
    let tcp = record_for("2", "tcp", "tcp");

    let t1 = std::fs::read(dir.join("trace-t1.cload")).expect("trace 1");
    let t2 = std::fs::read(dir.join("trace-t2.cload")).expect("trace 2");
    assert_eq!(t1, t2, "sealed traces must not depend on --threads");
    assert_eq!(
        one["workload"], two["workload"],
        "workload sections must not depend on --threads"
    );

    assert_eq!(one["bench"], "replay");
    assert_eq!(one["workload"]["preset"], "churn");
    assert_eq!(one["workload"]["queries"], 6000);
    assert_eq!(
        one["workload"]["segments"]
            .as_array()
            .expect("segments array")
            .len(),
        3
    );
    assert!(one["replay"]["answer_digest"].is_string());
    assert!(one["replay"]["lookups_per_sec"].as_f64().expect("rate") > 0.0);

    // Same trace, same answers — across two live hot-patches.
    assert_eq!(
        one["workload"]["trace_digest"],
        tcp["workload"]["trace_digest"]
    );
    assert_eq!(
        one["replay"]["answer_digest"], tcp["replay"]["answer_digest"],
        "daemon answers diverge from the engine replay"
    );
    assert_eq!(tcp["replay"]["dropped"], 0);
    assert_eq!(tcp["replay"]["lookups"], 6000);

    std::fs::remove_dir_all(&dir).ok();
}

/// Sealed traces replay verbatim through `--trace-in`; a corrupted
/// trace is bad data (exit 4) and a bogus preset is a usage error
/// (exit 2).
#[test]
fn replay_traces_reload_verbatim_and_reject_corruption() {
    let dir = tmpdir("replay_trace");
    let trace = dir.join("scan.cload");
    let trace_s = trace.to_str().expect("utf8");
    let first = dir.join("first.json");
    let second = dir.join("second.json");

    let out = run(&[
        "replay",
        "--preset",
        "scan",
        "--scale",
        "mini",
        "--queries",
        "4000",
        "--trace-out",
        trace_s,
        "--out",
        first.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "scan replay failed: {out:?}");

    // Replay the sealed file — no --preset, no --seed: everything the
    // generator knew is in the trace.
    let out = run(&[
        "replay",
        "--scale",
        "mini",
        "--trace-in",
        trace_s,
        "--out",
        second.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "trace-in replay failed: {out:?}");
    let a: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&first).expect("first record"))
            .expect("valid JSON");
    let b: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&second).expect("second record"))
            .expect("valid JSON");
    assert_eq!(
        a["workload"], b["workload"],
        "a reloaded trace must describe the identical workload"
    );
    assert_eq!(a["replay"]["answer_digest"], b["replay"]["answer_digest"]);

    // One flipped byte must be rejected as bad data, not replayed.
    let mut bytes = std::fs::read(&trace).expect("trace bytes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&trace, &bytes).expect("corrupt trace");
    let out = run(&["replay", "--scale", "mini", "--trace-in", trace_s]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "corrupt trace must exit 4: {out:?}"
    );

    let out = run(&["replay", "--preset", "nope"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown preset must exit 2: {out:?}"
    );
    let out = run(&["replay", "--preset", "steady", "--mode", "carrier-pigeon"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown mode must exit 2: {out:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threshold_flag_is_validated() {
    let dir = tmpdir("threshold");
    let beacons = dir.join("b.csv");
    let demand = dir.join("d.csv");
    std::fs::write(
        &beacons,
        "block,asn,hits_total,netinfo_hits,cellular_hits,wifi_hits,other_hits\n\
         203.0.113.0/24,1,100,50,45,5,0\n",
    )
    .expect("write");
    std::fs::write(&demand, "block,asn,du\n203.0.113.0/24,1,5\n").expect("write");
    let base = [
        "classify",
        "--beacons",
        beacons.to_str().expect("utf8"),
        "--demand",
        demand.to_str().expect("utf8"),
    ];
    let mut bad = base.to_vec();
    bad.extend(["--threshold", "1.5"]);
    let out = run(&bad);
    assert!(!out.status.success());
    let mut good = base.to_vec();
    good.extend(["--threshold", "0.8"]);
    let out = run(&good);
    assert!(out.status.success());
    // Ratio 0.9 ≥ 0.8 → the single block is cellular.
    assert!(String::from_utf8_lossy(&out.stdout).contains("203.0.113.0/24"));
    std::fs::remove_dir_all(&dir).ok();
}
