//! End-to-end daemon tests: both listeners, batching accounting, and —
//! the load-bearing ones — zero-downtime reload and delta hot-patching
//! under live traffic, with rejected candidates leaving the old
//! generation serving.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cellobs::Observer;
use cellserve::{AsClass, FrozenIndex, IpKey, ServeLabel};
use cellserved::{Daemon, FramedClient, ServeConfig, WireAnswer};
use cellstream::write_atomic_bytes;
use netaddr::Asn;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cellserved-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A sealed artifact serving 10.0.0.0/8 under `asn`/`class`, plus an
/// extra prefix when `extra` (so generations are distinguishable).
fn artifact(asn: u32, class: AsClass, extra: bool) -> Vec<u8> {
    let mut b = FrozenIndex::builder();
    b.insert_v4(
        "10.0.0.0/8".parse().expect("cidr"),
        ServeLabel {
            asn: Asn(asn),
            class,
        },
    );
    if extra {
        b.insert_v4(
            "192.168.0.0/16".parse().expect("cidr"),
            ServeLabel {
                asn: Asn(asn + 1),
                class: AsClass::Dedicated,
            },
        );
    }
    cellserve::Artifact::encode(&b.build(), cellserve::ArtifactFormat::V2)
}

fn config() -> ServeConfig {
    ServeConfig {
        http_listen: Some("127.0.0.1:0".into()),
        tcp_listen: Some("127.0.0.1:0".into()),
        workers: 2,
        queue_depth: 4096,
        max_linger: Duration::from_millis(1),
        reload_watch: false,
        delta_watch: None,
        reload_poll: Duration::from_millis(10),
        ..ServeConfig::default()
    }
}

fn http_request(addr: SocketAddr, method: &str, target: &str, body: Option<&str>) -> String {
    let mut s = TcpStream::connect(addr).expect("connect http");
    let body = body.unwrap_or("");
    write!(
        s,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// Re-seal v2 artifact bytes after mutating the body, the same way the
/// writer does — trailer CRC *and* the header's quick-hash fingerprint —
/// so only post-seal (structural/version) checks can reject them.
fn reseal(bytes: &mut [u8]) {
    let body_len = bytes.len() - 16;
    let quick = cellserve::content_hash(&bytes[64..body_len]);
    bytes[16..24].copy_from_slice(&quick.to_le_bytes());
    let crc = cellstream::crc32(&bytes[..body_len]);
    bytes[body_len + 8..body_len + 12].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn both_endpoints_answer_and_every_lookup_is_sampled() {
    let path = tmpdir("endpoints").join("index.cellserv");
    write_atomic_bytes(&path, &artifact(64500, AsClass::Dedicated, false)).expect("write artifact");
    let obs = Observer::enabled();
    let daemon = Daemon::start(config(), &path, obs.clone()).expect("daemon starts");
    let http = daemon.http_addr().expect("http listener");

    let hit = http_request(http, "GET", "/lookup?ip=10.1.2.3", None);
    assert!(hit.starts_with("HTTP/1.1 200"), "{hit}");
    assert!(hit.contains("\"matched\":true"), "{hit}");
    assert!(hit.contains("\"prefix\":\"10.0.0.0/8\""), "{hit}");
    assert!(hit.contains("\"asn\":64500"), "{hit}");
    assert!(hit.contains("\"class\":\"dedicated\""), "{hit}");

    let miss = http_request(http, "GET", "/lookup?ip=11.1.2.3", None);
    assert!(miss.contains("\"matched\":false"), "{miss}");

    let batch = http_request(http, "POST", "/lookup", Some("10.0.0.1\n11.0.0.1\n"));
    assert!(batch.contains("ip,prefix,asn,class"), "{batch}");
    assert!(
        batch.contains("10.0.0.1,10.0.0.0/8,64500,dedicated"),
        "{batch}"
    );
    assert!(batch.contains("11.0.0.1,-,-,-"), "{batch}");

    let health = http_request(http, "GET", "/healthz", None);
    assert!(health.contains("\"generation\":1"), "{health}");
    assert!(health.contains("\"prefixes\":1"), "{health}");

    let bad = http_request(http, "GET", "/lookup?ip=not-an-ip", None);
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    let missing = http_request(http, "GET", "/nope", None);
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    // The framed TCP protocol answers the same index.
    let mut client =
        FramedClient::connect(daemon.tcp_addr().expect("tcp listener")).expect("connect");
    let answers = client
        .lookup(&[IpKey::V4(0x0A00_0001), IpKey::V4(0x0B00_0001)])
        .expect("framed lookup");
    assert_eq!(
        answers[0],
        Some(WireAnswer {
            prefix_len: 8,
            asn: 64500,
            class: AsClass::Dedicated,
        })
    );
    assert_eq!(answers[1], None);
    drop(client);

    // /metrics exports Prometheus text with quantile gauges.
    let metrics = http_request(http, "GET", "/metrics", None);
    assert!(metrics.contains("serve_lookups"), "{metrics}");
    assert!(metrics.contains("serve_lookup_ns_p50"), "{metrics}");
    assert!(metrics.contains("serve_lookup_ns_p999"), "{metrics}");

    let snap = daemon.shutdown();
    // 2 GET lookups + 2 POSTed + 2 framed queries went through the
    // engine; the per-lookup histogram must have exactly that many
    // samples (the bug this PR fixes recorded one per chunk).
    let lookups = snap.counters["serve.lookups"];
    assert_eq!(lookups, 6);
    assert_eq!(snap.histograms["serve.lookup.ns"].count, lookups);
    assert_eq!(snap.counters["served.tcp.requests"], 1);
    assert_eq!(snap.counters["served.tcp.queries"], 2);
    assert!(snap.counters["served.http.requests"] >= 7);
    assert_eq!(snap.counters["served.http.lookup"], 2);
    assert_eq!(snap.counters["served.http.lookup_batch"], 1);
    assert!(snap.counters["served.batches"] >= 1);
    assert_eq!(snap.gauges["served.generation"], 1);
    assert!(snap.gauges.contains_key("serve.lookup.ns.p99"));
    assert!(snap.gauges.contains_key("served.lookup.wait.ns.p999"));
}

#[test]
fn reload_swaps_generations_without_dropping_traffic() {
    let path = tmpdir("reload").join("index.cellserv");
    write_atomic_bytes(&path, &artifact(1, AsClass::Dedicated, false)).expect("write artifact");
    let obs = Observer::enabled();
    let mut cfg = config();
    cfg.reload_watch = true;
    let daemon = Daemon::start(cfg, &path, obs.clone()).expect("daemon starts");
    let tcp = daemon.tcp_addr().expect("tcp listener");

    // Hammer the daemon from a client thread for the whole test; every
    // single request must get a valid answer, across the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let saw_new_gen = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let saw2 = Arc::clone(&saw_new_gen);
    let client_thread = std::thread::spawn(move || -> Vec<u32> {
        let mut client = FramedClient::connect(tcp).expect("connect");
        let mut seen = Vec::new();
        while !stop2.load(Ordering::SeqCst) {
            let answers = client
                .lookup(&[IpKey::V4(0x0A00_0001)])
                .expect("no request ever fails during a reload");
            let asn = answers[0].expect("prefix served by every generation").asn;
            if asn == 2 {
                saw2.store(true, Ordering::SeqCst);
            }
            seen.push(asn);
        }
        seen
    });

    std::thread::sleep(Duration::from_millis(50));
    write_atomic_bytes(&path, &artifact(2, AsClass::Mixed, true)).expect("publish generation 2");
    assert!(
        wait_until(Duration::from_secs(5), || daemon.generation() == 2),
        "watcher picks up an atomically published artifact"
    );
    // Keep traffic flowing until an answer from the new generation has
    // actually been observed, so the tail of `seen` is post-swap.
    assert!(
        wait_until(Duration::from_secs(5), || saw_new_gen
            .load(Ordering::SeqCst)),
        "live traffic reaches the swapped-in generation"
    );
    stop.store(true, Ordering::SeqCst);
    let seen = client_thread.join().expect("client thread");

    assert!(!seen.is_empty());
    assert!(
        seen.iter().all(|&asn| asn == 1 || asn == 2),
        "answers only ever come from a fully validated generation"
    );
    assert_eq!(
        *seen.last().expect("nonempty"),
        2,
        "post-swap traffic sees the new index"
    );
    // For a serialized client the transition is monotonic: once a batch
    // runs on generation 2, no later batch can see generation 1.
    let first_new = seen
        .iter()
        .position(|&a| a == 2)
        .expect("swap observed under load");
    assert!(seen[first_new..].iter().all(|&a| a == 2));

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.reload.ok"], 1);
    assert!(!snap.counters.contains_key("served.reload.rejected"));
    assert_eq!(snap.gauges["served.generation"], 2);
    assert_eq!(
        snap.histograms["serve.lookup.ns"].count, snap.counters["serve.lookups"],
        "one latency sample per lookup holds under daemon load too"
    );
}

/// Republishing a byte-identical artifact (fresh mtime, same content)
/// must not reload: the watcher's stage-two fingerprint short-circuits,
/// the `served.reload.polls.skipped` counter records it, and a later
/// real change still swaps normally.
#[test]
fn byte_identical_republish_skips_the_reload() {
    let path = tmpdir("skip").join("index.cellserv");
    let bytes = artifact(1, AsClass::Dedicated, false);
    write_atomic_bytes(&path, &bytes).expect("write artifact");
    let obs = Observer::enabled();
    let mut cfg = config();
    cfg.reload_watch = true;
    let daemon = Daemon::start(cfg, &path, obs.clone()).expect("daemon starts");

    // Republish the exact same bytes: new file, new mtime, same
    // content fingerprint.
    std::thread::sleep(Duration::from_millis(30));
    write_atomic_bytes(&path, &bytes).expect("republish identical artifact");
    assert!(
        wait_until(Duration::from_secs(5), || {
            obs.snapshot()
                .counters
                .get("served.reload.polls.skipped")
                .copied()
                .unwrap_or(0)
                >= 1
        }),
        "the watcher notices the stat change and skips on the fingerprint"
    );
    assert_eq!(daemon.generation(), 1, "identical bytes must not reload");
    assert!(
        !obs.snapshot().counters.contains_key("served.reload.ok"),
        "no reload may be attempted for identical bytes"
    );

    // A real change still swaps — the skip didn't wedge the watcher.
    write_atomic_bytes(&path, &artifact(2, AsClass::Mixed, true)).expect("publish generation 2");
    assert!(
        wait_until(Duration::from_secs(5), || daemon.generation() == 2),
        "a genuinely new artifact still reloads after skipped polls"
    );
    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.reload.polls.skipped"], 1);
    assert_eq!(snap.counters["served.reload.ok"], 1);
}

#[test]
fn rejected_candidates_leave_the_old_generation_serving() {
    let path = tmpdir("reject").join("index.cellserv");
    write_atomic_bytes(&path, &artifact(7, AsClass::Dedicated, false)).expect("write artifact");
    let obs = Observer::enabled();
    let mut cfg = config();
    cfg.reload_watch = true;
    let daemon = Daemon::start(cfg, &path, obs.clone()).expect("daemon starts");

    let probes = [
        IpKey::V4(0x0A00_0001),
        IpKey::V4(0x0AFF_FFFE),
        IpKey::V4(0x7F00_0001),
        IpKey::V6(1),
    ];
    let mut client = FramedClient::connect(daemon.tcp_addr().expect("tcp")).expect("connect");
    let before = client.lookup(&probes).expect("baseline lookup");
    let rejected_count = || {
        obs.snapshot()
            .counters
            .get("served.reload.rejected")
            .copied()
            .unwrap_or(0)
    };

    // Candidate 1: flipped body byte — the seal check rejects it.
    let mut corrupt = artifact(8, AsClass::Mixed, true);
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    write_atomic_bytes(&path, &corrupt).expect("publish corrupt candidate");
    assert!(wait_until(Duration::from_secs(5), || rejected_count() >= 1));

    // Candidate 2: newer format version behind a valid seal —
    // `ServeError::UnsupportedVersion` through the reload path.
    let mut newer = artifact(8, AsClass::Mixed, true);
    newer[8..12].copy_from_slice(&(cellserve::ARTIFACT_V2_VERSION + 1).to_le_bytes());
    reseal(&mut newer);
    write_atomic_bytes(&path, &newer).expect("publish newer-version candidate");
    assert!(wait_until(Duration::from_secs(5), || rejected_count() >= 2));

    // Candidate 3: structural corruption behind a forged (recomputed)
    // seal — an invalid class byte in the label table. Structural
    // re-validation must catch what the CRC no longer can.
    let mut forged = artifact(8, AsClass::Mixed, true);
    forged[64 + 4] = 9; // first label's class word (labels start at 64)
    reseal(&mut forged);
    write_atomic_bytes(&path, &forged).expect("publish forged candidate");
    assert!(wait_until(Duration::from_secs(5), || rejected_count() >= 3));

    // Three rejected swaps later the daemon still serves generation 1,
    // and the probe answers are identical (the wire encoding is
    // canonical, so equal answers mean byte-identical responses).
    assert_eq!(daemon.generation(), 1);
    let after = client.lookup(&probes).expect("probes after rejected swaps");
    assert_eq!(after, before);

    // A valid candidate still swaps — rejections don't wedge reloads.
    write_atomic_bytes(&path, &artifact(9, AsClass::Mixed, false))
        .expect("publish valid candidate");
    assert!(wait_until(Duration::from_secs(5), || daemon.generation() == 2));
    let swapped = client.lookup(&probes).expect("probes after swap");
    assert_eq!(swapped[0].expect("still served").asn, 9);
    assert_eq!(swapped[0].expect("still served").class, AsClass::Mixed);

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.reload.rejected"], 3);
    assert_eq!(snap.counters["served.reload.ok"], 1);
}

#[test]
fn deltas_hot_patch_the_live_generation_under_traffic() {
    let dir = tmpdir("delta");
    let path = dir.join("index.cellserv");
    let delta_path = dir.join("latest.cdlt");
    let base = artifact(1, AsClass::Dedicated, false);
    write_atomic_bytes(&path, &base).expect("write artifact");
    let obs = Observer::enabled();
    let mut cfg = config();
    cfg.delta_watch = Some(delta_path.clone());
    let daemon = Daemon::start(cfg, &path, obs.clone()).expect("daemon starts");
    let tcp = daemon.tcp_addr().expect("tcp listener");
    let http = daemon.http_addr().expect("http listener");

    // Continuous queries across the patch; no request may ever fail.
    let stop = Arc::new(AtomicBool::new(false));
    let saw_new_gen = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let saw2 = Arc::clone(&saw_new_gen);
    let client_thread = std::thread::spawn(move || -> Vec<u32> {
        let mut client = FramedClient::connect(tcp).expect("connect");
        let mut seen = Vec::new();
        while !stop2.load(Ordering::SeqCst) {
            let answers = client
                .lookup(&[IpKey::V4(0x0A00_0001)])
                .expect("no request ever fails during a delta patch");
            let asn = answers[0].expect("prefix served by every generation").asn;
            if asn == 2 {
                saw2.store(true, Ordering::SeqCst);
            }
            seen.push(asn);
        }
        seen
    });

    std::thread::sleep(Duration::from_millis(50));
    let target = artifact(2, AsClass::Mixed, true);
    let delta = celldelta::build_delta(&base, &target, 0, 1).expect("build delta");
    write_atomic_bytes(&delta_path, &delta).expect("publish delta");
    assert!(
        wait_until(Duration::from_secs(5), || daemon.generation() == 2),
        "watcher picks up a chained delta"
    );
    assert!(
        wait_until(Duration::from_secs(5), || saw_new_gen
            .load(Ordering::SeqCst)),
        "live traffic reaches the patched-in generation"
    );
    stop.store(true, Ordering::SeqCst);
    let seen = client_thread.join().expect("client thread");
    assert!(!seen.is_empty());
    assert!(
        seen.iter().all(|&asn| asn == 1 || asn == 2),
        "answers only ever come from a fully validated generation"
    );
    let first_new = seen
        .iter()
        .position(|&a| a == 2)
        .expect("patch observed under load");
    assert!(seen[first_new..].iter().all(|&a| a == 2));

    // A second delta chains on the patched-in generation.
    let target2 = artifact(3, AsClass::Dedicated, true);
    let delta2 = celldelta::build_delta(&target, &target2, 1, 2).expect("build delta 2");
    write_atomic_bytes(&delta_path, &delta2).expect("publish delta 2");
    assert!(wait_until(Duration::from_secs(5), || daemon.generation() == 3));

    // /generation correlates hash and epoch with what was published.
    let gen = http_request(http, "GET", "/generation", None);
    assert!(gen.contains("\"generation\":3"), "{gen}");
    assert!(
        gen.contains(&cellserve::hash_hex(cellserve::content_hash(&target2))),
        "{gen}"
    );
    assert!(gen.contains("\"epoch\":2"), "{gen}");

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.delta.ok"], 2);
    assert!(!snap.counters.contains_key("served.delta.rejected"));
    assert_eq!(snap.gauges["served.generation"], 3);
    assert_eq!(snap.gauges["served.epoch"], 2);
    assert_eq!(
        snap.gauges["served.artifact.hash"],
        cellserve::content_hash(&target2)
    );
}

#[test]
fn rejected_deltas_leave_the_old_generation_serving() {
    let dir = tmpdir("delta-reject");
    let path = dir.join("index.cellserv");
    let delta_path = dir.join("latest.cdlt");
    let base = artifact(7, AsClass::Dedicated, false);
    write_atomic_bytes(&path, &base).expect("write artifact");
    let obs = Observer::enabled();
    let mut cfg = config();
    cfg.delta_watch = Some(delta_path.clone());
    let daemon = Daemon::start(cfg, &path, obs.clone()).expect("daemon starts");

    let probes = [IpKey::V4(0x0A00_0001), IpKey::V4(0x7F00_0001), IpKey::V6(1)];
    let mut client = FramedClient::connect(daemon.tcp_addr().expect("tcp")).expect("connect");
    let before = client.lookup(&probes).expect("baseline lookup");
    let rejected_count = || {
        obs.snapshot()
            .counters
            .get("served.delta.rejected")
            .copied()
            .unwrap_or(0)
    };

    let target = artifact(8, AsClass::Mixed, true);

    // Candidate 1: chains on a base the daemon never served.
    let other = artifact(9, AsClass::Dedicated, false);
    let wrong_base = celldelta::build_delta(&other, &target, 0, 1).expect("build");
    write_atomic_bytes(&delta_path, &wrong_base).expect("publish wrong-base delta");
    assert!(wait_until(Duration::from_secs(5), || rejected_count() >= 1));

    // Candidate 2: right base, flipped byte — the seal rejects it.
    let good = celldelta::build_delta(&base, &target, 0, 1).expect("build");
    let mut corrupt = good.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    write_atomic_bytes(&delta_path, &corrupt).expect("publish corrupt delta");
    assert!(wait_until(Duration::from_secs(5), || rejected_count() >= 2));

    // Candidate 3: truncated mid-body.
    write_atomic_bytes(&delta_path, &good[..good.len() / 2]).expect("publish truncated delta");
    assert!(wait_until(Duration::from_secs(5), || rejected_count() >= 3));

    // Three rejections later: still generation 1, answers untouched.
    assert_eq!(daemon.generation(), 1);
    let after = client
        .lookup(&probes)
        .expect("probes after rejected deltas");
    assert_eq!(after, before);

    // The intact delta still applies — rejections don't wedge the chain.
    write_atomic_bytes(&delta_path, &good).expect("publish valid delta");
    assert!(wait_until(Duration::from_secs(5), || daemon.generation() == 2));
    let swapped = client.lookup(&probes).expect("probes after patch");
    assert_eq!(swapped[0].expect("still served").asn, 8);

    // Candidate 4: an out-of-order delta — its epoch does not advance
    // past the live epoch 1, so it is stale regardless of its base.
    let stale = celldelta::build_delta(&base, &artifact(9, AsClass::Mixed, false), 0, 1)
        .expect("build stale delta");
    write_atomic_bytes(&delta_path, &stale).expect("publish stale delta");
    assert!(wait_until(Duration::from_secs(5), || rejected_count() >= 4));
    assert_eq!(daemon.generation(), 2, "stale delta rejected");

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.delta.rejected"], 4);
    assert_eq!(snap.counters["served.delta.ok"], 1);
}

#[test]
fn a_full_reload_resets_the_delta_chain() {
    let dir = tmpdir("delta-interop");
    let path = dir.join("index.cellserv");
    let delta_path = dir.join("latest.cdlt");
    let base = artifact(1, AsClass::Dedicated, false);
    write_atomic_bytes(&path, &base).expect("write artifact");
    let obs = Observer::enabled();
    let mut cfg = config();
    cfg.reload_watch = true;
    cfg.delta_watch = Some(delta_path.clone());
    let daemon = Daemon::start(cfg, &path, obs.clone()).expect("daemon starts");

    // Delta to epoch 1.
    let target = artifact(2, AsClass::Mixed, false);
    let d1 = celldelta::build_delta(&base, &target, 0, 1).expect("build");
    write_atomic_bytes(&delta_path, &d1).expect("publish delta");
    assert!(wait_until(Duration::from_secs(5), || daemon.generation() == 2));

    // A full artifact published at the artifact path swaps in at
    // epoch 0...
    let full = artifact(3, AsClass::Dedicated, true);
    write_atomic_bytes(&path, &full).expect("publish full artifact");
    assert!(wait_until(Duration::from_secs(5), || daemon.generation() == 3));

    // ...so a low-epoch delta chaining on *it* is accepted again.
    let target2 = artifact(4, AsClass::Mixed, true);
    let d2 = celldelta::build_delta(&full, &target2, 0, 1).expect("build");
    write_atomic_bytes(&delta_path, &d2).expect("publish delta on the reloaded base");
    assert!(wait_until(Duration::from_secs(5), || daemon.generation() == 4));

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.delta.ok"], 2);
    assert_eq!(snap.counters["served.reload.ok"], 1);
    assert!(!snap.counters.contains_key("served.delta.rejected"));
    assert_eq!(snap.gauges["served.epoch"], 1);
}

#[test]
fn graceful_shutdown_refuses_new_work_but_answers_accepted_work() {
    let path = tmpdir("shutdown").join("index.cellserv");
    write_atomic_bytes(&path, &artifact(5, AsClass::Dedicated, false)).expect("write artifact");
    let daemon = Daemon::start(config(), &path, Observer::enabled()).expect("daemon starts");
    let tcp = daemon.tcp_addr().expect("tcp listener");

    let mut client = FramedClient::connect(tcp).expect("connect");
    let answers = client.lookup(&[IpKey::V4(0x0A00_0001)]).expect("lookup");
    assert!(answers[0].is_some());

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["serve.lookups"], 1);
    // After shutdown the port no longer accepts lookups: either the
    // connection fails outright or the request gets no answer.
    if let Ok(mut late) = FramedClient::connect(tcp) {
        assert!(late.lookup(&[IpKey::V4(0x0A00_0001)]).is_err());
    }
}
