//! Daemon hardening tests: keep-alive semantics, admission control,
//! socket timeouts, bounded parsing, shutdown draining, and the
//! resilient [`FramedClient`] surviving a daemon restart.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use cellobs::Observer;
use cellserve::{AsClass, FrozenIndex, IpKey, ServeLabel};
use cellserved::{ClientPolicy, Daemon, FramedClient, ServeConfig};
use netaddr::Asn;
use proptest::prelude::*;

/// An in-process index serving 10.0.0.0/8 — enough for every test here.
fn index() -> FrozenIndex {
    let mut b = FrozenIndex::builder();
    b.insert_v4(
        "10.0.0.0/8".parse().expect("cidr"),
        ServeLabel {
            asn: Asn(64500),
            class: AsClass::Dedicated,
        },
    );
    b.build()
}

/// Both listeners on ephemeral ports. The socket timeout is generous
/// enough that a loaded test runner cannot trip it by accident; the
/// stall tests override it downwards because stalling is their point.
fn config() -> ServeConfig {
    ServeConfig {
        http_listen: Some("127.0.0.1:0".into()),
        tcp_listen: Some("127.0.0.1:0".into()),
        workers: 2,
        io_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    }
}

/// A timeout short enough to make the stall tests fast.
fn stall_config() -> ServeConfig {
    ServeConfig {
        io_timeout: Duration::from_millis(200),
        ..config()
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn start(config: ServeConfig) -> (Daemon, Observer) {
    let obs = Observer::enabled();
    let daemon = Daemon::start_with_index(config, index(), obs.clone()).expect("daemon starts");
    (daemon, obs)
}

/// Read exactly one HTTP response off a keep-alive connection: status
/// line + headers + `Content-Length` body. Returns (head, body).
fn read_response(s: &mut TcpStream) -> (String, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        match s.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => break,
        }
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let len: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match s.read(&mut body[got..]) {
            Ok(0) | Err(_) => break,
            Ok(n) => got += n,
        }
    }
    (head, String::from_utf8_lossy(&body[..got]).to_string())
}

fn send_request(s: &mut TcpStream, target: &str) {
    write!(s, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
}

/// One-shot request on its own connection (Connection: close).
fn one_shot(addr: SocketAddr, method: &str, target: &str, body: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

#[test]
fn keepalive_pins_many_requests_on_one_connection() {
    let (daemon, _obs) = start(config());
    let http = daemon.http_addr().expect("http listener");
    const N: usize = 5;

    let mut s = TcpStream::connect(http).expect("connect");
    for i in 0..N {
        send_request(&mut s, "/generation");
        let (head, body) = read_response(&mut s);
        assert!(head.starts_with("HTTP/1.1 200"), "request {i}: {head}");
        assert!(head.contains("Connection: keep-alive"), "request {i}: {head}");
        assert!(body.contains("\"generation\":1"), "request {i}: {body}");
    }
    drop(s);

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.http.connections"], 1);
    assert_eq!(snap.counters["served.http.requests"], N as u64);
    assert_eq!(snap.counters["served.http.generation"], N as u64);
    assert_eq!(
        snap.counters["served.http.keepalive.reuses"],
        (N - 1) as u64,
        "every request after the first reuses the connection"
    );
}

#[test]
fn connection_close_and_http10_opt_out_of_keepalive() {
    let (daemon, _obs) = start(config());
    let http = daemon.http_addr().expect("http listener");

    // Explicit opt-out on a 1.1 request.
    let out = one_shot(http, "GET", "/healthz", "");
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    assert!(out.contains("Connection: close"), "{out}");

    // HTTP/1.0 with no Connection header defaults to close.
    let mut s = TcpStream::connect(http).expect("connect");
    write!(s, "GET /healthz HTTP/1.0\r\nHost: test\r\n\r\n").expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("server closes after 1.0");
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    assert!(out.contains("Connection: close"), "{out}");

    daemon.shutdown();
}

#[test]
fn request_cap_closes_the_connection_at_the_limit() {
    let mut cfg = config();
    cfg.max_requests_per_conn = 2;
    let (daemon, _obs) = start(cfg);
    let http = daemon.http_addr().expect("http listener");

    let mut s = TcpStream::connect(http).expect("connect");
    send_request(&mut s, "/generation");
    let (head, _) = read_response(&mut s);
    assert!(head.contains("Connection: keep-alive"), "{head}");
    send_request(&mut s, "/generation");
    let (head, _) = read_response(&mut s);
    assert!(
        head.contains("Connection: close"),
        "the final request under the cap announces the close: {head}"
    );
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).expect("read");
    assert!(rest.is_empty(), "server closed after the capped request");

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.http.requests"], 2);
    assert_eq!(snap.counters["served.http.keepalive.reuses"], 1);
}

#[test]
fn stalled_http_client_is_shed_without_hurting_others() {
    let (daemon, obs) = start(stall_config());
    let http = daemon.http_addr().expect("http listener");

    // Dribble half a request line and stall past the socket timeout.
    let mut slow = TcpStream::connect(http).expect("connect");
    slow.write_all(b"GET /hea").expect("partial request");
    let mut out = String::new();
    slow.read_to_string(&mut out)
        .expect("shed response then close");
    assert!(out.starts_with("HTTP/1.1 503"), "{out}");
    assert!(out.contains("Connection: close"), "{out}");

    // The shed is visible, and the daemon still answers everyone else.
    let snap = obs.snapshot();
    assert_eq!(snap.counters["served.conns.rejected"], 1);
    assert_eq!(snap.counters["served.http.timeouts"], 1);
    let ok = one_shot(http, "GET", "/lookup?ip=10.1.2.3", "");
    assert!(ok.contains("\"matched\":true"), "{ok}");

    // A stall mid-body (headers complete, body missing) sheds too.
    let mut slow = TcpStream::connect(http).expect("connect");
    write!(
        slow,
        "POST /lookup HTTP/1.1\r\nHost: test\r\nContent-Length: 64\r\n\r\n10.0."
    )
    .expect("partial body");
    let mut out = String::new();
    slow.read_to_string(&mut out).expect("shed response");
    assert!(out.starts_with("HTTP/1.1 503"), "{out}");

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.conns.rejected"], 2);
}

#[test]
fn idle_keepalive_connection_is_closed_quietly() {
    let (daemon, _obs) = start(stall_config());
    let http = daemon.http_addr().expect("http listener");

    // One served request, then silence: the idle cap closes the
    // connection without counting a rejection.
    let mut s = TcpStream::connect(http).expect("connect");
    send_request(&mut s, "/healthz");
    let (head, _) = read_response(&mut s);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).expect("idle close");
    assert!(rest.is_empty());

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.http.idle_closed"], 1);
    assert_eq!(
        snap.counters.get("served.conns.rejected").copied().unwrap_or(0),
        0,
        "an idle close is not a rejection"
    );
}

#[test]
fn stalled_framed_client_is_shed_without_hurting_others() {
    let (daemon, obs) = start(stall_config());
    let tcp = daemon.tcp_addr().expect("tcp listener");

    // Two bytes of a frame header, then a stall.
    let mut slow = TcpStream::connect(tcp).expect("connect");
    slow.write_all(&[0x01, 0x00]).expect("partial frame");
    let mut rest = Vec::new();
    slow.read_to_end(&mut rest).expect("server closes");
    assert!(rest.is_empty(), "no answer for a stalled frame");

    let snap = obs.snapshot();
    assert_eq!(snap.counters["served.conns.rejected"], 1);
    assert_eq!(snap.counters["served.tcp.timeouts"], 1);

    // A well-behaved framed client is unaffected.
    let mut client = FramedClient::connect(tcp).expect("connect");
    let answers = client.lookup(&[IpKey::V4(0x0A00_0001)]).expect("lookup");
    assert!(answers[0].is_some());

    daemon.shutdown();
}

#[test]
fn admission_budget_sheds_the_overflow_and_healthz_reports_it() {
    let mut cfg = config();
    cfg.max_conns = 1;
    let (daemon, obs) = start(cfg);
    let http = daemon.http_addr().expect("http listener");

    // Fill the budget with one live keep-alive connection.
    let mut held = TcpStream::connect(http).expect("connect");
    send_request(&mut held, "/healthz");
    let (head, body) = read_response(&mut held);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("\"active\":1"), "{body}");
    assert!(body.contains("\"max\":1"), "{body}");

    // The next connection is over budget: shed on the accept thread.
    let mut over = TcpStream::connect(http).expect("connect");
    let mut out = String::new();
    over.read_to_string(&mut out).expect("shed response");
    assert!(out.starts_with("HTTP/1.1 503"), "{out}");
    assert!(out.contains("Connection: close"), "{out}");
    assert!(out.contains("connection capacity"), "{out}");
    assert_eq!(obs.snapshot().counters["served.conns.rejected"], 1);

    // Releasing the held connection frees the slot, and the rejection
    // stays visible in /healthz. Retries that land before the handler
    // thread notices the close get shed too, so the count is ≥ 1, not
    // exactly 1.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(5);
    let body = loop {
        let out = one_shot(http, "GET", "/healthz", "");
        if out.starts_with("HTTP/1.1 200") {
            break out;
        }
        assert!(Instant::now() < deadline, "slot never freed: {out}");
        std::thread::sleep(Duration::from_millis(10));
    };
    let rejected: u64 = body
        .split("\"rejected\":")
        .nth(1)
        .and_then(|rest| {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .expect("healthz reports the rejection count");
    assert!(rejected >= 1, "{body}");

    daemon.shutdown();
}

#[test]
fn malformed_content_length_is_rejected_not_parsed_as_zero() {
    let (daemon, _obs) = start(config());
    let http = daemon.http_addr().expect("http listener");

    let mut s = TcpStream::connect(http).expect("connect");
    write!(
        s,
        "POST /lookup HTTP/1.1\r\nHost: test\r\nContent-Length: banana\r\n\r\n"
    )
    .expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    assert!(out.contains("malformed Content-Length"), "{out}");
    assert!(
        out.contains("Connection: close"),
        "unframeable body forces a close: {out}"
    );

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.http.bad_request"], 1);
}

#[test]
fn oversized_lines_and_header_blocks_answer_431() {
    let (daemon, obs) = start(config());
    let http = daemon.http_addr().expect("http listener");

    // The server answers 431 and closes as soon as the cap is crossed,
    // possibly while the client is still writing — the tail of the send
    // can hit a reset, and a reset can swallow the buffered response.
    // So: best-effort writes/reads, with the authoritative assertion on
    // the daemon's own counters.
    let fire = |request: &[u8]| -> Option<String> {
        let mut s = TcpStream::connect(http).expect("connect");
        let _ = s.write_all(request);
        let mut out = String::new();
        s.read_to_string(&mut out).ok()?;
        Some(out)
    };
    let long = "a".repeat(9 * 1024);

    // A request line past the per-line cap (8 KiB); a single oversized
    // header line; many modest headers busting the block cap (32 KiB).
    let requests = [
        format!("GET /{long} HTTP/1.1\r\n\r\n"),
        format!("GET /healthz HTTP/1.1\r\nX-Big: {long}\r\n\r\n"),
        format!(
            "GET /healthz HTTP/1.1\r\n{}\r\n",
            format!("X-Pad: {}\r\n", "b".repeat(7 * 1024)).repeat(5)
        ),
    ];
    for request in &requests {
        if let Some(out) = fire(request.as_bytes()) {
            assert!(out.starts_with("HTTP/1.1 431"), "{out}");
        }
    }
    assert!(
        wait_until(Duration::from_secs(5), || {
            obs.snapshot()
                .counters
                .get("served.http.bad_request")
                .copied()
                .unwrap_or(0)
                == requests.len() as u64
        }),
        "every oversized request is counted as a 431/bad_request"
    );
    daemon.shutdown();
}

#[test]
fn endpoint_counters_sum_to_the_request_total() {
    let (daemon, _obs) = start(config());
    let http = daemon.http_addr().expect("http listener");

    one_shot(http, "GET", "/lookup?ip=10.1.2.3", "");
    one_shot(http, "POST", "/lookup", "10.0.0.1\n");
    one_shot(http, "GET", "/metrics", "");
    one_shot(http, "GET", "/healthz", "");
    one_shot(http, "GET", "/generation", "");
    one_shot(http, "GET", "/nope", "");
    one_shot(http, "GET", "/lookup?ip=junk", "");

    let snap = daemon.shutdown();
    assert_eq!(snap.counters["served.http.generation"], 1);
    let per_endpoint: u64 = [
        "served.http.lookup",
        "served.http.lookup_batch",
        "served.http.metrics",
        "served.http.healthz",
        "served.http.generation",
        "served.http.not_found",
        "served.http.bad_request",
        "served.http.overloaded",
        "served.http.timeouts",
    ]
    .iter()
    .map(|k| snap.counters.get(*k).copied().unwrap_or(0))
    .sum();
    assert_eq!(
        per_endpoint, snap.counters["served.http.requests"],
        "every response is counted under exactly one endpoint"
    );
}

#[test]
fn shutdown_drains_live_connections_promptly() {
    let (daemon, _obs) = start(config());
    let http = daemon.http_addr().expect("http listener");

    // A keep-alive connection sitting idle between requests would pin
    // the old detached-thread daemon; the tracker half-closes it.
    let mut idle = TcpStream::connect(http).expect("connect");
    send_request(&mut idle, "/healthz");
    let (head, _) = read_response(&mut idle);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    let t0 = Instant::now();
    let snap = daemon.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "drain must beat the 5 s window, took {:?}",
        t0.elapsed()
    );
    assert!(
        !snap.counters.contains_key("served.conns.aborted"),
        "no connection needed force-closing"
    );
}

#[test]
fn framed_client_survives_a_daemon_restart_on_the_same_port() {
    let (daemon, _obs) = start(config());
    let tcp = daemon.tcp_addr().expect("tcp listener");

    let policy = ClientPolicy {
        max_attempts: 8,
        backoff_base: Duration::from_millis(10),
        ..ClientPolicy::default()
    };
    let mut client = FramedClient::connect_with(tcp, policy).expect("connect");
    let before = client.lookup(&[IpKey::V4(0x0A00_0001)]).expect("lookup");

    // Bounce the daemon onto the very same port — SO_REUSEADDR lets the
    // restarted listener rebind through lingering TIME_WAIT sockets.
    daemon.shutdown();
    let mut cfg = config();
    cfg.http_listen = None;
    cfg.tcp_listen = Some(tcp.to_string());
    let (daemon, _obs) = start(cfg);

    // The client's cached connection is dead; lookup reconnects and
    // re-sends, and the answers are identical (idempotent reads).
    let after = client
        .lookup(&[IpKey::V4(0x0A00_0001)])
        .expect("lookup after restart");
    assert_eq!(after, before);
    assert!(client.reconnects() >= 1, "the restart forced a reconnect");

    daemon.shutdown();
}

/// Shared daemon for the fuzz cases: real proptest runs many cases, and
/// one daemon per case would dominate the runtime.
fn garbage_target() -> SocketAddr {
    use std::sync::OnceLock;
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let (daemon, _obs) = start(config());
        let addr = daemon.http_addr().expect("http listener");
        // Leak the daemon: it serves until the test process exits.
        std::mem::forget(daemon);
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Arbitrary bytes on the HTTP socket never take the daemon down:
    /// whatever the parser makes of the garbage, the next well-formed
    /// request on a fresh connection gets a 200.
    #[test]
    fn header_garbage_never_kills_the_daemon(
        garbage in prop::collection::vec(any::<u8>(), 0..2048),
        terminator in 0usize..3,
    ) {
        let addr = garbage_target();
        let mut s = TcpStream::connect(addr).expect("connect");
        let _ = s.write_all(&garbage);
        let _ = s.write_all([b"\r\n\r\n".as_slice(), b"\n", b""][terminator]);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        drop(s);

        let mut probe = TcpStream::connect(addr).expect("daemon still accepts");
        write!(probe, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").expect("send");
        let mut ok = String::new();
        probe.read_to_string(&mut ok).expect("daemon still answers");
        prop_assert!(ok.starts_with("HTTP/1.1 200"), "{}", ok);
    }
}
