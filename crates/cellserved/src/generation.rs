//! Artifact generations and the atomic swap that makes reloads
//! zero-downtime.
//!
//! The daemon never mutates a served index. Instead it holds an
//! [`Arc<Generation>`] behind an `RwLock`: lookups take a read lock just
//! long enough to clone the `Arc` (nanoseconds), then run entirely on
//! the immutable [`FrozenIndex`] snapshot they hold. A reload decodes
//! and fully validates the candidate artifact *outside* any lock — seal,
//! structure, and version, exactly the checks [`cellserve::from_bytes`]
//! performs — and only then takes the write lock for a pointer swap.
//! A corrupt, truncated, or newer-version candidate is rejected before
//! the swap point, so the old generation keeps serving untouched;
//! in-flight batches that cloned the old `Arc` finish on it and drop it
//! when done.
//!
//! Generations also carry the content hash of their canonical encoding
//! and an epoch, which together let sealed [`celldelta`] deltas patch
//! the live index in place of a full reload: a delta is accepted only
//! if its base hash matches the serving generation and its epoch
//! advances past the generation's. The same validate-outside-the-lock
//! discipline applies — a wrong-base, stale, or corrupt delta never
//! reaches the swap point.

use std::path::Path;
use std::sync::{Arc, RwLock};

use celldelta::{Delta, DeltaError};
use cellobs::Observer;
use cellserve::{FrozenIndex, ServeError};

use crate::error::ServedError;

/// Hash of the canonical encoding of `index` — the identity the delta
/// chain checks against ([`celldelta::Delta::base_hash`]). Artifact
/// encoding is canonical, so for a generation decoded from a sealed
/// file this equals the hash of the file bytes.
fn canonical_hash(index: &FrozenIndex) -> u64 {
    cellserve::content_hash(&cellserve::to_bytes(index))
}

/// One immutable, validated artifact generation.
pub struct Generation {
    /// The decoded index this generation serves.
    pub index: Arc<FrozenIndex>,
    /// Monotonic generation number, starting at 1 for the boot artifact.
    pub number: u64,
    /// Size of the sealed artifact this generation was decoded from
    /// (0 when built in-process without serialization).
    pub artifact_bytes: u64,
    /// FNV-1a 64 content hash of this generation's canonical encoding;
    /// a delta applies only if its base hash equals this value.
    pub artifact_hash: u64,
    /// Epoch of the delta that produced this generation; 0 for a
    /// generation born from a full artifact (boot or full reload).
    pub epoch: u64,
}

/// The daemon's current generation, swappable under live traffic.
pub struct GenerationStore {
    current: RwLock<Arc<Generation>>,
    obs: Observer,
}

impl GenerationStore {
    /// A store serving `index` as generation 1 at epoch 0.
    pub fn new(index: FrozenIndex, artifact_bytes: u64, obs: Observer) -> Self {
        let artifact_hash = canonical_hash(&index);
        obs.gauge("served.generation").set(1);
        obs.gauge("served.artifact.hash").set(artifact_hash);
        obs.gauge("served.epoch").set(0);
        GenerationStore {
            current: RwLock::new(Arc::new(Generation {
                index: Arc::new(index),
                number: 1,
                artifact_bytes,
                artifact_hash,
                epoch: 0,
            })),
            obs,
        }
    }

    /// Read and validate a sealed artifact file into generation 1.
    pub fn load(path: &Path, obs: Observer) -> Result<Self, ServedError> {
        let bytes = std::fs::read(path)?;
        let index = cellserve::from_bytes(&bytes)?;
        Ok(Self::new(index, bytes.len() as u64, obs))
    }

    /// The generation serving right now. Callers keep the returned
    /// `Arc` for the duration of one batch; a concurrent swap never
    /// invalidates it.
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().expect("generation lock poisoned"))
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current().number
    }

    /// Validate candidate artifact bytes and, on success, atomically
    /// swap them in as the next generation; returns its number. On any
    /// validation failure (broken seal, structural violation past a
    /// forged seal, unsupported version) the old generation keeps
    /// serving and the `served.reload.rejected` counter is bumped.
    pub fn try_swap_bytes(&self, bytes: &[u8]) -> Result<u64, ServeError> {
        // Decode outside the lock: validation cost never stalls readers.
        let index = match cellserve::from_bytes(bytes) {
            Ok(index) => index,
            Err(e) => {
                self.obs.counter("served.reload.rejected").inc();
                return Err(e);
            }
        };
        let artifact_hash = canonical_hash(&index);
        let number = {
            let mut cur = self.current.write().expect("generation lock poisoned");
            let number = cur.number + 1;
            *cur = Arc::new(Generation {
                index: Arc::new(index),
                number,
                artifact_bytes: bytes.len() as u64,
                artifact_hash,
                epoch: 0,
            });
            number
        };
        self.obs.counter("served.reload.ok").inc();
        self.obs.gauge("served.generation").set(number);
        self.obs.gauge("served.artifact.hash").set(artifact_hash);
        self.obs.gauge("served.epoch").set(0);
        Ok(number)
    }

    /// [`try_swap_bytes`](Self::try_swap_bytes) from a file; an
    /// unreadable candidate also counts as a rejected reload.
    pub fn try_swap_path(&self, path: &Path) -> Result<u64, ServedError> {
        let bytes = std::fs::read(path).map_err(|e| {
            self.obs.counter("served.reload.rejected").inc();
            ServedError::Io(e)
        })?;
        self.try_swap_bytes(&bytes).map_err(ServedError::Artifact)
    }

    /// Validate sealed delta bytes against the live generation and, on
    /// success, swap in the patched artifact as the next generation;
    /// returns its number. A delta is accepted only if its base hash
    /// matches the serving generation's content hash and its epoch
    /// advances past the generation's (a generation born from a full
    /// artifact sits at epoch 0 and accepts any delta that chains on
    /// it). Every failure — broken seal, wrong base, stale epoch, patch
    /// conflict, target-hash mismatch — bumps `served.delta.rejected`
    /// and leaves the old generation serving untouched.
    pub fn try_apply_delta_bytes(&self, delta_bytes: &[u8]) -> Result<u64, ServedError> {
        let reject = |e: ServedError| {
            self.obs.counter("served.delta.rejected").inc();
            e
        };
        let delta = match Delta::from_bytes(delta_bytes) {
            Ok(d) => d,
            Err(e) => return Err(reject(ServedError::Delta(e))),
        };
        let cur = self.current();
        if cur.epoch > 0 && delta.epoch <= cur.epoch {
            return Err(reject(ServedError::Delta(DeltaError::StaleEpoch {
                current: cur.epoch,
                delta: delta.epoch,
            })));
        }
        // Patch the canonical re-encoding of the live index, outside
        // any lock; `apply_parsed` verifies the base hash before
        // touching anything and the target hash after.
        let base_bytes = cellserve::to_bytes(&cur.index);
        let patched = match celldelta::apply_parsed(&base_bytes, &delta) {
            Ok(b) => b,
            Err(e) => return Err(reject(ServedError::Delta(e))),
        };
        let index = match cellserve::from_bytes(&patched) {
            Ok(i) => i,
            Err(e) => return Err(reject(ServedError::Artifact(e))),
        };
        let number = {
            let mut w = self.current.write().expect("generation lock poisoned");
            // A concurrent reload may have swapped underneath; the
            // chain rule holds against whatever serves *now*.
            if w.artifact_hash != delta.base_hash {
                let artifact = w.artifact_hash;
                drop(w);
                return Err(reject(ServedError::Delta(DeltaError::BaseMismatch {
                    delta_base: delta.base_hash,
                    artifact,
                })));
            }
            let number = w.number + 1;
            *w = Arc::new(Generation {
                index: Arc::new(index),
                number,
                artifact_bytes: patched.len() as u64,
                artifact_hash: delta.target_hash,
                epoch: delta.epoch,
            });
            number
        };
        self.obs.counter("served.delta.ok").inc();
        self.obs.gauge("served.generation").set(number);
        self.obs
            .gauge("served.artifact.hash")
            .set(delta.target_hash);
        self.obs.gauge("served.epoch").set(delta.epoch);
        Ok(number)
    }

    /// [`try_apply_delta_bytes`](Self::try_apply_delta_bytes) from a
    /// file; an unreadable candidate also counts as a rejected delta.
    pub fn try_apply_delta_path(&self, path: &Path) -> Result<u64, ServedError> {
        let bytes = std::fs::read(path).map_err(|e| {
            self.obs.counter("served.delta.rejected").inc();
            ServedError::Io(e)
        })?;
        self.try_apply_delta_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellserve::{AsClass, ServeLabel};
    use netaddr::Asn;

    fn index(asn: u32) -> FrozenIndex {
        let mut b = FrozenIndex::builder();
        b.insert_v4(
            "10.0.0.0/8".parse().expect("cidr"),
            ServeLabel {
                asn: Asn(asn),
                class: AsClass::Dedicated,
            },
        );
        b.build()
    }

    #[test]
    fn swap_replaces_the_generation_and_counts() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), 0, obs.clone());
        assert_eq!(store.generation(), 1);
        let held = store.current();

        let n = store
            .try_swap_bytes(&cellserve::to_bytes(&index(2)))
            .expect("valid candidate swaps");
        assert_eq!(n, 2);
        assert_eq!(store.generation(), 2);
        // The generation held across the swap still answers, unchanged.
        let (_, label) = held.index.lookup_v4(0x0A000001).expect("old gen serves");
        assert_eq!(label.asn, Asn(1));
        let (_, label) = store
            .current()
            .index
            .lookup_v4(0x0A000001)
            .expect("new gen serves");
        assert_eq!(label.asn, Asn(2));
        assert_eq!(obs.snapshot().counters["served.reload.ok"], 1);
    }

    #[test]
    fn rejected_candidates_leave_the_old_generation() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), 0, obs.clone());

        let mut corrupt = cellserve::to_bytes(&index(2));
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(store.try_swap_bytes(&corrupt).is_err());

        // Version-bumped candidate, re-sealed so only the version check
        // can reject it.
        let mut newer = cellserve::to_bytes(&index(2));
        let v = cellserve::ARTIFACT_VERSION + 1;
        newer[8..12].copy_from_slice(&v.to_le_bytes());
        let body_len = newer.len() - 16;
        let crc = cellstream::crc32(&newer[..body_len]);
        newer[body_len + 8..body_len + 12].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            store.try_swap_bytes(&newer),
            Err(ServeError::UnsupportedVersion(v))
        );

        assert_eq!(store.generation(), 1, "both rejections left gen 1");
        let (_, label) = store.current().index.lookup_v4(0x0A000001).expect("serves");
        assert_eq!(label.asn, Asn(1));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["served.reload.rejected"], 2);
        assert!(!snap.counters.contains_key("served.reload.ok"));
    }

    #[test]
    fn deltas_patch_the_live_generation() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), 0, obs.clone());
        let base = cellserve::to_bytes(&index(1));
        let target = cellserve::to_bytes(&index(2));
        let delta = celldelta::build_delta(&base, &target, 0, 1).expect("build");

        let n = store
            .try_apply_delta_bytes(&delta)
            .expect("chained delta applies");
        assert_eq!(n, 2);
        let cur = store.current();
        assert_eq!(cur.epoch, 1);
        assert_eq!(cur.artifact_hash, cellserve::content_hash(&target));
        let (_, label) = cur.index.lookup_v4(0x0A000001).expect("patched gen serves");
        assert_eq!(label.asn, Asn(2));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["served.delta.ok"], 1);
        assert_eq!(snap.gauges["served.epoch"], 1);

        // Replaying the same delta is stale: epoch 1 does not advance
        // past the live epoch 1, and its base no longer chains anyway.
        assert!(matches!(
            store.try_apply_delta_bytes(&delta),
            Err(ServedError::Delta(DeltaError::StaleEpoch { .. }))
        ));
        assert_eq!(store.generation(), 2);
    }

    #[test]
    fn wrong_base_and_corrupt_deltas_are_rejected() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), 0, obs.clone());
        let base = cellserve::to_bytes(&index(1));
        let other = cellserve::to_bytes(&index(7));
        let target = cellserve::to_bytes(&index(2));

        // Chains on index(7), not the serving index(1).
        let wrong_base = celldelta::build_delta(&other, &target, 0, 1).expect("build");
        assert!(matches!(
            store.try_apply_delta_bytes(&wrong_base),
            Err(ServedError::Delta(DeltaError::BaseMismatch { .. }))
        ));

        // A bit flip anywhere breaks the seal or the chain.
        let mut corrupt = celldelta::build_delta(&base, &target, 0, 1).expect("build");
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x20;
        assert!(store.try_apply_delta_bytes(&corrupt).is_err());

        assert_eq!(store.generation(), 1, "all rejections left gen 1");
        let (_, label) = store.current().index.lookup_v4(0x0A000001).expect("serves");
        assert_eq!(label.asn, Asn(1));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["served.delta.rejected"], 2);
        assert!(!snap.counters.contains_key("served.delta.ok"));
    }
}
