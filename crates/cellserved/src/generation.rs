//! Artifact generations and the atomic swap that makes reloads
//! zero-downtime.
//!
//! The daemon never mutates a served index. Instead it holds an
//! [`Arc<Generation>`] behind an `RwLock`: lookups take a read lock just
//! long enough to clone the `Arc` (nanoseconds), then run entirely on
//! the immutable [`ArtifactHandle`] snapshot they hold — a zero-copy
//! mmap view for v2 artifacts, a decoded [`FrozenIndex`] for v1. A
//! reload validates the candidate artifact *outside* any lock — seal,
//! structure, and version, exactly the checks [`cellserve::Artifact`]
//! performs — and only then takes the write lock for a pointer swap.
//! A corrupt, truncated, or newer-version candidate is rejected before
//! the swap point, so the old generation keeps serving untouched;
//! in-flight batches that cloned the old `Arc` finish on it and drop it
//! when done.
//!
//! Generations also carry the content hash of their sealed bytes and an
//! epoch, which together let sealed [`celldelta`] deltas patch the live
//! index in place of a full reload: a delta is accepted only if its
//! base hash matches the serving generation and its epoch advances past
//! the generation's. The same validate-outside-the-lock discipline
//! applies — a wrong-base, stale, or corrupt delta never reaches the
//! swap point.

use std::path::Path;
use std::sync::{Arc, RwLock};

use celldelta::{Delta, DeltaError};
use cellobs::Observer;
use cellserve::{Artifact, ArtifactFormat, ArtifactHandle, FrozenIndex, ServeError};

use crate::error::ServedError;

/// One immutable, validated artifact generation.
pub struct Generation {
    /// The loaded artifact this generation serves: answers through
    /// [`cellserve::IndexView`] whichever format it holds, and keeps
    /// its sealed bytes so deltas can chain on them.
    pub index: Arc<ArtifactHandle>,
    /// Monotonic generation number, starting at 1 for the boot artifact.
    pub number: u64,
    /// Size of the sealed artifact this generation was loaded from.
    pub artifact_bytes: u64,
    /// FNV-1a 64 content hash of this generation's sealed bytes; a
    /// delta applies only if its base hash equals this value.
    pub artifact_hash: u64,
    /// Epoch of the delta that produced this generation; 0 for a
    /// generation born from a full artifact (boot or full reload).
    pub epoch: u64,
}

/// The daemon's current generation, swappable under live traffic.
pub struct GenerationStore {
    current: RwLock<Arc<Generation>>,
    obs: Observer,
}

impl GenerationStore {
    /// A store serving an already-loaded artifact as generation 1 at
    /// epoch 0.
    pub fn from_handle(handle: ArtifactHandle, obs: Observer) -> Self {
        let gen = Generation {
            number: 1,
            artifact_bytes: handle.source_len(),
            artifact_hash: handle.content_hash(),
            epoch: 0,
            index: Arc::new(handle),
        };
        obs.gauge("served.generation").set(1);
        Self::set_artifact_gauges(&obs, &gen);
        GenerationStore {
            current: RwLock::new(Arc::new(gen)),
            obs,
        }
    }

    /// A store serving an in-process `index` as generation 1 at epoch
    /// 0. The index is sealed once (default v2 format) so the
    /// generation has canonical bytes for the delta chain.
    pub fn new(index: FrozenIndex, obs: Observer) -> Self {
        let sealed = Artifact::encode(&index, ArtifactFormat::V2);
        let handle = Artifact::from_bytes(&sealed).expect("just-encoded artifact validates");
        Self::from_handle(handle, obs)
    }

    /// Open and validate a sealed artifact file into generation 1 —
    /// mmap-backed and near-zero-copy when the file is v2.
    pub fn load(path: &Path, obs: Observer) -> Result<Self, ServedError> {
        let handle = Artifact::open(path)?;
        Ok(Self::from_handle(handle, obs))
    }

    fn set_artifact_gauges(obs: &Observer, gen: &Generation) {
        obs.gauge("served.artifact.hash").set(gen.artifact_hash);
        obs.gauge("served.epoch").set(gen.epoch);
        obs.gauge("served.artifact.copied.bytes")
            .set(gen.index.copied_bytes());
        obs.gauge("served.artifact.mapped")
            .set(u64::from(gen.index.is_mapped()));
    }

    /// The generation serving right now. Callers keep the returned
    /// `Arc` for the duration of one batch; a concurrent swap never
    /// invalidates it.
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().expect("generation lock poisoned"))
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current().number
    }

    /// Install a validated handle as the next generation (write lock
    /// held only for the pointer swap) and refresh the gauges.
    fn install(&self, handle: ArtifactHandle, epoch: u64) -> u64 {
        let gen;
        let number = {
            let mut cur = self.current.write().expect("generation lock poisoned");
            let number = cur.number + 1;
            gen = Arc::new(Generation {
                number,
                artifact_bytes: handle.source_len(),
                artifact_hash: handle.content_hash(),
                epoch,
                index: Arc::new(handle),
            });
            *cur = Arc::clone(&gen);
            number
        };
        self.obs.gauge("served.generation").set(number);
        Self::set_artifact_gauges(&self.obs, &gen);
        number
    }

    /// Validate candidate artifact bytes (either format, sniffed) and,
    /// on success, atomically swap them in as the next generation;
    /// returns its number. On any validation failure (broken seal,
    /// structural violation past a forged seal, unsupported version)
    /// the old generation keeps serving and the
    /// `served.reload.rejected` counter is bumped.
    pub fn try_swap_bytes(&self, bytes: &[u8]) -> Result<u64, ServeError> {
        // Validate outside the lock: candidate cost never stalls readers.
        let handle = match Artifact::from_bytes(bytes) {
            Ok(handle) => handle,
            Err(e) => {
                self.obs.counter("served.reload.rejected").inc();
                return Err(e);
            }
        };
        let number = self.install(handle, 0);
        self.obs.counter("served.reload.ok").inc();
        Ok(number)
    }

    /// [`try_swap_bytes`](Self::try_swap_bytes) from a file, loading
    /// through [`Artifact::open`] so a v2 candidate is mapped rather
    /// than copied; an unreadable or invalid candidate counts as a
    /// rejected reload.
    pub fn try_swap_path(&self, path: &Path) -> Result<u64, ServedError> {
        let handle = match Artifact::open(path) {
            Ok(handle) => handle,
            Err(e) => {
                self.obs.counter("served.reload.rejected").inc();
                return Err(ServedError::Artifact(e));
            }
        };
        let number = self.install(handle, 0);
        self.obs.counter("served.reload.ok").inc();
        Ok(number)
    }

    /// Validate sealed delta bytes against the live generation and, on
    /// success, swap in the patched artifact as the next generation;
    /// returns its number. A delta is accepted only if its base hash
    /// matches the serving generation's content hash and its epoch
    /// advances past the generation's (a generation born from a full
    /// artifact sits at epoch 0 and accepts any delta that chains on
    /// it). Every failure — broken seal, wrong base, stale epoch, patch
    /// conflict, target-hash mismatch — bumps `served.delta.rejected`
    /// and leaves the old generation serving untouched.
    pub fn try_apply_delta_bytes(&self, delta_bytes: &[u8]) -> Result<u64, ServedError> {
        let reject = |e: ServedError| {
            self.obs.counter("served.delta.rejected").inc();
            e
        };
        let delta = match Delta::from_bytes(delta_bytes) {
            Ok(d) => d,
            Err(e) => return Err(reject(ServedError::Delta(e))),
        };
        let cur = self.current();
        if cur.epoch > 0 && delta.epoch <= cur.epoch {
            return Err(reject(ServedError::Delta(DeltaError::StaleEpoch {
                current: cur.epoch,
                delta: delta.epoch,
            })));
        }
        // Patch the generation's sealed bytes, outside any lock;
        // `apply_parsed` verifies the base hash before touching
        // anything and the target hash after re-encoding in the base's
        // format.
        let patched = match celldelta::apply_parsed(cur.index.sealed_bytes(), &delta) {
            Ok(b) => b,
            Err(e) => return Err(reject(ServedError::Delta(e))),
        };
        let handle = match Artifact::from_bytes(&patched) {
            Ok(h) => h,
            Err(e) => return Err(reject(ServedError::Artifact(e))),
        };
        let number = {
            let mut w = self.current.write().expect("generation lock poisoned");
            // A concurrent reload may have swapped underneath; the
            // chain rule holds against whatever serves *now*.
            if w.artifact_hash != delta.base_hash {
                let artifact = w.artifact_hash;
                drop(w);
                return Err(reject(ServedError::Delta(DeltaError::BaseMismatch {
                    delta_base: delta.base_hash,
                    artifact,
                })));
            }
            let number = w.number + 1;
            let gen = Arc::new(Generation {
                number,
                artifact_bytes: patched.len() as u64,
                artifact_hash: delta.target_hash,
                epoch: delta.epoch,
                index: Arc::new(handle),
            });
            Self::set_artifact_gauges(&self.obs, &gen);
            *w = gen;
            number
        };
        self.obs.counter("served.delta.ok").inc();
        self.obs.gauge("served.generation").set(number);
        Ok(number)
    }

    /// [`try_apply_delta_bytes`](Self::try_apply_delta_bytes) from a
    /// file; an unreadable candidate also counts as a rejected delta.
    pub fn try_apply_delta_path(&self, path: &Path) -> Result<u64, ServedError> {
        let bytes = std::fs::read(path).map_err(|e| {
            self.obs.counter("served.delta.rejected").inc();
            ServedError::Io(e)
        })?;
        self.try_apply_delta_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellserve::{AsClass, ServeLabel, ARTIFACT_V2_VERSION};
    use netaddr::Asn;

    fn index(asn: u32) -> FrozenIndex {
        let mut b = FrozenIndex::builder();
        b.insert_v4(
            "10.0.0.0/8".parse().expect("cidr"),
            ServeLabel {
                asn: Asn(asn),
                class: AsClass::Dedicated,
            },
        );
        b.build()
    }

    fn sealed(asn: u32) -> Vec<u8> {
        Artifact::encode(&index(asn), ArtifactFormat::V2)
    }

    #[test]
    fn swap_replaces_the_generation_and_counts() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), obs.clone());
        assert_eq!(store.generation(), 1);
        let held = store.current();

        let n = store
            .try_swap_bytes(&sealed(2))
            .expect("valid candidate swaps");
        assert_eq!(n, 2);
        assert_eq!(store.generation(), 2);
        // The generation held across the swap still answers, unchanged.
        let (_, label) = held.index.lookup_v4(0x0A000001).expect("old gen serves");
        assert_eq!(label.asn, Asn(1));
        let (_, label) = store
            .current()
            .index
            .lookup_v4(0x0A000001)
            .expect("new gen serves");
        assert_eq!(label.asn, Asn(2));
        assert_eq!(obs.snapshot().counters["served.reload.ok"], 1);
    }

    #[test]
    fn v1_candidates_still_swap_in() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), obs.clone());
        let v1 = Artifact::encode(&index(3), ArtifactFormat::V1);
        let n = store.try_swap_bytes(&v1).expect("v1 candidate swaps");
        assert_eq!(n, 2);
        let cur = store.current();
        assert_eq!(cur.index.format(), ArtifactFormat::V1);
        assert_eq!(cur.artifact_hash, cellserve::content_hash(&v1));
        let (_, label) = cur.index.lookup_v4(0x0A000001).expect("v1 gen serves");
        assert_eq!(label.asn, Asn(3));
    }

    #[test]
    fn rejected_candidates_leave_the_old_generation() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), obs.clone());

        let mut corrupt = sealed(2);
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(store.try_swap_bytes(&corrupt).is_err());

        // Candidate claiming a version newer than any this build can
        // serve, re-sealed so only the version check can reject it.
        let mut newer = Artifact::encode(&index(2), ArtifactFormat::V1);
        let v = ARTIFACT_V2_VERSION + 1;
        newer[8..12].copy_from_slice(&v.to_le_bytes());
        let body_len = newer.len() - 16;
        let crc = cellstream::crc32(&newer[..body_len]);
        newer[body_len + 8..body_len + 12].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            store.try_swap_bytes(&newer),
            Err(ServeError::UnsupportedVersion(v))
        );

        assert_eq!(store.generation(), 1, "both rejections left gen 1");
        let (_, label) = store.current().index.lookup_v4(0x0A000001).expect("serves");
        assert_eq!(label.asn, Asn(1));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["served.reload.rejected"], 2);
        assert!(!snap.counters.contains_key("served.reload.ok"));
    }

    #[test]
    fn deltas_patch_the_live_generation() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), obs.clone());
        let base = sealed(1);
        let target = sealed(2);
        let delta = celldelta::build_delta(&base, &target, 0, 1).expect("build");

        let n = store
            .try_apply_delta_bytes(&delta)
            .expect("chained delta applies");
        assert_eq!(n, 2);
        let cur = store.current();
        assert_eq!(cur.epoch, 1);
        assert_eq!(cur.artifact_hash, cellserve::content_hash(&target));
        let (_, label) = cur.index.lookup_v4(0x0A000001).expect("patched gen serves");
        assert_eq!(label.asn, Asn(2));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["served.delta.ok"], 1);
        assert_eq!(snap.gauges["served.epoch"], 1);

        // Replaying the same delta is stale: epoch 1 does not advance
        // past the live epoch 1, and its base no longer chains anyway.
        assert!(matches!(
            store.try_apply_delta_bytes(&delta),
            Err(ServedError::Delta(DeltaError::StaleEpoch { .. }))
        ));
        assert_eq!(store.generation(), 2);
    }

    #[test]
    fn wrong_base_and_corrupt_deltas_are_rejected() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), obs.clone());
        let base = sealed(1);
        let other = sealed(7);
        let target = sealed(2);

        // Chains on index(7), not the serving index(1).
        let wrong_base = celldelta::build_delta(&other, &target, 0, 1).expect("build");
        assert!(matches!(
            store.try_apply_delta_bytes(&wrong_base),
            Err(ServedError::Delta(DeltaError::BaseMismatch { .. }))
        ));

        // A bit flip anywhere breaks the seal or the chain.
        let mut corrupt = celldelta::build_delta(&base, &target, 0, 1).expect("build");
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x20;
        assert!(store.try_apply_delta_bytes(&corrupt).is_err());

        assert_eq!(store.generation(), 1, "all rejections left gen 1");
        let (_, label) = store.current().index.lookup_v4(0x0A000001).expect("serves");
        assert_eq!(label.asn, Asn(1));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["served.delta.rejected"], 2);
        assert!(!snap.counters.contains_key("served.delta.ok"));
    }
}
