//! Artifact generations and the atomic swap that makes reloads
//! zero-downtime.
//!
//! The daemon never mutates a served index. Instead it holds an
//! [`Arc<Generation>`] behind an `RwLock`: lookups take a read lock just
//! long enough to clone the `Arc` (nanoseconds), then run entirely on
//! the immutable [`FrozenIndex`] snapshot they hold. A reload decodes
//! and fully validates the candidate artifact *outside* any lock — seal,
//! structure, and version, exactly the checks [`cellserve::from_bytes`]
//! performs — and only then takes the write lock for a pointer swap.
//! A corrupt, truncated, or newer-version candidate is rejected before
//! the swap point, so the old generation keeps serving untouched;
//! in-flight batches that cloned the old `Arc` finish on it and drop it
//! when done.

use std::path::Path;
use std::sync::{Arc, RwLock};

use cellobs::Observer;
use cellserve::{FrozenIndex, ServeError};

use crate::error::ServedError;

/// One immutable, validated artifact generation.
pub struct Generation {
    /// The decoded index this generation serves.
    pub index: Arc<FrozenIndex>,
    /// Monotonic generation number, starting at 1 for the boot artifact.
    pub number: u64,
    /// Size of the sealed artifact this generation was decoded from
    /// (0 when built in-process without serialization).
    pub artifact_bytes: u64,
}

/// The daemon's current generation, swappable under live traffic.
pub struct GenerationStore {
    current: RwLock<Arc<Generation>>,
    obs: Observer,
}

impl GenerationStore {
    /// A store serving `index` as generation 1.
    pub fn new(index: FrozenIndex, artifact_bytes: u64, obs: Observer) -> Self {
        obs.gauge("served.generation").set(1);
        GenerationStore {
            current: RwLock::new(Arc::new(Generation {
                index: Arc::new(index),
                number: 1,
                artifact_bytes,
            })),
            obs,
        }
    }

    /// Read and validate a sealed artifact file into generation 1.
    pub fn load(path: &Path, obs: Observer) -> Result<Self, ServedError> {
        let bytes = std::fs::read(path)?;
        let index = cellserve::from_bytes(&bytes)?;
        Ok(Self::new(index, bytes.len() as u64, obs))
    }

    /// The generation serving right now. Callers keep the returned
    /// `Arc` for the duration of one batch; a concurrent swap never
    /// invalidates it.
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().expect("generation lock poisoned"))
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current().number
    }

    /// Validate candidate artifact bytes and, on success, atomically
    /// swap them in as the next generation; returns its number. On any
    /// validation failure (broken seal, structural violation past a
    /// forged seal, unsupported version) the old generation keeps
    /// serving and the `served.reload.rejected` counter is bumped.
    pub fn try_swap_bytes(&self, bytes: &[u8]) -> Result<u64, ServeError> {
        // Decode outside the lock: validation cost never stalls readers.
        let index = match cellserve::from_bytes(bytes) {
            Ok(index) => index,
            Err(e) => {
                self.obs.counter("served.reload.rejected").inc();
                return Err(e);
            }
        };
        let number = {
            let mut cur = self.current.write().expect("generation lock poisoned");
            let number = cur.number + 1;
            *cur = Arc::new(Generation {
                index: Arc::new(index),
                number,
                artifact_bytes: bytes.len() as u64,
            });
            number
        };
        self.obs.counter("served.reload.ok").inc();
        self.obs.gauge("served.generation").set(number);
        Ok(number)
    }

    /// [`try_swap_bytes`](Self::try_swap_bytes) from a file; an
    /// unreadable candidate also counts as a rejected reload.
    pub fn try_swap_path(&self, path: &Path) -> Result<u64, ServedError> {
        let bytes = std::fs::read(path).map_err(|e| {
            self.obs.counter("served.reload.rejected").inc();
            ServedError::Io(e)
        })?;
        self.try_swap_bytes(&bytes).map_err(ServedError::Artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellserve::{AsClass, ServeLabel};
    use netaddr::Asn;

    fn index(asn: u32) -> FrozenIndex {
        let mut b = FrozenIndex::builder();
        b.insert_v4(
            "10.0.0.0/8".parse().expect("cidr"),
            ServeLabel {
                asn: Asn(asn),
                class: AsClass::Dedicated,
            },
        );
        b.build()
    }

    #[test]
    fn swap_replaces_the_generation_and_counts() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), 0, obs.clone());
        assert_eq!(store.generation(), 1);
        let held = store.current();

        let n = store
            .try_swap_bytes(&cellserve::to_bytes(&index(2)))
            .expect("valid candidate swaps");
        assert_eq!(n, 2);
        assert_eq!(store.generation(), 2);
        // The generation held across the swap still answers, unchanged.
        let (_, label) = held.index.lookup_v4(0x0A000001).expect("old gen serves");
        assert_eq!(label.asn, Asn(1));
        let (_, label) = store
            .current()
            .index
            .lookup_v4(0x0A000001)
            .expect("new gen serves");
        assert_eq!(label.asn, Asn(2));
        assert_eq!(obs.snapshot().counters["served.reload.ok"], 1);
    }

    #[test]
    fn rejected_candidates_leave_the_old_generation() {
        let obs = Observer::enabled();
        let store = GenerationStore::new(index(1), 0, obs.clone());

        let mut corrupt = cellserve::to_bytes(&index(2));
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(store.try_swap_bytes(&corrupt).is_err());

        // Version-bumped candidate, re-sealed so only the version check
        // can reject it.
        let mut newer = cellserve::to_bytes(&index(2));
        let v = cellserve::ARTIFACT_VERSION + 1;
        newer[8..12].copy_from_slice(&v.to_le_bytes());
        let body_len = newer.len() - 16;
        let crc = cellstream::crc32(&newer[..body_len]);
        newer[body_len + 8..body_len + 12].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            store.try_swap_bytes(&newer),
            Err(ServeError::UnsupportedVersion(v))
        );

        assert_eq!(store.generation(), 1, "both rejections left gen 1");
        let (_, label) = store.current().index.lookup_v4(0x0A000001).expect("serves");
        assert_eq!(label.asn, Asn(1));
        let snap = obs.snapshot();
        assert_eq!(snap.counters["served.reload.rejected"], 2);
        assert!(!snap.counters.contains_key("served.reload.ok"));
    }
}
