//! Connection admission and lifecycle tracking.
//!
//! Every accepted socket passes through one [`ConnTracker`] shared by
//! both listeners: admission is a bounded budget (`max_conns`), so a
//! scanner opening sockets faster than they close gets shed with a
//! `served.conns.rejected` tick instead of an unbounded pile of
//! `served-conn` threads. The tracker keeps a clone of every live
//! socket, which buys two things the old detached-thread design could
//! not offer:
//!
//! 1. **Deterministic drain.** [`Daemon::shutdown`](crate::Daemon)
//!    half-closes the read side of every live connection
//!    ([`ConnTracker::close_reads`]) — blocked reads wake with EOF,
//!    handlers finish writing their in-flight response, and the daemon
//!    waits (bounded) for the live count to hit zero before taking the
//!    final metrics snapshot. No more racing detached threads.
//! 2. **A live gauge.** `served.conns.active` tracks the handler
//!    population, and `/healthz` reports it next to the budget.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cellobs::Observer;

/// Shared registry of live connections with a fixed admission budget.
pub(crate) struct ConnTracker {
    /// Admission budget; 0 means unlimited.
    max: usize,
    live: Mutex<LiveConns>,
    drained: Condvar,
    obs: Observer,
}

struct LiveConns {
    next_id: u64,
    conns: HashMap<u64, TcpStream>,
}

impl ConnTracker {
    pub fn new(max: usize, obs: Observer) -> Arc<ConnTracker> {
        Arc::new(ConnTracker {
            max,
            live: Mutex::new(LiveConns {
                next_id: 0,
                conns: HashMap::new(),
            }),
            drained: Condvar::new(),
            obs,
        })
    }

    /// The admission budget (0 = unlimited), for `/healthz`.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Currently live (admitted, not yet finished) connections.
    pub fn active(&self) -> usize {
        self.live.lock().expect("conn tracker poisoned").conns.len()
    }

    /// Admit one connection if the budget allows, registering a clone
    /// of its socket for shutdown. `None` means the budget is exhausted
    /// — the caller sheds the connection and counts the rejection.
    pub fn try_admit(self: &Arc<Self>, stream: &TcpStream) -> Option<ConnGuard> {
        let mut live = self.live.lock().expect("conn tracker poisoned");
        if self.max > 0 && live.conns.len() >= self.max {
            return None;
        }
        let id = live.next_id;
        live.next_id += 1;
        // A socket that cannot be cloned cannot be drained at shutdown;
        // shed it like a budget breach rather than serving it untracked.
        let clone = stream.try_clone().ok()?;
        live.conns.insert(id, clone);
        self.obs
            .gauge("served.conns.active")
            .set(live.conns.len() as u64);
        self.obs.counter("served.conns.accepted").inc();
        drop(live);
        Some(ConnGuard {
            tracker: Arc::clone(self),
            id,
        })
    }

    /// Half-close the read side of every live connection: blocked reads
    /// wake with EOF, in-flight responses still go out. Called once at
    /// the start of shutdown.
    pub fn close_reads(&self) {
        let live = self.live.lock().expect("conn tracker poisoned");
        for conn in live.conns.values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }

    /// Fully close every live connection (shutdown escalation after the
    /// graceful drain window expires).
    pub fn close_all(&self) {
        let live = self.live.lock().expect("conn tracker poisoned");
        for conn in live.conns.values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Wait up to `timeout` for every live connection to finish.
    /// Returns whether the tracker drained completely.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut live = self.live.lock().expect("conn tracker poisoned");
        while !live.conns.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .drained
                .wait_timeout(live, deadline - now)
                .expect("conn tracker poisoned");
            live = next;
        }
        true
    }

    fn release(&self, id: u64) {
        let mut live = self.live.lock().expect("conn tracker poisoned");
        live.conns.remove(&id);
        self.obs
            .gauge("served.conns.active")
            .set(live.conns.len() as u64);
        drop(live);
        self.drained.notify_all();
    }
}

/// RAII admission slot: dropping it releases the budget and wakes the
/// shutdown drain. Handlers hold it for the whole connection.
pub(crate) struct ConnGuard {
    tracker: Arc<ConnTracker>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.tracker.release(self.id);
    }
}

/// Bind a listener with `SO_REUSEADDR`, so a restarted daemon can
/// reclaim its port while the previous instance's connections sit in
/// `TIME_WAIT` — the standard server socket discipline, and what lets
/// a supervisor bounce `cellspot serve` without a bind-retry dance.
/// Off Linux (or if the raw socket path fails) this falls back to the
/// std bind, which behaves as before.
pub(crate) fn bind_reuseaddr(spec: &str) -> std::io::Result<std::net::TcpListener> {
    use std::net::ToSocketAddrs;
    #[cfg(target_os = "linux")]
    {
        if let Ok(mut addrs) = spec.to_socket_addrs() {
            if let Some(addr) = addrs.next() {
                if let Ok(listener) = linux::bind(addr) {
                    return Ok(listener);
                }
            }
        }
    }
    std::net::TcpListener::bind(spec)
}

/// Raw `socket(2)`/`setsockopt(2)`/`bind(2)`/`listen(2)` so the
/// listener can set `SO_REUSEADDR` before binding — std's
/// `TcpListener::bind` offers no hook for that. Same no-new-deps FFI
/// discipline as the CLI's `signal(2)` handler.
#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const BACKLOG: i32 = 1024;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        #[link_name = "bind"]
        fn sys_bind(fd: i32, addr: *const u8, addrlen: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Linux `sockaddr_in` / `sockaddr_in6` wire layout.
    fn sockaddr_bytes(addr: &SocketAddr) -> Vec<u8> {
        match addr {
            SocketAddr::V4(a) => {
                let mut b = vec![0u8; 16];
                b[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
                b[2..4].copy_from_slice(&a.port().to_be_bytes());
                b[4..8].copy_from_slice(&a.ip().octets());
                b
            }
            SocketAddr::V6(a) => {
                let mut b = vec![0u8; 28];
                b[0..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
                b[2..4].copy_from_slice(&a.port().to_be_bytes());
                b[4..8].copy_from_slice(&a.flowinfo().to_be_bytes());
                b[8..24].copy_from_slice(&a.ip().octets());
                b[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
                b
            }
        }
    }

    pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
        let domain = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        unsafe {
            let fd = socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fail = |fd: i32| -> io::Error {
                let e = io::Error::last_os_error();
                close(fd);
                e
            };
            let one: i32 = 1;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) < 0 {
                return Err(fail(fd));
            }
            let sa = sockaddr_bytes(&addr);
            if sys_bind(fd, sa.as_ptr(), sa.len() as u32) < 0 {
                return Err(fail(fd));
            }
            if listen(fd, BACKLOG) < 0 {
                return Err(fail(fd));
            }
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn budget_admits_up_to_max_and_releases_on_drop() {
        let obs = Observer::enabled();
        let tracker = ConnTracker::new(2, obs.clone());
        let (s1, _p1) = pair();
        let (s2, _p2) = pair();
        let (s3, _p3) = pair();
        let g1 = tracker.try_admit(&s1).expect("first admitted");
        let _g2 = tracker.try_admit(&s2).expect("second admitted");
        assert!(tracker.try_admit(&s3).is_none(), "budget exhausted");
        assert_eq!(tracker.active(), 2);
        assert_eq!(obs.snapshot().gauges["served.conns.active"], 2);
        drop(g1);
        assert_eq!(tracker.active(), 1);
        assert!(tracker.try_admit(&s3).is_some(), "slot freed on drop");
    }

    #[test]
    fn zero_budget_means_unlimited() {
        let tracker = ConnTracker::new(0, Observer::disabled());
        let (s, _p) = pair();
        let guards: Vec<_> = (0..8)
            .map(|_| tracker.try_admit(&s).expect("always admitted"))
            .collect();
        assert_eq!(tracker.active(), 8);
        drop(guards);
        assert!(tracker.drain(Duration::from_millis(10)));
    }

    #[test]
    fn drain_times_out_while_guards_live_then_succeeds() {
        let tracker = ConnTracker::new(0, Observer::disabled());
        let (s, _p) = pair();
        let guard = tracker.try_admit(&s).expect("admitted");
        assert!(!tracker.drain(Duration::from_millis(20)));
        drop(guard);
        assert!(tracker.drain(Duration::from_millis(20)));
    }

    #[test]
    fn reuseaddr_bind_yields_a_working_listener() {
        let listener = bind_reuseaddr("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || TcpStream::connect(addr).expect("connect"));
        let (_conn, _) = listener.accept().expect("accept");
        client.join().expect("client thread");
    }
}
