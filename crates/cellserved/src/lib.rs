//! `cellserved` — long-running lookup daemon over the `cellserve`
//! frozen index.
//!
//! The serving pipeline, end to end:
//!
//! 1. **Listeners.** A dependency-light HTTP/1.1 endpoint ([`http`
//!    module](crate) routes: `/lookup`, `/metrics`, `/healthz`,
//!    `/generation`) and a compact length-prefixed TCP protocol
//!    ([`proto`](crate) wire format, [`FramedClient`] speaks it).
//! 2. **Batching.** Every query, from either listener, goes through one
//!    bounded queue that coalesces concurrent requests into shared
//!    [`cellserve::QUERY_CHUNK`]-sized batches (a `max_linger` knob
//!    bounds the wait). Workers run batches on the deterministic
//!    [`cellserve::QueryEngine`], so the daemon inherits its per-lookup
//!    latency histogram and cache accounting unchanged.
//! 3. **Generations.** The index lives behind an atomic `Arc` swap
//!    ([`GenerationStore`]): a reload validates the candidate artifact
//!    completely (seal, structure, version) before the swap, and a bad
//!    candidate leaves the old generation serving — zero downtime
//!    either way. A polling watcher ([`ServeConfig::reload_watch`])
//!    picks up atomically-published artifact files, and a second
//!    watcher ([`ServeConfig::delta_watch`]) hot-patches the live
//!    generation with sealed [`celldelta`] deltas that chain on it
//!    (base content hash matches, epoch advances); wrong-base, stale,
//!    or corrupt deltas are rejected with the old generation untouched.
//! 4. **Hardening.** Both listeners share one admission budget
//!    ([`ServeConfig::max_conns`]) and per-socket deadlines
//!    ([`ServeConfig::io_timeout`]), so scanners and slow-loris peers
//!    are shed (`served.conns.rejected`, HTTP 503) instead of pinning
//!    handler threads. HTTP speaks keep-alive; the framed protocol
//!    pipelines; both cap requests per connection
//!    ([`ServeConfig::max_requests_per_conn`]) and close idle peers.
//!    On the client side, [`FramedClient`] carries a [`ClientPolicy`]
//!    — timeouts, reconnect-with-backoff, idempotent whole-batch
//!    retry — so a daemon restart heals transparently mid-replay.
//! 5. **Shutdown.** [`Daemon::shutdown`] stops accepting, half-closes
//!    and drains live connections (bounded by
//!    [`ServeConfig::drain_timeout`]), drains every queued query, joins
//!    all threads, refreshes the latency-quantile gauges, and returns
//!    the final metrics snapshot.
//!
//! Everything is std-only: threads, `Mutex`/`Condvar` batching, and
//! blocking sockets — no async runtime, in keeping with the workspace's
//! dependency-light rule.

mod batcher;
mod conns;
mod daemon;
mod error;
mod generation;
mod http;
mod proto;
mod reload;
mod tcp;

pub use daemon::{Daemon, ServeConfig};
pub use error::ServedError;
pub use generation::{Generation, GenerationStore};
pub use proto::{ClientPolicy, FramedClient, WireAnswer, MAX_FRAME};

/// For every histogram the observer holds, set `<name>.p50`,
/// `<name>.p99`, and `<name>.p999` gauges from its current
/// [`quantile`](cellobs::HistogramSnapshot::quantile) estimates, so
/// exports carry ready-to-read latency percentiles next to the raw
/// bucket counts. No-op on a disabled observer.
pub fn refresh_latency_gauges(obs: &cellobs::Observer) {
    if !obs.is_enabled() {
        return;
    }
    let snap = obs.snapshot();
    for (name, hist) in &snap.histograms {
        for (q, suffix) in [(0.50, "p50"), (0.99, "p99"), (0.999, "p999")] {
            if let Some(v) = hist.quantile(q) {
                obs.gauge(&format!("{name}.{suffix}")).set(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_gauges_follow_histograms() {
        let obs = cellobs::Observer::enabled();
        let h = obs.histogram("served.test.ns");
        for _ in 0..99 {
            h.record(100); // bucket ≤128
        }
        h.record(4000); // bucket ≤4096
        refresh_latency_gauges(&obs);
        let snap = obs.snapshot();
        assert_eq!(snap.gauges["served.test.ns.p50"], 128);
        assert_eq!(snap.gauges["served.test.ns.p99"], 128);
        assert_eq!(snap.gauges["served.test.ns.p999"], 4096);
    }

    #[test]
    fn disabled_observer_is_untouched() {
        let obs = cellobs::Observer::disabled();
        refresh_latency_gauges(&obs);
        assert!(obs.snapshot().gauges.is_empty());
    }
}
