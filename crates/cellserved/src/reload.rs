//! File-path watchers for zero-downtime reload and delta hot-patching.
//!
//! A dedicated thread polls the watched path's `(mtime, size)`
//! fingerprint. When it changes — the publisher is expected to use
//! `cellstream::write_atomic_bytes`, so a change is a whole new file,
//! never a partial write — the candidate is offered to the
//! [`GenerationStore`](crate::GenerationStore), which validates it fully
//! (full-artifact swap for the reload watcher, base-hash-chained delta
//! apply for the delta watcher) before touching the live generation.
//! The fingerprint is remembered after *every* attempt, successful or
//! rejected, so a corrupt candidate is tried once instead of on every
//! poll; the old generation keeps serving either way.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Cheap change detector for the watched file.
pub(crate) type Fingerprint = (SystemTime, u64);

pub(crate) fn fingerprint(path: &Path) -> Option<Fingerprint> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

pub(crate) fn spawn_watcher<F>(
    name: &str,
    path: PathBuf,
    poll: Duration,
    initial: Option<Fingerprint>,
    on_change: F,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<JoinHandle<()>>
where
    F: Fn(&Path) + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            let mut last = initial;
            while !shutdown.load(Ordering::SeqCst) {
                sleep_with_cancel(poll, &shutdown);
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let now = fingerprint(&path);
                if now.is_some() && now != last {
                    last = now;
                    // Rejections already count via the store; a vanished
                    // or unreadable file likewise leaves the old
                    // generation serving.
                    on_change(&path);
                }
            }
        })
}

/// Sleep `total`, waking early (within ~20 ms) if `shutdown` is set.
fn sleep_with_cancel(total: Duration, shutdown: &AtomicBool) {
    let deadline = Instant::now() + total;
    while !shutdown.load(Ordering::SeqCst) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        std::thread::sleep(left.min(Duration::from_millis(20)));
    }
}
