//! File-path watchers for zero-downtime reload and delta hot-patching.
//!
//! A dedicated thread polls the watched path in two stages. Stage one
//! is a bare `stat`: while the `(mtime, size)` pair is unchanged the
//! poll costs one syscall and nothing more. Only when the stat moves
//! does stage two read a content fingerprint —
//! [`cellserve::Artifact::quick_fingerprint`], a 64-byte header read
//! for v2 artifacts, a full-content hash otherwise. A republished but
//! byte-identical file (same fingerprint, new mtime) is *not* offered
//! for reload; the `<name>.polls.skipped` counter records each such
//! short-circuit so operators can see republish churn that never
//! touches the serving generation.
//!
//! When the content fingerprint does change — the publisher is expected
//! to use `cellstream::write_atomic_bytes`, so a change is a whole new
//! file, never a partial write — the candidate is offered to the
//! [`GenerationStore`](crate::GenerationStore), which validates it
//! fully (full-artifact swap for the reload watcher, base-hash-chained
//! delta apply for the delta watcher) before touching the live
//! generation. The fingerprint is remembered after *every* attempt,
//! successful or rejected, so a corrupt candidate is tried once instead
//! of on every poll; the old generation keeps serving either way.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use cellobs::Observer;
use cellserve::Artifact;

/// Two-stage change detector for the watched file: a cheap stat pair
/// gating a content fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Fingerprint {
    stat: (SystemTime, u64),
    content: u64,
}

pub(crate) fn stat_of(path: &Path) -> Option<(SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

/// The full two-stage fingerprint: stat plus content hash. `None` when
/// the file is missing or unreadable.
pub(crate) fn fingerprint(path: &Path) -> Option<Fingerprint> {
    let stat = stat_of(path)?;
    let content = Artifact::quick_fingerprint(path).ok()?;
    Some(Fingerprint { stat, content })
}

/// Spawn the polling thread. `name` is the thread name; `metric` is
/// the observer prefix (`served.reload` / `served.delta`) under which
/// the `.polls.skipped` counter is kept.
pub(crate) fn spawn_watcher<F>(
    name: &str,
    metric: &str,
    path: PathBuf,
    poll: Duration,
    initial: Option<Fingerprint>,
    obs: Observer,
    on_change: F,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<JoinHandle<()>>
where
    F: Fn(&Path) + Send + 'static,
{
    let skip_counter = format!("{metric}.polls.skipped");
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            let mut last = initial;
            while !shutdown.load(Ordering::SeqCst) {
                sleep_with_cancel(poll, &shutdown);
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Stage one: while the stat pair is unchanged, the poll
                // ends here without touching file contents.
                let Some(stat) = stat_of(&path) else { continue };
                if last.map(|f| f.stat) == Some(stat) {
                    continue;
                }
                // Stage two: the stat moved; read the content
                // fingerprint (header-only for v2) to decide whether
                // the bytes actually changed.
                let Ok(content) = Artifact::quick_fingerprint(&path) else {
                    // Unreadable mid-publish; retry on the next poll.
                    continue;
                };
                let now = Fingerprint { stat, content };
                if last.map(|f| f.content) == Some(content) {
                    // Republished byte-identical file: remember the new
                    // stat, skip the reload entirely.
                    obs.counter(&skip_counter).inc();
                    last = Some(now);
                    continue;
                }
                last = Some(now);
                // Rejections already count via the store; a vanished
                // or unreadable file likewise leaves the old
                // generation serving.
                on_change(&path);
            }
        })
}

/// Sleep `total`, waking early (within ~20 ms) if `shutdown` is set.
fn sleep_with_cancel(total: Duration, shutdown: &AtomicBool) {
    let deadline = Instant::now() + total;
    while !shutdown.load(Ordering::SeqCst) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        std::thread::sleep(left.min(Duration::from_millis(20)));
    }
}
