//! Request coalescing: a bounded queue that turns many concurrent small
//! requests into shared [`cellserve::QUERY_CHUNK`]-sized batches.
//!
//! Connection handlers push one [`Pending`] per query and block while
//! the queue is at capacity (backpressure instead of unbounded memory).
//! Worker threads pull batches: a worker wakes on the first pending
//! query, then lingers up to `max_linger` for more to arrive, so a burst
//! of single-query requests shares one engine chunk — and one pass over
//! the hot-block cache — instead of paying per-request setup. A full
//! chunk ends the linger early.
//!
//! Shutdown is graceful by construction: after [`BatchQueue::shutdown`]
//! new pushes fail with [`ServedError::ShuttingDown`], but
//! [`BatchQueue::next_batch`] keeps returning batches until the queue is
//! drained, so every accepted query is answered before workers exit.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use cellserve::{IpKey, LookupMatch};

use crate::error::ServedError;

/// One query waiting for a shared batch.
pub(crate) struct Pending {
    /// The address to look up.
    pub ip: IpKey,
    /// The caller's position in its own request, so multi-query
    /// requests reassemble answers in order regardless of batching.
    pub slot: usize,
    /// Where the worker sends `(slot, answer)`.
    pub tx: Sender<(usize, Option<LookupMatch>)>,
    /// When the query entered the queue, for wait-latency accounting.
    pub enqueued: Instant,
}

struct QueueState {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

/// Bounded multi-producer queue with linger-based batch formation.
pub(crate) struct BatchQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    max_linger: Duration,
}

impl BatchQueue {
    pub fn new(capacity: usize, max_linger: Duration) -> Self {
        BatchQueue {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            max_linger,
        }
    }

    /// Enqueue one query, blocking while the queue is at capacity.
    pub fn push(&self, p: Pending) -> Result<(), ServedError> {
        self.push_wait(p, None)
    }

    /// Enqueue one query, waiting at most `wait` for capacity — the
    /// admission-control variant. A queue still full past the deadline
    /// means the daemon cannot keep up; the caller sheds the request
    /// with [`ServedError::Overloaded`] (HTTP 503) instead of letting
    /// slow consumers pile producers up behind the queue forever.
    /// `None` waits indefinitely (the pre-hardening behavior).
    pub fn push_wait(&self, p: Pending, wait: Option<Duration>) -> Result<(), ServedError> {
        let deadline = wait.map(|w| Instant::now() + w);
        let mut state = self.state.lock().expect("batch queue poisoned");
        while state.pending.len() >= self.capacity && !state.shutdown {
            state = match deadline {
                None => self.not_full.wait(state).expect("batch queue poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ServedError::Overloaded);
                    }
                    self.not_full
                        .wait_timeout(state, deadline - now)
                        .expect("batch queue poisoned")
                        .0
                }
            };
        }
        if state.shutdown {
            return Err(ServedError::ShuttingDown);
        }
        state.pending.push_back(p);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until at least one query is pending, linger up to
    /// `max_linger` (or until `max` queries accumulate), then drain up
    /// to `max` queries. Returns `None` only when the queue is shut down
    /// *and* empty — the drain guarantee.
    pub fn next_batch(&self, max: usize) -> Option<Vec<Pending>> {
        let mut state = self.state.lock().expect("batch queue poisoned");
        while state.pending.is_empty() {
            if state.shutdown {
                return None;
            }
            state = self.not_empty.wait(state).expect("batch queue poisoned");
        }
        // Linger: give concurrent requests a bounded window to join
        // this batch. Skipped entirely once shutdown begins.
        let deadline = Instant::now() + self.max_linger;
        while state.pending.len() < max && !state.shutdown {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("batch queue poisoned");
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        let take = state.pending.len().min(max);
        let batch: Vec<Pending> = state.pending.drain(..take).collect();
        drop(state);
        self.not_full.notify_all();
        Some(batch)
    }

    /// Reject new pushes and wake every waiter so workers can drain.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("batch queue poisoned");
        state.shutdown = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn pending(ip: u32, slot: usize, tx: &Sender<(usize, Option<LookupMatch>)>) -> Pending {
        Pending {
            ip: IpKey::V4(ip),
            slot,
            tx: tx.clone(),
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn batches_coalesce_pending_queries() {
        let q = BatchQueue::new(16, Duration::from_millis(1));
        let (tx, _rx) = mpsc::channel();
        for i in 0..3 {
            q.push(pending(i, i as usize, &tx)).expect("queue open");
        }
        let batch = q.next_batch(1024).expect("queue not shut down");
        assert_eq!(batch.len(), 3, "all pending queries share one batch");
        assert_eq!(batch[2].slot, 2);
    }

    #[test]
    fn max_caps_a_batch_and_the_rest_waits() {
        let q = BatchQueue::new(16, Duration::from_millis(1));
        let (tx, _rx) = mpsc::channel();
        for i in 0..5 {
            q.push(pending(i, i as usize, &tx)).expect("queue open");
        }
        assert_eq!(q.next_batch(4).expect("first batch").len(), 4);
        assert_eq!(q.next_batch(4).expect("second batch").len(), 1);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = BatchQueue::new(16, Duration::from_millis(50));
        let (tx, _rx) = mpsc::channel();
        q.push(pending(1, 0, &tx)).expect("queue open");
        q.push(pending(2, 1, &tx)).expect("queue open");
        q.shutdown();
        assert!(matches!(
            q.push(pending(3, 2, &tx)),
            Err(ServedError::ShuttingDown)
        ));
        // Accepted queries still come out (no linger after shutdown)…
        assert_eq!(q.next_batch(1024).expect("drain batch").len(), 2);
        // …and only then does the queue report exhaustion.
        assert!(q.next_batch(1024).is_none());
    }

    #[test]
    fn bounded_push_sheds_when_the_queue_stays_full() {
        let q = BatchQueue::new(1, Duration::from_millis(1));
        let (tx, _rx) = mpsc::channel();
        q.push(pending(1, 0, &tx)).expect("queue open");
        assert!(matches!(
            q.push_wait(pending(2, 1, &tx), Some(Duration::from_millis(10))),
            Err(ServedError::Overloaded)
        ));
        // Freeing a slot lets the next bounded push through.
        assert_eq!(q.next_batch(1).expect("drain").len(), 1);
        q.push_wait(pending(3, 2, &tx), Some(Duration::from_millis(10)))
            .expect("space freed");
    }

    #[test]
    fn full_queue_blocks_until_space_frees() {
        let q = Arc::new(BatchQueue::new(2, Duration::from_millis(1)));
        let (tx, _rx) = mpsc::channel();
        q.push(pending(1, 0, &tx)).expect("queue open");
        q.push(pending(2, 1, &tx)).expect("queue open");

        let q2 = Arc::clone(&q);
        let tx2 = tx.clone();
        let pusher = std::thread::spawn(move || q2.push(pending(3, 2, &tx2)));
        // The blocked producer gets through once a batch drains.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.next_batch(2).expect("drain").len(), 2);
        pusher
            .join()
            .expect("pusher thread")
            .expect("push succeeds after space frees");
        assert_eq!(q.next_batch(2).expect("third").len(), 1);
    }
}
