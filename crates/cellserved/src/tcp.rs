//! Framed TCP connection handler: decode query frames, answer through
//! the shared batcher, encode answer frames. See [`crate::proto`] for
//! the wire format.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Instant;

use crate::daemon::{lookup_via_batcher, Ctx};
use crate::error::ServedError;
use crate::proto::{decode_queries, encode_answers, read_frame, write_frame};

pub(crate) fn handle(stream: TcpStream, ctx: &Ctx) {
    ctx.obs.counter("served.tcp.connections").inc();
    if serve_frames(stream, ctx).is_err() {
        ctx.obs.counter("served.tcp.errors").inc();
    }
}

fn serve_frames(stream: TcpStream, ctx: &Ctx) -> Result<(), ServedError> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let Some(payload) = read_frame(&mut reader)? else {
            // Clean close at a frame boundary: the client is done.
            return Ok(());
        };
        let t0 = Instant::now();
        let ips = decode_queries(&payload)?;
        ctx.obs.counter("served.tcp.requests").inc();
        ctx.obs.counter("served.tcp.queries").add(ips.len() as u64);
        let answers = lookup_via_batcher(ctx, ips)?;
        write_frame(&mut writer, &encode_answers(&answers))?;
        ctx.obs
            .histogram("served.tcp.request.ns")
            .record(t0.elapsed().as_nanos() as u64);
    }
}
