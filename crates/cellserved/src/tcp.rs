//! Framed TCP connection handler: decode query frames, answer through
//! the shared batcher, encode answer frames. See [`crate::proto`] for
//! the wire format.
//!
//! The framed protocol always pipelined many requests per connection;
//! this handler gives it the same hardening semantics as the HTTP
//! keep-alive loop: the per-socket
//! [`io_timeout`](crate::ServeConfig::io_timeout) bounds both the idle
//! gap between frames (a quiet close, `served.tcp.idle_closed`) and a
//! stall mid-frame (shed, `served.conns.rejected`), and
//! [`max_requests_per_conn`](crate::ServeConfig::max_requests_per_conn)
//! closes the connection after that many frames — the resilient
//! [`FramedClient`](crate::FramedClient) reconnects transparently.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::time::Instant;

use crate::daemon::{lookup_via_batcher, Ctx};
use crate::error::ServedError;
use crate::proto::{decode_queries, encode_answers, read_frame, write_frame};

pub(crate) fn handle(stream: TcpStream, ctx: &Ctx) {
    ctx.obs.counter("served.tcp.connections").inc();
    if serve_frames(stream, ctx).is_err() {
        ctx.obs.counter("served.tcp.errors").inc();
    }
}

fn serve_frames(stream: TcpStream, ctx: &Ctx) -> Result<(), ServedError> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut served = 0usize;
    loop {
        // Wait for the next frame without consuming anything, so a
        // timeout here is unambiguous: no bytes of a frame have
        // arrived. That separates "idle between frames" (a normal
        // close) from "stalled inside a frame" (a shed peer, below).
        match reader.fill_buf() {
            // Clean close at a frame boundary: the client is done (or
            // shutdown half-closed the socket).
            Ok([]) => return Ok(()),
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if served > 0 {
                    ctx.obs.counter("served.tcp.idle_closed").inc();
                } else {
                    // Connected and never sent a frame: a slowloris
                    // peer, shed like an admission rejection.
                    ctx.obs.counter("served.tcp.timeouts").inc();
                    ctx.obs.counter("served.conns.rejected").inc();
                }
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()),
            Err(e) if is_timeout(&e) => {
                ctx.obs.counter("served.tcp.timeouts").inc();
                ctx.obs.counter("served.conns.rejected").inc();
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        };
        if served > 0 {
            ctx.obs.counter("served.tcp.keepalive.reuses").inc();
        }
        let t0 = Instant::now();
        let ips = decode_queries(&payload)?;
        ctx.obs.counter("served.tcp.requests").inc();
        ctx.obs.counter("served.tcp.queries").add(ips.len() as u64);
        let answers = lookup_via_batcher(ctx, ips)?;
        write_frame(&mut writer, &encode_answers(&answers))?;
        ctx.obs
            .histogram("served.tcp.request.ns")
            .record(t0.elapsed().as_nanos() as u64);
        served += 1;
        if ctx.max_requests_per_conn > 0 && served >= ctx.max_requests_per_conn {
            // Per-connection cap, symmetric with HTTP keep-alive: the
            // close lands at a frame boundary, which a resilient client
            // treats as "reconnect and continue".
            return Ok(());
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}
