//! Dependency-light HTTP/1.1 endpoint with keep-alive.
//!
//! The handler loops the request parser over one connection: HTTP/1.1
//! peers get keep-alive by default (`Connection: close` opts out),
//! HTTP/1.0 peers get one-request-per-connection unless they send
//! `Connection: keep-alive`. Reuse is bounded three ways so no client
//! can pin a handler thread forever: the per-socket
//! [`io_timeout`](crate::ServeConfig::io_timeout) doubles as the idle
//! cap between requests, [`max_requests_per_conn`]
//! (crate::ServeConfig::max_requests_per_conn) caps how many requests
//! one connection may carry, and every read is bounded ([`MAX_LINE`]
//! per line, [`MAX_HEADER_BYTES`] per header block, [`MAX_BODY`] per
//! body — breaches answer 431/400/413 and close). Endpoints:
//!
//! - `GET /lookup?ip=ADDR` — one address, JSON answer.
//! - `POST /lookup` — newline-separated addresses in the body, CSV
//!   answer in the CLI's `ip,prefix,asn,class` format (`-` for misses).
//! - `GET /metrics` — Prometheus text, with `*.p50/.p99/.p999` latency
//!   gauges refreshed from the live histograms.
//! - `GET /healthz`, `GET /generation` — JSON daemon status, including
//!   the serving generation's artifact content hash and delta epoch
//!   (for correlating with `cellspot index build` / `delta build`
//!   output).
//!
//! Every response is counted exactly once, so the per-endpoint counters
//! (`served.http.{lookup,lookup_batch,metrics,healthz,generation,
//! not_found,bad_request,overloaded,timeouts}`) sum to
//! `served.http.requests` (absent socket errors that abort a response
//! mid-write).
//!
//! Query strings are matched literally (no percent-decoding): IPv4
//! dotted quads and IPv6 colon-hex are URL-safe as-is.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use cellserve::IpKey;

use crate::daemon::{lookup_via_batcher, Ctx};
use crate::error::ServedError;

/// Largest accepted `POST /lookup` body.
const MAX_BODY: usize = 1 << 26;
/// Largest accepted request or header line (bytes, newline included).
const MAX_LINE: usize = 8 * 1024;
/// Largest accepted header block (sum of header-line bytes).
const MAX_HEADER_BYTES: usize = 32 * 1024;

pub(crate) fn handle(stream: TcpStream, ctx: &Ctx) {
    ctx.obs.counter("served.http.connections").inc();
    if handle_conn(stream, ctx).is_err() {
        ctx.obs.counter("served.http.errors").inc();
    }
}

/// The keep-alive loop: read one request, serve it, repeat until the
/// peer closes, opts out, stalls, or hits the per-connection cap.
fn handle_conn(stream: TcpStream, ctx: &Ctx) -> Result<(), ServedError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut w = BufWriter::new(stream);
    let mut served = 0usize;
    loop {
        let mut line = Vec::new();
        match read_line_bounded(&mut reader, &mut line, MAX_LINE) {
            // Clean close at a request boundary (peer hung up, or
            // shutdown half-closed the socket).
            Ok(LineEnd::Eof) if line.is_empty() => return Ok(()),
            // EOF mid-line: the peer died mid-request; nothing to
            // answer, nothing counted.
            Ok(LineEnd::Eof) => return Ok(()),
            Ok(LineEnd::TooLong) => {
                reply(
                    ctx,
                    &mut w,
                    "served.http.bad_request",
                    431,
                    "Request Header Fields Too Large",
                    TEXT,
                    "request line too long\n",
                    true,
                )?;
                return Ok(());
            }
            Ok(LineEnd::Complete) => {}
            Err(e) if is_timeout(&e) => {
                if served > 0 && line.is_empty() {
                    // An idle keep-alive connection past the timeout:
                    // a normal close, not a misbehaving peer.
                    ctx.obs.counter("served.http.idle_closed").inc();
                    return Ok(());
                }
                shed_stalled(ctx, &mut w);
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        }
        if served > 0 {
            ctx.obs.counter("served.http.keepalive.reuses").inc();
        }
        let force_close =
            ctx.max_requests_per_conn > 0 && served + 1 >= ctx.max_requests_per_conn;
        let close = serve_one(&mut reader, &mut w, ctx, &line, force_close)?;
        served += 1;
        if close {
            return Ok(());
        }
    }
}

/// Serve one parsed-or-parseable request; returns whether the
/// connection must close afterwards. Every exit path writes exactly one
/// response through [`reply`] (so the counters stay summable) except
/// aborts where the peer is already gone.
fn serve_one(
    reader: &mut BufReader<TcpStream>,
    w: &mut BufWriter<TcpStream>,
    ctx: &Ctx,
    request_line: &[u8],
    force_close: bool,
) -> Result<bool, ServedError> {
    let t0 = Instant::now();
    let line = String::from_utf8_lossy(request_line);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    // HTTP/1.0 defaults to close; everything else to keep-alive.
    let default_close = version.eq_ignore_ascii_case("HTTP/1.0");

    let mut content_length = 0usize;
    let mut bad_content_length = false;
    let mut explicit_close: Option<bool> = None;
    let mut header_bytes = 0usize;
    loop {
        let mut header = Vec::new();
        match read_line_bounded(reader, &mut header, MAX_LINE) {
            Ok(LineEnd::Complete) => {}
            Ok(LineEnd::Eof) => {
                // Headers truncated by a dead peer; best-effort answer.
                reply(
                    ctx,
                    w,
                    "served.http.bad_request",
                    400,
                    "Bad Request",
                    TEXT,
                    "truncated request\n",
                    true,
                )?;
                return Ok(true);
            }
            Ok(LineEnd::TooLong) => {
                reply(
                    ctx,
                    w,
                    "served.http.bad_request",
                    431,
                    "Request Header Fields Too Large",
                    TEXT,
                    "header line too long\n",
                    true,
                )?;
                return Ok(true);
            }
            Err(e) if is_timeout(&e) => {
                shed_stalled(ctx, w);
                return Ok(true);
            }
            Err(e) => return Err(e.into()),
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            reply(
                ctx,
                w,
                "served.http.bad_request",
                431,
                "Request Header Fields Too Large",
                TEXT,
                "header block too large\n",
                true,
            )?;
            return Ok(true);
        }
        let header = String::from_utf8_lossy(&header);
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        let lower = header.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            match v.trim().parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => bad_content_length = true,
            }
        } else if let Some(v) = lower.strip_prefix("connection:") {
            match v.trim() {
                "close" => explicit_close = Some(true),
                "keep-alive" => explicit_close = Some(false),
                _ => {}
            }
        }
    }

    // A Content-Length the daemon cannot parse means it cannot frame
    // the body — reject loudly instead of silently treating it as 0
    // and misreading the body bytes as the next request.
    if bad_content_length {
        reply(
            ctx,
            w,
            "served.http.bad_request",
            400,
            "Bad Request",
            TEXT,
            "malformed Content-Length header\n",
            true,
        )?;
        return Ok(true);
    }

    let close = force_close || explicit_close.unwrap_or(default_close);
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };

    match (method.as_str(), path) {
        ("POST", "/lookup") => {
            if content_length > MAX_BODY {
                reply(
                    ctx,
                    w,
                    "served.http.bad_request",
                    413,
                    "Payload Too Large",
                    TEXT,
                    "body too large\n",
                    true,
                )?;
                return Ok(true);
            }
            let body = match read_body(reader, content_length) {
                Ok(body) => body,
                Err(e) if is_timeout(&e) => {
                    shed_stalled(ctx, w);
                    return Ok(true);
                }
                // Peer died mid-body: nothing to answer.
                Err(_) => return Ok(true),
            };
            let text = String::from_utf8_lossy(&body);
            let mut ips = Vec::new();
            let mut bad = None;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match IpKey::parse(line) {
                    Ok(ip) => ips.push(ip),
                    Err(e) => {
                        bad = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = bad {
                reply(
                    ctx,
                    w,
                    "served.http.bad_request",
                    400,
                    "Bad Request",
                    TEXT,
                    &format!("{e}\n"),
                    close,
                )?;
                record_latency(ctx, t0);
                return Ok(close);
            }
            let answers = match lookup_via_batcher(ctx, ips.clone()) {
                Ok(a) => a,
                Err(e) => return shed_unavailable(ctx, w, e),
            };
            let mut csv = String::from("ip,prefix,asn,class\n");
            for (ip, res) in ips.iter().zip(&answers) {
                match res {
                    Some(m) => {
                        csv.push_str(&format!(
                            "{ip},{},{},{}\n",
                            m.prefix,
                            m.label.asn.value(),
                            m.label.class
                        ));
                    }
                    None => csv.push_str(&format!("{ip},-,-,-\n")),
                }
            }
            reply(ctx, w, "served.http.lookup_batch", 200, "OK", CSV, &csv, close)?;
        }
        _ => {
            // Every other request carries no meaningful body; drain a
            // (bounded) stray one so its bytes are not misparsed as the
            // next request on this connection.
            if content_length > 0 {
                if content_length > MAX_BODY {
                    reply(
                        ctx,
                        w,
                        "served.http.bad_request",
                        413,
                        "Payload Too Large",
                        TEXT,
                        "body too large\n",
                        true,
                    )?;
                    return Ok(true);
                }
                match drain_body(reader, content_length) {
                    Ok(()) => {}
                    Err(e) if is_timeout(&e) => {
                        shed_stalled(ctx, w);
                        return Ok(true);
                    }
                    Err(_) => return Ok(true),
                }
            }
            match (method.as_str(), path) {
                ("GET", "/lookup") => {
                    let raw =
                        query.and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("ip=")));
                    let Some(raw) = raw else {
                        reply(
                            ctx,
                            w,
                            "served.http.bad_request",
                            400,
                            "Bad Request",
                            TEXT,
                            "missing ip= query parameter\n",
                            close,
                        )?;
                        record_latency(ctx, t0);
                        return Ok(close);
                    };
                    match IpKey::parse(raw) {
                        Err(e) => {
                            reply(
                                ctx,
                                w,
                                "served.http.bad_request",
                                400,
                                "Bad Request",
                                TEXT,
                                &format!("{e}\n"),
                                close,
                            )?;
                        }
                        Ok(ip) => {
                            let answers = match lookup_via_batcher(ctx, vec![ip]) {
                                Ok(a) => a,
                                Err(e) => return shed_unavailable(ctx, w, e),
                            };
                            let generation = ctx.store.generation();
                            let body = match &answers[0] {
                                Some(m) => format!(
                                    "{{\"ip\":\"{ip}\",\"matched\":true,\"prefix\":\"{}\",\"asn\":{},\"class\":\"{}\",\"generation\":{generation}}}\n",
                                    m.prefix,
                                    m.label.asn.value(),
                                    m.label.class,
                                ),
                                None => format!(
                                    "{{\"ip\":\"{ip}\",\"matched\":false,\"generation\":{generation}}}\n"
                                ),
                            };
                            reply(ctx, w, "served.http.lookup", 200, "OK", JSON, &body, close)?;
                        }
                    }
                }
                ("GET", "/metrics") => {
                    crate::refresh_latency_gauges(&ctx.obs);
                    let body =
                        cellobs::ExportFormat::Prometheus.render(&ctx.obs.snapshot());
                    reply(
                        ctx,
                        w,
                        "served.http.metrics",
                        200,
                        "OK",
                        "text/plain; version=0.0.4",
                        &body,
                        close,
                    )?;
                }
                ("GET", "/healthz") => {
                    let current = ctx.store.current();
                    let rejected = ctx.obs.counter("served.conns.rejected").get();
                    let body = format!(
                        "{{\"status\":\"ok\",\"generation\":{},\"prefixes\":{},\"labels\":{},\"artifact_hash\":\"{}\",\"epoch\":{},\"conns\":{{\"active\":{},\"max\":{},\"rejected\":{}}}}}\n",
                        current.number,
                        current.index.len(),
                        current.index.label_count(),
                        cellserve::hash_hex(current.artifact_hash),
                        current.epoch,
                        ctx.conns.active(),
                        ctx.conns.max(),
                        rejected,
                    );
                    reply(ctx, w, "served.http.healthz", 200, "OK", JSON, &body, close)?;
                }
                ("GET", "/generation") => {
                    let current = ctx.store.current();
                    let body = format!(
                        "{{\"generation\":{},\"artifact_hash\":\"{}\",\"epoch\":{}}}\n",
                        current.number,
                        cellserve::hash_hex(current.artifact_hash),
                        current.epoch,
                    );
                    reply(
                        ctx,
                        w,
                        "served.http.generation",
                        200,
                        "OK",
                        JSON,
                        &body,
                        close,
                    )?;
                }
                _ => {
                    reply(
                        ctx,
                        w,
                        "served.http.not_found",
                        404,
                        "Not Found",
                        TEXT,
                        "unknown endpoint\n",
                        close,
                    )?;
                }
            }
        }
    }
    record_latency(ctx, t0);
    Ok(close)
}

fn record_latency(ctx: &Ctx, t0: Instant) {
    ctx.obs
        .histogram("served.http.request.ns")
        .record(t0.elapsed().as_nanos() as u64);
}

/// A peer stalled a read mid-request past the socket timeout: shed it
/// (best-effort 503, always `Connection: close`) and count the
/// rejection where the admission-control rejections land too.
fn shed_stalled(ctx: &Ctx, w: &mut BufWriter<TcpStream>) {
    ctx.obs.counter("served.conns.rejected").inc();
    let _ = reply(
        ctx,
        w,
        "served.http.timeouts",
        503,
        "Service Unavailable",
        TEXT,
        "request timed out; connection shed\n",
        true,
    );
}

/// The batcher refused this request (queue full past the admission
/// wait, or the daemon is draining): answer 503 and close.
fn shed_unavailable(
    ctx: &Ctx,
    w: &mut BufWriter<TcpStream>,
    e: ServedError,
) -> Result<bool, ServedError> {
    match e {
        ServedError::Overloaded | ServedError::ShuttingDown => {
            reply(
                ctx,
                w,
                "served.http.overloaded",
                503,
                "Service Unavailable",
                TEXT,
                "daemon is overloaded; retry later\n",
                true,
            )?;
            Ok(true)
        }
        other => Err(other),
    }
}

enum LineEnd {
    /// A full line (newline included, unless EOF-terminated) is in the
    /// buffer.
    Complete,
    /// The stream ended; the buffer holds whatever partial line arrived.
    Eof,
    /// The line exceeded the cap; the oversized prefix was discarded.
    TooLong,
}

/// `read_line` with a byte cap: a newline-free stream can grow the
/// buffer to at most `max` bytes instead of without limit. Partial
/// bytes stay in `line` on error, so callers can distinguish an idle
/// timeout (nothing read) from a mid-line stall.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineEnd> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(if line.is_empty() {
                LineEnd::Eof
            } else {
                LineEnd::Complete
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let take = i + 1;
                if line.len() + take > max {
                    reader.consume(take);
                    return Ok(LineEnd::TooLong);
                }
                line.extend_from_slice(&available[..take]);
                reader.consume(take);
                return Ok(LineEnd::Complete);
            }
            None => {
                let n = available.len();
                if line.len() + n > max {
                    reader.consume(n);
                    return Ok(LineEnd::TooLong);
                }
                line.extend_from_slice(&available[..n]);
                reader.consume(n);
            }
        }
    }
}

/// Read exactly `len` body bytes in bounded chunks — no pre-allocation
/// of the full declared length, so a huge `Content-Length` with no
/// bytes behind it cannot balloon memory.
fn read_body(reader: &mut BufReader<TcpStream>, len: usize) -> std::io::Result<Vec<u8>> {
    let mut body = Vec::with_capacity(len.min(64 * 1024));
    let mut chunk = [0u8; 16 * 1024];
    let mut remaining = len;
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        let n = reader.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "body truncated",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }
    Ok(body)
}

/// Discard exactly `len` body bytes (an endpoint that takes no body
/// must still consume one so keep-alive framing stays aligned).
fn drain_body(reader: &mut BufReader<TcpStream>, len: usize) -> std::io::Result<()> {
    let mut chunk = [0u8; 16 * 1024];
    let mut remaining = len;
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        let n = reader.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "body truncated",
            ));
        }
        remaining -= n;
    }
    Ok(())
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

const TEXT: &str = "text/plain";
const JSON: &str = "application/json";
const CSV: &str = "text/csv";

/// Write one response and count it: `served.http.requests` plus exactly
/// one endpoint/error counter, so the counters stay summable.
#[allow(clippy::too_many_arguments)]
fn reply(
    ctx: &Ctx,
    w: &mut impl Write,
    counter: &str,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    ctx.obs.counter("served.http.requests").inc();
    ctx.obs.counter(counter).inc();
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}
