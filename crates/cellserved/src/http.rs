//! Dependency-light HTTP/1.1 endpoint.
//!
//! One request per connection (`Connection: close`), which keeps the
//! parser to a request line, a header scan for `Content-Length`, and an
//! optional body — no keep-alive state machine. Endpoints:
//!
//! - `GET /lookup?ip=ADDR` — one address, JSON answer.
//! - `POST /lookup` — newline-separated addresses in the body, CSV
//!   answer in the CLI's `ip,prefix,asn,class` format (`-` for misses).
//! - `GET /metrics` — Prometheus text, with `*.p50/.p99/.p999` latency
//!   gauges refreshed from the live histograms.
//! - `GET /healthz`, `GET /generation` — JSON daemon status, including
//!   the serving generation's artifact content hash and delta epoch
//!   (for correlating with `cellspot index build` / `delta build`
//!   output).
//!
//! Query strings are matched literally (no percent-decoding): IPv4
//! dotted quads and IPv6 colon-hex are URL-safe as-is.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use cellserve::IpKey;

use crate::daemon::{lookup_via_batcher, Ctx};
use crate::error::ServedError;

/// Largest accepted `POST /lookup` body.
const MAX_BODY: usize = 1 << 26;

pub(crate) fn handle(stream: TcpStream, ctx: &Ctx) {
    ctx.obs.counter("served.http.requests").inc();
    if handle_inner(stream, ctx).is_err() {
        ctx.obs.counter("served.http.errors").inc();
    }
}

fn handle_inner(stream: TcpStream, ctx: &Ctx) -> Result<(), ServedError> {
    let t0 = Instant::now();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut w = BufWriter::new(stream);

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        let lower = header.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };

    match (method.as_str(), path) {
        ("GET", "/lookup") => {
            let raw = query.and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("ip=")));
            let Some(raw) = raw else {
                ctx.obs.counter("served.http.bad_request").inc();
                respond(
                    &mut w,
                    400,
                    "Bad Request",
                    TEXT,
                    "missing ip= query parameter\n",
                )?;
                return Ok(());
            };
            match IpKey::parse(raw) {
                Err(e) => {
                    ctx.obs.counter("served.http.bad_request").inc();
                    respond(&mut w, 400, "Bad Request", TEXT, &format!("{e}\n"))?;
                }
                Ok(ip) => {
                    ctx.obs.counter("served.http.lookup").inc();
                    let answers = lookup_via_batcher(ctx, vec![ip])?;
                    let generation = ctx.store.generation();
                    let body = match &answers[0] {
                        Some(m) => format!(
                            "{{\"ip\":\"{ip}\",\"matched\":true,\"prefix\":\"{}\",\"asn\":{},\"class\":\"{}\",\"generation\":{generation}}}\n",
                            m.prefix,
                            m.label.asn.value(),
                            m.label.class,
                        ),
                        None => format!(
                            "{{\"ip\":\"{ip}\",\"matched\":false,\"generation\":{generation}}}\n"
                        ),
                    };
                    respond(&mut w, 200, "OK", JSON, &body)?;
                }
            }
        }
        ("POST", "/lookup") => {
            if content_length > MAX_BODY {
                ctx.obs.counter("served.http.bad_request").inc();
                respond(&mut w, 413, "Payload Too Large", TEXT, "body too large\n")?;
                return Ok(());
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let text = String::from_utf8_lossy(&body);
            let mut ips = Vec::new();
            let mut bad = None;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match IpKey::parse(line) {
                    Ok(ip) => ips.push(ip),
                    Err(e) => {
                        bad = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = bad {
                ctx.obs.counter("served.http.bad_request").inc();
                respond(&mut w, 400, "Bad Request", TEXT, &format!("{e}\n"))?;
                return Ok(());
            }
            ctx.obs.counter("served.http.lookup_batch").inc();
            let answers = lookup_via_batcher(ctx, ips.clone())?;
            let mut csv = String::from("ip,prefix,asn,class\n");
            for (ip, res) in ips.iter().zip(&answers) {
                match res {
                    Some(m) => {
                        csv.push_str(&format!(
                            "{ip},{},{},{}\n",
                            m.prefix,
                            m.label.asn.value(),
                            m.label.class
                        ));
                    }
                    None => csv.push_str(&format!("{ip},-,-,-\n")),
                }
            }
            respond(&mut w, 200, "OK", CSV, &csv)?;
        }
        ("GET", "/metrics") => {
            ctx.obs.counter("served.http.metrics").inc();
            crate::refresh_latency_gauges(&ctx.obs);
            let body = cellobs::ExportFormat::Prometheus.render(&ctx.obs.snapshot());
            respond(&mut w, 200, "OK", "text/plain; version=0.0.4", &body)?;
        }
        ("GET", "/healthz") => {
            ctx.obs.counter("served.http.healthz").inc();
            let current = ctx.store.current();
            let body = format!(
                "{{\"status\":\"ok\",\"generation\":{},\"prefixes\":{},\"labels\":{},\"artifact_hash\":\"{}\",\"epoch\":{}}}\n",
                current.number,
                current.index.len(),
                current.index.label_count(),
                cellserve::hash_hex(current.artifact_hash),
                current.epoch,
            );
            respond(&mut w, 200, "OK", JSON, &body)?;
        }
        ("GET", "/generation") => {
            let current = ctx.store.current();
            let body = format!(
                "{{\"generation\":{},\"artifact_hash\":\"{}\",\"epoch\":{}}}\n",
                current.number,
                cellserve::hash_hex(current.artifact_hash),
                current.epoch,
            );
            respond(&mut w, 200, "OK", JSON, &body)?;
        }
        _ => {
            ctx.obs.counter("served.http.not_found").inc();
            respond(&mut w, 404, "Not Found", TEXT, "unknown endpoint\n")?;
        }
    }
    ctx.obs
        .histogram("served.http.request.ns")
        .record(t0.elapsed().as_nanos() as u64);
    Ok(())
}

const TEXT: &str = "text/plain";
const JSON: &str = "application/json";
const CSV: &str = "text/csv";

fn respond(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}
