//! The daemon itself: listeners, batch workers, reload watcher, and the
//! shutdown choreography that drains them in order.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cellobs::{ObsSnapshot, Observer};
use cellserve::{Artifact, FrozenIndex, IpKey, LookupMatch, QueryEngine, QUERY_CHUNK};

use crate::batcher::{BatchQueue, Pending};
use crate::conns::{bind_reuseaddr, ConnTracker};
use crate::error::ServedError;
use crate::generation::GenerationStore;
use crate::reload;

/// Tunables for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// `host:port` for the HTTP endpoint; `None` disables it. Use port
    /// 0 to let the OS pick (see [`Daemon::http_addr`]).
    pub http_listen: Option<String>,
    /// `host:port` for the framed TCP endpoint; `None` disables it.
    pub tcp_listen: Option<String>,
    /// Batch worker threads pulling from the shared queue.
    pub workers: usize,
    /// Queued-query capacity before producers block (backpressure).
    pub queue_depth: usize,
    /// How long a worker lingers for more queries before running a
    /// partial batch. Zero means "run whatever is there immediately".
    pub max_linger: Duration,
    /// Watch the artifact path and hot-swap validated replacements.
    pub reload_watch: bool,
    /// Watch this path for sealed CELLDELT deltas and hot-patch the
    /// live generation with any that chain on it (base hash matches,
    /// epoch advances). The file need not exist at startup; the watcher
    /// fires when it is first published. Independent of `reload_watch`
    /// — both watchers can run side by side.
    pub delta_watch: Option<PathBuf>,
    /// Poll interval for the reload and delta watchers.
    pub reload_poll: Duration,
    /// Admission budget: live connections across both listeners. A
    /// connection beyond the budget is shed immediately (HTTP 503 /
    /// framed close) and counted in `served.conns.rejected`. 0 means
    /// unlimited (the pre-hardening behavior).
    pub max_conns: usize,
    /// Per-socket read/write timeout. A peer that stalls a read or
    /// write past this — a slow-loris header dripper, a dead client
    /// mid-body, a receiver that never drains its response — is shed
    /// (`served.conns.rejected`). Also bounds how long an idle
    /// keep-alive connection is held, and how long a handler waits for
    /// batch-queue capacity before answering 503.
    /// [`Duration::ZERO`] disables every per-socket deadline.
    pub io_timeout: Duration,
    /// Requests served on one connection before the daemon closes it
    /// (HTTP keep-alive and framed TCP alike) — bounds how long a
    /// single client can pin a handler thread. 0 means unlimited.
    pub max_requests_per_conn: usize,
    /// How long shutdown waits for in-flight handlers to finish after
    /// half-closing their sockets, before force-closing the stragglers.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            http_listen: None,
            tcp_listen: None,
            workers: 2,
            queue_depth: 64 * QUERY_CHUNK,
            max_linger: Duration::from_micros(200),
            reload_watch: false,
            delta_watch: None,
            reload_poll: Duration::from_millis(250),
            max_conns: 1024,
            io_timeout: Duration::from_secs(10),
            max_requests_per_conn: 4096,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Shared state every connection handler and worker sees.
pub(crate) struct Ctx {
    pub store: Arc<GenerationStore>,
    pub queue: Arc<BatchQueue>,
    pub obs: Observer,
    pub conns: Arc<ConnTracker>,
    /// See [`ServeConfig::io_timeout`]; `ZERO` = disabled.
    pub io_timeout: Duration,
    /// See [`ServeConfig::max_requests_per_conn`]; 0 = unlimited.
    pub max_requests_per_conn: usize,
}

impl Ctx {
    /// The batch-queue admission wait: the socket timeout, or unbounded
    /// when timeouts are disabled.
    pub fn queue_wait(&self) -> Option<Duration> {
        if self.io_timeout.is_zero() {
            None
        } else {
            Some(self.io_timeout)
        }
    }
}

/// Push `ips` through the shared batcher and reassemble the answers in
/// request order. Used by both the HTTP and TCP handlers, so every
/// endpoint benefits from coalescing.
pub(crate) fn lookup_via_batcher(
    ctx: &Ctx,
    ips: Vec<IpKey>,
) -> Result<Vec<Option<LookupMatch>>, ServedError> {
    let n = ips.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let (tx, rx) = mpsc::channel();
    let wait = ctx.queue_wait();
    for (slot, ip) in ips.into_iter().enumerate() {
        // Bounded admission: a queue full past the wait sheds this
        // request (503) instead of parking the handler indefinitely.
        // Queries already pushed are answered by the workers and the
        // answers discarded with the dropped receiver.
        ctx.queue.push_wait(
            Pending {
                ip,
                slot,
                tx: tx.clone(),
                enqueued: Instant::now(),
            },
            wait,
        )?;
    }
    drop(tx);
    let mut out: Vec<Option<LookupMatch>> = vec![None; n];
    for _ in 0..n {
        // Workers answer every drained query before exiting, so a
        // closed channel here means queries were lost to a dying daemon.
        let (slot, answer) = rx.recv().map_err(|_| ServedError::ShuttingDown)?;
        out[slot] = answer;
    }
    Ok(out)
}

#[derive(Clone, Copy)]
enum Endpoint {
    Http,
    Tcp,
}

/// A running lookup daemon. Dropping it without calling
/// [`shutdown`](Daemon::shutdown) leaves threads running; always shut
/// down for a clean exit and the final metrics snapshot.
pub struct Daemon {
    store: Arc<GenerationStore>,
    queue: Arc<BatchQueue>,
    obs: Observer,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    http_addr: Option<SocketAddr>,
    tcp_addr: Option<SocketAddr>,
    artifact_path: Option<PathBuf>,
    conns: Arc<ConnTracker>,
    drain_timeout: Duration,
}

impl Daemon {
    /// Open, validate, and serve a sealed artifact file. A v2 artifact
    /// is mmapped and served in place — near-zero bytes copied at boot;
    /// a v1 artifact is decoded as before. Either way the daemon's
    /// behavior is identical (see [`cellserve::IndexView`]).
    pub fn start(
        config: ServeConfig,
        artifact: &Path,
        obs: Observer,
    ) -> Result<Daemon, ServedError> {
        // Fingerprint before reading: if the file is replaced between
        // the read and the watcher's first poll, the change is seen.
        let initial = reload::fingerprint(artifact);
        let handle = Artifact::open(artifact)?;
        let store = GenerationStore::from_handle(handle, obs.clone());
        Self::start_inner(
            config,
            store,
            Some((artifact.to_path_buf(), initial)),
            obs,
        )
    }

    /// Serve an index built in-process (no artifact file, no reload).
    pub fn start_with_index(
        config: ServeConfig,
        index: FrozenIndex,
        obs: Observer,
    ) -> Result<Daemon, ServedError> {
        let store = GenerationStore::new(index, obs.clone());
        Self::start_inner(config, store, None, obs)
    }

    fn start_inner(
        config: ServeConfig,
        store: GenerationStore,
        artifact: Option<(PathBuf, Option<reload::Fingerprint>)>,
        obs: Observer,
    ) -> Result<Daemon, ServedError> {
        if config.reload_watch && artifact.is_none() {
            return Err(ServedError::Config(
                "reload_watch requires an artifact path to watch".into(),
            ));
        }
        let store = Arc::new(store);
        let queue = Arc::new(BatchQueue::new(config.queue_depth, config.max_linger));
        let conns = ConnTracker::new(config.max_conns, obs.clone());
        let ctx = Arc::new(Ctx {
            store: Arc::clone(&store),
            queue: Arc::clone(&queue),
            obs: obs.clone(),
            conns: Arc::clone(&conns),
            io_timeout: config.io_timeout,
            max_requests_per_conn: config.max_requests_per_conn,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);
        obs.gauge("served.workers").set(workers as u64);
        let mut threads = Vec::new();

        for i in 0..workers {
            let ctx = Arc::clone(&ctx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("served-worker-{i}"))
                    .spawn(move || worker_loop(&ctx))?,
            );
        }

        let http_addr = match &config.http_listen {
            Some(spec) => Some(Self::spawn_listener(
                spec,
                Endpoint::Http,
                &ctx,
                &shutdown,
                &mut threads,
            )?),
            None => None,
        };
        let tcp_addr = match &config.tcp_listen {
            Some(spec) => Some(Self::spawn_listener(
                spec,
                Endpoint::Tcp,
                &ctx,
                &shutdown,
                &mut threads,
            )?),
            None => None,
        };

        let artifact_path = artifact.as_ref().map(|(p, _)| p.clone());
        if config.reload_watch {
            let (path, initial) = artifact.expect("checked above");
            let watch_store = Arc::clone(&store);
            threads.push(reload::spawn_watcher(
                "served-reload",
                "served.reload",
                path,
                config.reload_poll,
                initial,
                obs.clone(),
                move |p| {
                    let _ = watch_store.try_swap_path(p);
                },
                Arc::clone(&shutdown),
            )?);
        }
        if let Some(path) = config.delta_watch.clone() {
            let initial = reload::fingerprint(&path);
            let delta_store = Arc::clone(&store);
            threads.push(reload::spawn_watcher(
                "served-delta",
                "served.delta",
                path,
                config.reload_poll,
                initial,
                obs.clone(),
                move |p| {
                    let _ = delta_store.try_apply_delta_path(p);
                },
                Arc::clone(&shutdown),
            )?);
        }

        Ok(Daemon {
            store,
            queue,
            obs,
            shutdown,
            threads,
            http_addr,
            tcp_addr,
            artifact_path,
            conns,
            drain_timeout: config.drain_timeout,
        })
    }

    fn spawn_listener(
        spec: &str,
        endpoint: Endpoint,
        ctx: &Arc<Ctx>,
        shutdown: &Arc<AtomicBool>,
        threads: &mut Vec<JoinHandle<()>>,
    ) -> Result<SocketAddr, ServedError> {
        let listener = bind_reuseaddr(spec)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::clone(ctx);
        let shutdown = Arc::clone(shutdown);
        let name = match endpoint {
            Endpoint::Http => "served-http",
            Endpoint::Tcp => "served-tcp",
        };
        threads.push(
            std::thread::Builder::new()
                .name(name.into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        // Per-socket deadlines before the first byte is
                        // read: a stalled peer can pin its handler for
                        // at most one timeout per read/write.
                        if !ctx.io_timeout.is_zero() {
                            let _ = stream.set_read_timeout(Some(ctx.io_timeout));
                            let _ = stream.set_write_timeout(Some(ctx.io_timeout));
                        }
                        // Admission: over-budget connections are shed
                        // here, on the accept thread, so no handler
                        // thread is ever spawned for them.
                        let Some(guard) = ctx.conns.try_admit(&stream) else {
                            ctx.obs.counter("served.conns.rejected").inc();
                            shed(endpoint, stream);
                            continue;
                        };
                        let ctx = Arc::clone(&ctx);
                        // Handlers run detached but tracked: the guard
                        // registers the socket with the ConnTracker, so
                        // shutdown can half-close it and wait for the
                        // handler to finish before snapshotting.
                        let _ = std::thread::Builder::new()
                            .name("served-conn".into())
                            .spawn(move || {
                                match endpoint {
                                    Endpoint::Http => crate::http::handle(stream, &ctx),
                                    Endpoint::Tcp => crate::tcp::handle(stream, &ctx),
                                }
                                drop(guard);
                            });
                    }
                })?,
        );
        Ok(addr)
    }

    /// Where the HTTP endpoint actually listens (resolves port 0).
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Where the framed TCP endpoint actually listens.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The current artifact generation number.
    pub fn generation(&self) -> u64 {
        self.store.generation()
    }

    /// The daemon's observer (shared; snapshot any time).
    pub fn observer(&self) -> &Observer {
        &self.obs
    }

    /// Re-read the artifact path right now and swap if it validates.
    /// Independent of the watcher — works whether or not `reload_watch`
    /// is on, as long as the daemon was started from a file.
    pub fn reload_now(&self) -> Result<u64, ServedError> {
        let path = self.artifact_path.as_ref().ok_or_else(|| {
            ServedError::Config("daemon was not started from an artifact file".into())
        })?;
        self.store.try_swap_path(path)
    }

    /// Apply sealed delta bytes to the live generation right now,
    /// independent of any watcher; returns the new generation number.
    /// The delta must chain on the serving generation (base hash
    /// matches, epoch advances) — see
    /// [`GenerationStore::try_apply_delta_bytes`].
    pub fn apply_delta_now(&self, delta_bytes: &[u8]) -> Result<u64, ServedError> {
        self.store.try_apply_delta_bytes(delta_bytes)
    }

    /// Graceful shutdown: stop accepting, drain in-flight connection
    /// handlers, drain every queued query, join all threads, refresh
    /// the latency-quantile gauges, and hand back the final metrics
    /// snapshot. The final snapshot cannot race in-flight responses:
    /// handlers are tracked and drained (bounded by
    /// [`ServeConfig::drain_timeout`]) before it is taken.
    pub fn shutdown(mut self) -> ObsSnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        // Accept loops block in `accept`; a throwaway connection makes
        // each one re-check the flag and exit.
        for addr in [self.http_addr, self.tcp_addr].into_iter().flatten() {
            let _ = TcpStream::connect(addr);
        }
        // Half-close the read side of every live connection: blocked
        // and idle reads wake with EOF, while in-flight responses still
        // flow out the intact write side. Then wait (bounded) for the
        // handlers to finish; any straggler past the window is
        // force-closed rather than allowed to race the snapshot.
        self.conns.close_reads();
        if !self.conns.drain(self.drain_timeout) {
            self.obs
                .counter("served.conns.aborted")
                .add(self.conns.active() as u64);
            self.conns.close_all();
            let _ = self.conns.drain(Duration::from_millis(250));
        }
        self.queue.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        crate::refresh_latency_gauges(&self.obs);
        self.obs.snapshot()
    }
}

/// Turn away a connection that failed admission, without spawning a
/// thread for it: HTTP peers get a best-effort `503` with
/// `Connection: close` (small enough to fit the socket buffer, so this
/// cannot block the accept loop past its write timeout), framed peers
/// see an immediate close — the protocol has no error frame, and the
/// resilient [`crate::FramedClient`] treats the close as retryable.
fn shed(endpoint: Endpoint, stream: TcpStream) {
    if let Endpoint::Http = endpoint {
        let body = "daemon at connection capacity\n";
        let mut stream = stream;
        let _ = write!(
            stream,
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
    }
    // Dropping the stream closes it for both endpoints.
}

fn worker_loop(ctx: &Ctx) {
    while let Some(batch) = ctx.queue.next_batch(QUERY_CHUNK) {
        if batch.is_empty() {
            continue;
        }
        ctx.obs.counter("served.batches").inc();
        ctx.obs
            .histogram("served.batch.fill")
            .record(batch.len() as u64);
        // Pin this batch to one generation; a concurrent swap only
        // affects later batches.
        let generation = ctx.store.current();
        let engine = QueryEngine::new(&generation.index).with_observer(ctx.obs.clone());
        let ips: Vec<IpKey> = batch.iter().map(|p| p.ip).collect();
        let (answers, _) = engine.run(&ips);
        let wait = ctx.obs.histogram("served.lookup.wait.ns");
        for (p, answer) in batch.into_iter().zip(answers) {
            wait.record(p.enqueued.elapsed().as_nanos() as u64);
            // A handler that gave up (connection error) dropped its
            // receiver; its answer is simply discarded.
            let _ = p.tx.send((p.slot, answer));
        }
    }
}
