//! Error type for the serving daemon.

use std::fmt;

use celldelta::DeltaError;
use cellserve::ServeError;

/// Why a daemon operation failed.
#[derive(Debug)]
pub enum ServedError {
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// An artifact failed validation (seal, structure, or version); see
    /// [`cellserve::ServeError`] for the taxonomy.
    Artifact(ServeError),
    /// A delta artifact failed validation or did not chain on the live
    /// generation (wrong base hash, stale epoch, broken seal, patch
    /// conflict); see [`celldelta::DeltaError`] for the taxonomy.
    Delta(DeltaError),
    /// A peer sent bytes that do not follow the framing protocol.
    Protocol(String),
    /// The daemon is shutting down and no longer accepts new queries.
    ShuttingDown,
    /// The daemon shed this request to protect itself: the connection
    /// budget or the batch queue stayed full past the admission wait.
    Overloaded,
    /// A [`FramedClient`](crate::FramedClient) exhausted its retry
    /// policy; `last` is the error from the final attempt.
    GaveUp {
        /// Lookup attempts made (including the first).
        attempts: u32,
        /// The failure that ended the final attempt.
        last: Box<ServedError>,
    },
    /// The daemon configuration is inconsistent (e.g. `reload_watch`
    /// without an artifact path to watch).
    Config(String),
}

impl fmt::Display for ServedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServedError::Io(e) => write!(f, "i/o: {e}"),
            ServedError::Artifact(e) => write!(f, "artifact: {e}"),
            ServedError::Delta(e) => write!(f, "delta: {e}"),
            ServedError::Protocol(why) => write!(f, "protocol: {why}"),
            ServedError::ShuttingDown => f.write_str("daemon is shutting down"),
            ServedError::Overloaded => f.write_str("daemon is overloaded; request shed"),
            ServedError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            ServedError::Config(why) => write!(f, "config: {why}"),
        }
    }
}

impl std::error::Error for ServedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServedError::Io(e) => Some(e),
            ServedError::Artifact(e) => Some(e),
            ServedError::Delta(e) => Some(e),
            ServedError::GaveUp { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServedError {
    fn from(e: std::io::Error) -> Self {
        ServedError::Io(e)
    }
}

impl From<ServeError> for ServedError {
    fn from(e: ServeError) -> Self {
        ServedError::Artifact(e)
    }
}

impl From<DeltaError> for ServedError {
    fn from(e: DeltaError) -> Self {
        ServedError::Delta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(ServedError::Protocol("bad frame".into())
            .to_string()
            .contains("bad frame"));
        assert!(ServedError::Artifact(ServeError::UnsupportedVersion(9))
            .to_string()
            .contains('9'));
        assert!(ServedError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert!(ServedError::Delta(DeltaError::StaleEpoch {
            current: 5,
            delta: 3
        })
        .to_string()
        .contains("stale"));
        assert!(ServedError::Config("x".into()).to_string().contains("x"));
        assert!(ServedError::Overloaded.to_string().contains("overloaded"));
        let gave_up = ServedError::GaveUp {
            attempts: 3,
            last: Box::new(ServedError::Protocol("reset".into())),
        };
        assert!(gave_up.to_string().contains('3'));
        assert!(gave_up.to_string().contains("reset"));
        assert!(std::error::Error::source(&gave_up).is_some());
    }
}
