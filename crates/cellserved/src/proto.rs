//! The compact length-prefixed TCP lookup protocol.
//!
//! Every frame, in both directions, is a `u32` little-endian payload
//! length followed by exactly that many payload bytes. A connection
//! carries any number of request/response frame pairs, strictly in
//! order, until the client closes it.
//!
//! Request payload:
//!
//! ```text
//! count    u32 LE
//! queries  count × { family: u8 (4 | 6), addr: 4 or 16 bytes, big-endian }
//! ```
//!
//! Response payload:
//!
//! ```text
//! count    u32 LE — always equal to the request count
//! answers  count × { status: u8 (0 = miss, 1 = hit),
//!                    on hit: prefix_len u8, asn u32 LE, class u8 }
//! ```
//!
//! The class byte uses the sealed artifact's encoding (0 = unknown,
//! 1 = dedicated, 2 = mixed), so a wire answer round-trips to the same
//! label the artifact stores. Frames above [`MAX_FRAME`] bytes are
//! rejected before allocation on both sides.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cellserve::{AsClass, IpKey, LookupMatch, MatchedPrefix};

use crate::error::ServedError;

/// Hard cap on a frame payload, both directions (16 MiB — far above any
/// sane batch, small enough to reject garbage length prefixes cheaply).
pub const MAX_FRAME: usize = 1 << 24;

/// Read one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary; EOF mid-frame is an error.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame payload of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write one length-prefixed frame and flush it.
pub(crate) fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Encode a request payload for `ips`.
pub(crate) fn encode_queries(ips: &[IpKey]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + ips.len() * 17);
    out.extend_from_slice(&(ips.len() as u32).to_le_bytes());
    for ip in ips {
        match *ip {
            IpKey::V4(a) => {
                out.push(4);
                out.extend_from_slice(&a.to_be_bytes());
            }
            IpKey::V6(a) => {
                out.push(6);
                out.extend_from_slice(&a.to_be_bytes());
            }
        }
    }
    out
}

/// Decode a request payload. Rejects unknown families, truncated
/// addresses, and trailing bytes.
pub(crate) fn decode_queries(payload: &[u8]) -> Result<Vec<IpKey>, ServedError> {
    let mut pos = 0usize;
    let count = take(payload, &mut pos, 4, "query count")?;
    let count = u32::from_le_bytes(count.try_into().expect("4 bytes")) as usize;
    let mut ips = Vec::with_capacity(count.min(MAX_FRAME / 5));
    for i in 0..count {
        let family = take(payload, &mut pos, 1, "address family")?[0];
        match family {
            4 => {
                let raw = take(payload, &mut pos, 4, "IPv4 address")?;
                ips.push(IpKey::V4(u32::from_be_bytes(
                    raw.try_into().expect("4 bytes"),
                )));
            }
            6 => {
                let raw = take(payload, &mut pos, 16, "IPv6 address")?;
                ips.push(IpKey::V6(u128::from_be_bytes(
                    raw.try_into().expect("16 bytes"),
                )));
            }
            other => {
                return Err(ServedError::Protocol(format!(
                    "query {i}: unknown address family {other} (expected 4 or 6)"
                )))
            }
        }
    }
    if pos != payload.len() {
        return Err(ServedError::Protocol(format!(
            "{} trailing bytes after {count} queries",
            payload.len() - pos
        )));
    }
    Ok(ips)
}

/// Encode a response payload for the answers of one batch.
pub(crate) fn encode_answers(results: &[Option<LookupMatch>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + results.len() * 8);
    out.extend_from_slice(&(results.len() as u32).to_le_bytes());
    for r in results {
        match r {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                let len = match m.prefix {
                    MatchedPrefix::V4(net) => net.len(),
                    MatchedPrefix::V6(net) => net.len(),
                };
                out.push(len);
                out.extend_from_slice(&m.label.asn.value().to_le_bytes());
                out.push(class_byte(m.label.class));
            }
        }
    }
    out
}

/// Decode a response payload into per-query answers.
pub(crate) fn decode_answers(payload: &[u8]) -> Result<Vec<Option<WireAnswer>>, ServedError> {
    let mut pos = 0usize;
    let count = take(payload, &mut pos, 4, "answer count")?;
    let count = u32::from_le_bytes(count.try_into().expect("4 bytes")) as usize;
    let mut answers = Vec::with_capacity(count.min(MAX_FRAME / 2));
    for i in 0..count {
        let status = take(payload, &mut pos, 1, "answer status")?[0];
        match status {
            0 => answers.push(None),
            1 => {
                let body = take(payload, &mut pos, 6, "hit body")?;
                let class = match body[5] {
                    0 => AsClass::Unknown,
                    1 => AsClass::Dedicated,
                    2 => AsClass::Mixed,
                    other => {
                        return Err(ServedError::Protocol(format!(
                            "answer {i}: unknown class byte {other}"
                        )))
                    }
                };
                answers.push(Some(WireAnswer {
                    prefix_len: body[0],
                    asn: u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")),
                    class,
                }));
            }
            other => {
                return Err(ServedError::Protocol(format!(
                    "answer {i}: unknown status byte {other}"
                )))
            }
        }
    }
    if pos != payload.len() {
        return Err(ServedError::Protocol(format!(
            "{} trailing bytes after {count} answers",
            payload.len() - pos
        )));
    }
    Ok(answers)
}

fn take<'a>(
    payload: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &str,
) -> Result<&'a [u8], ServedError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= payload.len())
        .ok_or_else(|| ServedError::Protocol(format!("truncated {what}")))?;
    let raw = &payload[*pos..end];
    *pos = end;
    Ok(raw)
}

fn class_byte(class: AsClass) -> u8 {
    // Same encoding as the sealed artifact's label table.
    match class {
        AsClass::Unknown => 0,
        AsClass::Dedicated => 1,
        AsClass::Mixed => 2,
    }
}

/// One hit as seen on the wire: enough to identify the matched prefix
/// length and its AS label without shipping the whole prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireAnswer {
    /// Length of the matched prefix.
    pub prefix_len: u8,
    /// Origin AS of the matched prefix.
    pub asn: u32,
    /// Mixed/dedicated verdict for that AS.
    pub class: AsClass,
}

/// Blocking client for the framed TCP protocol. One instance per
/// connection; requests are serialized in call order.
pub struct FramedClient {
    stream: TcpStream,
}

impl FramedClient {
    /// Connect to a daemon's TCP listener.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<FramedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(FramedClient { stream })
    }

    /// Look up a batch of addresses; answers come back in query order.
    pub fn lookup(&mut self, ips: &[IpKey]) -> Result<Vec<Option<WireAnswer>>, ServedError> {
        write_frame(&mut self.stream, &encode_queries(ips))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ServedError::Protocol("server closed the connection before answering".into())
        })?;
        let answers = decode_answers(&payload)?;
        if answers.len() != ips.len() {
            return Err(ServedError::Protocol(format!(
                "{} answers for {} queries",
                answers.len(),
                ips.len()
            )));
        }
        Ok(answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellserve::ServeLabel;
    use netaddr::{Asn, Ipv4Net};

    #[test]
    fn queries_round_trip() {
        let ips = vec![
            IpKey::V4(0x0A010203),
            IpKey::V6(0x2001_0db8_0000_0000_0000_0000_0000_0001),
            IpKey::V4(0),
        ];
        let payload = encode_queries(&ips);
        assert_eq!(decode_queries(&payload).expect("round trip"), ips);
    }

    #[test]
    fn answers_round_trip() {
        let hit = LookupMatch {
            prefix: MatchedPrefix::V4(Ipv4Net::new(0x0A000000, 8).expect("net")),
            label: ServeLabel {
                asn: Asn(64500),
                class: AsClass::Mixed,
            },
        };
        let payload = encode_answers(&[Some(hit), None]);
        let answers = decode_answers(&payload).expect("round trip");
        assert_eq!(
            answers,
            vec![
                Some(WireAnswer {
                    prefix_len: 8,
                    asn: 64500,
                    class: AsClass::Mixed,
                }),
                None,
            ]
        );
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        // Truncated count.
        assert!(decode_queries(&[1, 0]).is_err());
        // Family byte nobody speaks.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.push(5);
        bad.extend_from_slice(&[0; 4]);
        assert!(decode_queries(&bad).is_err());
        // Trailing garbage after a complete request.
        let mut trailing = encode_queries(&[IpKey::V4(1)]);
        trailing.push(0xFF);
        assert!(decode_queries(&trailing).is_err());
        // Truncated hit body in a response.
        let mut resp = Vec::new();
        resp.extend_from_slice(&1u32.to_le_bytes());
        resp.push(1);
        resp.push(24);
        assert!(decode_answers(&resp).is_err());
    }

    #[test]
    fn frames_carry_length_prefixes() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").expect("write to vec");
        assert_eq!(&buf[..4], &3u32.to_le_bytes());
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).expect("read back"),
            Some(b"abc".to_vec())
        );
        // Clean EOF at a frame boundary is "no more frames".
        assert_eq!(read_frame(&mut cursor).expect("eof"), None);
        // EOF inside a length prefix is an error.
        let mut partial = &buf[..2];
        assert!(read_frame(&mut partial).is_err());
        // Oversized length prefixes are rejected without allocating.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
