//! The compact length-prefixed TCP lookup protocol.
//!
//! Every frame, in both directions, is a `u32` little-endian payload
//! length followed by exactly that many payload bytes. A connection
//! carries any number of request/response frame pairs, strictly in
//! order, until the client closes it.
//!
//! Request payload:
//!
//! ```text
//! count    u32 LE
//! queries  count × { family: u8 (4 | 6), addr: 4 or 16 bytes, big-endian }
//! ```
//!
//! Response payload:
//!
//! ```text
//! count    u32 LE — always equal to the request count
//! answers  count × { status: u8 (0 = miss, 1 = hit),
//!                    on hit: prefix_len u8, asn u32 LE, class u8 }
//! ```
//!
//! The class byte uses the sealed artifact's encoding (0 = unknown,
//! 1 = dedicated, 2 = mixed), so a wire answer round-trips to the same
//! label the artifact stores. Frames above [`MAX_FRAME`] bytes are
//! rejected before allocation on both sides.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use cellserve::{AsClass, IpKey, LookupMatch, MatchedPrefix};

use crate::error::ServedError;

/// Hard cap on a frame payload, both directions (16 MiB — far above any
/// sane batch, small enough to reject garbage length prefixes cheaply).
pub const MAX_FRAME: usize = 1 << 24;

/// Read one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary; EOF mid-frame is an error.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame payload of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write one length-prefixed frame and flush it.
pub(crate) fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Encode a request payload for `ips`.
pub(crate) fn encode_queries(ips: &[IpKey]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + ips.len() * 17);
    out.extend_from_slice(&(ips.len() as u32).to_le_bytes());
    for ip in ips {
        match *ip {
            IpKey::V4(a) => {
                out.push(4);
                out.extend_from_slice(&a.to_be_bytes());
            }
            IpKey::V6(a) => {
                out.push(6);
                out.extend_from_slice(&a.to_be_bytes());
            }
        }
    }
    out
}

/// Decode a request payload. Rejects unknown families, truncated
/// addresses, and trailing bytes.
pub(crate) fn decode_queries(payload: &[u8]) -> Result<Vec<IpKey>, ServedError> {
    let mut pos = 0usize;
    let count = take(payload, &mut pos, 4, "query count")?;
    let count = u32::from_le_bytes(count.try_into().expect("4 bytes")) as usize;
    let mut ips = Vec::with_capacity(count.min(MAX_FRAME / 5));
    for i in 0..count {
        let family = take(payload, &mut pos, 1, "address family")?[0];
        match family {
            4 => {
                let raw = take(payload, &mut pos, 4, "IPv4 address")?;
                ips.push(IpKey::V4(u32::from_be_bytes(
                    raw.try_into().expect("4 bytes"),
                )));
            }
            6 => {
                let raw = take(payload, &mut pos, 16, "IPv6 address")?;
                ips.push(IpKey::V6(u128::from_be_bytes(
                    raw.try_into().expect("16 bytes"),
                )));
            }
            other => {
                return Err(ServedError::Protocol(format!(
                    "query {i}: unknown address family {other} (expected 4 or 6)"
                )))
            }
        }
    }
    if pos != payload.len() {
        return Err(ServedError::Protocol(format!(
            "{} trailing bytes after {count} queries",
            payload.len() - pos
        )));
    }
    Ok(ips)
}

/// Encode a response payload for the answers of one batch.
pub(crate) fn encode_answers(results: &[Option<LookupMatch>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + results.len() * 8);
    out.extend_from_slice(&(results.len() as u32).to_le_bytes());
    for r in results {
        match r {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                let len = match m.prefix {
                    MatchedPrefix::V4(net) => net.len(),
                    MatchedPrefix::V6(net) => net.len(),
                };
                out.push(len);
                out.extend_from_slice(&m.label.asn.value().to_le_bytes());
                out.push(class_byte(m.label.class));
            }
        }
    }
    out
}

/// Decode a response payload into per-query answers.
pub(crate) fn decode_answers(payload: &[u8]) -> Result<Vec<Option<WireAnswer>>, ServedError> {
    let mut pos = 0usize;
    let count = take(payload, &mut pos, 4, "answer count")?;
    let count = u32::from_le_bytes(count.try_into().expect("4 bytes")) as usize;
    let mut answers = Vec::with_capacity(count.min(MAX_FRAME / 2));
    for i in 0..count {
        let status = take(payload, &mut pos, 1, "answer status")?[0];
        match status {
            0 => answers.push(None),
            1 => {
                let body = take(payload, &mut pos, 6, "hit body")?;
                let class = match body[5] {
                    0 => AsClass::Unknown,
                    1 => AsClass::Dedicated,
                    2 => AsClass::Mixed,
                    other => {
                        return Err(ServedError::Protocol(format!(
                            "answer {i}: unknown class byte {other}"
                        )))
                    }
                };
                answers.push(Some(WireAnswer {
                    prefix_len: body[0],
                    asn: u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")),
                    class,
                }));
            }
            other => {
                return Err(ServedError::Protocol(format!(
                    "answer {i}: unknown status byte {other}"
                )))
            }
        }
    }
    if pos != payload.len() {
        return Err(ServedError::Protocol(format!(
            "{} trailing bytes after {count} answers",
            payload.len() - pos
        )));
    }
    Ok(answers)
}

fn take<'a>(
    payload: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &str,
) -> Result<&'a [u8], ServedError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= payload.len())
        .ok_or_else(|| ServedError::Protocol(format!("truncated {what}")))?;
    let raw = &payload[*pos..end];
    *pos = end;
    Ok(raw)
}

fn class_byte(class: AsClass) -> u8 {
    // Same encoding as the sealed artifact's label table.
    match class {
        AsClass::Unknown => 0,
        AsClass::Dedicated => 1,
        AsClass::Mixed => 2,
    }
}

/// One hit as seen on the wire: enough to identify the matched prefix
/// length and its AS label without shipping the whole prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireAnswer {
    /// Length of the matched prefix.
    pub prefix_len: u8,
    /// Origin AS of the matched prefix.
    pub asn: u32,
    /// Mixed/dedicated verdict for that AS.
    pub class: AsClass,
}

/// Retry/timeout policy for a [`FramedClient`].
///
/// The client treats transport failures — connect refused, socket
/// timeout, the server closing the connection (restart, per-connection
/// request cap, shed) — as retryable: it reconnects with exponential
/// backoff and re-sends the *whole* lookup batch. Lookups are
/// idempotent reads, so a retried batch returns byte-identical answers
/// and replay digests are unaffected. Protocol violations (undecodable
/// frames, wrong answer counts) are never retried: a server speaking
/// garbage will speak garbage again.
#[derive(Clone, Copy, Debug)]
pub struct ClientPolicy {
    /// Deadline for establishing a connection; `ZERO` blocks
    /// indefinitely (the OS default).
    pub connect_timeout: Duration,
    /// Per-socket read/write deadline once connected; `ZERO` disables.
    pub io_timeout: Duration,
    /// Total lookup attempts (first try included) before
    /// [`ServedError::GaveUp`]. 0 behaves like 1.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub backoff_base: Duration,
    /// Cap on the doubled backoff sleep.
    pub backoff_max: Duration,
}

impl Default for ClientPolicy {
    fn default() -> Self {
        ClientPolicy {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            max_attempts: 4,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

impl ClientPolicy {
    /// The sleep before retry number `attempt` (1-based):
    /// `backoff_base × 2^(attempt-1)`, capped at `backoff_max`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max)
    }
}

/// Blocking client for the framed TCP protocol, with a reconnect/retry
/// policy (see [`ClientPolicy`]). One instance serializes its requests
/// in call order; under the hood it may span several TCP connections as
/// the server restarts, sheds, or rotates connections.
pub struct FramedClient {
    addr: SocketAddr,
    policy: ClientPolicy,
    stream: Option<TcpStream>,
    connected_once: bool,
    retries: u64,
    reconnects: u64,
}

impl FramedClient {
    /// Connect to a daemon's TCP listener with the default policy.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<FramedClient> {
        Self::connect_with(addr, ClientPolicy::default())
    }

    /// Connect eagerly with an explicit policy: the first connection is
    /// established (or fails) here, so "daemon is down right now" is
    /// reported early instead of burning the retry budget.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        policy: ClientPolicy,
    ) -> std::io::Result<FramedClient> {
        let mut client = Self::lazy(addr, policy)?;
        client.ensure_connected()?;
        Ok(client)
    }

    /// Build a client without connecting; the first [`lookup`]
    /// (FramedClient::lookup) connects (with the full retry budget).
    /// Use this when the daemon may not be up yet — a replay driver
    /// started alongside a daemon, a supervisor racing a restart.
    pub fn lazy<A: ToSocketAddrs>(addr: A, policy: ClientPolicy) -> std::io::Result<FramedClient> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        Ok(FramedClient {
            addr,
            policy,
            stream: None,
            connected_once: false,
            retries: 0,
            reconnects: 0,
        })
    }

    /// The client's policy.
    pub fn policy(&self) -> ClientPolicy {
        self.policy
    }

    /// Retried lookup attempts so far (each preceded by a backoff
    /// sleep and a fresh connection).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Connections established after the first — how often the client
    /// healed a broken transport.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn ensure_connected(&mut self) -> std::io::Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let stream = if self.policy.connect_timeout.is_zero() {
            TcpStream::connect(self.addr)?
        } else {
            TcpStream::connect_timeout(&self.addr, self.policy.connect_timeout)?
        };
        stream.set_nodelay(true)?;
        if !self.policy.io_timeout.is_zero() {
            stream.set_read_timeout(Some(self.policy.io_timeout))?;
            stream.set_write_timeout(Some(self.policy.io_timeout))?;
        }
        if self.connected_once {
            self.reconnects += 1;
        }
        self.connected_once = true;
        self.stream = Some(stream);
        Ok(())
    }

    /// Look up a batch of addresses; answers come back in query order.
    ///
    /// Transport failures are retried per the policy — reconnect,
    /// re-send the whole batch — so a daemon restart mid-replay heals
    /// transparently. When the budget is exhausted the typed
    /// [`ServedError::GaveUp`] reports the attempt count and the final
    /// failure; protocol violations fail immediately.
    pub fn lookup(&mut self, ips: &[IpKey]) -> Result<Vec<Option<WireAnswer>>, ServedError> {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.try_lookup(ips) {
                Ok(answers) => return Ok(answers),
                Err(e) if !retryable(&e) => return Err(e),
                Err(e) if attempts >= max_attempts => {
                    return Err(ServedError::GaveUp {
                        attempts,
                        last: Box::new(e),
                    })
                }
                Err(_) => {
                    // Drop the (possibly poisoned) connection and try
                    // again from a clean slate after the backoff.
                    self.stream = None;
                    self.retries += 1;
                    std::thread::sleep(self.policy.backoff(attempts));
                }
            }
        }
    }

    /// One attempt over the current (or a fresh) connection.
    fn try_lookup(&mut self, ips: &[IpKey]) -> Result<Vec<Option<WireAnswer>>, ServedError> {
        self.ensure_connected()?;
        let stream = self.stream.as_mut().expect("connected above");
        write_frame(stream, &encode_queries(ips))?;
        let payload = read_frame(stream)?.ok_or_else(|| {
            // A clean close before the answer: the server shut down,
            // shed, or hit its per-connection cap mid-flight. The
            // transport is gone, not the protocol — retryable.
            ServedError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "server closed the connection before answering",
            ))
        })?;
        let answers = decode_answers(&payload)?;
        if answers.len() != ips.len() {
            return Err(ServedError::Protocol(format!(
                "{} answers for {} queries",
                answers.len(),
                ips.len()
            )));
        }
        Ok(answers)
    }
}

/// Transport failures heal on a fresh connection; protocol violations
/// do not.
fn retryable(e: &ServedError) -> bool {
    matches!(e, ServedError::Io(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellserve::ServeLabel;
    use netaddr::{Asn, Ipv4Net};

    #[test]
    fn queries_round_trip() {
        let ips = vec![
            IpKey::V4(0x0A010203),
            IpKey::V6(0x2001_0db8_0000_0000_0000_0000_0000_0001),
            IpKey::V4(0),
        ];
        let payload = encode_queries(&ips);
        assert_eq!(decode_queries(&payload).expect("round trip"), ips);
    }

    #[test]
    fn answers_round_trip() {
        let hit = LookupMatch {
            prefix: MatchedPrefix::V4(Ipv4Net::new(0x0A000000, 8).expect("net")),
            label: ServeLabel {
                asn: Asn(64500),
                class: AsClass::Mixed,
            },
        };
        let payload = encode_answers(&[Some(hit), None]);
        let answers = decode_answers(&payload).expect("round trip");
        assert_eq!(
            answers,
            vec![
                Some(WireAnswer {
                    prefix_len: 8,
                    asn: 64500,
                    class: AsClass::Mixed,
                }),
                None,
            ]
        );
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        // Truncated count.
        assert!(decode_queries(&[1, 0]).is_err());
        // Family byte nobody speaks.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.push(5);
        bad.extend_from_slice(&[0; 4]);
        assert!(decode_queries(&bad).is_err());
        // Trailing garbage after a complete request.
        let mut trailing = encode_queries(&[IpKey::V4(1)]);
        trailing.push(0xFF);
        assert!(decode_queries(&trailing).is_err());
        // Truncated hit body in a response.
        let mut resp = Vec::new();
        resp.extend_from_slice(&1u32.to_le_bytes());
        resp.push(1);
        resp.push(24);
        assert!(decode_answers(&resp).is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = ClientPolicy {
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(300),
            ..ClientPolicy::default()
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(50));
        assert_eq!(policy.backoff(2), Duration::from_millis(100));
        assert_eq!(policy.backoff(3), Duration::from_millis(200));
        assert_eq!(policy.backoff(4), Duration::from_millis(300));
        assert_eq!(policy.backoff(40), Duration::from_millis(300));
    }

    #[test]
    fn dead_port_exhausts_the_budget_into_gave_up() {
        // Bind-then-drop guarantees a port nobody is listening on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let policy = ClientPolicy {
            connect_timeout: Duration::from_millis(200),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
            ..ClientPolicy::default()
        };
        let mut client = FramedClient::lazy(addr, policy).expect("resolve");
        match client.lookup(&[IpKey::V4(1)]) {
            Err(ServedError::GaveUp { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, ServedError::Io(_)));
            }
            other => panic!("expected GaveUp, got {other:?}"),
        }
        assert_eq!(client.retries(), 2, "a sleep before each retry");
    }

    #[test]
    fn eager_connect_reports_a_down_daemon_immediately() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let policy = ClientPolicy {
            connect_timeout: Duration::from_millis(200),
            ..ClientPolicy::default()
        };
        assert!(FramedClient::connect_with(addr, policy).is_err());
    }

    #[test]
    fn frames_carry_length_prefixes() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").expect("write to vec");
        assert_eq!(&buf[..4], &3u32.to_le_bytes());
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).expect("read back"),
            Some(b"abc".to_vec())
        );
        // Clean EOF at a frame boundary is "no more frames".
        assert_eq!(read_frame(&mut cursor).expect("eof"), None);
        // EOF inside a length prefix is an error.
        let mut partial = &buf[..2];
        assert!(read_frame(&mut partial).is_err());
        // Oversized length prefixes are rejected without allocating.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
