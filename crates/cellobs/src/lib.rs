//! # cellobs — unified observability for the cell-spotting system
//!
//! Every layer of the system — world generation, dataset sampling, the
//! batch study pipeline, the sharded streaming ingest engine — reports
//! into one [`Observer`]:
//!
//! * **Hierarchical spans** ([`Observer::span`]) — entered/exited scopes
//!   with wall-clock duration and an item count, nested by open order
//!   (`study/classify`, `ingest/epoch`). Spans are for *where time
//!   goes*; their durations are explicitly outside the determinism
//!   contract.
//! * **Metrics registry** — monotonic [`Counter`]s, last/max-value
//!   [`Gauge`]s, and [`Histogram`]s with fixed power-of-two buckets so
//!   the exported distribution shape is deterministic.
//! * **Exporters** ([`ObsSnapshot`]) — canonical JSON (stable key order,
//!   stable formatting; byte-identical for identical metric state) and
//!   the Prometheus text exposition format.
//!
//! ## Determinism contract
//!
//! Counters, gauges, and histograms must be driven only by quantities
//! that are themselves deterministic functions of the configuration
//! (seed, scale, shard count) — never by wall-clock, thread scheduling,
//! or iteration order of unordered containers. Under that discipline the
//! redacted export ([`ObsSnapshot::to_canonical_json_redacted`]) is
//! byte-identical across runs and across rayon thread counts; only span
//! durations (and the full, unredacted export that includes them) vary.
//! The workspace test `tests/observability.rs` pins this down.
//!
//! ## Cost model
//!
//! A disabled observer ([`Observer::disabled`]) is a `None` behind a
//! cheap clone: every `span`/`counter`/`gauge`/`histogram` call returns
//! an inert handle without locking, allocating, or reading the clock.
//! Enabled-path counter increments are a single relaxed atomic add on a
//! pre-registered handle; registration itself takes a short mutex.

mod export;
mod hist;
mod registry;
mod snapshot;

pub use export::ExportFormat;
pub use hist::{bucket_bound_label, bucket_index, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{Counter, Gauge, Histogram, Observer, Span};
pub use snapshot::{ObsSnapshot, SpanRecord};
