//! Point-in-time observability state and its canonical JSON export.

use std::collections::BTreeMap;

use crate::hist::{bucket_bound_label, HistogramSnapshot};

/// One finished span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// `/`-joined path from the outermost open span (`study/classify`).
    pub path: String,
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Wall-clock duration in milliseconds. Explicitly outside the
    /// determinism contract — redacted exports drop it.
    pub millis: f64,
    /// Items the span processed (its throughput denominator).
    pub items: u64,
}

/// Everything an [`crate::Observer`] recorded, frozen for export.
///
/// Maps are ordered by name and spans by open order, so serializing the
/// same logical state always produces the same bytes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Finished spans in open order.
    pub spans: Vec<SpanRecord>,
}

impl ObsSnapshot {
    /// Canonical JSON: stable key order, stable formatting, durations
    /// included. Byte-identical for identical metric *and* timing state;
    /// use [`to_canonical_json_redacted`](Self::to_canonical_json_redacted)
    /// when comparing across runs.
    pub fn to_canonical_json(&self) -> String {
        self.render_json(true)
    }

    /// Canonical JSON with every wall-clock field removed: the
    /// deterministic projection that is byte-identical across runs and
    /// rayon thread counts for the same configuration.
    pub fn to_canonical_json_redacted(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, with_timings: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        render_u64_map(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        render_u64_map(&mut out, &self.gauges);
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            ));
            for (i, (bucket, count)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                push_json_string(&mut out, &bucket_bound_label(*bucket));
                out.push_str(&format!(", {count}]"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"path\": ");
            push_json_string(&mut out, &s.path);
            out.push_str(&format!(", \"depth\": {}, \"items\": {}", s.depth, s.items));
            if with_timings {
                out.push_str(&format!(", \"millis\": {:.3}", s.millis));
            }
            out.push('}');
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn render_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        push_json_string(out, k);
        out.push_str(&format!(": {v}"));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

/// Append `s` as a JSON string literal, escaping as required by RFC 8259.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsSnapshot {
        let mut s = ObsSnapshot::default();
        s.counters.insert("b.count".into(), 2);
        s.counters.insert("a.count".into(), 1);
        s.gauges.insert("peak".into(), 7);
        s.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 3,
                sum: 9,
                buckets: vec![(0, 1), (2, 2)],
            },
        );
        s.spans.push(SpanRecord {
            path: "study/classify".into(),
            depth: 1,
            millis: 1.5,
            items: 42,
        });
        s
    }

    #[test]
    fn json_is_canonical_and_sorted() {
        let json = sample().to_canonical_json();
        // Keys come out in map order, i.e. sorted.
        let a = json.find("a.count").expect("a.count present");
        let b = json.find("b.count").expect("b.count present");
        assert!(a < b);
        assert!(json.contains("\"millis\": 1.500"));
        assert!(json.contains("[\"1\", 1], [\"4\", 2]"));
        // Identical state renders identical bytes.
        assert_eq!(json, sample().to_canonical_json());
    }

    #[test]
    fn redacted_json_drops_wall_clock() {
        let mut a = sample();
        let mut b = sample();
        a.spans[0].millis = 1.0;
        b.spans[0].millis = 99.0;
        assert_eq!(
            a.to_canonical_json_redacted(),
            b.to_canonical_json_redacted()
        );
        assert!(!a.to_canonical_json_redacted().contains("millis"));
    }

    #[test]
    fn strings_escape() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}
