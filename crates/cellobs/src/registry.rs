//! The observer: span log plus metric registry behind one cheap handle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::HistCore;
use crate::snapshot::{ObsSnapshot, SpanRecord};

/// The one observability handle threaded through every layer.
///
/// Clones share state (`Arc` inside). A disabled observer carries no
/// state at all: every operation on it is an inert no-op, so hot paths
/// can be instrumented unconditionally.
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCore>>>,
    spans: Mutex<SpanLog>,
}

#[derive(Default)]
struct SpanLog {
    /// Currently open spans, outermost first.
    open: Vec<OpenSpan>,
    /// Finished spans with their open-order sequence numbers.
    closed: Vec<(u64, SpanRecord)>,
    next_id: u64,
}

struct OpenSpan {
    id: u64,
    seq: u64,
    path: String,
    depth: usize,
}

impl Observer {
    /// An observer that records nothing. All handles it returns are
    /// inert; no lock is taken and no clock is read.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    /// An observer that collects spans and metrics for later export.
    pub fn enabled() -> Self {
        Observer {
            inner: Some(Arc::new(Registry {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(SpanLog::default()),
            })),
        }
    }

    /// Whether this observer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span named `name`, nested under the currently open spans.
    /// The returned guard records the span (path, depth, wall-clock
    /// duration, item count) when dropped.
    ///
    /// Spans must close in LIFO order per observer — the sequential stage
    /// boundaries this layer instruments do so naturally. Parallel inner
    /// loops report through counters and histograms instead of spans.
    pub fn span(&self, name: &str) -> Span {
        let Some(reg) = &self.inner else {
            return Span { state: None };
        };
        let id = {
            let mut log = reg.spans.lock().expect("span log poisoned");
            let id = log.next_id;
            log.next_id += 1;
            let path = match log.open.last() {
                Some(parent) => format!("{}/{name}", parent.path),
                None => name.to_string(),
            };
            let depth = log.open.len();
            log.open.push(OpenSpan {
                id,
                seq: id,
                path,
                depth,
            });
            id
        };
        Span {
            state: Some(SpanState {
                reg: Arc::clone(reg),
                id,
                start: Instant::now(),
                items: 0,
            }),
        }
    }

    /// A monotonic counter handle. Increments on the same name from any
    /// clone accumulate into one value.
    pub fn counter(&self, name: &str) -> Counter {
        let cell = self.inner.as_ref().map(|reg| {
            Arc::clone(
                reg.counters
                    .lock()
                    .expect("counter registry poisoned")
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        });
        Counter { cell }
    }

    /// A gauge handle: last-set value, with a dedicated high-water
    /// helper ([`Gauge::set_max`]) for peak tracking.
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = self.inner.as_ref().map(|reg| {
            Arc::clone(
                reg.gauges
                    .lock()
                    .expect("gauge registry poisoned")
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        });
        Gauge { cell }
    }

    /// A histogram handle over the fixed power-of-two bucket layout.
    pub fn histogram(&self, name: &str) -> Histogram {
        let core = self.inner.as_ref().map(|reg| {
            Arc::clone(
                reg.histograms
                    .lock()
                    .expect("histogram registry poisoned")
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistCore::new())),
            )
        });
        Histogram { core }
    }

    /// Point-in-time copy of everything recorded so far. Spans are
    /// ordered by open sequence (stable for sequential stages); metric
    /// maps are ordered by name.
    pub fn snapshot(&self) -> ObsSnapshot {
        let Some(reg) = &self.inner else {
            return ObsSnapshot::default();
        };
        let counters = reg
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = reg
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = reg
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let spans = {
            let log = reg.spans.lock().expect("span log poisoned");
            let mut closed: Vec<(u64, SpanRecord)> = log.closed.clone();
            closed.sort_by_key(|(seq, _)| *seq);
            closed.into_iter().map(|(_, r)| r).collect()
        };
        ObsSnapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

/// Monotonic counter handle (inert when the observer is disabled).
#[derive(Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Gauge handle: a last-set or high-water value.
#[derive(Clone)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` exceeds the current value — the
    /// high-water primitive used for peak state-bytes tracking. Safe
    /// under concurrency: `fetch_max` makes the final value the maximum
    /// of all reported values regardless of ordering.
    pub fn set_max(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Histogram handle over the fixed power-of-two buckets.
#[derive(Clone)]
pub struct Histogram {
    core: Option<Arc<HistCore>>,
}

impl Histogram {
    /// Record one value.
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.core {
            core.record(v);
        }
    }
}

struct SpanState {
    reg: Arc<Registry>,
    id: u64,
    start: Instant,
    items: u64,
}

/// Guard for an open span; records the span when dropped.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Add to the span's item count (events folded, blocks classified…).
    pub fn add_items(&mut self, n: u64) {
        if let Some(s) = &mut self.state {
            s.items += n;
        }
    }

    /// Set the span's item count outright.
    pub fn set_items(&mut self, n: u64) {
        if let Some(s) = &mut self.state {
            s.items = n;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else {
            return;
        };
        let millis = s.start.elapsed().as_secs_f64() * 1e3;
        let mut log = s.reg.spans.lock().expect("span log poisoned");
        let Some(pos) = log.open.iter().position(|o| o.id == s.id) else {
            return;
        };
        let open = log.open.remove(pos);
        log.closed.push((
            open.seq,
            SpanRecord {
                path: open.path,
                depth: open.depth,
                millis,
                items: s.items,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
        obs.gauge("g").set_max(9);
        obs.histogram("h").record(4);
        let mut span = obs.span("s");
        span.add_items(3);
        drop(span);
        let snap = obs.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let obs = Observer::enabled();
        let a = obs.counter("events");
        let b = obs.clone().counter("events");
        a.add(2);
        b.add(3);
        assert_eq!(obs.counter("events").get(), 5);
        assert_eq!(obs.snapshot().counters["events"], 5);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let obs = Observer::enabled();
        let g = obs.gauge("peak");
        g.set_max(10);
        g.set_max(4);
        assert_eq!(g.get(), 10);
        g.set(2);
        assert_eq!(obs.snapshot().gauges["peak"], 2);
    }

    #[test]
    fn spans_nest_by_open_order() {
        let obs = Observer::enabled();
        {
            let mut outer = obs.span("study");
            outer.set_items(1);
            {
                let mut inner = obs.span("classify");
                inner.set_items(42);
            }
            {
                let _inner2 = obs.span("sweep");
            }
        }
        let snap = obs.snapshot();
        let paths: Vec<(&str, usize, u64)> = snap
            .spans
            .iter()
            .map(|s| (s.path.as_str(), s.depth, s.items))
            .collect();
        assert_eq!(
            paths,
            vec![
                ("study", 0, 1),
                ("study/classify", 1, 42),
                ("study/sweep", 1, 0),
            ]
        );
    }

    #[test]
    fn observer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Observer>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
    }
}
