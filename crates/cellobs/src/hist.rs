//! Fixed log-scaled histogram buckets.
//!
//! Every histogram shares one bucket layout: 64 power-of-two upper
//! bounds (`1, 2, 4, …, 2^63`) plus a final overflow bucket. A fixed
//! layout keeps the exported distribution deterministic — bucket counts
//! are order-independent sums of per-value increments, so they are
//! byte-identical across runs and thread counts whenever the recorded
//! values are.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 64 power-of-two bounds plus the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: the smallest `i` with `value <= 2^i`
/// (values 0 and 1 share bucket 0; values above `2^63` land in the
/// overflow bucket 64).
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    // Bits needed to represent value - 1: ceil(log2(value)) for value > 1.
    64 - (value - 1).leading_zeros() as usize
}

/// Human-readable upper bound of a bucket (`"1"`, `"2"`, …, `"+Inf"`).
pub fn bucket_bound_label(index: usize) -> String {
    if index >= HISTOGRAM_BUCKETS - 1 {
        "+Inf".to_string()
    } else {
        (1u64 << index).to_string()
    }
}

/// Lock-free histogram core: per-bucket counts plus count and sum.
#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i, c));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time histogram state: only occupied buckets are kept, as
/// `(bucket index, count)` pairs in ascending bucket order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping add on overflow).
    pub sum: u64,
    /// Occupied buckets, ascending by bucket index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`,
    /// clamped): the inclusive upper bound of the bucket where the
    /// cumulative count first reaches `ceil(q * count)`. With
    /// power-of-two buckets the estimate is within 2× of the true
    /// value — the right resolution for latency percentiles (p50, p99,
    /// p999) where order of magnitude matters and exactness does not.
    ///
    /// Returns `None` for an empty histogram; values in the overflow
    /// bucket report `u64::MAX`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bucket, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(if bucket >= HISTOGRAM_BUCKETS - 1 {
                    u64::MAX
                } else {
                    1u64 << bucket
                });
            }
        }
        // Unreachable when bucket counts sum to `count`; be permissive
        // about snapshots taken mid-record under relaxed atomics.
        Some(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // Bucket i covers (2^(i-1), 2^i]; 0 and 1 share bucket 0.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(9), 4);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(1u64 << 63), 63);
        assert_eq!(bucket_index((1u64 << 63) + 1), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bound_labels_match_layout() {
        assert_eq!(bucket_bound_label(0), "1");
        assert_eq!(bucket_bound_label(1), "2");
        assert_eq!(bucket_bound_label(10), "1024");
        assert_eq!(bucket_bound_label(63), (1u64 << 63).to_string());
        assert_eq!(bucket_bound_label(64), "+Inf");
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        // 100 values: 90 land in bucket 3 (≤8), 9 in bucket 6 (≤64),
        // 1 in bucket 10 (≤1024).
        let mut buckets = vec![(3, 90u64), (6, 9), (10, 1)];
        let snap = HistogramSnapshot {
            count: 100,
            sum: 0,
            buckets: buckets.clone(),
        };
        assert_eq!(snap.quantile(0.0), Some(8), "q=0 is the first bucket");
        assert_eq!(snap.quantile(0.5), Some(8));
        assert_eq!(snap.quantile(0.9), Some(8), "rank 90 is still bucket 3");
        assert_eq!(snap.quantile(0.99), Some(64));
        assert_eq!(snap.quantile(0.999), Some(1024));
        assert_eq!(snap.quantile(1.0), Some(1024));
        assert_eq!(snap.quantile(2.0), Some(1024), "clamped above 1");

        // Overflow bucket reports u64::MAX.
        buckets.push((HISTOGRAM_BUCKETS - 1, 1));
        let snap = HistogramSnapshot {
            count: 101,
            sum: 0,
            buckets,
        };
        assert_eq!(snap.quantile(1.0), Some(u64::MAX));

        // Empty histogram has no quantiles.
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn record_fills_expected_buckets() {
        let h = HistCore::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        // 0,1 → bucket 0; 2 → 1; 3,4 → 2; 1000 → 10.
        assert_eq!(s.buckets, vec![(0, 2), (1, 1), (2, 2), (10, 1)]);
    }
}
