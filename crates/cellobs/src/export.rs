//! Prometheus text-format export and the exporter format knob.

use std::fmt;
use std::str::FromStr;

use crate::hist::{bucket_bound_label, HISTOGRAM_BUCKETS};
use crate::snapshot::ObsSnapshot;

/// Which exporter a `--metrics` file is written with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportFormat {
    /// Canonical JSON ([`ObsSnapshot::to_canonical_json`]).
    Json,
    /// Prometheus text exposition format
    /// ([`ObsSnapshot::to_prometheus`]).
    Prometheus,
}

impl ExportFormat {
    /// Render a snapshot in this format.
    pub fn render(&self, snapshot: &ObsSnapshot) -> String {
        match self {
            ExportFormat::Json => snapshot.to_canonical_json(),
            ExportFormat::Prometheus => snapshot.to_prometheus(),
        }
    }
}

impl FromStr for ExportFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(ExportFormat::Json),
            "prometheus" | "prom" => Ok(ExportFormat::Prometheus),
            other => Err(format!(
                "unknown metrics format {other:?} (json|prometheus)"
            )),
        }
    }
}

impl fmt::Display for ExportFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExportFormat::Json => "json",
            ExportFormat::Prometheus => "prometheus",
        })
    }
}

impl ObsSnapshot {
    /// Prometheus text exposition format. Metric names are sanitized
    /// (`.` and `-` become `_`); spans export as `span_millis` /
    /// `span_items` gauges labeled by path. Families are emitted in name
    /// order, so identical state renders identical bytes.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (name, value) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            // Prometheus buckets are cumulative; ours are sparse per-bucket
            // counts in ascending order. Emit only occupied bounds plus the
            // +Inf terminator to keep the export compact.
            let mut cumulative = 0u64;
            for &(bucket, count) in &h.buckets {
                cumulative += count;
                if bucket < HISTOGRAM_BUCKETS - 1 {
                    out.push_str(&format!(
                        "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                        bucket_bound_label(bucket)
                    ));
                }
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", h.sum));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE span_millis gauge\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "span_millis{{path=\"{}\"}} {:.3}\n",
                    escape_label(&s.path),
                    s.millis
                ));
            }
            out.push_str("# TYPE span_items gauge\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "span_items{{path=\"{}\"}} {}\n",
                    escape_label(&s.path),
                    s.items
                ));
            }
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else
/// to `_`. A leading digit gets an underscore prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Prometheus label values escape backslash, quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistogramSnapshot;

    #[test]
    fn format_knob_parses() {
        assert_eq!("json".parse::<ExportFormat>(), Ok(ExportFormat::Json));
        assert_eq!(
            "prometheus".parse::<ExportFormat>(),
            Ok(ExportFormat::Prometheus)
        );
        assert_eq!("prom".parse::<ExportFormat>(), Ok(ExportFormat::Prometheus));
        assert!("yaml".parse::<ExportFormat>().is_err());
        assert_eq!(ExportFormat::Json.to_string(), "json");
        assert_eq!(ExportFormat::Prometheus.to_string(), "prometheus");
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        let mut snap = ObsSnapshot::default();
        snap.counters.insert("ingest.events".into(), 10);
        snap.gauges.insert("ingest.state-bytes.peak".into(), 2048);
        snap.histograms.insert(
            "epoch.events".into(),
            HistogramSnapshot {
                count: 3,
                sum: 12,
                buckets: vec![(1, 1), (3, 2)],
            },
        );
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE ingest_events counter\ningest_events 10\n"));
        assert!(text.contains("ingest_state_bytes_peak 2048"));
        // Cumulative buckets: le=2 sees 1 value, le=8 sees all 3.
        assert!(text.contains("epoch_events_bucket{le=\"2\"} 1"));
        assert!(text.contains("epoch_events_bucket{le=\"8\"} 3"));
        assert!(text.contains("epoch_events_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("epoch_events_sum 12"));
        assert!(text.contains("epoch_events_count 3"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }
}
