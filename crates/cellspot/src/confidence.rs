//! Confidence-aware classification — an extension of the paper's plain
//! ratio threshold.
//!
//! The paper classifies on the raw cellular ratio, acknowledging that
//! sparsely-sampled blocks are noisy (§4.1). This module quantifies that
//! noise with the Wilson score interval on the binomial cellular-hit
//! proportion and splits blocks into three classes: **cellular** (the
//! interval's lower bound clears the threshold), **non-cellular** (its
//! upper bound stays below), and **uncertain** (the interval straddles
//! the threshold — typically blocks with a handful of NetInfo hits).
//!
//! This turns the paper's qualitative "our labels are a lower bound with
//! high confidence" into an explicit evidence requirement, and the
//! `ext-confidence` experiment reports how much of the cellular set and
//! its demand survives increasingly strict evidence levels.

use serde::{Deserialize, Serialize};

use crate::index::BlockIndex;

/// Wilson score interval for a binomial proportion: the range of true
/// rates consistent with `successes` out of `trials` at confidence level
/// `z` (1.96 ≈ 95%, 2.58 ≈ 99%). Returns `(0, 1)` when there are no
/// trials — no evidence constrains nothing.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    if z <= 0.0 {
        return (p, p);
    }
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// A block's evidence-aware label.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ConfidentLabel {
    /// The Wilson lower bound clears the threshold.
    Cellular,
    /// The Wilson upper bound stays below the threshold.
    NonCellular,
    /// The interval straddles the threshold: more evidence needed.
    Uncertain,
}

/// Aggregate outcome of confidence-aware classification.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ConfidenceSummary {
    /// Confidence parameter used.
    pub z: f64,
    /// Blocks confidently cellular.
    pub cellular: usize,
    /// Blocks confidently non-cellular.
    pub non_cellular: usize,
    /// Blocks with straddling intervals.
    pub uncertain: usize,
    /// DU on confidently-cellular blocks.
    pub cellular_du: f64,
    /// DU on uncertain blocks.
    pub uncertain_du: f64,
}

impl ConfidenceSummary {
    /// Blocks with a defined ratio, total.
    pub fn classified(&self) -> usize {
        self.cellular + self.non_cellular + self.uncertain
    }

    /// Fraction of ratio-bearing blocks left uncertain at this evidence
    /// level.
    pub fn uncertain_fraction(&self) -> f64 {
        let total = self.classified();
        if total > 0 {
            self.uncertain as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Label one observation at threshold `t` and confidence `z`.
pub fn confident_label(
    cellular_hits: u64,
    netinfo_hits: u64,
    threshold: f64,
    z: f64,
) -> Option<ConfidentLabel> {
    if netinfo_hits == 0 {
        return None;
    }
    let (lo, hi) = wilson_interval(cellular_hits, netinfo_hits, z);
    Some(if lo >= threshold {
        ConfidentLabel::Cellular
    } else if hi < threshold {
        ConfidentLabel::NonCellular
    } else {
        ConfidentLabel::Uncertain
    })
}

/// Classify the whole index with an evidence requirement.
pub fn classify_with_confidence(index: &BlockIndex, threshold: f64, z: f64) -> ConfidenceSummary {
    let mut s = ConfidenceSummary {
        z,
        ..Default::default()
    };
    for o in index.iter() {
        match confident_label(o.cellular_hits, o.netinfo_hits, threshold, z) {
            Some(ConfidentLabel::Cellular) => {
                s.cellular += 1;
                s.cellular_du += o.du;
            }
            Some(ConfidentLabel::NonCellular) => s.non_cellular += 1,
            Some(ConfidentLabel::Uncertain) => {
                s.uncertain += 1;
                s.uncertain_du += o.du;
            }
            None => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_known_values() {
        // 8/10 at 95%: the classic Wilson interval ≈ (0.49, 0.94).
        let (lo, hi) = wilson_interval(8, 10, 1.96);
        assert!((lo - 0.49).abs() < 0.01, "lo {lo}");
        assert!((hi - 0.943).abs() < 0.01, "hi {hi}");
        // No trials → vacuous interval.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        // z = 0 collapses to the point estimate.
        let (lo, hi) = wilson_interval(3, 4, 0.0);
        assert_eq!((lo, hi), (0.75, 0.75));
        // Extremes stay within [0, 1].
        let (lo, hi) = wilson_interval(10, 10, 3.0);
        assert!(lo > 0.5 && hi <= 1.0);
        let (lo, _) = wilson_interval(0, 10, 3.0);
        assert!(lo.abs() < 1e-12, "lo {lo}");
    }

    #[test]
    fn interval_narrows_with_evidence() {
        let narrow = wilson_interval(800, 1000, 1.96);
        let wide = wilson_interval(8, 10, 1.96);
        assert!(narrow.1 - narrow.0 < wide.1 - wide.0);
        // Both centered near 0.8.
        assert!((0.75..0.85).contains(&((narrow.0 + narrow.1) / 2.0)));
    }

    #[test]
    fn labels_by_evidence() {
        // 1/1 hit: ratio 1.0 but uncertain at 95%.
        assert_eq!(
            confident_label(1, 1, 0.5, 1.96),
            Some(ConfidentLabel::Uncertain)
        );
        // 95/100: confidently cellular.
        assert_eq!(
            confident_label(95, 100, 0.5, 1.96),
            Some(ConfidentLabel::Cellular)
        );
        // 2/100: confidently not.
        assert_eq!(
            confident_label(2, 100, 0.5, 1.96),
            Some(ConfidentLabel::NonCellular)
        );
        // No NetInfo data: unclassifiable.
        assert_eq!(confident_label(0, 0, 0.5, 1.96), None);
        // z = 0 degenerates to the paper's plain threshold rule.
        assert_eq!(
            confident_label(1, 1, 0.5, 0.0),
            Some(ConfidentLabel::Cellular)
        );
    }

    #[test]
    fn summary_stricter_z_means_fewer_confident_blocks() {
        use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
        use netaddr::{Asn, Block24, BlockId};
        let mk = |i: u32, netinfo: u64, cell: u64| BeaconRecord {
            block: BlockId::V4(Block24::from_index(i)),
            asn: Asn(1),
            hits_total: netinfo,
            netinfo_hits: netinfo,
            cellular_hits: cell,
            wifi_hits: netinfo - cell,
            other_hits: 0,
        };
        let beacons = BeaconDataset::from_records(
            "t",
            vec![mk(1, 500, 480), mk(2, 4, 4), mk(3, 3, 2), mk(4, 200, 2)],
        );
        let demand = DemandDataset::from_raw(
            "t",
            vec![
                DemandRecord {
                    block: BlockId::V4(Block24::from_index(1)),
                    asn: Asn(1),
                    du: 80.0,
                },
                DemandRecord {
                    block: BlockId::V4(Block24::from_index(2)),
                    asn: Asn(1),
                    du: 20.0,
                },
            ],
        );
        let index = BlockIndex::build(&beacons, &demand);
        let loose = classify_with_confidence(&index, 0.5, 0.0);
        let strict = classify_with_confidence(&index, 0.5, 1.96);
        let paranoid = classify_with_confidence(&index, 0.5, 3.0);
        assert_eq!(loose.uncertain, 0, "z=0 never abstains");
        assert!(strict.cellular <= loose.cellular);
        assert!(paranoid.cellular <= strict.cellular);
        assert!(strict.uncertain > 0, "sparse blocks become uncertain");
        // The heavy block stays confidently cellular even at z=3.
        assert!(paranoid.cellular >= 1);
        assert!(paranoid.cellular_du >= 80.0 * 0.79); // normalized to 100k over 100
    }
}
