//! Demand distribution analyses (§6.2): how cellular traffic concentrates
//! across operators (Fig. 7, Table 7) and across subnets within an
//! operator (Fig. 8).

use std::collections::HashMap;

use asdb::AsDatabase;
use netaddr::{Asn, CountryCode};
use serde::{Deserialize, Serialize};

use crate::asid::AsAggregate;
use crate::classify::Classification;
use crate::index::BlockIndex;
use crate::mixed::MixedAnalysis;
use crate::stats::{count_for_share, top_k_share};

/// One row of the ranked operator table.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RankedAs {
    /// Rank, 1-based.
    pub rank: usize,
    /// The AS.
    pub asn: Asn,
    /// Registration country.
    pub country: CountryCode,
    /// Share of global cellular demand, as a fraction of 1.
    pub cell_share: f64,
    /// Whether §6.1 classified the AS as mixed.
    pub mixed: bool,
}

/// Fig. 7 / Table 7: cellular demand ranked across operators.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsDemandRanking {
    /// All cellular ASes in descending demand order.
    pub rows: Vec<RankedAs>,
}

impl AsDemandRanking {
    /// Build the ranking for the identified cellular AS set.
    pub fn build(mixed: &MixedAnalysis, as_db: &AsDatabase) -> Self {
        let total: f64 = mixed.verdicts.iter().map(|v| v.cell_du).sum();
        let rows = mixed
            .verdicts
            .iter()
            .enumerate()
            .map(|(i, v)| RankedAs {
                rank: i + 1,
                asn: v.asn,
                country: as_db
                    .get(v.asn)
                    .map(|r| r.country)
                    .unwrap_or_else(|| CountryCode::literal("ZZ")),
                cell_share: if total > 0.0 { v.cell_du / total } else { 0.0 },
                mixed: v.is_mixed,
            })
            .collect();
        AsDemandRanking { rows }
    }

    /// Top-k rows (Table 7 uses k = 10).
    pub fn top(&self, k: usize) -> &[RankedAs] {
        &self.rows[..k.min(self.rows.len())]
    }

    /// Share of global cellular demand held by the top-k ASes
    /// (paper: top-5 ≈ 35.9%, top-10 ≈ 38%).
    pub fn top_share(&self, k: usize) -> f64 {
        self.rows.iter().take(k).map(|r| r.cell_share).sum()
    }

    /// Fig. 7's series: (rank, share of global cellular demand).
    pub fn series(&self) -> Vec<(usize, f64)> {
        self.rows.iter().map(|r| (r.rank, r.cell_share)).collect()
    }
}

/// Fig. 8: demand of an operator's subnets ranked within each access
/// label.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubnetDemandProfile {
    /// The AS.
    pub asn: Asn,
    /// DU per cellular-labeled block, descending.
    pub cellular: Vec<f64>,
    /// DU per non-cellular block, descending.
    pub fixed: Vec<f64>,
}

impl SubnetDemandProfile {
    /// Build the profile for one AS.
    pub fn build(asn: Asn, index: &BlockIndex, classification: &Classification) -> Self {
        let mut cellular = Vec::new();
        let mut fixed = Vec::new();
        for o in index.iter().filter(|o| o.asn == asn) {
            if classification.is_cellular(o.block) {
                cellular.push(o.du);
            } else {
                fixed.push(o.du);
            }
        }
        let desc = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| b.partial_cmp(a).expect("DU is finite"));
        };
        desc(&mut cellular);
        desc(&mut fixed);
        SubnetDemandProfile {
            asn,
            cellular,
            fixed,
        }
    }

    /// Share of the AS's cellular demand held by its top-k cellular
    /// blocks (paper: 24-25 blocks ≈ 99.3-99.5% in the mixed showcase).
    pub fn cellular_top_share(&self, k: usize) -> f64 {
        top_k_share(&self.cellular, k)
    }

    /// Blocks needed to cover `share` of the cellular demand.
    pub fn cellular_blocks_for_share(&self, share: f64) -> usize {
        count_for_share(&self.cellular, share)
    }

    /// Blocks needed to cover `share` of the fixed demand (the paper's
    /// contrast: orders of magnitude more than cellular).
    pub fn fixed_blocks_for_share(&self, share: f64) -> usize {
        count_for_share(&self.fixed, share)
    }
}

/// Per-AS cellular demand values, used for Fig. 4a's candidate-set CDF.
pub fn cellular_demand_values(aggregates: &HashMap<Asn, AsAggregate>) -> Vec<f64> {
    aggregates
        .values()
        .filter(|a| a.cell_blocks() > 0)
        .map(|a| a.cell_du)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed::MixedVerdict;

    fn verdict(asn: u32, cell_du: f64, mixed: bool) -> MixedVerdict {
        MixedVerdict {
            asn: Asn(asn),
            cell_du,
            cfd: if mixed { 0.3 } else { 0.99 },
            cell_subnet_fraction: 0.5,
            is_mixed: mixed,
        }
    }

    #[test]
    fn ranking_orders_and_shares() {
        let mixed = MixedAnalysis {
            verdicts: vec![
                verdict(1, 50.0, false),
                verdict(2, 30.0, true),
                verdict(3, 20.0, false),
            ],
        };
        let ranking = AsDemandRanking::build(&mixed, &AsDatabase::new());
        assert_eq!(ranking.rows.len(), 3);
        assert_eq!(ranking.rows[0].asn, Asn(1));
        assert!((ranking.top_share(2) - 0.8).abs() < 1e-12);
        assert!((ranking.top_share(99) - 1.0).abs() < 1e-12);
        assert!(ranking.rows[1].mixed);
        assert_eq!(ranking.top(2).len(), 2);
        let series = ranking.series();
        assert_eq!(series[2], (3, 0.2));
    }

    #[test]
    fn subnet_profile_concentration() {
        let profile = SubnetDemandProfile {
            asn: Asn(1),
            cellular: vec![500.0, 300.0, 190.0, 5.0, 3.0, 2.0],
            fixed: vec![100.0; 50],
        };
        assert!(profile.cellular_top_share(3) > 0.98);
        assert_eq!(profile.cellular_blocks_for_share(0.98), 3);
        // Fixed demand spreads: covering 98% takes nearly all 50 blocks.
        assert!(profile.fixed_blocks_for_share(0.98) >= 49);
    }
}
