//! Stage-timing instrumentation for the study pipeline.
//!
//! Every pipeline stage records its wall-clock cost and workload size
//! into a [`TimingReport`]. The report rides along on [`crate::Study`]
//! but is excluded from serialization (`#[serde(skip)]`): wall-clock
//! varies run to run, and the serialized study must stay byte-identical
//! across runs and thread counts. Harnesses that want the numbers (the
//! `repro` binary) serialize the report separately.
//!
//! The module also owns the `CELLSPOT_THREADS` knob for pinning the
//! global rayon pool to a fixed width — reproducible benchmarking needs
//! a known thread count even though results never depend on it.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Environment variable naming a fixed rayon thread count. Unset or
/// unparsable means rayon's default (one thread per logical core).
pub const THREADS_ENV: &str = "CELLSPOT_THREADS";

/// Where a resolved thread count came from. The precedence is shared by
/// every subcommand of the `cellspot` CLI and the `repro` harness:
/// **flag > environment > auto**.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadsChoice {
    /// `--threads N` was given (and positive): it wins outright.
    Flag(usize),
    /// `CELLSPOT_THREADS=N` was set to a positive integer and no flag
    /// overrode it.
    Env(usize),
    /// Neither knob was usable: rayon's default width (one thread per
    /// logical core).
    Auto,
}

impl ThreadsChoice {
    /// The explicit width to pin, `None` for auto.
    pub fn pinned(&self) -> Option<usize> {
        match *self {
            ThreadsChoice::Flag(n) | ThreadsChoice::Env(n) => Some(n),
            ThreadsChoice::Auto => None,
        }
    }

    /// Which knob decided (`"flag"`, `"env"`, `"auto"`), for logs.
    pub fn source(&self) -> &'static str {
        match self {
            ThreadsChoice::Flag(_) => "flag",
            ThreadsChoice::Env(_) => "env",
            ThreadsChoice::Auto => "auto",
        }
    }
}

/// Resolve the thread-count knobs in the documented precedence order —
/// a `--threads` flag value beats `CELLSPOT_THREADS`, which beats auto.
/// Reads the environment; [`resolve_threads_with`] is the pure core.
pub fn resolve_threads(flag: Option<usize>) -> ThreadsChoice {
    resolve_threads_with(flag, std::env::var(THREADS_ENV).ok().as_deref())
}

/// Pure precedence resolution: `flag` (if positive) beats `env` (if it
/// parses to a positive integer) beats auto. Zero and unparsable values
/// are treated as absent at both levels.
pub fn resolve_threads_with(flag: Option<usize>, env: Option<&str>) -> ThreadsChoice {
    if let Some(n) = flag.filter(|&n| n > 0) {
        return ThreadsChoice::Flag(n);
    }
    if let Some(n) = env
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return ThreadsChoice::Env(n);
    }
    ThreadsChoice::Auto
}

/// Apply a resolved [`ThreadsChoice`] to the global rayon pool.
/// Returns the pinned width, or `None` for auto.
pub fn configure_threads(choice: ThreadsChoice) -> Option<usize> {
    configure_thread_pool_with(choice.pinned())
}

/// Pin the global rayon pool to `CELLSPOT_THREADS` threads, if the
/// variable is set to a positive integer. Returns the pinned width, or
/// `None` when the variable is absent or invalid.
///
/// Call this once, early — rayon's global pool can only be configured
/// before first use; later calls are silently ignored (the pool already
/// exists, and determinism does not depend on its width anyway).
pub fn configure_thread_pool() -> Option<usize> {
    configure_threads(resolve_threads(None))
}

/// Pin the global rayon pool to an explicit width (e.g. from a CLI
/// flag). `None` or zero leaves the pool untouched and returns `None`.
pub fn configure_thread_pool_with(threads: Option<usize>) -> Option<usize> {
    let n = threads.filter(|&n| n > 0)?;
    // An Err here means the global pool was already built; the requested
    // width still describes intent, so report it either way.
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global();
    Some(n)
}

/// One pipeline stage's wall-clock cost and workload size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (e.g. `join`, `classify`, `validate`).
    pub stage: String,
    /// Wall-clock milliseconds spent in the stage.
    pub millis: f64,
    /// Items the stage processed or produced (blocks, carriers, sweep
    /// points…) — whatever unit makes the stage's throughput meaningful.
    pub items: u64,
}

/// Ordered per-stage wall-clock timings for one pipeline run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Stages in execution order.
    pub stages: Vec<StageTiming>,
}

impl TimingReport {
    /// An empty report.
    pub fn new() -> Self {
        TimingReport::default()
    }

    /// Run `f`, timing it as `stage`; `items` maps the stage's output to
    /// its workload count.
    pub fn stage<T>(
        &mut self,
        stage: &str,
        items: impl FnOnce(&T) -> u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let start = Instant::now();
        let out = f();
        self.stages.push(StageTiming {
            stage: stage.to_string(),
            millis: start.elapsed().as_secs_f64() * 1e3,
            items: items(&out),
        });
        out
    }

    /// Record an externally measured stage (harness-side steps like world
    /// generation or artifact rendering).
    pub fn push(&mut self, stage: impl Into<String>, millis: f64, items: u64) {
        self.stages.push(StageTiming {
            stage: stage.into(),
            millis,
            items,
        });
    }

    /// Append another report's stages after this one's.
    pub fn extend(&mut self, other: &TimingReport) {
        self.stages.extend(other.stages.iter().cloned());
    }

    /// Look up a stage by name (first match).
    pub fn get(&self, stage: &str) -> Option<&StageTiming> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Total wall-clock across all recorded stages, in milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.stages.iter().map(|s| s.millis).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_records_time_and_items() {
        let mut t = TimingReport::new();
        let out = t.stage(
            "double",
            |v: &Vec<u32>| v.len() as u64,
            || (0..100u32).map(|x| x * 2).collect::<Vec<u32>>(),
        );
        assert_eq!(out.len(), 100);
        assert_eq!(t.stages.len(), 1);
        let s = t.get("double").expect("stage recorded");
        assert_eq!(s.items, 100);
        assert!(s.millis >= 0.0);
        assert!(t.total_millis() >= 0.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn push_extend_and_lookup() {
        let mut a = TimingReport::new();
        a.push("worldgen", 12.5, 7_000);
        let mut b = TimingReport::new();
        b.push("join", 3.25, 6_500);
        a.extend(&b);
        assert_eq!(a.stages.len(), 2);
        assert_eq!(a.stages[0].stage, "worldgen");
        assert_eq!(a.stages[1].stage, "join");
        assert!((a.total_millis() - 15.75).abs() < 1e-9);
        assert!(a.get("missing").is_none());
    }

    #[test]
    fn report_serializes_round_trip() {
        let mut t = TimingReport::new();
        t.push("classify", 1.0, 42);
        let json = serde_json::to_string(&t).expect("serialize");
        let back: TimingReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(t, back);
    }

    #[test]
    fn thread_pool_knob_parses() {
        assert_eq!(configure_thread_pool_with(Some(0)), None);
        // Pinning is best-effort (the global pool may already exist), but
        // the requested width is always reported back.
        assert_eq!(configure_thread_pool_with(Some(2)), Some(2));
        assert_eq!(configure_thread_pool_with(None), None);
    }

    #[test]
    fn threads_precedence_is_flag_env_auto() {
        // Flag beats env beats auto.
        assert_eq!(
            resolve_threads_with(Some(3), Some("8")),
            ThreadsChoice::Flag(3)
        );
        assert_eq!(resolve_threads_with(None, Some("8")), ThreadsChoice::Env(8));
        assert_eq!(resolve_threads_with(None, None), ThreadsChoice::Auto);
        // Zero or unparsable values fall through a level instead of
        // masking the one below.
        assert_eq!(
            resolve_threads_with(Some(0), Some("8")),
            ThreadsChoice::Env(8)
        );
        assert_eq!(resolve_threads_with(None, Some("0")), ThreadsChoice::Auto);
        assert_eq!(
            resolve_threads_with(None, Some("lots")),
            ThreadsChoice::Auto
        );
        assert_eq!(
            resolve_threads_with(Some(0), Some(" 2 ")),
            ThreadsChoice::Env(2)
        );
        // Accessors agree with the variants.
        assert_eq!(ThreadsChoice::Flag(3).pinned(), Some(3));
        assert_eq!(ThreadsChoice::Env(8).source(), "env");
        assert_eq!(ThreadsChoice::Auto.pinned(), None);
    }
}
