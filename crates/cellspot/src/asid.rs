//! AS-level cellular identification (§5): per-AS aggregates, the straw-man
//! candidate set, and the three filtering heuristics of Table 5.

use std::collections::HashMap;

use asdb::AsDatabase;
use netaddr::Asn;
use serde::{Deserialize, Serialize};

use crate::classify::Classification;
use crate::index::BlockIndex;

/// Per-AS aggregate of the joined observations.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AsAggregate {
    /// Blocks observed in either dataset.
    pub blocks: usize,
    /// IPv4 blocks labeled cellular.
    pub cell_blocks24: usize,
    /// IPv6 blocks labeled cellular.
    pub cell_blocks48: usize,
    /// Demand Units over all of the AS's blocks.
    pub total_du: f64,
    /// Demand Units over the cellular-labeled blocks — the paper's
    /// Cellular Demand (CD).
    pub cell_du: f64,
    /// NetInfo-enabled beacon hits across the AS.
    pub netinfo_hits: u64,
    /// All beacon hits across the AS.
    pub beacon_hits: u64,
}

impl AsAggregate {
    /// Cellular blocks across both families.
    pub fn cell_blocks(&self) -> usize {
        self.cell_blocks24 + self.cell_blocks48
    }

    /// The paper's Cellular Fraction of Demand (CFD).
    pub fn cfd(&self) -> f64 {
        if self.total_du > 0.0 {
            self.cell_du / self.total_du
        } else {
            0.0
        }
    }
}

/// Chunk size for the parallel per-AS fold. Fixed (never derived from the
/// thread count) so chunk boundaries — and with them the order of the
/// non-associative `f64` additions — depend only on the data.
const AGG_CHUNK: usize = 4096;

/// Aggregate the joined index per AS under a given classification.
///
/// The index is folded over fixed-size chunks in parallel; chunk partials
/// are merged sequentially in chunk order, so every AS's demand sums
/// accumulate in the same order for any thread count and the result is
/// bit-deterministic.
pub fn aggregate_by_as(
    index: &BlockIndex,
    classification: &Classification,
) -> HashMap<Asn, AsAggregate> {
    use rayon::prelude::*;
    let partials: Vec<HashMap<Asn, AsAggregate>> = index
        .as_slice()
        .par_chunks(AGG_CHUNK)
        .map(|chunk| {
            let mut map: HashMap<Asn, AsAggregate> = HashMap::new();
            for o in chunk {
                let a = map.entry(o.asn).or_default();
                a.blocks += 1;
                a.total_du += o.du;
                a.netinfo_hits += o.netinfo_hits;
                a.beacon_hits += o.beacon_hits;
                if classification.is_cellular(o.block) {
                    if o.block.is_v4() {
                        a.cell_blocks24 += 1;
                    } else {
                        a.cell_blocks48 += 1;
                    }
                    a.cell_du += o.du;
                }
            }
            map
        })
        .collect();
    let mut map: HashMap<Asn, AsAggregate> = HashMap::new();
    for partial in partials {
        for (asn, p) in partial {
            let a = map.entry(asn).or_default();
            a.blocks += p.blocks;
            a.cell_blocks24 += p.cell_blocks24;
            a.cell_blocks48 += p.cell_blocks48;
            a.total_du += p.total_du;
            a.cell_du += p.cell_du;
            a.netinfo_hits += p.netinfo_hits;
            a.beacon_hits += p.beacon_hits;
        }
    }
    map
}

/// Thresholds for the three AS-filter rules (§5.1).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Rule 1: minimum cumulative cellular demand, in DU (paper: 0.1).
    pub min_cell_du: f64,
    /// Rule 2: minimum NetInfo-enabled beacon responses (paper: 300 at the
    /// paper's hit volume; scale together with the world's hit budget).
    pub min_netinfo_hits: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            min_cell_du: 0.1,
            min_netinfo_hits: 300.0,
        }
    }
}

/// The outcome of the §5 pipeline — Table 5's rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsFilterOutcome {
    /// Straw-man candidates: every AS with ≥ 1 cellular-labeled block.
    pub candidates: Vec<Asn>,
    /// Removed by rule 1 (cellular demand < threshold).
    pub removed_low_demand: Vec<Asn>,
    /// Removed by rule 2 (beacon responses < threshold).
    pub removed_low_hits: Vec<Asn>,
    /// Removed by rule 3 (CAIDA class is Content or unknown).
    pub removed_class: Vec<Asn>,
    /// The surviving cellular AS set (paper: 668).
    pub cellular_ases: Vec<Asn>,
}

impl AsFilterOutcome {
    /// Table 5 row counts: (candidates, after rule 1, after rule 2, final).
    pub fn table5_counts(&self) -> (usize, usize, usize, usize) {
        let c = self.candidates.len();
        let r1 = c - self.removed_low_demand.len();
        let r2 = r1 - self.removed_low_hits.len();
        let r3 = r2 - self.removed_class.len();
        (c, r1, r2, r3)
    }
}

/// Run the straw-man tagging plus the three filtering heuristics.
///
/// Rules apply in the paper's order; each AS lands in exactly one removal
/// bucket (the first rule that rejects it) or in the final set.
pub fn identify_cellular_ases(
    aggregates: &HashMap<Asn, AsAggregate>,
    as_db: &AsDatabase,
    cfg: &FilterConfig,
) -> AsFilterOutcome {
    let mut candidates: Vec<Asn> = aggregates
        .iter()
        .filter(|(_, a)| a.cell_blocks() > 0)
        .map(|(asn, _)| *asn)
        .collect();
    candidates.sort();

    let mut removed_low_demand = Vec::new();
    let mut removed_low_hits = Vec::new();
    let mut removed_class = Vec::new();
    let mut cellular_ases = Vec::new();

    for &asn in &candidates {
        let a = &aggregates[&asn];
        if a.cell_du < cfg.min_cell_du {
            removed_low_demand.push(asn);
            continue;
        }
        if (a.netinfo_hits as f64) < cfg.min_netinfo_hits {
            removed_low_hits.push(asn);
            continue;
        }
        let keeps = as_db
            .get(asn)
            .map(|r| r.class.passes_access_filter())
            // ASes absent from the classification dataset have "no known
            // class", which the paper filters out.
            .unwrap_or(false);
        if !keeps {
            removed_class.push(asn);
            continue;
        }
        cellular_ases.push(asn);
    }

    AsFilterOutcome {
        candidates,
        removed_low_demand,
        removed_low_hits,
        removed_class,
        cellular_ases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::{AsKind, AsRecord};
    use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
    use netaddr::{Block24, BlockId, Continent, CountryCode};

    /// Build an index with four ASes: a healthy cellular op, a tiny one,
    /// a low-visibility one, and a proxy (Content class).
    fn setup() -> (BlockIndex, Classification, AsDatabase) {
        let mut beacons = Vec::new();
        let mut demand = Vec::new();
        let mut add = |asn: u32, idx: u32, netinfo: u64, cell: u64, du: f64| {
            let block = BlockId::V4(Block24::from_index(idx));
            if netinfo > 0 {
                beacons.push(BeaconRecord {
                    block,
                    asn: Asn(asn),
                    hits_total: netinfo * 8,
                    netinfo_hits: netinfo,
                    cellular_hits: cell,
                    wifi_hits: netinfo - cell,
                    other_hits: 0,
                });
            }
            if du > 0.0 {
                demand.push(DemandRecord {
                    block,
                    asn: Asn(asn),
                    du,
                });
            }
        };
        // AS 1: healthy cellular — two cellular blocks, lots of demand.
        add(1, 100, 5_000, 4_600, 500.0);
        add(1, 101, 2_000, 1_900, 100.0);
        // AS 2: tiny cellular — rule 1 (du sums below threshold after
        // normalization: 0.05 of 1000 → 5 DU... keep raw DU small).
        add(2, 200, 50, 48, 0.0005);
        // AS 3: demand but almost no beacons — rule 2.
        add(3, 300, 40, 38, 300.0);
        // AS 4: proxy (Content class) — rule 3.
        add(4, 400, 8_000, 7_000, 99.0);
        // AS 5: fixed-line, never a candidate.
        add(5, 500, 9_000, 5, 400.0);
        let index = BlockIndex::build(
            &BeaconDataset::from_records("t", beacons),
            &DemandDataset::from_raw("t", demand),
        );
        let class = Classification::with_default_threshold(&index);
        let db = AsDatabase::from_records(vec![
            rec(1, AsKind::DedicatedCellular),
            rec(2, AsKind::DedicatedCellular),
            rec(3, AsKind::DedicatedCellular),
            rec(4, AsKind::CloudProxy),
            rec(5, AsKind::FixedOnly),
        ]);
        (index, class, db)
    }

    fn rec(asn: u32, kind: AsKind) -> AsRecord {
        AsRecord::new(
            Asn(asn),
            format!("as{asn}"),
            CountryCode::literal("US"),
            Continent::NorthAmerica,
            kind,
        )
    }

    #[test]
    fn aggregates_sum_correctly() {
        let (index, class, _) = setup();
        let aggs = aggregate_by_as(&index, &class);
        let a1 = &aggs[&Asn(1)];
        assert_eq!(a1.blocks, 2);
        assert_eq!(a1.cell_blocks24, 2);
        assert_eq!(a1.netinfo_hits, 7_000);
        assert!((a1.cfd() - 1.0).abs() < 1e-12);
        let a5 = &aggs[&Asn(5)];
        assert_eq!(a5.cell_blocks(), 0);
        assert_eq!(a5.cfd(), 0.0);
    }

    #[test]
    fn filter_rules_apply_in_order() {
        let (index, class, db) = setup();
        let aggs = aggregate_by_as(&index, &class);
        // DU normalization: raw demand sums to 1399.0005 → 100k; rule-1
        // threshold of 0.1 DU ≈ raw 0.0014. AS2's 0.0005 falls below.
        let cfg = FilterConfig {
            min_cell_du: 0.1,
            min_netinfo_hits: 300.0,
        };
        let out = identify_cellular_ases(&aggs, &db, &cfg);
        assert_eq!(out.candidates, vec![Asn(1), Asn(2), Asn(3), Asn(4)]);
        assert_eq!(out.removed_low_demand, vec![Asn(2)]);
        assert_eq!(out.removed_low_hits, vec![Asn(3)]);
        assert_eq!(out.removed_class, vec![Asn(4)]);
        assert_eq!(out.cellular_ases, vec![Asn(1)]);
        assert_eq!(out.table5_counts(), (4, 3, 2, 1));
    }

    #[test]
    fn unknown_as_is_filtered_by_class_rule() {
        let (index, class, _) = setup();
        let aggs = aggregate_by_as(&index, &class);
        // Empty database: everything that survives rules 1-2 dies at 3.
        let out = identify_cellular_ases(&aggs, &AsDatabase::new(), &FilterConfig::default());
        assert!(out.cellular_ases.is_empty());
        assert_eq!(out.removed_class, vec![Asn(1), Asn(4)]);
    }
}
