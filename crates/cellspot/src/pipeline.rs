//! End-to-end study orchestration: the [`Pipeline`] builder is the
//! crate's blessed entry point; it joins the datasets, runs every stage
//! of the paper's methodology, and reports spans/metrics for each stage
//! into an attached [`cellobs::Observer`].

use std::time::Instant;

use asdb::{AsDatabase, CarrierGroundTruth};
use cellobs::Observer;
use serde::{Deserialize, Serialize};

use cdnsim::{BeaconDataset, DemandDataset};
use dnssim::DnsSim;

use crate::asid::{
    aggregate_by_as, identify_cellular_ases, AsAggregate, AsFilterOutcome, FilterConfig,
};
use crate::classify::{Classification, RatioDistributions, DEFAULT_THRESHOLD};
use crate::demand::AsDemandRanking;
use crate::dns::DnsAnalysis;
use crate::error::CellspotError;
use crate::index::BlockIndex;
use crate::metrics::{validate_carrier, CarrierValidation};
use crate::mixed::{MixedAnalysis, DEDICATED_CFD};
use crate::sweep::{threshold_sweep, SweepCurve};
use crate::timing::{configure_threads, resolve_threads, TimingReport};
use crate::world_view::WorldView;

/// Knobs for a full study run (defaults are the paper's choices).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Cellular-ratio threshold (paper: 0.5).
    pub threshold: f64,
    /// AS-filter rule 1 threshold, DU (paper: 0.1).
    pub min_cell_du: f64,
    /// AS-filter rule 2 threshold, NetInfo beacon responses (paper: 300;
    /// scale along with the world's hit budget for scaled worlds).
    pub min_netinfo_hits: f64,
    /// Dedication threshold on CFD (paper: 0.9).
    pub dedicated_cfd: f64,
    /// Points per threshold-sweep curve (Fig. 3).
    pub sweep_steps: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            threshold: DEFAULT_THRESHOLD,
            min_cell_du: 0.1,
            min_netinfo_hits: 300.0,
            dedicated_cfd: DEDICATED_CFD,
            sweep_steps: 50,
        }
    }
}

impl StudyConfig {
    /// Paper defaults with rule 2's hit threshold rescaled for a world
    /// generated at a reduced beacon-hit budget.
    pub fn with_min_hits(mut self, min_netinfo_hits: f64) -> Self {
        self.min_netinfo_hits = min_netinfo_hits;
        self
    }

    /// Check every knob is in range before any stage runs.
    pub fn validate(&self) -> Result<(), CellspotError> {
        if !(0.0..=1.0).contains(&self.threshold) {
            return Err(CellspotError::Config(format!(
                "threshold {} outside [0, 1]",
                self.threshold
            )));
        }
        if !(0.0..=1.0).contains(&self.dedicated_cfd) {
            return Err(CellspotError::Config(format!(
                "dedicated_cfd {} outside [0, 1]",
                self.dedicated_cfd
            )));
        }
        if !(self.min_cell_du.is_finite() && self.min_cell_du >= 0.0) {
            return Err(CellspotError::Config(format!(
                "min_cell_du {} must be finite and non-negative",
                self.min_cell_du
            )));
        }
        if !(self.min_netinfo_hits.is_finite() && self.min_netinfo_hits >= 0.0) {
            return Err(CellspotError::Config(format!(
                "min_netinfo_hits {} must be finite and non-negative",
                self.min_netinfo_hits
            )));
        }
        if self.sweep_steps == 0 {
            return Err(CellspotError::Config(
                "sweep_steps must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Everything the study produces. Field by field this maps onto the
/// paper's tables and figures; the `report` crate renders them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Study {
    /// Configuration used.
    pub config: StudyConfig,
    /// The joined BEACON ⨝ DEMAND view.
    pub index: BlockIndex,
    /// Subnet classification at the operating threshold (§4).
    pub classification: Classification,
    /// Fig. 2's ratio distributions.
    pub ratio_distributions: RatioDistributions,
    /// Carrier validations at the operating threshold (Table 3).
    pub validations: Vec<CarrierValidation>,
    /// Fig. 3's sensitivity curves.
    pub sweeps: Vec<SweepCurve>,
    /// Per-AS aggregates.
    #[serde(with = "serde_asn_map")]
    pub as_aggregates: std::collections::HashMap<netaddr::Asn, AsAggregate>,
    /// §5's filter pipeline outcome (Table 5).
    pub filter: AsFilterOutcome,
    /// §6.1's mixed/dedicated analysis (Fig. 5).
    pub mixed: MixedAnalysis,
    /// §6.2's operator demand ranking (Fig. 7 / Table 7).
    pub ranking: AsDemandRanking,
    /// §6.3's DNS analysis, when resolver data was supplied.
    pub dns: Option<DnsAnalysis>,
    /// §7's geographic rollups (Tables 4/8, Figs. 11/12).
    pub view: WorldView,
    /// Per-stage wall-clock timings for this run. Excluded from
    /// serialization: timings vary run to run, while the serialized study
    /// must stay byte-identical across runs and thread counts.
    #[serde(skip)]
    pub timing: TimingReport,
}

/// JSON maps require string keys, so the per-AS aggregate map serializes
/// as a sorted vector of `(asn, aggregate)` pairs.
mod serde_asn_map {
    use std::collections::HashMap;

    use netaddr::Asn;
    use serde::de::Deserializer;
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};

    use crate::asid::AsAggregate;

    pub fn serialize<S: Serializer>(
        map: &HashMap<Asn, AsAggregate>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        let mut pairs: Vec<(&Asn, &AsAggregate)> = map.iter().collect();
        pairs.sort_by_key(|(asn, _)| **asn);
        pairs.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<HashMap<Asn, AsAggregate>, D::Error> {
        let pairs: Vec<(Asn, AsAggregate)> = Vec::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Builder for a full study run: the one public entry point for the
/// batch pipeline.
///
/// ```ignore
/// let report = Pipeline::new(&beacons, &demand)
///     .as_db(&world.as_db)
///     .carriers(&world.carriers)
///     .dns(&dns)
///     .threads(8)
///     .observer(obs.clone())
///     .run()?;
/// ```
///
/// The builder deliberately takes *observable* inputs only (datasets, AS
/// metadata, resolver affinities) — never the synthetic world itself, so
/// the methodology can't peek at hidden ground truth (`worldgen` stays a
/// dev-dependency). The umbrella `cellspotting` crate offers a
/// `Pipeline` over a `WorldConfig` for the common world-to-study path.
pub struct Pipeline<'a> {
    beacons: &'a BeaconDataset,
    demand: &'a DemandDataset,
    as_db: Option<&'a AsDatabase>,
    carriers: &'a [CarrierGroundTruth],
    dns: Option<&'a DnsSim>,
    config: StudyConfig,
    threads: Option<usize>,
    observer: Observer,
}

impl<'a> Pipeline<'a> {
    /// A pipeline over a dataset pair, with paper-default configuration,
    /// no AS metadata, no carriers, no DNS, auto threads, and a disabled
    /// observer.
    pub fn new(beacons: &'a BeaconDataset, demand: &'a DemandDataset) -> Self {
        Pipeline {
            beacons,
            demand,
            as_db: None,
            carriers: &[],
            dns: None,
            config: StudyConfig::default(),
            threads: None,
            observer: Observer::disabled(),
        }
    }

    /// AS metadata for the §5 filters and §7 rollups. Without it those
    /// stages still run, over an empty database.
    pub fn as_db(mut self, as_db: &'a AsDatabase) -> Self {
        self.as_db = Some(as_db);
        self
    }

    /// Ground-truth carriers to validate against (Table 3 / Fig. 3).
    pub fn carriers(mut self, carriers: &'a [CarrierGroundTruth]) -> Self {
        self.carriers = carriers;
        self
    }

    /// Resolver data for the §6.3 DNS analysis.
    pub fn dns(mut self, dns: &'a DnsSim) -> Self {
        self.dns = Some(dns);
        self
    }

    /// Replace the whole study configuration.
    pub fn study_config(mut self, config: StudyConfig) -> Self {
        self.config = config;
        self
    }

    /// Set just the classification threshold.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.config.threshold = threshold;
        self
    }

    /// Pin the rayon pool width for this process. Resolution follows the
    /// documented precedence (builder/flag > `CELLSPOT_THREADS` > auto);
    /// results never depend on the width.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attach an observer; every stage reports a span plus
    /// `pipeline.<stage>.items` counters into it.
    pub fn observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Run the full methodology.
    pub fn run(self) -> Result<PipelineReport, CellspotError> {
        self.config.validate()?;
        configure_threads(resolve_threads(self.threads));
        let empty_db;
        let as_db = match self.as_db {
            Some(db) => db,
            None => {
                empty_db = AsDatabase::new();
                &empty_db
            }
        };
        let study = run_study_observed(
            self.beacons,
            self.demand,
            as_db,
            self.carriers,
            self.dns,
            self.config,
            &self.observer,
        )?;
        Ok(PipelineReport { study })
    }

    /// Run only the join + classification front of the pipeline — the
    /// light path behind `cellspot classify`.
    pub fn classify(self) -> Result<(BlockIndex, Classification), CellspotError> {
        self.config.validate()?;
        configure_threads(resolve_threads(self.threads));
        let obs = &self.observer;
        let mut timing = TimingReport::new();
        let index = stage(
            &mut timing,
            obs,
            "join",
            |i: &Result<BlockIndex, CellspotError>| i.as_ref().map_or(0, |i| i.len() as u64),
            || BlockIndex::try_build(self.beacons, self.demand),
        )?;
        let classification = stage(
            &mut timing,
            obs,
            "classify",
            |c: &Classification| c.len() as u64,
            || Classification::new(&index, self.config.threshold),
        );
        record_classify_detail(obs, &index, &classification);
        Ok((index, classification))
    }
}

/// The typed result of a [`Pipeline`] run.
///
/// Dereferences to the underlying [`Study`] (every table/figure field),
/// and adds the headline accessors most callers reach for.
pub struct PipelineReport {
    /// The full study output.
    pub study: Study,
}

impl std::ops::Deref for PipelineReport {
    type Target = Study;

    fn deref(&self) -> &Study {
        &self.study
    }
}

impl PipelineReport {
    /// Unwrap into the raw [`Study`].
    pub fn into_study(self) -> Study {
        self.study
    }

    /// (IPv4 /24, IPv6 /48) cellular block counts.
    pub fn cellular_blocks(&self) -> (usize, usize) {
        self.study.classification.block_counts()
    }

    /// Number of ASes the §5 filters retained as cellular.
    pub fn cellular_as_count(&self) -> usize {
        self.study.filter.cellular_ases.len()
    }

    /// Fraction of cellular ASes that are mixed (§6.1).
    pub fn mixed_fraction(&self) -> f64 {
        self.study.mixed.mixed_fraction()
    }

    /// Global cellular share of demand, percent (§7).
    pub fn global_cellular_pct(&self) -> f64 {
        self.study.view.global_cellular_pct()
    }

    /// Per-stage wall-clock timings.
    pub fn timing(&self) -> &TimingReport {
        &self.study.timing
    }
}

/// Run `f` as one pipeline stage: wall-clock into `timing`, a span plus
/// a `pipeline.<name>.items` counter into the observer.
fn stage<T>(
    timing: &mut TimingReport,
    obs: &Observer,
    name: &str,
    items: impl FnOnce(&T) -> u64,
    f: impl FnOnce() -> T,
) -> T {
    let mut span = obs.span(name);
    let start = Instant::now();
    let out = f();
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let n = items(&out);
    span.set_items(n);
    drop(span);
    timing.push(name, millis, n);
    obs.counter(&format!("pipeline.{name}.items")).add(n);
    out
}

/// Classification detail metrics shared by `run` and `classify`.
fn record_classify_detail(obs: &Observer, index: &BlockIndex, classification: &Classification) {
    if !obs.is_enabled() {
        return;
    }
    let (v4, v6) = classification.block_counts();
    obs.counter("pipeline.classify.cellular_v4").add(v4 as u64);
    obs.counter("pipeline.classify.cellular_v6").add(v6 as u64);
    let hist = obs.histogram("pipeline.join.netinfo_hits_per_block");
    for o in index.iter() {
        hist.record(o.netinfo_hits);
    }
}

/// The instrumented study runner behind [`Pipeline::run`]. Errors when
/// the datasets disagree on a block's origin AS (see
/// [`BlockIndex::try_build`]).
pub(crate) fn run_study_observed(
    beacons: &BeaconDataset,
    demand: &DemandDataset,
    as_db: &AsDatabase,
    carriers: &[CarrierGroundTruth],
    dns: Option<&DnsSim>,
    config: StudyConfig,
    obs: &Observer,
) -> Result<Study, CellspotError> {
    use rayon::prelude::*;
    let mut timing = TimingReport::new();
    let mut root = obs.span("study");

    let index = stage(
        &mut timing,
        obs,
        "join",
        |i: &Result<BlockIndex, CellspotError>| i.as_ref().map_or(0, |i| i.len() as u64),
        || BlockIndex::try_build(beacons, demand),
    )?;
    root.set_items(index.len() as u64);
    let classification = stage(
        &mut timing,
        obs,
        "classify",
        |c: &Classification| c.len() as u64,
        || Classification::new(&index, config.threshold),
    );
    record_classify_detail(obs, &index, &classification);
    let ratio_distributions = stage(
        &mut timing,
        obs,
        "ratio_distributions",
        |_: &RatioDistributions| index.len() as u64,
        || RatioDistributions::build(&index),
    );

    let validations = stage(
        &mut timing,
        obs,
        "validate",
        |v: &Vec<CarrierValidation>| v.len() as u64,
        || {
            carriers
                .par_iter()
                .map(|gt| validate_carrier(gt, &classification, &index))
                .collect()
        },
    );
    let sweeps = stage(
        &mut timing,
        obs,
        "sweep",
        |s: &Vec<SweepCurve>| s.iter().map(|c| c.points.len() as u64).sum(),
        || {
            carriers
                .par_iter()
                .map(|gt| threshold_sweep(gt, &index, config.sweep_steps))
                .collect()
        },
    );

    let as_aggregates = stage(
        &mut timing,
        obs,
        "aggregate_by_as",
        |m: &std::collections::HashMap<netaddr::Asn, AsAggregate>| m.len() as u64,
        || aggregate_by_as(&index, &classification),
    );
    let filter = stage(
        &mut timing,
        obs,
        "as_filter",
        |f: &AsFilterOutcome| f.candidates.len() as u64,
        || {
            identify_cellular_ases(
                &as_aggregates,
                as_db,
                &FilterConfig {
                    min_cell_du: config.min_cell_du,
                    min_netinfo_hits: config.min_netinfo_hits,
                },
            )
        },
    );
    obs.counter("pipeline.as_filter.cellular_ases")
        .add(filter.cellular_ases.len() as u64);
    let mixed = stage(
        &mut timing,
        obs,
        "mixed",
        |m: &MixedAnalysis| m.verdicts.len() as u64,
        || MixedAnalysis::build(&filter.cellular_ases, &as_aggregates, config.dedicated_cfd),
    );
    if obs.is_enabled() {
        let (n_mixed, n_dedicated) = mixed.counts();
        obs.counter("pipeline.mixed.mixed_ases").add(n_mixed as u64);
        obs.counter("pipeline.mixed.dedicated_ases")
            .add(n_dedicated as u64);
    }
    let ranking = stage(
        &mut timing,
        obs,
        "ranking",
        |r: &AsDemandRanking| r.rows.len() as u64,
        || AsDemandRanking::build(&mixed, as_db),
    );
    let dns_analysis = stage(
        &mut timing,
        obs,
        "dns",
        |d: &Option<DnsAnalysis>| u64::from(d.is_some()),
        || dns.map(|d| DnsAnalysis::build(d, &index, &classification)),
    );
    let view = stage(
        &mut timing,
        obs,
        "world_view",
        |_: &WorldView| index.len() as u64,
        || WorldView::build(&index, &classification, as_db),
    );
    drop(root);

    Ok(Study {
        config,
        index,
        classification,
        ratio_distributions,
        validations,
        sweeps,
        as_aggregates,
        filter,
        mixed,
        ranking,
        dns: dns_analysis,
        view,
        timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnsim::generate_datasets;
    use worldgen::{World, WorldConfig};

    /// One shared mini-world study for the smoke assertions below.
    fn mini_study() -> (World, Study) {
        let wcfg = WorldConfig::mini();
        let min_hits = wcfg.scaled_min_beacon_hits();
        let world = World::generate(wcfg);
        let (beacons, demand) = generate_datasets(&world);
        let dns = dnssim::generate_dns(&world);
        let study = Pipeline::new(&beacons, &demand)
            .as_db(&world.as_db)
            .carriers(&world.carriers)
            .dns(&dns)
            .study_config(StudyConfig::default().with_min_hits(min_hits))
            .run()
            .expect("default config is valid")
            .into_study();
        (world, study)
    }

    #[test]
    fn pipeline_end_to_end_smoke() {
        let (world, study) = mini_study();
        // Something was classified and the filter retained a cellular set
        // close to ground truth (669 genuine cellular ASes).
        assert!(study.classification.len() > 300);
        let n = study.filter.cellular_ases.len();
        assert!(
            (560..=720).contains(&n),
            "cellular ASes detected: {n} (ground truth 669)"
        );
        // Mixed majority.
        let frac = study.mixed.mixed_fraction();
        assert!((0.45..0.75).contains(&frac), "mixed fraction {frac}");
        // Global cellular percent in the paper's ballpark.
        let pct = study.view.global_cellular_pct();
        assert!((10.0..25.0).contains(&pct), "global cellular {pct:.1}%");
        // Validations exist for the three carriers.
        assert_eq!(study.validations.len(), 3);
        assert_eq!(study.sweeps.len(), 3);
        // DNS analysis populated.
        assert!(study.dns.is_some());
        let _ = &world;
    }

    #[test]
    fn filter_recovers_mostly_true_cellular_ases() {
        let (world, study) = mini_study();
        let truth: std::collections::HashSet<_> = world
            .operators
            .ops
            .iter()
            .filter(|o| o.role == worldgen::OperatorRole::Normal && o.kind.is_cellular_access())
            .map(|o| o.asn)
            .collect();
        let detected: std::collections::HashSet<_> =
            study.filter.cellular_ases.iter().copied().collect();
        let tp = detected.intersection(&truth).count();
        let precision = tp as f64 / detected.len() as f64;
        let recall = tp as f64 / truth.len() as f64;
        assert!(precision > 0.9, "AS-level precision {precision:.3}");
        assert!(recall > 0.8, "AS-level recall {recall:.3}");
    }

    #[test]
    fn carrier_validation_matches_paper_shape() {
        let (_, study) = mini_study();
        for v in &study.validations {
            // Precision is always high (Table 3: ≥ 0.97 everywhere).
            assert!(
                v.by_cidr.precision() > 0.9,
                "{}: CIDR precision {:.3}",
                v.carrier,
                v.by_cidr.precision()
            );
            // Demand-weighted recall beats CIDR recall (inactive space).
            assert!(
                v.by_demand.recall() >= v.by_cidr.recall(),
                "{}: demand recall should dominate",
                v.carrier
            );
        }
        // Carrier A (mixed, much inactive space): low CIDR recall.
        let a = &study.validations[0];
        assert!(
            a.by_cidr.recall() < 0.4,
            "Carrier A CIDR recall {:.3} (paper: 0.10)",
            a.by_cidr.recall()
        );
        assert!(
            a.by_demand.recall() > 0.6,
            "Carrier A demand recall {:.3} (paper: 0.82)",
            a.by_demand.recall()
        );
        // Carrier B (dedicated, active): high recall on both.
        let b = &study.validations[1];
        assert!(
            b.by_cidr.recall() > 0.8,
            "Carrier B CIDR recall {:.3} (paper: 0.99)",
            b.by_cidr.recall()
        );
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        assert!(StudyConfig::default().validate().is_ok());
        let mut c = StudyConfig::default();
        c.threshold = 1.5;
        assert!(matches!(c.validate(), Err(CellspotError::Config(_))));
        let mut c = StudyConfig::default();
        c.dedicated_cfd = -0.1;
        assert!(c.validate().is_err());
        let mut c = StudyConfig::default();
        c.min_cell_du = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = StudyConfig::default();
        c.sweep_steps = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn pipeline_rejects_bad_threshold() {
        let wcfg = WorldConfig::mini();
        let world = World::generate(wcfg);
        let (beacons, demand) = generate_datasets(&world);
        let err = Pipeline::new(&beacons, &demand)
            .threshold(2.0)
            .run()
            .err()
            .expect("threshold 2.0 must be rejected");
        assert!(matches!(err, CellspotError::Config(_)));
        assert!(Pipeline::new(&beacons, &demand)
            .threshold(2.0)
            .classify()
            .is_err());
    }

    #[test]
    fn pipeline_rejects_mismatched_asn_datasets() {
        use cdnsim::{BeaconRecord, DemandRecord};
        use netaddr::{Asn, Block24, BlockId};

        let block = BlockId::V4(Block24::from_index(1));
        let beacons = BeaconDataset::from_records(
            "t",
            vec![BeaconRecord {
                block,
                asn: Asn(1),
                hits_total: 80,
                netinfo_hits: 10,
                cellular_hits: 9,
                wifi_hits: 1,
                other_hits: 0,
            }],
        );
        let demand = DemandDataset::from_raw(
            "t",
            vec![DemandRecord {
                block,
                asn: Asn(7),
                du: 5.0,
            }],
        );
        let err = Pipeline::new(&beacons, &demand)
            .run()
            .err()
            .expect("a BEACON/DEMAND ASN disagreement must be rejected");
        assert!(matches!(err, CellspotError::InconsistentDatasets(_)));
        assert!(Pipeline::new(&beacons, &demand).classify().is_err());
    }

    #[test]
    fn observer_sees_every_stage() {
        let wcfg = WorldConfig::mini();
        let min_hits = wcfg.scaled_min_beacon_hits();
        let world = World::generate(wcfg);
        let (beacons, demand) = generate_datasets(&world);
        let obs = Observer::enabled();
        let report = Pipeline::new(&beacons, &demand)
            .as_db(&world.as_db)
            .carriers(&world.carriers)
            .study_config(StudyConfig::default().with_min_hits(min_hits))
            .observer(obs.clone())
            .run()
            .expect("valid config");
        let snap = obs.snapshot();
        for stage in [
            "join",
            "classify",
            "ratio_distributions",
            "validate",
            "sweep",
            "aggregate_by_as",
            "as_filter",
            "mixed",
            "ranking",
            "dns",
            "world_view",
        ] {
            assert!(
                snap.counters
                    .contains_key(&format!("pipeline.{stage}.items")),
                "missing counter for stage {stage}"
            );
            assert!(
                snap.spans
                    .iter()
                    .any(|s| s.path == format!("study/{stage}")),
                "missing span for stage {stage}"
            );
        }
        assert_eq!(
            snap.counters["pipeline.classify.items"],
            report.classification.len() as u64
        );
        // Timing report mirrors the spans.
        assert_eq!(report.timing().stages.len(), 11);
    }
}
