//! End-to-end study orchestration: the one-call entry point that runs the
//! paper's full methodology over a pair of datasets.

use asdb::{AsDatabase, CarrierGroundTruth};
use serde::{Deserialize, Serialize};

use cdnsim::{BeaconDataset, DemandDataset};
use dnssim::DnsSim;

use crate::asid::{
    aggregate_by_as, identify_cellular_ases, AsAggregate, AsFilterOutcome, FilterConfig,
};
use crate::classify::{Classification, RatioDistributions, DEFAULT_THRESHOLD};
use crate::demand::AsDemandRanking;
use crate::dns::DnsAnalysis;
use crate::index::BlockIndex;
use crate::metrics::{validate_carrier, CarrierValidation};
use crate::mixed::{MixedAnalysis, DEDICATED_CFD};
use crate::sweep::{threshold_sweep, SweepCurve};
use crate::timing::TimingReport;
use crate::world_view::WorldView;

/// Knobs for a full study run (defaults are the paper's choices).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Cellular-ratio threshold (paper: 0.5).
    pub threshold: f64,
    /// AS-filter rule 1 threshold, DU (paper: 0.1).
    pub min_cell_du: f64,
    /// AS-filter rule 2 threshold, NetInfo beacon responses (paper: 300;
    /// scale along with the world's hit budget for scaled worlds).
    pub min_netinfo_hits: f64,
    /// Dedication threshold on CFD (paper: 0.9).
    pub dedicated_cfd: f64,
    /// Points per threshold-sweep curve (Fig. 3).
    pub sweep_steps: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            threshold: DEFAULT_THRESHOLD,
            min_cell_du: 0.1,
            min_netinfo_hits: 300.0,
            dedicated_cfd: DEDICATED_CFD,
            sweep_steps: 50,
        }
    }
}

impl StudyConfig {
    /// Paper defaults with rule 2's hit threshold rescaled for a world
    /// generated at a reduced beacon-hit budget.
    pub fn with_min_hits(mut self, min_netinfo_hits: f64) -> Self {
        self.min_netinfo_hits = min_netinfo_hits;
        self
    }
}

/// Everything the study produces. Field by field this maps onto the
/// paper's tables and figures; the `report` crate renders them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Study {
    /// Configuration used.
    pub config: StudyConfig,
    /// The joined BEACON ⨝ DEMAND view.
    pub index: BlockIndex,
    /// Subnet classification at the operating threshold (§4).
    pub classification: Classification,
    /// Fig. 2's ratio distributions.
    pub ratio_distributions: RatioDistributions,
    /// Carrier validations at the operating threshold (Table 3).
    pub validations: Vec<CarrierValidation>,
    /// Fig. 3's sensitivity curves.
    pub sweeps: Vec<SweepCurve>,
    /// Per-AS aggregates.
    #[serde(with = "serde_asn_map")]
    pub as_aggregates: std::collections::HashMap<netaddr::Asn, AsAggregate>,
    /// §5's filter pipeline outcome (Table 5).
    pub filter: AsFilterOutcome,
    /// §6.1's mixed/dedicated analysis (Fig. 5).
    pub mixed: MixedAnalysis,
    /// §6.2's operator demand ranking (Fig. 7 / Table 7).
    pub ranking: AsDemandRanking,
    /// §6.3's DNS analysis, when resolver data was supplied.
    pub dns: Option<DnsAnalysis>,
    /// §7's geographic rollups (Tables 4/8, Figs. 11/12).
    pub view: WorldView,
    /// Per-stage wall-clock timings for this run. Excluded from
    /// serialization: timings vary run to run, while the serialized study
    /// must stay byte-identical across runs and thread counts.
    #[serde(skip)]
    pub timing: TimingReport,
}

/// JSON maps require string keys, so the per-AS aggregate map serializes
/// as a sorted vector of `(asn, aggregate)` pairs.
mod serde_asn_map {
    use std::collections::HashMap;

    use netaddr::Asn;
    use serde::de::Deserializer;
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};

    use crate::asid::AsAggregate;

    pub fn serialize<S: Serializer>(
        map: &HashMap<Asn, AsAggregate>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        let mut pairs: Vec<(&Asn, &AsAggregate)> = map.iter().collect();
        pairs.sort_by_key(|(asn, _)| **asn);
        pairs.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<HashMap<Asn, AsAggregate>, D::Error> {
        let pairs: Vec<(Asn, AsAggregate)> = Vec::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Run the full pipeline.
///
/// Per-carrier validations and sweeps fan out across the rayon pool;
/// results are collected in carrier order, and every parallel stage is
/// bit-deterministic regardless of thread count (see each stage's docs).
/// Wall-clock per stage lands in the returned study's `timing` field.
pub fn run_study(
    beacons: &BeaconDataset,
    demand: &DemandDataset,
    as_db: &AsDatabase,
    carriers: &[CarrierGroundTruth],
    dns: Option<&DnsSim>,
    config: StudyConfig,
) -> Study {
    use rayon::prelude::*;
    let mut timing = TimingReport::new();

    let index = timing.stage(
        "join",
        |i: &BlockIndex| i.len() as u64,
        || BlockIndex::build(beacons, demand),
    );
    let classification = timing.stage(
        "classify",
        |c: &Classification| c.len() as u64,
        || Classification::new(&index, config.threshold),
    );
    let ratio_distributions = timing.stage(
        "ratio_distributions",
        |_: &RatioDistributions| index.len() as u64,
        || RatioDistributions::build(&index),
    );

    let validations = timing.stage(
        "validate",
        |v: &Vec<CarrierValidation>| v.len() as u64,
        || {
            carriers
                .par_iter()
                .map(|gt| validate_carrier(gt, &classification, &index))
                .collect()
        },
    );
    let sweeps = timing.stage(
        "sweep",
        |s: &Vec<SweepCurve>| s.iter().map(|c| c.points.len() as u64).sum(),
        || {
            carriers
                .par_iter()
                .map(|gt| threshold_sweep(gt, &index, config.sweep_steps))
                .collect()
        },
    );

    let as_aggregates = timing.stage(
        "aggregate_by_as",
        |m: &std::collections::HashMap<netaddr::Asn, AsAggregate>| m.len() as u64,
        || aggregate_by_as(&index, &classification),
    );
    let filter = timing.stage(
        "as_filter",
        |f: &AsFilterOutcome| f.candidates.len() as u64,
        || {
            identify_cellular_ases(
                &as_aggregates,
                as_db,
                &FilterConfig {
                    min_cell_du: config.min_cell_du,
                    min_netinfo_hits: config.min_netinfo_hits,
                },
            )
        },
    );
    let mixed = timing.stage(
        "mixed",
        |m: &MixedAnalysis| m.verdicts.len() as u64,
        || MixedAnalysis::build(&filter.cellular_ases, &as_aggregates, config.dedicated_cfd),
    );
    let ranking = timing.stage(
        "ranking",
        |r: &AsDemandRanking| r.rows.len() as u64,
        || AsDemandRanking::build(&mixed, as_db),
    );
    let dns_analysis = timing.stage(
        "dns",
        |d: &Option<DnsAnalysis>| u64::from(d.is_some()),
        || dns.map(|d| DnsAnalysis::build(d, &index, &classification)),
    );
    let view = timing.stage(
        "world_view",
        |_: &WorldView| index.len() as u64,
        || WorldView::build(&index, &classification, as_db),
    );

    Study {
        config,
        index,
        classification,
        ratio_distributions,
        validations,
        sweeps,
        as_aggregates,
        filter,
        mixed,
        ranking,
        dns: dns_analysis,
        view,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnsim::generate_datasets;
    use worldgen::{World, WorldConfig};

    /// One shared mini-world study for the smoke assertions below.
    fn mini_study() -> (World, Study) {
        let wcfg = WorldConfig::mini();
        let min_hits = wcfg.scaled_min_beacon_hits();
        let world = World::generate(wcfg);
        let (beacons, demand) = generate_datasets(&world);
        let dns = dnssim::generate_dns(&world);
        let study = run_study(
            &beacons,
            &demand,
            &world.as_db,
            &world.carriers,
            Some(&dns),
            StudyConfig::default().with_min_hits(min_hits),
        );
        (world, study)
    }

    #[test]
    fn pipeline_end_to_end_smoke() {
        let (world, study) = mini_study();
        // Something was classified and the filter retained a cellular set
        // close to ground truth (669 genuine cellular ASes).
        assert!(study.classification.len() > 300);
        let n = study.filter.cellular_ases.len();
        assert!(
            (560..=720).contains(&n),
            "cellular ASes detected: {n} (ground truth 669)"
        );
        // Mixed majority.
        let frac = study.mixed.mixed_fraction();
        assert!((0.45..0.75).contains(&frac), "mixed fraction {frac}");
        // Global cellular percent in the paper's ballpark.
        let pct = study.view.global_cellular_pct();
        assert!((10.0..25.0).contains(&pct), "global cellular {pct:.1}%");
        // Validations exist for the three carriers.
        assert_eq!(study.validations.len(), 3);
        assert_eq!(study.sweeps.len(), 3);
        // DNS analysis populated.
        assert!(study.dns.is_some());
        let _ = &world;
    }

    #[test]
    fn filter_recovers_mostly_true_cellular_ases() {
        let (world, study) = mini_study();
        let truth: std::collections::HashSet<_> = world
            .operators
            .ops
            .iter()
            .filter(|o| o.role == worldgen::OperatorRole::Normal && o.kind.is_cellular_access())
            .map(|o| o.asn)
            .collect();
        let detected: std::collections::HashSet<_> =
            study.filter.cellular_ases.iter().copied().collect();
        let tp = detected.intersection(&truth).count();
        let precision = tp as f64 / detected.len() as f64;
        let recall = tp as f64 / truth.len() as f64;
        assert!(precision > 0.9, "AS-level precision {precision:.3}");
        assert!(recall > 0.8, "AS-level recall {recall:.3}");
    }

    #[test]
    fn carrier_validation_matches_paper_shape() {
        let (_, study) = mini_study();
        for v in &study.validations {
            // Precision is always high (Table 3: ≥ 0.97 everywhere).
            assert!(
                v.by_cidr.precision() > 0.9,
                "{}: CIDR precision {:.3}",
                v.carrier,
                v.by_cidr.precision()
            );
            // Demand-weighted recall beats CIDR recall (inactive space).
            assert!(
                v.by_demand.recall() >= v.by_cidr.recall(),
                "{}: demand recall should dominate",
                v.carrier
            );
        }
        // Carrier A (mixed, much inactive space): low CIDR recall.
        let a = &study.validations[0];
        assert!(
            a.by_cidr.recall() < 0.4,
            "Carrier A CIDR recall {:.3} (paper: 0.10)",
            a.by_cidr.recall()
        );
        assert!(
            a.by_demand.recall() > 0.6,
            "Carrier A demand recall {:.3} (paper: 0.82)",
            a.by_demand.recall()
        );
        // Carrier B (dedicated, active): high recall on both.
        let b = &study.validations[1];
        assert!(
            b.by_cidr.recall() > 0.8,
            "Carrier B CIDR recall {:.3} (paper: 0.99)",
            b.by_cidr.recall()
        );
    }
}
