//! Threshold classification of blocks (§4.1).
//!
//! A block is labeled cellular when its cellular ratio — cellular NetInfo
//! hits over all NetInfo hits — meets the threshold. Blocks without
//! NetInfo data cannot be classified and default to non-cellular, which
//! is what gives the method its "lower bound with high confidence"
//! character (§4.2): inactive cellular space surfaces as false negatives,
//! almost never as false positives.

use netaddr::{Asn, BlockId};
use serde::{Deserialize, Serialize};

use crate::index::BlockIndex;
use crate::stats::Ecdf;

/// The paper's operating threshold: a simple majority (§4.2).
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// The set of blocks labeled cellular at a given threshold.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Classification {
    /// The ratio threshold used.
    pub threshold: f64,
    /// Cellular-labeled blocks with their origin AS, sorted by block id.
    cellular: Vec<(BlockId, Asn)>,
}

impl Classification {
    /// Classify every block in the index at `threshold`.
    pub fn new(index: &BlockIndex, threshold: f64) -> Self {
        let cellular = index
            .iter()
            .filter(|o| matches!(o.cellular_ratio(), Some(r) if r >= threshold))
            .map(|o| (o.block, o.asn))
            .collect();
        Classification {
            threshold,
            cellular,
        }
    }

    /// Classify at the paper's default 0.5 threshold.
    pub fn with_default_threshold(index: &BlockIndex) -> Self {
        Self::new(index, DEFAULT_THRESHOLD)
    }

    /// Number of cellular-labeled blocks.
    pub fn len(&self) -> usize {
        self.cellular.len()
    }

    /// True when nothing was labeled cellular.
    pub fn is_empty(&self) -> bool {
        self.cellular.is_empty()
    }

    /// Is the block labeled cellular?
    pub fn is_cellular(&self, block: BlockId) -> bool {
        self.cellular
            .binary_search_by_key(&block, |(b, _)| *b)
            .is_ok()
    }

    /// All cellular-labeled blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, Asn)> + '_ {
        self.cellular.iter().copied()
    }

    /// (IPv4 /24, IPv6 /48) cellular block counts — the headline numbers
    /// (350,687 and 23,230 in the paper).
    pub fn block_counts(&self) -> (usize, usize) {
        let v4 = self.cellular.iter().filter(|(b, _)| b.is_v4()).count();
        (v4, self.cellular.len() - v4)
    }
}

/// Fig. 2's four distributions: cellular-ratio CDFs for IPv4 and IPv6
/// blocks, by subnet count and weighted by demand.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RatioDistributions {
    /// CDF of ratios over IPv4 blocks.
    pub v4_subnets: Ecdf,
    /// CDF of ratios over IPv4 blocks weighted by DU.
    pub v4_demand: Ecdf,
    /// CDF of ratios over IPv6 blocks.
    pub v6_subnets: Ecdf,
    /// CDF of ratios over IPv6 blocks weighted by DU.
    pub v6_demand: Ecdf,
}

impl RatioDistributions {
    /// Build all four distributions from the joined index. Blocks without
    /// NetInfo data are excluded (they have no ratio).
    pub fn build(index: &BlockIndex) -> Self {
        let mut v4s = Vec::new();
        let mut v4d = Vec::new();
        let mut v6s = Vec::new();
        let mut v6d = Vec::new();
        for o in index.iter() {
            if let Some(r) = o.cellular_ratio() {
                if o.block.is_v4() {
                    v4s.push(r);
                    v4d.push((r, o.du));
                } else {
                    v6s.push(r);
                    v6d.push((r, o.du));
                }
            }
        }
        RatioDistributions {
            v4_subnets: Ecdf::new(v4s),
            v4_demand: Ecdf::weighted(v4d),
            v6_subnets: Ecdf::new(v6s),
            v6_demand: Ecdf::weighted(v6d),
        }
    }

    /// The paper's Fig. 2 summary cuts: fraction below 0.1, fraction above
    /// 0.9, and the intermediate remainder, for a given CDF.
    pub fn cuts(cdf: &Ecdf) -> (f64, f64, f64) {
        let below = cdf.eval(0.1 - 1e-12);
        let above = 1.0 - cdf.eval(0.9);
        (below, above, (1.0 - below - above).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
    use netaddr::Block24;

    fn b(i: u32) -> BlockId {
        BlockId::V4(Block24::from_index(i))
    }

    fn index_from(rows: &[(u32, u64, u64, f64)]) -> BlockIndex {
        let beacons = BeaconDataset::from_records(
            "t",
            rows.iter()
                .filter(|(_, n, _, _)| *n > 0)
                .map(|&(i, netinfo, cell, _)| BeaconRecord {
                    block: b(i),
                    asn: Asn(1),
                    hits_total: netinfo,
                    netinfo_hits: netinfo,
                    cellular_hits: cell,
                    wifi_hits: netinfo - cell,
                    other_hits: 0,
                })
                .collect(),
        );
        let demand = DemandDataset::from_raw(
            "t",
            rows.iter()
                .map(|&(i, _, _, du)| DemandRecord {
                    block: b(i),
                    asn: Asn(1),
                    du,
                })
                .collect(),
        );
        BlockIndex::build(&beacons, &demand)
    }

    #[test]
    fn threshold_is_inclusive_and_unclassified_default_noncellular() {
        // (block, netinfo, cellular, du)
        let idx = index_from(&[
            (1, 10, 5, 1.0),  // ratio 0.5  → cellular at 0.5
            (2, 10, 4, 1.0),  // ratio 0.4  → not
            (3, 0, 0, 1.0),   // no NetInfo → not classifiable
            (4, 10, 10, 1.0), // ratio 1.0  → cellular
        ]);
        let c = Classification::with_default_threshold(&idx);
        assert!(c.is_cellular(b(1)));
        assert!(!c.is_cellular(b(2)));
        assert!(!c.is_cellular(b(3)));
        assert!(c.is_cellular(b(4)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.block_counts(), (2, 0));
    }

    #[test]
    fn higher_threshold_shrinks_the_set() {
        let idx = index_from(&[(1, 10, 5, 1.0), (2, 10, 9, 1.0), (3, 10, 10, 1.0)]);
        let loose = Classification::new(&idx, 0.1);
        let strict = Classification::new(&idx, 0.95);
        assert!(loose.len() >= strict.len());
        assert_eq!(loose.len(), 3);
        assert_eq!(strict.len(), 1);
        // Monotone containment.
        for (block, _) in strict.iter() {
            assert!(loose.is_cellular(block));
        }
    }

    #[test]
    fn ratio_distributions_cuts() {
        let idx = index_from(&[
            (1, 100, 0, 10.0),
            (2, 100, 2, 10.0),
            (3, 100, 98, 1.0),
            (4, 100, 100, 1.0),
            (5, 100, 50, 78.0),
        ]);
        let dist = RatioDistributions::build(&idx);
        let (below, above, mid) = RatioDistributions::cuts(&dist.v4_subnets);
        assert!((below - 0.4).abs() < 1e-9, "below {below}");
        assert!((above - 0.4).abs() < 1e-9, "above {above}");
        assert!((mid - 0.2).abs() < 1e-9, "mid {mid}");
        // Demand-weighted: the middle block carries most demand.
        let (_, _, mid_d) = RatioDistributions::cuts(&dist.v4_demand);
        assert!(mid_d > 0.7, "demand-weighted middle {mid_d}");
        assert!(dist.v6_subnets.is_empty());
    }
}
