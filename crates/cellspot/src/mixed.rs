//! Mixed vs. dedicated operator analysis (§6.1): cellular demand (CD),
//! cellular fraction of demand (CFD), the 0.9 dedication threshold, and
//! the per-AS distributions behind Fig. 5 and Fig. 6.

use std::collections::HashMap;

use netaddr::Asn;
use serde::{Deserialize, Serialize};

use crate::asid::AsAggregate;
use crate::index::BlockIndex;
use crate::stats::Ecdf;

/// The paper's dedication threshold on CFD (§6.1: CFD > 0.9 ⇒ dedicated).
pub const DEDICATED_CFD: f64 = 0.9;

/// One cellular AS's §6.1 classification.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MixedVerdict {
    /// The AS.
    pub asn: Asn,
    /// Cellular demand, DU.
    pub cell_du: f64,
    /// Cellular fraction of demand.
    pub cfd: f64,
    /// Fraction of the AS's blocks labeled cellular.
    pub cell_subnet_fraction: f64,
    /// CFD ≤ 0.9 ⇒ mixed.
    pub is_mixed: bool,
}

/// §6.1 results across the cellular AS set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MixedAnalysis {
    /// Per-AS verdicts, sorted by descending cellular demand.
    pub verdicts: Vec<MixedVerdict>,
}

impl MixedAnalysis {
    /// Classify every AS in the cellular set.
    pub fn build(
        cellular_ases: &[Asn],
        aggregates: &HashMap<Asn, AsAggregate>,
        dedicated_cfd: f64,
    ) -> Self {
        let mut verdicts: Vec<MixedVerdict> = cellular_ases
            .iter()
            .filter_map(|asn| aggregates.get(asn).map(|a| (asn, a)))
            .map(|(asn, a)| MixedVerdict {
                asn: *asn,
                cell_du: a.cell_du,
                cfd: a.cfd(),
                cell_subnet_fraction: if a.blocks > 0 {
                    a.cell_blocks() as f64 / a.blocks as f64
                } else {
                    0.0
                },
                is_mixed: a.cfd() <= dedicated_cfd,
            })
            .collect();
        verdicts.sort_by(|x, y| y.cell_du.partial_cmp(&x.cell_du).expect("DU is finite"));
        MixedAnalysis { verdicts }
    }

    /// (mixed, dedicated) counts — the paper's 392 / 276.
    pub fn counts(&self) -> (usize, usize) {
        let mixed = self.verdicts.iter().filter(|v| v.is_mixed).count();
        (mixed, self.verdicts.len() - mixed)
    }

    /// Fraction of cellular ASes that are mixed (paper: 58.6%).
    pub fn mixed_fraction(&self) -> f64 {
        if self.verdicts.is_empty() {
            0.0
        } else {
            self.counts().0 as f64 / self.verdicts.len() as f64
        }
    }

    /// Share of cellular demand originating in mixed ASes (paper: 32.7%).
    pub fn mixed_demand_share(&self) -> f64 {
        let total: f64 = self.verdicts.iter().map(|v| v.cell_du).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.verdicts
            .iter()
            .filter(|v| v.is_mixed)
            .map(|v| v.cell_du)
            .sum::<f64>()
            / total
    }

    /// Fig. 5's two CDFs: per-AS cellular demand fraction and cellular
    /// subnet fraction.
    pub fn fig5(&self) -> (Ecdf, Ecdf) {
        (
            Ecdf::new(self.verdicts.iter().map(|v| v.cfd)),
            Ecdf::new(self.verdicts.iter().map(|v| v.cell_subnet_fraction)),
        )
    }

    /// ASes designated mixed.
    pub fn mixed_asns(&self) -> Vec<Asn> {
        self.verdicts
            .iter()
            .filter(|v| v.is_mixed)
            .map(|v| v.asn)
            .collect()
    }
}

/// Fig. 6's per-AS breakdown: CDFs over the cellular ratio axis of (a)
/// the fraction of the AS's blocks at or below each ratio and (b) the
/// fraction of the AS's demand at or below each ratio.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsRatioBreakdown {
    /// The AS.
    pub asn: Asn,
    /// CDF of blocks over cellular ratio.
    pub subnet_cdf: Ecdf,
    /// Demand-weighted CDF over cellular ratio.
    pub demand_cdf: Ecdf,
}

impl AsRatioBreakdown {
    /// Build for one AS from the joined index. Only IPv4 /24 blocks with
    /// a defined ratio participate — the paper's Fig. 6 plots "/24
    /// subnets" and their "calculated cellular percentage".
    pub fn build(asn: Asn, index: &BlockIndex) -> Self {
        let mut subnet = Vec::new();
        let mut demand = Vec::new();
        for o in index.iter().filter(|o| o.asn == asn && o.block.is_v4()) {
            if let Some(r) = o.cellular_ratio() {
                subnet.push(r);
                demand.push((r, o.du));
            }
        }
        AsRatioBreakdown {
            asn,
            subnet_cdf: Ecdf::new(subnet),
            demand_cdf: Ecdf::weighted(demand),
        }
    }
}

/// Convenience used by reports: is the analysis's CFD spectrum continuous
/// (§6.1 finds "no particularly popular configurations")? Returns the
/// maximum gap between consecutive CFD values among mixed ASes.
pub fn max_cfd_gap(analysis: &MixedAnalysis) -> f64 {
    let mut cfds: Vec<f64> = analysis.verdicts.iter().map(|v| v.cfd).collect();
    cfds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cfds.windows(2).map(|w| w[1] - w[0]).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asid::AsAggregate;

    fn agg(blocks: usize, cell: usize, total_du: f64, cell_du: f64) -> AsAggregate {
        AsAggregate {
            blocks,
            cell_blocks24: cell,
            cell_blocks48: 0,
            total_du,
            cell_du,
            netinfo_hits: 1_000,
            beacon_hits: 8_000,
        }
    }

    #[test]
    fn dedication_threshold() {
        let mut aggs = HashMap::new();
        aggs.insert(Asn(1), agg(100, 95, 100.0, 99.0)); // dedicated
        aggs.insert(Asn(2), agg(100, 10, 100.0, 20.0)); // mixed
        aggs.insert(Asn(3), agg(100, 50, 100.0, 90.0)); // boundary ⇒ mixed
        let m = MixedAnalysis::build(&[Asn(1), Asn(2), Asn(3)], &aggs, DEDICATED_CFD);
        let (mixed, dedicated) = m.counts();
        assert_eq!((mixed, dedicated), (2, 1));
        assert!((m.mixed_fraction() - 2.0 / 3.0).abs() < 1e-12);
        // Verdicts ranked by cellular demand.
        assert_eq!(m.verdicts[0].asn, Asn(1));
        // Mixed demand share = (20 + 90) / 209.
        assert!((m.mixed_demand_share() - 110.0 / 209.0).abs() < 1e-12);
    }

    #[test]
    fn fig5_gap_between_subnet_and_demand_fraction() {
        // The paper's Fig. 5 observation: demand fractions exceed subnet
        // fractions because idle non-cellular blocks dilute the subnet
        // count. Model an AS where most blocks are non-cellular but most
        // demand is cellular.
        let mut aggs = HashMap::new();
        aggs.insert(Asn(1), agg(1_000, 30, 100.0, 80.0));
        let m = MixedAnalysis::build(&[Asn(1)], &aggs, DEDICATED_CFD);
        let (cfd_cdf, subnet_cdf) = m.fig5();
        // At x=0.5: all subnet fractions (0.03) are below, CFD (0.8) is not.
        assert!(subnet_cdf.eval(0.5) > cfd_cdf.eval(0.5));
    }

    #[test]
    fn empty_analysis_is_safe() {
        let m = MixedAnalysis::build(&[], &HashMap::new(), DEDICATED_CFD);
        assert_eq!(m.counts(), (0, 0));
        assert_eq!(m.mixed_fraction(), 0.0);
        assert_eq!(m.mixed_demand_share(), 0.0);
        assert_eq!(max_cfd_gap(&m), 0.0);
    }
}
