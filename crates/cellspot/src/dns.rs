//! DNS resolver analysis (§6.3): resolver sharing in mixed networks
//! (Fig. 9), distant shared resolvers, and public DNS usage (Fig. 10).

use std::collections::{HashMap, HashSet};

use netaddr::Asn;
use serde::{Deserialize, Serialize};

use dnssim::{DnsSim, PublicDns, ResolverKind, PUBLIC_DNS_SERVICES};

use crate::classify::Classification;
use crate::index::BlockIndex;
use crate::stats::Ecdf;

/// Demand attributed to one resolver, split by the classifier's labels.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ResolverDemand {
    /// DU from cellular-labeled client blocks.
    pub cell_du: f64,
    /// DU from non-cellular client blocks.
    pub fixed_du: f64,
}

impl ResolverDemand {
    /// Fraction of this resolver's demand that is cellular.
    pub fn cellular_fraction(&self) -> f64 {
        let total = self.cell_du + self.fixed_du;
        if total > 0.0 {
            self.cell_du / total
        } else {
            0.0
        }
    }
}

/// §6.3 analysis output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DnsAnalysis {
    /// Per-resolver demand attribution (indexed like `DnsSim::resolvers`).
    pub per_resolver: Vec<ResolverDemand>,
}

impl DnsAnalysis {
    /// Join resolver affinities with the demand dataset and the
    /// classification: each affinity row contributes
    /// `weight × DU(block)` to its resolver, bucketed by the block's
    /// classified access type — exactly the paper's method of combining
    /// client-to-resolver associations with the two datasets.
    pub fn build(dns: &DnsSim, index: &BlockIndex, classification: &Classification) -> Self {
        let mut per_resolver = vec![ResolverDemand::default(); dns.resolvers.len()];
        for a in &dns.affinities {
            let Some(obs) = index.get(a.block) else {
                continue;
            };
            let du = obs.du * a.weight as f64;
            if du <= 0.0 {
                continue;
            }
            let r = &mut per_resolver[a.resolver as usize];
            if classification.is_cellular(a.block) {
                r.cell_du += du;
            } else {
                r.fixed_du += du;
            }
        }
        DnsAnalysis { per_resolver }
    }

    /// Fig. 9: CDF of the cellular demand fraction across the operator
    /// resolvers of the given (mixed) ASes. Only resolvers with any
    /// demand participate.
    pub fn mixed_resolver_cdf(&self, dns: &DnsSim, mixed_asns: &[Asn]) -> Ecdf {
        let mixed: HashSet<Asn> = mixed_asns.iter().copied().collect();
        Ecdf::new(
            dns.resolvers
                .iter()
                .filter(|r| !matches!(r.kind, ResolverKind::Public(_)) && mixed.contains(&r.asn))
                .map(|r| &self.per_resolver[r.id as usize])
                .filter(|d| d.cell_du + d.fixed_du > 0.0)
                .map(|d| d.cellular_fraction()),
        )
    }

    /// Fraction of in-scope resolvers that serve *both* populations (the
    /// paper: nearly 60% of resolvers in mixed ASes are shared). A
    /// resolver counts as shared when each side carries at least
    /// `min_side_fraction` of its demand.
    pub fn shared_fraction(&self, dns: &DnsSim, mixed_asns: &[Asn], min_side_fraction: f64) -> f64 {
        let mixed: HashSet<Asn> = mixed_asns.iter().copied().collect();
        let mut total = 0usize;
        let mut shared = 0usize;
        for r in &dns.resolvers {
            if matches!(r.kind, ResolverKind::Public(_)) || !mixed.contains(&r.asn) {
                continue;
            }
            let d = &self.per_resolver[r.id as usize];
            if d.cell_du + d.fixed_du <= 0.0 {
                continue;
            }
            total += 1;
            let f = d.cellular_fraction();
            if f >= min_side_fraction && f <= 1.0 - min_side_fraction {
                shared += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            shared as f64 / total as f64
        }
    }

    /// Public DNS usage per AS: for each AS with any attributed demand,
    /// the fraction resolved through each public service (Fig. 10's bars)
    /// keyed by the *client* AS.
    pub fn public_dns_by_as(
        &self,
        dns: &DnsSim,
        index: &BlockIndex,
        classification: &Classification,
        cellular_only: bool,
    ) -> HashMap<Asn, PublicDnsUsage> {
        // Attribute per client-AS: total weighted demand and the public
        // share per service.
        let mut map: HashMap<Asn, PublicDnsUsage> = HashMap::new();
        for a in &dns.affinities {
            let Some(obs) = index.get(a.block) else {
                continue;
            };
            if cellular_only && !classification.is_cellular(a.block) {
                continue;
            }
            let du = obs.du * a.weight as f64;
            if du <= 0.0 {
                continue;
            }
            let entry = map.entry(obs.asn).or_default();
            entry.total_du += du;
            if let ResolverKind::Public(svc) = dns.resolvers[a.resolver as usize].kind {
                entry.per_service[svc_index(svc)] += du;
            }
        }
        map
    }

    /// Distant shared resolvers (the paper's Brazilian case): resolvers
    /// in the given ASes whose cellular clients sit at least
    /// `distance_ratio` times farther than their fixed clients, while
    /// serving a meaningful share of both.
    pub fn distant_shared_resolvers(
        &self,
        dns: &DnsSim,
        asns: &[Asn],
        distance_ratio: f64,
    ) -> Vec<u32> {
        let scope: HashSet<Asn> = asns.iter().copied().collect();
        dns.resolvers
            .iter()
            .filter(|r| scope.contains(&r.asn) && r.kind == ResolverKind::Shared)
            .filter(|r| r.dist_cell_mi > r.dist_fixed_mi * distance_ratio)
            .filter(|r| {
                let d = &self.per_resolver[r.id as usize];
                d.cell_du > 0.0 && d.fixed_du > 0.0
            })
            .map(|r| r.id)
            .collect()
    }
}

/// Per-AS public DNS usage.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PublicDnsUsage {
    /// Total attributed demand, DU.
    pub total_du: f64,
    /// Demand through each public service, indexed like
    /// [`PUBLIC_DNS_SERVICES`].
    pub per_service: [f64; 3],
}

impl PublicDnsUsage {
    /// Fraction through a given service.
    pub fn fraction(&self, svc: PublicDns) -> f64 {
        if self.total_du > 0.0 {
            self.per_service[svc_index(svc)] / self.total_du
        } else {
            0.0
        }
    }

    /// Fraction through any public service.
    pub fn total_fraction(&self) -> f64 {
        if self.total_du > 0.0 {
            self.per_service.iter().sum::<f64>() / self.total_du
        } else {
            0.0
        }
    }
}

fn svc_index(svc: PublicDns) -> usize {
    PUBLIC_DNS_SERVICES
        .iter()
        .position(|s| *s == svc)
        .expect("service list is exhaustive")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolver_demand_fraction() {
        let d = ResolverDemand {
            cell_du: 25.0,
            fixed_du: 75.0,
        };
        assert!((d.cellular_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(ResolverDemand::default().cellular_fraction(), 0.0);
    }

    #[test]
    fn public_usage_fractions() {
        let mut u = PublicDnsUsage {
            total_du: 100.0,
            per_service: [40.0, 10.0, 5.0],
        };
        assert!((u.fraction(PublicDns::GoogleDns) - 0.4).abs() < 1e-12);
        assert!((u.total_fraction() - 0.55).abs() < 1e-12);
        u.total_du = 0.0;
        assert_eq!(u.total_fraction(), 0.0);
    }
}
