//! # cellspot — the Cell Spotting methodology
//!
//! This crate is the paper's primary contribution, implemented in full:
//!
//! * **§4 Cellular subnet identification** — per-block cellular ratios
//!   from Network Information API beacons ([`BlockIndex`],
//!   [`Classification`]), the ratio distributions of Fig. 2
//!   ([`RatioDistributions`]), carrier validation with precision/recall/F1
//!   by CIDR count and by demand ([`validate_carrier`]), and the threshold
//!   sensitivity sweep of Fig. 3 ([`threshold_sweep`]).
//! * **§5 Cellular AS identification** — straw-man tagging plus the three
//!   filtering heuristics of Table 5 ([`identify_cellular_ases`]).
//! * **§6 The shape of cell networks** — mixed/dedicated splitting on
//!   cellular fraction of demand ([`MixedAnalysis`]), operator demand
//!   ranking ([`AsDemandRanking`]), per-operator subnet concentration
//!   ([`SubnetDemandProfile`]), and DNS resolver analysis ([`DnsAnalysis`]).
//! * **§7 Macroscopic view** — continent and country rollups
//!   ([`WorldView`]).
//!
//! The [`Pipeline`] builder chains all of it — attach an
//! [`Observer`](cellobs::Observer) to get per-stage spans and metrics —
//! and each piece stays equally usable on its own. The crate
//! deliberately depends only on *observable* data — datasets, AS
//! metadata, resolver affinities — never on the synthetic world's hidden
//! ground truth (enforced by the dependency graph: `worldgen` is a
//! dev-dependency only).
//!
//! ```ignore
//! use cellspot::prelude::*;
//!
//! let report = Pipeline::new(&beacons, &demand)
//!     .as_db(&as_db)
//!     .carriers(&carriers)
//!     .threads(8)
//!     .observer(obs.clone())
//!     .run()?;
//! println!("cellular ASes: {}", report.cellular_as_count());
//! ```

mod ablation;
mod asid;
mod classify;
mod confidence;
mod demand;
mod dns;
mod error;
mod index;
mod metrics;
mod mixed;
mod pipeline;
mod stats;
mod sweep;
mod temporal;
mod timing;
mod world_view;

pub use ablation::{
    asn_level_ablation, granularity_ablation, granularity_sweep, rule_ablation, supernet_key,
    AsnLevelAblation, AsnStrategy, GranularityAblation, RuleAblation, GRANULARITY_SWEEP,
};
pub use asid::{
    aggregate_by_as, identify_cellular_ases, AsAggregate, AsFilterOutcome, FilterConfig,
};
pub use classify::{Classification, RatioDistributions, DEFAULT_THRESHOLD};
pub use confidence::{
    classify_with_confidence, confident_label, wilson_interval, ConfidenceSummary, ConfidentLabel,
};
pub use demand::{cellular_demand_values, AsDemandRanking, RankedAs, SubnetDemandProfile};
pub use dns::{DnsAnalysis, PublicDnsUsage, ResolverDemand};
pub use error::CellspotError;
pub use index::{BlockIndex, BlockObs};
pub use metrics::{validate_carrier, CarrierValidation, Confusion};
pub use mixed::{max_cfd_gap, AsRatioBreakdown, MixedAnalysis, MixedVerdict, DEDICATED_CFD};
pub use pipeline::{Pipeline, PipelineReport, Study, StudyConfig};
pub use stats::{count_for_share, gini, top_k_share, Ecdf};
pub use sweep::{threshold_sweep, SweepCurve, SweepPoint};
pub use temporal::{MonthTransition, TemporalAnalysis};
pub use timing::{
    configure_thread_pool, configure_thread_pool_with, configure_threads, resolve_threads,
    resolve_threads_with, StageTiming, ThreadsChoice, TimingReport, THREADS_ENV,
};
pub use world_view::{
    continent_rows, v6_deployment, ContinentDemand, ContinentSubnets, CountryDemand, V6Deployment,
    WorldView,
};

/// The blessed public surface in one import: the [`Pipeline`] builder,
/// its report and error types, configuration, and the observability
/// types a caller needs to attach and export metrics.
pub mod prelude {
    pub use crate::error::CellspotError;
    pub use crate::pipeline::{Pipeline, PipelineReport, Study, StudyConfig};
    pub use crate::timing::{resolve_threads, ThreadsChoice, TimingReport, THREADS_ENV};
    pub use cellobs::{ExportFormat, ObsSnapshot, Observer};
}
