//! The crate's unified error type.
//!
//! One enum covers every fallible public entry point (hand-rolled
//! `Display`/`Error` impls in the workspace's house style — the
//! `thiserror` derive is deliberately not a dependency). The CLI maps
//! each public crate's error enum to a documented exit code; see
//! `crates/cli/src/error.rs`.

use std::fmt;

/// Why a pipeline run could not produce a study.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellspotError {
    /// A configuration knob is out of range (threshold outside `[0, 1]`,
    /// zero sweep steps, non-finite filter thresholds…).
    Config(String),
    /// The input datasets violate an invariant the methodology relies on
    /// (e.g. a classified block missing from the joined index, possible
    /// only with inconsistent duplicate rows).
    InconsistentDatasets(String),
}

impl fmt::Display for CellspotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellspotError::Config(why) => write!(f, "invalid pipeline configuration: {why}"),
            CellspotError::InconsistentDatasets(why) => {
                write!(f, "inconsistent input datasets: {why}")
            }
        }
    }
}

impl std::error::Error for CellspotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed() {
        let e = CellspotError::Config("threshold 1.5 outside [0, 1]".into());
        assert!(e.to_string().contains("invalid pipeline configuration"));
        let e = CellspotError::InconsistentDatasets("duplicate block".into());
        assert!(e.to_string().contains("inconsistent input datasets"));
    }
}
