//! Ablations of the paper's design choices.
//!
//! The paper argues three methodological points that these ablations make
//! measurable:
//!
//! 1. **Prefix-level beats ASN-level identification** (§1, §6.1): most
//!    cellular networks are mixed, so labeling whole ASes mislabels
//!    fixed-line demand as cellular (or vice versa).
//!    [`asn_level_ablation`] quantifies the demand that changes label when
//!    AS-granularity classification replaces block-granularity.
//! 2. **/24 and /48 are the right aggregation grain** (§4.1, citing the
//!    Hobbit /24-homogeneity result): coarser aggregates mix access types.
//!    [`granularity_ablation`] re-aggregates the beacon data at shorter
//!    prefixes and measures the label churn.
//! 3. **Each AS-filter rule pulls its weight** (§5.1):
//!    [`rule_ablation`] re-runs the filter with one rule disabled at a
//!    time and reports how the final AS set inflates.

use std::collections::{HashMap, HashSet};

use asdb::AsDatabase;
use netaddr::{Asn, Block24, BlockId};
use serde::{Deserialize, Serialize};

use crate::asid::{identify_cellular_ases, AsAggregate, AsFilterOutcome, FilterConfig};
use crate::classify::Classification;
use crate::index::BlockIndex;

/// How an ASN-granularity classifier decides that a whole AS is cellular.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AsnStrategy {
    /// Any detected cellular block makes the AS cellular (the §5
    /// straw-man).
    AnyCellularBlock,
    /// A majority of classified blocks are cellular.
    MajorityBlocks,
    /// A majority of demand sits in cellular blocks.
    MajorityDemand,
}

/// Result of replacing block-level labels with AS-level labels.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsnLevelAblation {
    /// Strategy used.
    pub strategy: AsnStrategy,
    /// ASes the strategy labels cellular.
    pub cellular_ases: Vec<Asn>,
    /// DU that the AS-level labeling marks cellular but block-level does
    /// not (fixed-line demand swept up inside "cellular" ASes).
    pub overcounted_du: f64,
    /// DU that block-level marks cellular but AS-level misses (cellular
    /// demand inside ASes the strategy calls non-cellular).
    pub undercounted_du: f64,
    /// Total cellular DU under block-level labels (the reference).
    pub reference_cell_du: f64,
}

impl AsnLevelAblation {
    /// Relative error of the AS-granularity cellular demand estimate.
    pub fn relative_error(&self) -> f64 {
        if self.reference_cell_du > 0.0 {
            (self.overcounted_du + self.undercounted_du) / self.reference_cell_du
        } else {
            0.0
        }
    }
}

/// Quantify the damage of ASN-granularity classification.
pub fn asn_level_ablation(
    index: &BlockIndex,
    classification: &Classification,
    aggregates: &HashMap<Asn, AsAggregate>,
    strategy: AsnStrategy,
) -> AsnLevelAblation {
    let cellular_ases: HashSet<Asn> = aggregates
        .iter()
        .filter(|(_, a)| match strategy {
            AsnStrategy::AnyCellularBlock => a.cell_blocks() > 0,
            AsnStrategy::MajorityBlocks => a.cell_blocks() * 2 > a.blocks,
            AsnStrategy::MajorityDemand => a.cell_du * 2.0 > a.total_du,
        })
        .map(|(asn, _)| *asn)
        .collect();

    let mut over = 0.0;
    let mut under = 0.0;
    let mut reference = 0.0;
    for o in index.iter() {
        let block_cell = classification.is_cellular(o.block);
        let as_cell = cellular_ases.contains(&o.asn);
        if block_cell {
            reference += o.du;
        }
        match (as_cell, block_cell) {
            (true, false) => over += o.du,
            (false, true) => under += o.du,
            _ => {}
        }
    }
    let mut cellular_ases: Vec<Asn> = cellular_ases.into_iter().collect();
    cellular_ases.sort();
    AsnLevelAblation {
        strategy,
        cellular_ases,
        overcounted_du: over,
        undercounted_du: under,
        reference_cell_du: reference,
    }
}

/// Result of re-aggregating IPv4 beacons at a shorter prefix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GranularityAblation {
    /// Prefix length used (24 − merge shift).
    pub prefix_len: u8,
    /// Number of aggregates classified cellular at this grain.
    pub cellular_aggregates: usize,
    /// DU whose label changed relative to /24-grain classification.
    pub relabeled_du: f64,
    /// Share of /24 blocks whose label changed.
    pub relabeled_blocks_fraction: f64,
}

/// Re-aggregate IPv4 beacon observations at `prefix_len` (≤ 24), classify
/// the aggregates with the same threshold, and measure how many /24
/// blocks (and how much demand) change label versus the /24 reference.
pub fn granularity_ablation(
    index: &BlockIndex,
    classification: &Classification,
    prefix_len: u8,
) -> GranularityAblation {
    assert!(prefix_len <= 24, "can only coarsen, not refine, /24 data");
    let shift = 24 - prefix_len as u32;

    // Aggregate hit counts per supernet.
    #[derive(Default)]
    struct Agg {
        netinfo: u64,
        cellular: u64,
    }
    let mut supers: HashMap<u32, Agg> = HashMap::new();
    for o in index.iter() {
        if let BlockId::V4(b) = o.block {
            let key = b.index() >> shift;
            let a = supers.entry(key).or_default();
            a.netinfo += o.netinfo_hits;
            a.cellular += o.cellular_hits;
        }
    }
    let super_cellular: HashSet<u32> = supers
        .iter()
        .filter(|(_, a)| {
            a.netinfo > 0 && a.cellular as f64 / a.netinfo as f64 >= classification.threshold
        })
        .map(|(k, _)| *k)
        .collect();

    let mut relabeled_du = 0.0;
    let mut relabeled = 0usize;
    let mut total = 0usize;
    for o in index.iter() {
        if let BlockId::V4(b) = o.block {
            total += 1;
            let coarse = super_cellular.contains(&(b.index() >> shift));
            let fine = classification.is_cellular(o.block);
            if coarse != fine {
                relabeled += 1;
                relabeled_du += o.du;
            }
        }
    }
    GranularityAblation {
        prefix_len,
        cellular_aggregates: super_cellular.len(),
        relabeled_du,
        relabeled_blocks_fraction: if total > 0 {
            relabeled as f64 / total as f64
        } else {
            0.0
        },
    }
}

/// Outcomes of disabling one AS-filter rule at a time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RuleAblation {
    /// The baseline (all rules active).
    pub baseline: AsFilterOutcome,
    /// Rule 1 (demand) disabled.
    pub without_demand_rule: AsFilterOutcome,
    /// Rule 2 (hits) disabled.
    pub without_hits_rule: AsFilterOutcome,
    /// Rule 3 (class) disabled.
    pub without_class_rule: AsFilterOutcome,
}

impl RuleAblation {
    /// Extra ASes admitted when each rule is dropped, in rule order.
    pub fn extra_admitted(&self) -> [usize; 3] {
        let base = self.baseline.cellular_ases.len();
        [
            self.without_demand_rule.cellular_ases.len() - base,
            self.without_hits_rule.cellular_ases.len() - base,
            self.without_class_rule.cellular_ases.len() - base,
        ]
    }
}

/// Run the §5 filter with each rule individually disabled.
pub fn rule_ablation(
    aggregates: &HashMap<Asn, AsAggregate>,
    as_db: &AsDatabase,
    cfg: &FilterConfig,
) -> RuleAblation {
    let baseline = identify_cellular_ases(aggregates, as_db, cfg);
    let without_demand_rule = identify_cellular_ases(
        aggregates,
        as_db,
        &FilterConfig {
            min_cell_du: 0.0,
            ..*cfg
        },
    );
    let without_hits_rule = identify_cellular_ases(
        aggregates,
        as_db,
        &FilterConfig {
            min_netinfo_hits: 0.0,
            ..*cfg
        },
    );
    // Rule 3 off: accept every class by scoring against a database where
    // every candidate passes — simplest is a permissive re-run.
    let mut permissive = AsFilterOutcome {
        candidates: baseline.candidates.clone(),
        removed_low_demand: Vec::new(),
        removed_low_hits: Vec::new(),
        removed_class: Vec::new(),
        cellular_ases: Vec::new(),
    };
    for &asn in &permissive.candidates {
        let a = &aggregates[&asn];
        if a.cell_du < cfg.min_cell_du {
            permissive.removed_low_demand.push(asn);
        } else if (a.netinfo_hits as f64) < cfg.min_netinfo_hits {
            permissive.removed_low_hits.push(asn);
        } else {
            permissive.cellular_ases.push(asn);
        }
    }
    RuleAblation {
        baseline,
        without_demand_rule,
        without_hits_rule,
        without_class_rule: permissive,
    }
}

/// Convenience for reports: which /24 supernet grains to sweep.
pub const GRANULARITY_SWEEP: [u8; 4] = [24, 22, 20, 16];

/// Sweep the granularity ablation over [`GRANULARITY_SWEEP`].
pub fn granularity_sweep(
    index: &BlockIndex,
    classification: &Classification,
) -> Vec<GranularityAblation> {
    GRANULARITY_SWEEP
        .iter()
        .map(|len| granularity_ablation(index, classification, *len))
        .collect()
}

/// Helper for tests and reports: the /20 supernet of a block.
pub fn supernet_key(block: Block24, prefix_len: u8) -> u32 {
    block.index() >> (24 - prefix_len as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};

    fn b(i: u32) -> BlockId {
        BlockId::V4(Block24::from_index(i))
    }

    /// Two ASes: one mixed (3 fixed + 1 cellular block), one dedicated.
    fn setup() -> (BlockIndex, Classification) {
        let mk = |i: u32, asn: u32, netinfo: u64, cell: u64| BeaconRecord {
            block: b(i),
            asn: Asn(asn),
            hits_total: netinfo,
            netinfo_hits: netinfo,
            cellular_hits: cell,
            wifi_hits: netinfo - cell,
            other_hits: 0,
        };
        let du = |i: u32, asn: u32, v: f64| DemandRecord {
            block: b(i),
            asn: Asn(asn),
            du: v,
        };
        // Mixed AS 1: blocks 0..4 in the same /22 supernet.
        let beacons = BeaconDataset::from_records(
            "t",
            vec![
                mk(0, 1, 100, 2),
                mk(1, 1, 100, 1),
                mk(2, 1, 100, 3),
                mk(3, 1, 100, 95), // the cellular block
                mk(16, 2, 100, 97),
                mk(17, 2, 100, 92),
            ],
        );
        let demand = DemandDataset::from_raw(
            "t",
            vec![
                du(0, 1, 30.0),
                du(1, 1, 25.0),
                du(2, 1, 20.0),
                du(3, 1, 5.0),
                du(16, 2, 15.0),
                du(17, 2, 5.0),
            ],
        );
        let index = BlockIndex::build(&beacons, &demand);
        let class = Classification::with_default_threshold(&index);
        (index, class)
    }

    #[test]
    fn asn_level_overcounts_mixed_networks() {
        let (index, class) = setup();
        let aggs = crate::asid::aggregate_by_as(&index, &class);
        // "Any cellular block" labels both ASes cellular; all of AS 1's
        // fixed demand (75 of 100 raw → normalized) is overcounted.
        let any = asn_level_ablation(&index, &class, &aggs, AsnStrategy::AnyCellularBlock);
        assert_eq!(any.cellular_ases.len(), 2);
        assert!(any.overcounted_du > 0.0);
        assert!(any.relative_error() > 1.0, "error {}", any.relative_error());
        // Majority-demand labels only the dedicated AS cellular, missing
        // the mixed AS's cellular block.
        let maj = asn_level_ablation(&index, &class, &aggs, AsnStrategy::MajorityDemand);
        assert_eq!(maj.cellular_ases, vec![Asn(2)]);
        assert!(maj.undercounted_du > 0.0);
        assert_eq!(maj.overcounted_du, 0.0);
    }

    #[test]
    fn coarser_prefixes_relabel_demand() {
        let (index, class) = setup();
        // At /22 the mixed AS's supernet has ratio (2+1+3+95)/400 ≈ 0.25 →
        // non-cellular → block 3 flips to fixed. The dedicated /22 keeps
        // its label.
        let g22 = granularity_ablation(&index, &class, 22);
        assert_eq!(g22.prefix_len, 22);
        assert!(g22.relabeled_du > 0.0, "mixed supernet must mislabel");
        let g24 = granularity_ablation(&index, &class, 24);
        assert_eq!(g24.relabeled_du, 0.0, "native grain is the reference");
        assert_eq!(g24.relabeled_blocks_fraction, 0.0);
        // Coarser is never better in this construction.
        let g16 = granularity_ablation(&index, &class, 16);
        assert!(g16.relabeled_du >= g22.relabeled_du);
    }

    #[test]
    fn rule_ablation_reports_extra_admissions() {
        let (index, class) = setup();
        let aggs = crate::asid::aggregate_by_as(&index, &class);
        let db = AsDatabase::from_records(vec![
            asdb::AsRecord::new(
                Asn(1),
                "mixed",
                netaddr::CountryCode::literal("DE"),
                netaddr::Continent::Europe,
                asdb::AsKind::MixedAccess,
            ),
            asdb::AsRecord::new(
                Asn(2),
                "cloud",
                netaddr::CountryCode::literal("US"),
                netaddr::Continent::NorthAmerica,
                asdb::AsKind::CloudProxy,
            ),
        ]);
        let abl = rule_ablation(
            &aggs,
            &db,
            &FilterConfig {
                min_cell_du: 0.1,
                min_netinfo_hits: 50.0,
            },
        );
        // AS 2 is Content-class: baseline excludes it, the class-rule
        // ablation admits it.
        assert!(!abl.baseline.cellular_ases.contains(&Asn(2)));
        assert!(abl.without_class_rule.cellular_ases.contains(&Asn(2)));
        let extra = abl.extra_admitted();
        assert_eq!(extra[2], 1, "dropping rule 3 admits the proxy");
    }

    #[test]
    fn supernet_key_math() {
        let block = Block24::from_index(0x0A0B0C);
        assert_eq!(supernet_key(block, 24), 0x0A0B0C);
        assert_eq!(supernet_key(block, 16), 0x0A0B);
        assert_eq!(supernet_key(block, 8), 0x0A);
    }
}
