//! Validation metrics (§4.2, Table 3): confusion matrices, precision,
//! recall and F1 against carrier ground truth, both by CIDR count and
//! weighted by each block's traffic demand.

use asdb::{AccessType, CarrierGroundTruth};
use serde::{Deserialize, Serialize};

use crate::classify::Classification;
use crate::index::BlockIndex;

/// A (possibly demand-weighted) confusion matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Confusion {
    /// Ground-truth cellular, classified cellular.
    pub tp: f64,
    /// Ground-truth fixed, classified cellular.
    pub fp: f64,
    /// Ground-truth fixed, classified fixed.
    pub tn: f64,
    /// Ground-truth cellular, classified fixed.
    pub fn_: f64,
}

impl Confusion {
    /// Precision: TP / (TP + FP); 0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom > 0.0 {
            self.tp / denom
        } else {
            0.0
        }
    }

    /// Recall: TP / (TP + FN); 0 when no ground-truth positives exist.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom > 0.0 {
            self.tp / denom
        } else {
            0.0
        }
    }

    /// F1: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        }
    }

    /// Accuracy: (TP + TN) / total.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total > 0.0 {
            (self.tp + self.tn) / total
        } else {
            0.0
        }
    }
}

/// One carrier's Table 3 row pair: CIDR-count and demand-weighted
/// confusion matrices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CarrierValidation {
    /// Carrier codename.
    pub carrier: String,
    /// Counting blocks.
    pub by_cidr: Confusion,
    /// Weighting blocks by Demand Units.
    pub by_demand: Confusion,
}

/// Validate a classification against one carrier's ground truth.
///
/// Every /24 the ground truth covers is scored: blocks the classifier
/// never saw (no beacons at all) count as classified non-cellular — this
/// is exactly how the paper's validation produces its large CIDR-level
/// false-negative counts for carriers with much inactive cellular space.
pub fn validate_carrier(
    gt: &CarrierGroundTruth,
    classification: &Classification,
    index: &BlockIndex,
) -> CarrierValidation {
    let mut by_cidr = Confusion::default();
    let mut by_demand = Confusion::default();
    for (block, truth) in gt.blocks24() {
        let id = netaddr::BlockId::V4(block);
        let predicted_cell = classification.is_cellular(id);
        let du = index.get(id).map(|o| o.du).unwrap_or(0.0);
        match (truth, predicted_cell) {
            (AccessType::Cellular, true) => {
                by_cidr.tp += 1.0;
                by_demand.tp += du;
            }
            (AccessType::Cellular, false) => {
                by_cidr.fn_ += 1.0;
                by_demand.fn_ += du;
            }
            (AccessType::Fixed, true) => {
                by_cidr.fp += 1.0;
                by_demand.fp += du;
            }
            (AccessType::Fixed, false) => {
                by_cidr.tn += 1.0;
                by_demand.tn += du;
            }
        }
    }
    CarrierValidation {
        carrier: gt.name.clone(),
        by_cidr,
        by_demand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::GroundTruthEntry;
    use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
    use netaddr::{Asn, Block24, BlockId, Ipv4Net};

    #[test]
    fn confusion_metrics() {
        let c = Confusion {
            tp: 8.0,
            fp: 2.0,
            tn: 85.0,
            fn_: 5.0,
        };
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 8.0 / 13.0).abs() < 1e-12);
        let f1 = c.f1();
        assert!((f1 - 2.0 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0)).abs() < 1e-12);
        assert!((c.accuracy() - 0.93).abs() < 1e-12);
        // Degenerate cases return 0, never NaN.
        let z = Confusion::default();
        assert_eq!(z.precision(), 0.0);
        assert_eq!(z.recall(), 0.0);
        assert_eq!(z.f1(), 0.0);
        assert_eq!(z.accuracy(), 0.0);
    }

    #[test]
    fn carrier_validation_counts_and_weights() {
        // Ground truth: 4 cellular /24s (10.0.0-3), 4 fixed (10.1.0-3).
        let gt = CarrierGroundTruth::new(
            "T",
            vec![Asn(64500)],
            vec![
                GroundTruthEntry::V4(
                    "10.0.0.0/22".parse::<Ipv4Net>().unwrap(),
                    AccessType::Cellular,
                ),
                GroundTruthEntry::V4("10.1.0.0/22".parse::<Ipv4Net>().unwrap(), AccessType::Fixed),
            ],
        );
        // Beacons: 2 cellular blocks detected, 1 fixed misdetected, 1
        // cellular block active but below threshold, rest unobserved.
        let beacon = |addr: u32, netinfo: u64, cell: u64| BeaconRecord {
            block: BlockId::V4(Block24::of_addr(addr)),
            asn: Asn(64500),
            hits_total: netinfo,
            netinfo_hits: netinfo,
            cellular_hits: cell,
            wifi_hits: netinfo - cell,
            other_hits: 0,
        };
        let beacons = BeaconDataset::from_records(
            "t",
            vec![
                beacon(0x0A000000, 100, 95), // TP
                beacon(0x0A000100, 100, 80), // TP
                beacon(0x0A000200, 100, 10), // FN (active, low ratio)
                beacon(0x0A010000, 100, 60), // FP (fixed, high ratio)
            ],
        );
        let demand = DemandDataset::from_raw(
            "t",
            vec![
                DemandRecord {
                    block: BlockId::V4(Block24::of_addr(0x0A000000)),
                    asn: Asn(64500),
                    du: 70.0,
                },
                DemandRecord {
                    block: BlockId::V4(Block24::of_addr(0x0A000200)),
                    asn: Asn(64500),
                    du: 20.0,
                },
                DemandRecord {
                    block: BlockId::V4(Block24::of_addr(0x0A010000)),
                    asn: Asn(64500),
                    du: 10.0,
                },
            ],
        );
        let index = BlockIndex::build(&beacons, &demand);
        let c = Classification::with_default_threshold(&index);
        let v = validate_carrier(&gt, &c, &index);

        assert_eq!(v.by_cidr.tp, 2.0);
        assert_eq!(v.by_cidr.fn_, 2.0); // 1 low-ratio + 1 never observed
        assert_eq!(v.by_cidr.fp, 1.0);
        assert_eq!(v.by_cidr.tn, 3.0);
        assert!((v.by_cidr.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((v.by_cidr.recall() - 0.5).abs() < 1e-12);

        // Demand weighting: DU normalization rescales 70/20/10 to sum
        // 100,000; ratios are preserved.
        assert!((v.by_demand.tp / v.by_demand.fn_ - 70.0 / 20.0).abs() < 1e-9);
        assert!((v.by_demand.recall() - 7.0 / 9.0).abs() < 1e-9);
        assert!(
            v.by_demand.recall() > v.by_cidr.recall(),
            "Table 3's pattern"
        );
    }
}
