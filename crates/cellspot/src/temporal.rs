//! Temporal analysis of cellular address space — the measurement side of
//! the paper's §8 future work: given classifications of consecutive
//! monthly snapshots, quantify how stable cellular labels are, how much
//! address space churns, and how demand shifts across it.

use std::collections::HashSet;

use netaddr::BlockId;
use serde::{Deserialize, Serialize};

use crate::classify::Classification;
use crate::index::BlockIndex;

/// Stability of the cellular set between two consecutive months.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MonthTransition {
    /// Month index of the later snapshot.
    pub month: u32,
    /// Cellular blocks in the earlier month.
    pub prev_cellular: usize,
    /// Cellular blocks in the later month.
    pub cellular: usize,
    /// Blocks cellular in both months.
    pub persisted: usize,
    /// Blocks newly cellular.
    pub appeared: usize,
    /// Blocks no longer cellular.
    pub disappeared: usize,
    /// Jaccard similarity of the two cellular sets.
    pub jaccard: f64,
    /// Fraction of the later month's cellular demand carried by blocks
    /// that were already cellular a month earlier.
    pub persisted_demand_fraction: f64,
}

impl MonthTransition {
    /// Fraction of the earlier month's cellular blocks that persisted.
    pub fn persistence(&self) -> f64 {
        if self.prev_cellular > 0 {
            self.persisted as f64 / self.prev_cellular as f64
        } else {
            0.0
        }
    }
}

/// A multi-month stability study.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalAnalysis {
    /// One transition per consecutive month pair.
    pub transitions: Vec<MonthTransition>,
}

impl TemporalAnalysis {
    /// Build from per-month `(classification, index)` pairs in month
    /// order. The index supplies each month's demand weights.
    pub fn build(months: &[(Classification, BlockIndex)]) -> Self {
        let sets: Vec<HashSet<BlockId>> = months
            .iter()
            .map(|(c, _)| c.iter().map(|(b, _)| b).collect())
            .collect();
        let mut transitions = Vec::new();
        for m in 1..months.len() {
            let prev = &sets[m - 1];
            let cur = &sets[m];
            let persisted = prev.intersection(cur).count();
            let union = prev.union(cur).count();
            let (_, index) = &months[m];
            let mut cell_du = 0.0;
            let mut persisted_du = 0.0;
            for b in cur {
                let du = index.get(*b).map(|o| o.du).unwrap_or(0.0);
                cell_du += du;
                if prev.contains(b) {
                    persisted_du += du;
                }
            }
            transitions.push(MonthTransition {
                month: m as u32,
                prev_cellular: prev.len(),
                cellular: cur.len(),
                persisted,
                appeared: cur.len() - persisted,
                disappeared: prev.len() - persisted,
                jaccard: if union > 0 {
                    persisted as f64 / union as f64
                } else {
                    0.0
                },
                persisted_demand_fraction: if cell_du > 0.0 {
                    persisted_du / cell_du
                } else {
                    0.0
                },
            });
        }
        TemporalAnalysis { transitions }
    }

    /// Mean monthly persistence of the cellular block set.
    pub fn mean_persistence(&self) -> f64 {
        if self.transitions.is_empty() {
            return 0.0;
        }
        self.transitions
            .iter()
            .map(|t| t.persistence())
            .sum::<f64>()
            / self.transitions.len() as f64
    }

    /// Mean fraction of cellular demand carried by persistent blocks —
    /// the study's practical takeaway: even with address churn, demand
    /// concentrates in stable CGN blocks.
    pub fn mean_persisted_demand(&self) -> f64 {
        if self.transitions.is_empty() {
            return 0.0;
        }
        self.transitions
            .iter()
            .map(|t| t.persisted_demand_fraction)
            .sum::<f64>()
            / self.transitions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
    use netaddr::{Asn, Block24};

    fn month(blocks: &[(u32, f64)]) -> (Classification, BlockIndex) {
        let beacons = BeaconDataset::from_records(
            "t",
            blocks
                .iter()
                .map(|&(i, _)| BeaconRecord {
                    block: BlockId::V4(Block24::from_index(i)),
                    asn: Asn(1),
                    hits_total: 100,
                    netinfo_hits: 100,
                    cellular_hits: 95,
                    wifi_hits: 5,
                    other_hits: 0,
                })
                .collect(),
        );
        let demand = DemandDataset::from_raw(
            "t",
            blocks
                .iter()
                .map(|&(i, du)| DemandRecord {
                    block: BlockId::V4(Block24::from_index(i)),
                    asn: Asn(1),
                    du,
                })
                .collect(),
        );
        let index = BlockIndex::build(&beacons, &demand);
        let class = Classification::with_default_threshold(&index);
        (class, index)
    }

    #[test]
    fn transition_accounting() {
        // Month 0: blocks 1,2,3. Month 1: 2,3,4,5 (1 gone, 4+5 new).
        let months = vec![
            month(&[(1, 10.0), (2, 50.0), (3, 40.0)]),
            month(&[(2, 50.0), (3, 30.0), (4, 10.0), (5, 10.0)]),
        ];
        let t = TemporalAnalysis::build(&months);
        assert_eq!(t.transitions.len(), 1);
        let tr = &t.transitions[0];
        assert_eq!(tr.persisted, 2);
        assert_eq!(tr.appeared, 2);
        assert_eq!(tr.disappeared, 1);
        assert!((tr.persistence() - 2.0 / 3.0).abs() < 1e-12);
        assert!((tr.jaccard - 2.0 / 5.0).abs() < 1e-12);
        // Demand: persisted blocks carry 80 of 100 normalized DU.
        assert!((tr.persisted_demand_fraction - 0.8).abs() < 1e-12);
        assert!((t.mean_persistence() - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.mean_persisted_demand() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn identical_months_are_fully_stable() {
        let months = vec![month(&[(1, 1.0), (2, 1.0)]), month(&[(1, 1.0), (2, 1.0)])];
        let t = TemporalAnalysis::build(&months);
        assert!((t.mean_persistence() - 1.0).abs() < 1e-12);
        assert!((t.transitions[0].jaccard - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_safe() {
        let t = TemporalAnalysis::build(&[]);
        assert!(t.transitions.is_empty());
        assert_eq!(t.mean_persistence(), 0.0);
        assert_eq!(t.mean_persisted_demand(), 0.0);
    }
}
