//! Geographic rollups: Table 4 (cellular subnets by continent), Table 6
//! (cellular ASes by continent), Table 8 (continental demand statistics)
//! and the country-level views of Fig. 11 and Fig. 12.

use std::collections::HashMap;

use asdb::AsDatabase;
use netaddr::{ituc_subscribers_millions, Asn, Continent, CountryCode, CONTINENTS};
use serde::{Deserialize, Serialize};

use crate::classify::Classification;
use crate::index::BlockIndex;

/// One continent's Table 4 row.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ContinentSubnets {
    /// Cellular /24 blocks detected.
    pub cell24: usize,
    /// Cellular /48 blocks detected.
    pub cell48: usize,
    /// Active (observed) /24 blocks.
    pub active24: usize,
    /// Active /48 blocks.
    pub active48: usize,
}

impl ContinentSubnets {
    /// Percent of active IPv4 space that is cellular.
    pub fn pct_active_v4(&self) -> f64 {
        if self.active24 > 0 {
            100.0 * self.cell24 as f64 / self.active24 as f64
        } else {
            0.0
        }
    }

    /// Percent of active IPv6 space that is cellular.
    pub fn pct_active_v6(&self) -> f64 {
        if self.active48 > 0 {
            100.0 * self.cell48 as f64 / self.active48 as f64
        } else {
            0.0
        }
    }
}

/// One continent's Table 8 row.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ContinentDemand {
    /// Cellular DU.
    pub cell_du: f64,
    /// Total DU.
    pub total_du: f64,
}

impl ContinentDemand {
    /// Percent of the continent's demand that is cellular (col. 1).
    pub fn cellular_fraction_pct(&self) -> f64 {
        if self.total_du > 0.0 {
            100.0 * self.cell_du / self.total_du
        } else {
            0.0
        }
    }
}

/// One country's rollup (Fig. 11 / Fig. 12).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CountryDemand {
    /// Cellular DU.
    pub cell_du: f64,
    /// Total DU.
    pub total_du: f64,
    /// Continent (for per-continent top-10 lists).
    pub continent: Option<Continent>,
}

impl CountryDemand {
    /// Cellular fraction of the country's demand (Fig. 12's x-axis).
    pub fn cfd(&self) -> f64 {
        if self.total_du > 0.0 {
            self.cell_du / self.total_du
        } else {
            0.0
        }
    }
}

/// The geographic rollup of a classified world.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldView {
    /// Table 4 rows, indexed in `CONTINENTS` order.
    pub subnets: [ContinentSubnets; 6],
    /// Table 8 rows, indexed in `CONTINENTS` order.
    pub demand: [ContinentDemand; 6],
    /// Country rollups.
    pub countries: HashMap<CountryCode, CountryDemand>,
    /// Global cellular DU.
    pub global_cell_du: f64,
    /// Global total DU.
    pub global_total_du: f64,
}

impl WorldView {
    /// Roll up the joined index by geography. Blocks whose AS is missing
    /// from the database are skipped (they cannot be geolocated).
    pub fn build(index: &BlockIndex, classification: &Classification, as_db: &AsDatabase) -> Self {
        // Pre-resolve ASN → (continent, country) once.
        let mut geo: HashMap<Asn, (Continent, CountryCode)> = HashMap::new();
        for r in as_db.iter() {
            geo.insert(r.asn, (r.continent, r.country));
        }

        let mut subnets = [ContinentSubnets::default(); 6];
        let mut demand = [ContinentDemand::default(); 6];
        let mut countries: HashMap<CountryCode, CountryDemand> = HashMap::new();
        let mut global_cell = 0.0;
        let mut global_total = 0.0;

        for o in index.iter() {
            let Some(&(continent, country)) = geo.get(&o.asn) else {
                continue;
            };
            let ci = continent.index();
            let is_cell = classification.is_cellular(o.block);
            // Table 4 counts "active" space as blocks with beacons (the
            // BEACON dataset is the denominator for "% active").
            if o.beacon_hits > 0 {
                if o.block.is_v4() {
                    subnets[ci].active24 += 1;
                } else {
                    subnets[ci].active48 += 1;
                }
            }
            if is_cell {
                if o.block.is_v4() {
                    subnets[ci].cell24 += 1;
                } else {
                    subnets[ci].cell48 += 1;
                }
            }
            demand[ci].total_du += o.du;
            global_total += o.du;
            let c = countries.entry(country).or_default();
            c.total_du += o.du;
            c.continent = Some(continent);
            if is_cell {
                demand[ci].cell_du += o.du;
                global_cell += o.du;
                c.cell_du += o.du;
            }
        }

        WorldView {
            subnets,
            demand,
            countries,
            global_cell_du: global_cell,
            global_total_du: global_total,
        }
    }

    /// Global percent of demand that is cellular (paper: 16.2%).
    pub fn global_cellular_pct(&self) -> f64 {
        if self.global_total_du > 0.0 {
            100.0 * self.global_cell_du / self.global_total_du
        } else {
            0.0
        }
    }

    /// Table 8 column 2: percent of global cellular demand per continent.
    pub fn continent_cell_share_pct(&self, continent: Continent) -> f64 {
        if self.global_cell_du > 0.0 {
            100.0 * self.demand[continent.index()].cell_du / self.global_cell_du
        } else {
            0.0
        }
    }

    /// Table 8 column 4: cellular DU per 1,000 subscribers (the paper
    /// divides each continent's cellular demand by its ITU subscriber
    /// count).
    pub fn demand_per_1000_subscribers(&self, continent: Continent) -> f64 {
        let subs_thousands = ituc_subscribers_millions(continent) * 1_000.0;
        if subs_thousands > 0.0 {
            self.demand[continent.index()].cell_du / subs_thousands
        } else {
            0.0
        }
    }

    /// Fig. 11: the top-k countries of a continent by share of *global*
    /// cellular demand, as `(country, share)` with share in \[0,1\].
    pub fn top_countries(&self, continent: Continent, k: usize) -> Vec<(CountryCode, f64)> {
        let mut rows: Vec<(CountryCode, f64)> = self
            .countries
            .iter()
            .filter(|(_, c)| c.continent == Some(continent))
            .map(|(code, c)| {
                (
                    *code,
                    if self.global_cell_du > 0.0 {
                        c.cell_du / self.global_cell_du
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));
        rows.truncate(k);
        rows
    }

    /// Fig. 12: every country as `(code, cfd, cellular DU)`.
    pub fn country_scatter(&self) -> Vec<(CountryCode, f64, f64)> {
        let mut rows: Vec<(CountryCode, f64, f64)> = self
            .countries
            .iter()
            .filter(|(_, c)| c.total_du > 0.0)
            .map(|(code, c)| (*code, c.cfd(), c.cell_du))
            .collect();
        rows.sort_by_key(|(code, _, _)| *code);
        rows
    }

    /// Cellular AS counts per continent (Table 6), given the final AS set.
    pub fn table6(cellular_ases: &[Asn], as_db: &AsDatabase) -> ([usize; 6], [f64; 6]) {
        let mut counts = [0usize; 6];
        let mut countries: [std::collections::HashSet<CountryCode>; 6] = Default::default();
        for asn in cellular_ases {
            if let Some(r) = as_db.get(*asn) {
                let ci = r.continent.index();
                counts[ci] += 1;
                countries[ci].insert(r.country);
            }
        }
        let mut avg = [0.0f64; 6];
        for (i, set) in countries.iter().enumerate() {
            if !set.is_empty() {
                avg[i] = counts[i] as f64 / set.len() as f64;
            }
        }
        (counts, avg)
    }
}

/// Convenience: continents with their Table 4 and Table 8 rows zipped for
/// rendering.
pub fn continent_rows(view: &WorldView) -> Vec<(Continent, ContinentSubnets, ContinentDemand)> {
    CONTINENTS
        .iter()
        .map(|c| (*c, view.subnets[c.index()], view.demand[c.index()]))
        .collect()
}

/// §4.3's IPv6 deployment findings: how many cellular ASes expose IPv6
/// cellular space, across how many countries, and which countries lead.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct V6Deployment {
    /// Cellular ASes with at least one cellular /48 detected.
    pub v6_ases: usize,
    /// Size of the cellular AS set examined.
    pub cellular_ases: usize,
    /// Countries hosting at least one IPv6-cellular AS.
    pub countries: usize,
    /// Countries ranked by IPv6-cellular AS count, descending.
    pub top_countries: Vec<(CountryCode, usize)>,
}

impl V6Deployment {
    /// Fraction of cellular ASes deploying IPv6 (paper: 52/668 = 7.7%).
    pub fn fraction(&self) -> f64 {
        if self.cellular_ases > 0 {
            self.v6_ases as f64 / self.cellular_ases as f64
        } else {
            0.0
        }
    }
}

/// Measure IPv6 cellular deployment over the identified cellular AS set.
pub fn v6_deployment(
    cellular_ases: &[Asn],
    index: &BlockIndex,
    classification: &Classification,
    as_db: &AsDatabase,
) -> V6Deployment {
    let cell_set: std::collections::HashSet<Asn> = cellular_ases.iter().copied().collect();
    let mut v6_ases: std::collections::HashSet<Asn> = Default::default();
    for o in index.iter() {
        if o.block.is_v6() && cell_set.contains(&o.asn) && classification.is_cellular(o.block) {
            v6_ases.insert(o.asn);
        }
    }
    let mut per_country: HashMap<CountryCode, usize> = HashMap::new();
    for asn in &v6_ases {
        if let Some(r) = as_db.get(*asn) {
            *per_country.entry(r.country).or_default() += 1;
        }
    }
    let mut top_countries: Vec<(CountryCode, usize)> = per_country.into_iter().collect();
    top_countries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    V6Deployment {
        v6_ases: v6_ases.len(),
        cellular_ases: cellular_ases.len(),
        countries: top_countries.len(),
        top_countries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::{AsKind, AsRecord};
    use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
    use netaddr::{Block24, BlockId};

    fn setup() -> (BlockIndex, Classification, AsDatabase) {
        let mk = |idx: u32, asn: u32, netinfo: u64, cell: u64| BeaconRecord {
            block: BlockId::V4(Block24::from_index(idx)),
            asn: Asn(asn),
            hits_total: netinfo.max(1),
            netinfo_hits: netinfo,
            cellular_hits: cell,
            wifi_hits: netinfo - cell,
            other_hits: 0,
        };
        let du = |idx: u32, asn: u32, du: f64| DemandRecord {
            block: BlockId::V4(Block24::from_index(idx)),
            asn: Asn(asn),
            du,
        };
        let beacons = BeaconDataset::from_records(
            "t",
            vec![
                mk(1, 10, 100, 95), // cellular, US AS
                mk(2, 10, 100, 2),  // fixed, US AS
                mk(3, 20, 100, 80), // cellular, GH AS
                mk(4, 20, 100, 1),  // fixed, GH AS
            ],
        );
        let demand = DemandDataset::from_raw(
            "t",
            vec![
                du(1, 10, 16.6),
                du(2, 10, 83.4),
                du(3, 20, 9.6),
                du(4, 20, 0.4),
            ],
        );
        let index = BlockIndex::build(&beacons, &demand);
        let class = Classification::with_default_threshold(&index);
        let db = AsDatabase::from_records(vec![
            AsRecord::new(
                Asn(10),
                "us-op",
                CountryCode::literal("US"),
                Continent::NorthAmerica,
                AsKind::MixedAccess,
            ),
            AsRecord::new(
                Asn(20),
                "gh-op",
                CountryCode::literal("GH"),
                Continent::Africa,
                AsKind::MixedAccess,
            ),
        ]);
        (index, class, db)
    }

    #[test]
    fn rollups_match_hand_computation() {
        let (index, class, db) = setup();
        let view = WorldView::build(&index, &class, &db);
        // US: 16.6 of 100 cellular; GH: 9.6 of 10 cellular. Total demand
        // normalizes to 100,000 but fractions are preserved.
        let na = &view.demand[Continent::NorthAmerica.index()];
        assert!((na.cellular_fraction_pct() - 16.6).abs() < 1e-6);
        let af = &view.demand[Continent::Africa.index()];
        assert!((af.cellular_fraction_pct() - 96.0).abs() < 1e-6);
        // Global: (16.6 + 9.6) / 110.
        assert!((view.global_cellular_pct() - 100.0 * 26.2 / 110.0).abs() < 1e-6);
        // Table 4 rows.
        let nas = &view.subnets[Continent::NorthAmerica.index()];
        assert_eq!((nas.cell24, nas.active24), (1, 2));
        assert!((nas.pct_active_v4() - 50.0).abs() < 1e-12);
        // Country scatter.
        let scatter = view.country_scatter();
        let gh = scatter
            .iter()
            .find(|(c, _, _)| c.as_str() == "GH")
            .expect("GH present");
        assert!((gh.1 - 0.96).abs() < 1e-9);
    }

    #[test]
    fn top_countries_and_table6() {
        let (index, class, db) = setup();
        let view = WorldView::build(&index, &class, &db);
        let top = view.top_countries(Continent::Africa, 10);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0.as_str(), "GH");
        let (counts, avg) = WorldView::table6(&[Asn(10), Asn(20)], &db);
        assert_eq!(counts[Continent::NorthAmerica.index()], 1);
        assert_eq!(counts[Continent::Africa.index()], 1);
        assert!((avg[Continent::Africa.index()] - 1.0).abs() < 1e-12);
        assert_eq!(counts[Continent::Europe.index()], 0);
    }

    #[test]
    fn unknown_asn_blocks_are_skipped() {
        let (index, class, _) = setup();
        let empty_db = AsDatabase::new();
        let view = WorldView::build(&index, &class, &empty_db);
        assert_eq!(view.global_total_du, 0.0);
        assert!(view.countries.is_empty());
    }
}
