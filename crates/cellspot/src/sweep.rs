//! Threshold sensitivity analysis (§4.2, Fig. 3): classifier F1 against
//! carrier ground truth across the whole range of ratio thresholds.

use asdb::CarrierGroundTruth;
use serde::{Deserialize, Serialize};

use crate::classify::Classification;
use crate::index::BlockIndex;
use crate::metrics::{validate_carrier, CarrierValidation};

/// One point of a sensitivity curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Ratio threshold.
    pub threshold: f64,
    /// CIDR-count F1 at this threshold.
    pub f1_cidr: f64,
    /// Demand-weighted F1.
    pub f1_demand: f64,
    /// CIDR-count precision (the quantity the paper credits for the
    /// curve's flatness — cellular labels rarely lie).
    pub precision_cidr: f64,
    /// CIDR-count recall.
    pub recall_cidr: f64,
}

/// A carrier's full sensitivity curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCurve {
    /// Carrier codename.
    pub carrier: String,
    /// Points in ascending threshold order.
    pub points: Vec<SweepPoint>,
}

impl SweepCurve {
    /// The widest threshold interval over which demand-weighted F1 stays
    /// within `tolerance` of its maximum — the paper's robustness claim
    /// (stable from 0.1 to 0.96 for its carriers).
    pub fn stable_range(&self, tolerance: f64) -> Option<(f64, f64)> {
        let max = self
            .points
            .iter()
            .map(|p| p.f1_demand)
            .fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() || max <= 0.0 {
            return None;
        }
        let ok: Vec<&SweepPoint> = self
            .points
            .iter()
            .filter(|p| p.f1_demand >= max - tolerance)
            .collect();
        // The paper's claim is about a contiguous plateau; take the
        // longest contiguous run of qualifying points.
        let mut best: Option<(f64, f64)> = None;
        let mut run_start: Option<f64> = None;
        let mut prev_ok = false;
        for p in &self.points {
            let is_ok = ok.iter().any(|q| q.threshold == p.threshold);
            if is_ok && !prev_ok {
                run_start = Some(p.threshold);
            }
            if is_ok {
                let start = run_start.expect("run_start set when a run begins");
                let cand = (start, p.threshold);
                if best.is_none()
                    || cand.1 - cand.0
                        > best.expect("checked is_none").1 - best.expect("checked is_none").0
                {
                    best = Some(cand);
                }
            }
            prev_ok = is_ok;
        }
        best
    }
}

/// Sweep thresholds over `(0, 1]` for one carrier.
///
/// `steps` points are evaluated at `k / steps` for `k = 1..=steps`
/// (threshold 0 is excluded: everything with any cellular hit would be
/// labeled cellular, which the paper's range `(0,1]` likewise excludes).
/// Points are independent, so they are evaluated in parallel and
/// collected in threshold order.
pub fn threshold_sweep(gt: &CarrierGroundTruth, index: &BlockIndex, steps: usize) -> SweepCurve {
    use rayon::prelude::*;
    let steps = steps.max(2);
    let points: Vec<SweepPoint> = (1..=steps)
        .into_par_iter()
        .map(|k| {
            let t = k as f64 / steps as f64;
            let c = Classification::new(index, t);
            let v: CarrierValidation = validate_carrier(gt, &c, index);
            SweepPoint {
                threshold: t,
                f1_cidr: v.by_cidr.f1(),
                f1_demand: v.by_demand.f1(),
                precision_cidr: v.by_cidr.precision(),
                recall_cidr: v.by_cidr.recall(),
            }
        })
        .collect();
    SweepCurve {
        carrier: gt.name.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::{AccessType, GroundTruthEntry};
    use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
    use netaddr::{Asn, Block24, BlockId, Ipv4Net};

    /// A toy carrier: 8 cellular blocks with high ratios and solid demand,
    /// 32 fixed blocks with near-zero ratios.
    fn toy() -> (CarrierGroundTruth, BlockIndex) {
        let gt = CarrierGroundTruth::new(
            "Toy",
            vec![Asn(1)],
            vec![
                GroundTruthEntry::V4(
                    "10.0.0.0/21".parse::<Ipv4Net>().unwrap(),
                    AccessType::Cellular,
                ),
                GroundTruthEntry::V4("10.8.0.0/19".parse::<Ipv4Net>().unwrap(), AccessType::Fixed),
            ],
        );
        let mut beacons = Vec::new();
        let mut demand = Vec::new();
        for i in 0..8u32 {
            let block = BlockId::V4(Block24::of_addr(0x0A000000 + (i << 8)));
            beacons.push(BeaconRecord {
                block,
                asn: Asn(1),
                hits_total: 500,
                netinfo_hits: 500,
                cellular_hits: 440 + (i as u64 * 7) % 50, // ratios ≈ 0.88-0.97
                wifi_hits: 0,
                other_hits: 0,
            });
            demand.push(DemandRecord {
                block,
                asn: Asn(1),
                du: 50.0,
            });
        }
        for i in 0..32u32 {
            let block = BlockId::V4(Block24::of_addr(0x0A080000 + (i << 8)));
            beacons.push(BeaconRecord {
                block,
                asn: Asn(1),
                hits_total: 500,
                netinfo_hits: 500,
                cellular_hits: u64::from(i % 7 == 0), // the odd switch flip
                wifi_hits: 499,
                other_hits: 0,
            });
            demand.push(DemandRecord {
                block,
                asn: Asn(1),
                du: 20.0,
            });
        }
        let index = BlockIndex::build(
            &BeaconDataset::from_records("t", beacons),
            &DemandDataset::from_raw("t", demand),
        );
        (gt, index)
    }

    #[test]
    fn sweep_shape_matches_fig3() {
        let (gt, index) = toy();
        let curve = threshold_sweep(&gt, &index, 50);
        assert_eq!(curve.points.len(), 50);
        // Perfect classification across a wide middle range.
        for p in &curve.points {
            if (0.1..=0.85).contains(&p.threshold) {
                assert!(
                    p.f1_cidr > 0.99,
                    "t={}: F1={} — Fig 3 expects a wide plateau",
                    p.threshold,
                    p.f1_cidr
                );
            }
        }
        // Very high thresholds fall off (ratios top out below 1.0).
        let last = curve.points.last().expect("non-empty sweep");
        assert!(last.recall_cidr < 1.0);
        let range = curve.stable_range(0.02).expect("plateau exists");
        // The toy's cellular ratios span 0.88-0.98, so the plateau runs
        // from near zero to the smallest cellular ratio.
        assert!(range.0 <= 0.1 && range.1 >= 0.85, "stable range {range:?}");
    }

    #[test]
    fn precision_stays_high_everywhere() {
        // The Fig. 3 flatness argument: cellular false positives are rare
        // at any threshold above noise level.
        let (gt, index) = toy();
        let curve = threshold_sweep(&gt, &index, 20);
        for p in &curve.points {
            if (0.1..=0.95).contains(&p.threshold) {
                assert!(
                    p.precision_cidr > 0.99,
                    "t={}: precision {}",
                    p.threshold,
                    p.precision_cidr
                );
            }
        }
    }

    #[test]
    fn stable_range_handles_degenerate_curves() {
        let empty = SweepCurve {
            carrier: "x".into(),
            points: vec![],
        };
        assert_eq!(empty.stable_range(0.05), None);
        let zero = SweepCurve {
            carrier: "x".into(),
            points: vec![SweepPoint {
                threshold: 0.5,
                f1_cidr: 0.0,
                f1_demand: 0.0,
                precision_cidr: 0.0,
                recall_cidr: 0.0,
            }],
        };
        assert_eq!(zero.stable_range(0.05), None);
    }
}
