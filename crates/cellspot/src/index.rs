//! The joined per-block view: BEACON hit counts merged with DEMAND units.
//!
//! Every analysis in the paper operates on this join — ratios come from
//! beacons, weights come from demand, and blocks may appear in either
//! dataset alone (Table 2's BEACON ⊂ DEMAND asymmetry for IPv4, and the
//! reverse for ephemeral IPv6 space).

use netaddr::{Asn, BlockId};
use serde::{Deserialize, Serialize};

use cdnsim::{BeaconDataset, DemandDataset};

use crate::error::CellspotError;

/// One block's joined observation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockObs {
    /// The block.
    pub block: BlockId,
    /// Origin AS.
    pub asn: Asn,
    /// NetInfo-enabled beacon hits (0 when the block never beaconed or no
    /// hit carried NetInfo data).
    pub netinfo_hits: u64,
    /// NetInfo hits labeled `cellular`.
    pub cellular_hits: u64,
    /// All beacon hits.
    pub beacon_hits: u64,
    /// Normalized Demand Units (0 when absent from DEMAND).
    pub du: f64,
}

impl BlockObs {
    /// Cellular ratio, `None` when no NetInfo hits exist (§4.1).
    pub fn cellular_ratio(&self) -> Option<f64> {
        if self.netinfo_hits == 0 {
            None
        } else {
            Some(self.cellular_hits as f64 / self.netinfo_hits as f64)
        }
    }
}

/// The joined dataset, sorted by block id.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BlockIndex {
    blocks: Vec<BlockObs>,
}

impl BlockIndex {
    /// Join BEACON and DEMAND on block id (full outer join).
    ///
    /// Both inputs must be sorted by block id with no duplicates — the
    /// dataset constructors guarantee this, and the merge join silently
    /// corrupts the output otherwise, so debug builds verify it.
    ///
    /// When both datasets carry a block but disagree on its origin AS,
    /// the DEMAND-side label wins, deterministically: DEMAND covers all
    /// traffic (Table 2's BEACON ⊂ DEMAND for IPv4), so its AS mapping
    /// reflects the broader routing view a disagreement would have come
    /// from. (The pre-fix code silently took the beacon-side ASN.) Use
    /// [`BlockIndex::try_build`] to reject such inputs instead — the
    /// [`Pipeline`](crate::Pipeline) entry points do.
    pub fn build(beacons: &BeaconDataset, demand: &DemandDataset) -> Self {
        Self::join(beacons, demand, false).expect("lenient join reconciles instead of failing")
    }

    /// [`BlockIndex::build`], but a BEACON/DEMAND disagreement on a
    /// block's origin AS is rejected as
    /// [`CellspotError::InconsistentDatasets`] instead of reconciled —
    /// mismatched labels mean the two datasets were produced against
    /// different routing tables, and every per-AS aggregate downstream
    /// would silently blend them.
    pub fn try_build(
        beacons: &BeaconDataset,
        demand: &DemandDataset,
    ) -> Result<Self, CellspotError> {
        Self::join(beacons, demand, true)
    }

    /// The shared merge join. `strict` decides what an ASN disagreement
    /// on a both-present block does: error out, or resolve to the
    /// demand-side label.
    fn join(
        beacons: &BeaconDataset,
        demand: &DemandDataset,
        strict: bool,
    ) -> Result<Self, CellspotError> {
        debug_assert!(
            beacons
                .iter()
                .zip(beacons.iter().skip(1))
                .all(|(a, b)| a.block < b.block),
            "BEACON input to BlockIndex::build must be strictly sorted by block id"
        );
        debug_assert!(
            demand
                .iter()
                .zip(demand.iter().skip(1))
                .all(|(a, b)| a.block < b.block),
            "DEMAND input to BlockIndex::build must be strictly sorted by block id"
        );
        let mut blocks = Vec::with_capacity(beacons.len().max(demand.len()));
        let mut b_iter = beacons.iter().peekable();
        let mut d_iter = demand.iter().peekable();
        loop {
            match (b_iter.peek(), d_iter.peek()) {
                (Some(b), Some(d)) => {
                    if b.block < d.block {
                        let b = b_iter.next().expect("peeked");
                        blocks.push(BlockObs {
                            block: b.block,
                            asn: b.asn,
                            netinfo_hits: b.netinfo_hits,
                            cellular_hits: b.cellular_hits,
                            beacon_hits: b.hits_total,
                            du: 0.0,
                        });
                    } else if d.block < b.block {
                        let d = d_iter.next().expect("peeked");
                        blocks.push(BlockObs {
                            block: d.block,
                            asn: d.asn,
                            netinfo_hits: 0,
                            cellular_hits: 0,
                            beacon_hits: 0,
                            du: d.du,
                        });
                    } else {
                        let b = b_iter.next().expect("peeked");
                        let d = d_iter.next().expect("peeked");
                        if strict && b.asn != d.asn {
                            return Err(CellspotError::InconsistentDatasets(format!(
                                "block {:?} is labeled AS{} in BEACON but AS{} in DEMAND",
                                b.block,
                                b.asn.value(),
                                d.asn.value()
                            )));
                        }
                        blocks.push(BlockObs {
                            block: b.block,
                            // Demand-side label (they agree on consistent
                            // inputs; see the build/try_build docs).
                            asn: d.asn,
                            netinfo_hits: b.netinfo_hits,
                            cellular_hits: b.cellular_hits,
                            beacon_hits: b.hits_total,
                            du: d.du,
                        });
                    }
                }
                (Some(_), None) => {
                    let b = b_iter.next().expect("peeked");
                    blocks.push(BlockObs {
                        block: b.block,
                        asn: b.asn,
                        netinfo_hits: b.netinfo_hits,
                        cellular_hits: b.cellular_hits,
                        beacon_hits: b.hits_total,
                        du: 0.0,
                    });
                }
                (None, Some(_)) => {
                    let d = d_iter.next().expect("peeked");
                    blocks.push(BlockObs {
                        block: d.block,
                        asn: d.asn,
                        netinfo_hits: 0,
                        cellular_hits: 0,
                        beacon_hits: 0,
                        du: d.du,
                    });
                }
                (None, None) => break,
            }
        }
        Ok(BlockIndex { blocks })
    }

    /// Number of joined blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the join is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// All observations, ordered by block id.
    pub fn iter(&self) -> impl Iterator<Item = &BlockObs> {
        self.blocks.iter()
    }

    /// The observations as a slice (ordered by block id) — lets callers
    /// chunk the join for deterministic parallel aggregation.
    pub fn as_slice(&self) -> &[BlockObs] {
        &self.blocks
    }

    /// Binary-search lookup.
    pub fn get(&self, block: BlockId) -> Option<&BlockObs> {
        self.blocks
            .binary_search_by_key(&block, |b| b.block)
            .ok()
            .map(|i| &self.blocks[i])
    }

    /// (IPv4, IPv6) block counts in the join.
    pub fn block_counts(&self) -> (usize, usize) {
        let v4 = self.blocks.iter().filter(|b| b.block.is_v4()).count();
        (v4, self.blocks.len() - v4)
    }

    /// Total demand in the join (≈ 100,000 DU for a full platform join).
    pub fn total_du(&self) -> f64 {
        self.blocks.iter().map(|b| b.du).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnsim::{BeaconRecord, DemandRecord};
    use netaddr::Block24;

    fn b(i: u32) -> BlockId {
        BlockId::V4(Block24::from_index(i))
    }

    fn beacon(i: u32, netinfo: u64, cell: u64) -> BeaconRecord {
        BeaconRecord {
            block: b(i),
            asn: Asn(1),
            hits_total: netinfo * 8,
            netinfo_hits: netinfo,
            cellular_hits: cell,
            wifi_hits: netinfo - cell,
            other_hits: 0,
        }
    }

    fn demand(i: u32, du: f64) -> DemandRecord {
        DemandRecord {
            block: b(i),
            asn: Asn(1),
            du,
        }
    }

    #[test]
    fn full_outer_join() {
        let beacons = BeaconDataset::from_records("t", vec![beacon(1, 10, 9), beacon(3, 4, 0)]);
        let dem = DemandDataset::from_raw("t", vec![demand(1, 3.0), demand(2, 1.0)]);
        let idx = BlockIndex::build(&beacons, &dem);
        assert_eq!(idx.len(), 3);
        // Block 1: joined.
        let o1 = idx.get(b(1)).unwrap();
        assert_eq!(o1.netinfo_hits, 10);
        assert!((o1.du - 75_000.0).abs() < 1e-6);
        assert!((o1.cellular_ratio().unwrap() - 0.9).abs() < 1e-12);
        // Block 2: demand only.
        let o2 = idx.get(b(2)).unwrap();
        assert_eq!(o2.netinfo_hits, 0);
        assert_eq!(o2.cellular_ratio(), None);
        assert!(o2.du > 0.0);
        // Block 3: beacon only.
        let o3 = idx.get(b(3)).unwrap();
        assert_eq!(o3.du, 0.0);
        assert_eq!(o3.cellular_ratio(), Some(0.0));
        assert!(idx.get(b(9)).is_none());
    }

    #[test]
    fn mismatched_asn_join_reconciles_or_rejects() {
        // Block 1 is labeled AS1 by BEACON but AS7 by DEMAND.
        let mut d1 = demand(1, 3.0);
        d1.asn = Asn(7);
        let beacons = BeaconDataset::from_records("t", vec![beacon(1, 10, 9), beacon(3, 4, 0)]);
        let dem = DemandDataset::from_raw("t", vec![d1, demand(2, 1.0)]);

        // Lenient build reconciles deterministically: demand-side wins
        // (the pre-fix code silently took the beacon side instead).
        let idx = BlockIndex::build(&beacons, &dem);
        assert_eq!(idx.get(b(1)).unwrap().asn, Asn(7));
        // One-sided blocks keep their only label.
        assert_eq!(idx.get(b(2)).unwrap().asn, Asn(1));
        assert_eq!(idx.get(b(3)).unwrap().asn, Asn(1));
        // The rest of the joined observation is intact.
        let o1 = idx.get(b(1)).unwrap();
        assert_eq!(o1.netinfo_hits, 10);
        assert!(o1.du > 0.0);

        // Strict build rejects, naming the block and both labels.
        let err = BlockIndex::try_build(&beacons, &dem)
            .err()
            .expect("mismatched ASN must be rejected");
        let msg = err.to_string();
        assert!(msg.contains("AS1"), "beacon label in {msg:?}");
        assert!(msg.contains("AS7"), "demand label in {msg:?}");
    }

    #[test]
    fn consistent_inputs_build_identically_strict_or_not() {
        let beacons = BeaconDataset::from_records("t", vec![beacon(1, 10, 9), beacon(3, 4, 0)]);
        let dem = DemandDataset::from_raw("t", vec![demand(1, 3.0), demand(2, 1.0)]);
        let lenient = BlockIndex::build(&beacons, &dem);
        let strict = BlockIndex::try_build(&beacons, &dem).expect("consistent inputs");
        assert_eq!(lenient.len(), strict.len());
        for (a, c) in lenient.iter().zip(strict.iter()) {
            assert_eq!(a, c);
        }
    }

    #[test]
    fn join_is_sorted_and_counts() {
        let beacons = BeaconDataset::from_records(
            "t",
            vec![beacon(5, 1, 1), beacon(1, 1, 0), beacon(3, 1, 1)],
        );
        let dem = DemandDataset::from_raw("t", vec![demand(2, 1.0), demand(4, 1.0)]);
        let idx = BlockIndex::build(&beacons, &dem);
        let ids: Vec<_> = idx.iter().map(|o| o.block).collect();
        assert_eq!(ids, vec![b(1), b(2), b(3), b(4), b(5)]);
        assert_eq!(idx.block_counts(), (5, 0));
        assert!((idx.total_du() - 100_000.0).abs() < 1e-6);
    }
}
