//! Small statistics toolkit: empirical CDFs (optionally weighted),
//! quantiles, and concentration measures used across the analyses.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples, optionally weighted.
///
/// Construction sorts once; evaluation is a binary search. Weighted CDFs
/// are what the paper plots when it weights subnets by their demand
/// (Fig. 2's "IPv4 Demand" curve vs. "IPv4 Subnets").
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Ecdf {
    /// Sample values, ascending.
    values: Vec<f64>,
    /// Cumulative weight up to and including each value, normalized to 1.
    cumulative: Vec<f64>,
}

impl Ecdf {
    /// Unweighted CDF from samples.
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        Self::weighted(samples.into_iter().map(|v| (v, 1.0)))
    }

    /// Weighted CDF from `(value, weight)` pairs; non-positive weights are
    /// dropped.
    pub fn weighted(samples: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut pairs: Vec<(f64, f64)> = samples
            .into_iter()
            .filter(|(v, w)| *w > 0.0 && v.is_finite())
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("values are finite"));
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        let mut values = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (v, w) in pairs {
            acc += w;
            values.push(v);
            cumulative.push(if total > 0.0 { acc / total } else { 0.0 });
        }
        Ecdf { values, cumulative }
    }

    /// Number of samples retained.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        // partition_point: first index with value > x.
        let idx = self.values.partition_point(|v| *v <= x);
        if idx == 0 {
            0.0
        } else {
            self.cumulative[idx - 1]
        }
    }

    /// The `q`-quantile (`q` in \[0,1\]), by inverse CDF; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = self.cumulative.partition_point(|c| *c < q);
        Some(self.values[idx.min(self.values.len() - 1)])
    }

    /// Sample the CDF at `n+1` evenly spaced x positions over `[lo, hi]`,
    /// producing a plottable series.
    pub fn series(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(1);
        (0..=n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / n as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Fraction of the total carried by the `k` largest values.
pub fn top_k_share(values: &[f64], k: usize) -> f64 {
    let total: f64 = values.iter().sum();
    if total <= 0.0 || k == 0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("values are finite"));
    sorted.iter().take(k).sum::<f64>() / total
}

/// Smallest number of values whose sum reaches `share` of the total.
pub fn count_for_share(values: &[f64], share: f64) -> usize {
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("values are finite"));
    let target = total * share.clamp(0.0, 1.0);
    let mut acc = 0.0;
    for (i, v) in sorted.iter().enumerate() {
        acc += v;
        if acc >= target {
            return i + 1;
        }
    }
    sorted.len()
}

/// Gini coefficient of a non-negative distribution (0 = perfectly even,
/// → 1 = fully concentrated). Used by the concentration ablations.
pub fn gini(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| *x >= 0.0).collect();
    let n = v.len();
    if n == 0 {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let cdf = Ecdf::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.eval(0.5) - 0.0).abs() < 1e-12);
        assert!((cdf.eval(1.0) - 0.25).abs() < 1e-12);
        assert!((cdf.eval(2.5) - 0.5).abs() < 1e-12);
        assert!((cdf.eval(99.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_weighted() {
        let cdf = Ecdf::weighted([(0.0, 9.0), (1.0, 1.0)]);
        assert!((cdf.eval(0.0) - 0.9).abs() < 1e-12);
        assert!((cdf.eval(1.0) - 1.0).abs() < 1e-12);
        // Zero/negative weights dropped.
        let cdf = Ecdf::weighted([(0.0, 0.0), (1.0, -2.0)]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(5.0), 0.0);
    }

    #[test]
    fn quantiles() {
        let cdf = Ecdf::new((1..=100).map(|i| i as f64));
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(Ecdf::new([]).quantile(0.5), None);
    }

    #[test]
    fn series_is_monotone() {
        let cdf = Ecdf::new([0.1, 0.5, 0.9]);
        let s = cdf.series(0.0, 1.0, 10);
        assert_eq!(s.len(), 11);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn top_k_and_count_for_share() {
        let v = [50.0, 30.0, 10.0, 5.0, 5.0];
        assert!((top_k_share(&v, 2) - 0.8).abs() < 1e-12);
        assert_eq!(count_for_share(&v, 0.8), 2);
        assert_eq!(count_for_share(&v, 1.0), 5);
        assert_eq!(count_for_share(&[], 0.5), 0);
        assert_eq!(top_k_share(&v, 0), 0.0);
    }

    #[test]
    fn gini_extremes() {
        assert!((gini(&[1.0, 1.0, 1.0, 1.0]) - 0.0).abs() < 1e-9);
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(concentrated > 0.7, "gini {concentrated}");
        assert_eq!(gini(&[]), 0.0);
    }
}
