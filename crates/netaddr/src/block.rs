use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Ipv4Net, Ipv6Net};

/// A /24 IPv4 aggregation block — the paper's unit of IPv4 measurement.
///
/// Stored as the upper 24 bits of the network address, so the full range of
/// blocks fits in `0..2^24` and the type can be used directly as a dense
/// array index or sort key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Block24(u32);

impl Block24 {
    /// Build from the upper-24-bit index (i.e. `network_address >> 8`).
    ///
    /// Values above 2^24 − 1 are masked, preserving the dense-index
    /// invariant.
    #[inline]
    pub fn from_index(index: u32) -> Self {
        Block24(index & 0x00FF_FFFF)
    }

    /// The block containing a raw IPv4 address.
    #[inline]
    pub fn of_addr(addr: u32) -> Self {
        Block24(addr >> 8)
    }

    /// The block containing the network address of a prefix of length ≥ 24;
    /// for shorter prefixes, the first /24 inside it.
    #[inline]
    pub fn of_net(net: &Ipv4Net) -> Self {
        Self::of_addr(net.addr())
    }

    /// Dense index in `0..2^24`.
    #[inline]
    pub fn index(&self) -> u32 {
        self.0
    }

    /// The first address in the block.
    #[inline]
    pub fn base_addr(&self) -> u32 {
        self.0 << 8
    }

    /// The block as a /24 prefix.
    #[inline]
    pub fn network(&self) -> Ipv4Net {
        Ipv4Net::new(self.base_addr(), 24).expect("24 is a valid IPv4 prefix length")
    }

    /// The `i`-th address inside the block (`i` is truncated to 8 bits).
    #[inline]
    pub fn addr(&self, i: u8) -> u32 {
        self.base_addr() | i as u32
    }

    /// The next block in address order, wrapping at the top of the space.
    #[inline]
    pub fn next(&self) -> Block24 {
        Block24((self.0 + 1) & 0x00FF_FFFF)
    }

    /// Minimal CIDR cover of a contiguous run of `count` /24 blocks
    /// starting at `start`: the shortest list of prefixes (each /24 or
    /// shorter) whose union is exactly the run.
    ///
    /// Used to express operators' contiguous allocations as the kind of
    /// mixed-length CIDR lists carriers hand out as ground truth.
    pub fn cover(start: Block24, count: u32) -> Vec<Ipv4Net> {
        let mut out = Vec::new();
        let mut idx = start.index();
        let mut left = count;
        while left > 0 {
            // Largest power-of-two run that is both aligned at `idx` and
            // no longer than what remains.
            let align = if idx == 0 { 24 } else { idx.trailing_zeros() };
            let size_log = align.min(31 - left.leading_zeros()).min(24);
            let run = 1u32 << size_log;
            let len = 24 - size_log as u8;
            out.push(Ipv4Net::new(idx << 8, len).expect("cover lengths are always within 0..=24"));
            idx += run;
            left -= run;
        }
        out
    }
}

impl fmt::Display for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.network())
    }
}

impl fmt::Debug for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A /48 IPv6 aggregation block — the paper's unit of IPv6 measurement.
///
/// Stored as the upper 48 bits of the network address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Block48(u64);

impl Block48 {
    /// Build from the upper-48-bit index (`network_address >> 80`).
    #[inline]
    pub fn from_index(index: u64) -> Self {
        Block48(index & 0x0000_FFFF_FFFF_FFFF)
    }

    /// The block containing a raw IPv6 address.
    #[inline]
    pub fn of_addr(addr: u128) -> Self {
        Block48((addr >> 80) as u64)
    }

    /// The block containing the network address of a prefix.
    #[inline]
    pub fn of_net(net: &Ipv6Net) -> Self {
        Self::of_addr(net.addr())
    }

    /// Dense index in `0..2^48`.
    #[inline]
    pub fn index(&self) -> u64 {
        self.0
    }

    /// The first address in the block.
    #[inline]
    pub fn base_addr(&self) -> u128 {
        (self.0 as u128) << 80
    }

    /// The block as a /48 prefix.
    #[inline]
    pub fn network(&self) -> Ipv6Net {
        Ipv6Net::new(self.base_addr(), 48).expect("48 is a valid IPv6 prefix length")
    }

    /// A host address inside the block: interface id `iid` within subnet
    /// `subnet` (the 16 bits right of the /48 boundary).
    #[inline]
    pub fn addr(&self, subnet: u16, iid: u64) -> u128 {
        self.base_addr() | ((subnet as u128) << 64) | iid as u128
    }
}

impl fmt::Display for Block48 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.network())
    }
}

impl fmt::Debug for Block48 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Either kind of aggregation block. All measurement datasets key on this.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum BlockId {
    /// An IPv4 /24 block.
    V4(Block24),
    /// An IPv6 /48 block.
    V6(Block48),
}

impl BlockId {
    /// Is this an IPv4 block?
    #[inline]
    pub fn is_v4(&self) -> bool {
        matches!(self, BlockId::V4(_))
    }

    /// Is this an IPv6 block?
    #[inline]
    pub fn is_v6(&self) -> bool {
        matches!(self, BlockId::V6(_))
    }

    /// The IPv4 block, if this is one.
    #[inline]
    pub fn as_v4(&self) -> Option<Block24> {
        match self {
            BlockId::V4(b) => Some(*b),
            BlockId::V6(_) => None,
        }
    }

    /// The IPv6 block, if this is one.
    #[inline]
    pub fn as_v6(&self) -> Option<Block48> {
        match self {
            BlockId::V4(_) => None,
            BlockId::V6(b) => Some(*b),
        }
    }
}

impl From<Block24> for BlockId {
    fn from(b: Block24) -> Self {
        BlockId::V4(b)
    }
}

impl From<Block48> for BlockId {
    fn from(b: Block48) -> Self {
        BlockId::V6(b)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockId::V4(b) => write!(f, "{b}"),
            BlockId::V6(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block24_round_trip() {
        let b = Block24::of_addr(0xCB007105); // 203.0.113.5
        assert_eq!(b.to_string(), "203.0.113.0/24");
        assert_eq!(b.base_addr(), 0xCB007100);
        assert_eq!(b.addr(5), 0xCB007105);
        assert_eq!(Block24::of_net(&b.network()), b);
        assert_eq!(Block24::from_index(b.index()), b);
    }

    #[test]
    fn cover_produces_minimal_exact_cover() {
        // 10.0.0.0 is index 0x0A0000; a run of 5 blocks from an aligned
        // start covers as /22 + /24.
        let start = Block24::from_index(0x0A0000);
        let cover = Block24::cover(start, 5);
        let strs: Vec<String> = cover.iter().map(|n| n.to_string()).collect();
        assert_eq!(strs, vec!["10.0.0.0/22", "10.0.4.0/24"]);

        // Unaligned start forces /24s until alignment is reached.
        let cover = Block24::cover(Block24::from_index(0x0A0001), 7);
        let total: u64 = cover.iter().map(|n| n.num_block24()).sum();
        assert_eq!(total, 7);
        for w in cover.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
        // Every covered block maps back into the run.
        for net in &cover {
            let first = Block24::of_net(net).index();
            assert!((0x0A0001..0x0A0001 + 7).contains(&first));
        }

        assert!(Block24::cover(start, 0).is_empty());
        // A run of 1 is a single /24.
        assert_eq!(Block24::cover(start, 1)[0].len(), 24);
    }

    #[test]
    fn block24_next_wraps() {
        let last = Block24::from_index(0x00FF_FFFF);
        assert_eq!(last.next(), Block24::from_index(0));
    }

    #[test]
    fn block48_round_trip() {
        let net: Ipv6Net = "2001:db8:42::/48".parse().unwrap();
        let b = Block48::of_net(&net);
        assert_eq!(b.network(), net);
        assert_eq!(Block48::from_index(b.index()), b);
        let host = b.addr(7, 0x1234);
        assert!(net.contains(host));
        assert_eq!(Block48::of_addr(host), b);
    }

    #[test]
    fn block_id_accessors() {
        let v4: BlockId = Block24::of_addr(0x01020304).into();
        let v6: BlockId = Block48::of_addr(0x2001_0db8 << 96).into();
        assert!(v4.is_v4() && !v4.is_v6());
        assert!(v6.is_v6() && !v6.is_v4());
        assert!(v4.as_v4().is_some() && v4.as_v6().is_none());
        assert!(v6.as_v6().is_some() && v6.as_v4().is_none());
    }

    #[test]
    fn block_id_orders_v4_before_v6() {
        let v4: BlockId = Block24::from_index(u32::MAX >> 8).into();
        let v6: BlockId = Block48::from_index(0).into();
        assert!(v4 < v6);
    }
}
