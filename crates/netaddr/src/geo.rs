use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::NetAddrError;

/// The six populated continents, as used by the paper's per-continent
/// rollups (Table 4, Table 6, Table 8).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Continent {
    /// Africa (AF).
    Africa,
    /// Asia (AS).
    Asia,
    /// Europe (EU).
    Europe,
    /// North America (NA).
    NorthAmerica,
    /// Oceania (OC).
    Oceania,
    /// South America (SA).
    SouthAmerica,
}

/// All continents in the paper's table order (alphabetical by code).
pub const CONTINENTS: [Continent; 6] = [
    Continent::Africa,
    Continent::Asia,
    Continent::Europe,
    Continent::NorthAmerica,
    Continent::Oceania,
    Continent::SouthAmerica,
];

impl Continent {
    /// Two-letter continent code as used in the paper's Table 6.
    pub fn code(&self) -> &'static str {
        match self {
            Continent::Africa => "AF",
            Continent::Asia => "AS",
            Continent::Europe => "EU",
            Continent::NorthAmerica => "NA",
            Continent::Oceania => "OC",
            Continent::SouthAmerica => "SA",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Continent::Africa => "Africa",
            Continent::Asia => "Asia",
            Continent::Europe => "Europe",
            Continent::NorthAmerica => "North America",
            Continent::Oceania => "Oceania",
            Continent::SouthAmerica => "South America",
        }
    }

    /// Dense index in `CONTINENTS` order, usable for per-continent arrays.
    pub fn index(&self) -> usize {
        match self {
            Continent::Africa => 0,
            Continent::Asia => 1,
            Continent::Europe => 2,
            Continent::NorthAmerica => 3,
            Continent::Oceania => 4,
            Continent::SouthAmerica => 5,
        }
    }
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// ITU mobile-cellular subscriptions in millions per continent, as reported
/// in the paper's Table 8 (all mobile subscriptions including voice; the
/// Asia figure excludes China, matching the paper's exclusion of Chinese
/// demand data).
pub fn ituc_subscribers_millions(continent: Continent) -> f64 {
    match continent {
        Continent::Oceania => 43.3,
        Continent::Africa => 954.0,
        Continent::SouthAmerica => 499.0,
        Continent::Europe => 968.0,
        Continent::NorthAmerica => 594.0,
        Continent::Asia => 2766.0,
    }
}

/// An ISO 3166-1 alpha-2 country code, stored inline as two ASCII
/// uppercase bytes. Serializes as its two-letter string form, so it can
/// be a JSON map key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode([u8; 2]);

impl serde::Serialize for CountryCode {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for CountryCode {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = <std::borrow::Cow<'de, str>>::deserialize(d)?;
        CountryCode::new(&s).map_err(serde::de::Error::custom)
    }
}

impl CountryCode {
    /// Build from two ASCII letters; lowercase input is uppercased.
    pub fn new(s: &str) -> Result<Self, NetAddrError> {
        let bytes = s.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            return Err(NetAddrError::BadCountryCode(s.to_string()));
        }
        Ok(CountryCode([
            bytes[0].to_ascii_uppercase(),
            bytes[1].to_ascii_uppercase(),
        ]))
    }

    /// Infallible constructor for string literals known to be valid;
    /// panics on invalid input (used for static tables).
    pub fn literal(s: &str) -> Self {
        Self::new(s).expect("invalid country code literal")
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("country codes are always ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for CountryCode {
    type Err = NetAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CountryCode::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continent_codes_and_indices_are_distinct() {
        let codes: Vec<_> = CONTINENTS.iter().map(|c| c.code()).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
        for (i, c) in CONTINENTS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn subscriber_totals_match_paper_table8() {
        let total: f64 = CONTINENTS
            .iter()
            .map(|c| ituc_subscribers_millions(*c))
            .sum();
        assert!((total - 5824.3).abs() < 1.0, "paper total is 5,825M (≈)");
    }

    #[test]
    fn country_code_normalizes_case() {
        assert_eq!(CountryCode::new("us").unwrap().as_str(), "US");
        assert_eq!("gh".parse::<CountryCode>().unwrap().as_str(), "GH");
    }

    #[test]
    fn country_code_rejects_bad_input() {
        for s in ["", "U", "USA", "U1", "  "] {
            assert!(CountryCode::new(s).is_err(), "accepted {s:?}");
        }
    }
}
