use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::NetAddrError;
use crate::fmt_ipv4;

/// An IPv4 network prefix in CIDR form, e.g. `203.0.113.0/24`.
///
/// The address is stored in host byte order with all host bits cleared —
/// the type maintains the invariant `addr & !mask == 0`, so two prefixes
/// are equal iff they describe the same set of addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Net {
    addr: u32,
    len: u8,
}

impl Ipv4Net {
    /// Maximum prefix length for IPv4.
    pub const MAX_LEN: u8 = 32;

    /// Build a prefix, silently clearing any host bits below the mask.
    ///
    /// # Errors
    /// Returns [`NetAddrError::BadPrefixLen`] if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Result<Self, NetAddrError> {
        if len > Self::MAX_LEN {
            return Err(NetAddrError::BadPrefixLen {
                len,
                max: Self::MAX_LEN,
            });
        }
        Ok(Self {
            addr: addr & mask(len),
            len,
        })
    }

    /// Build a prefix, rejecting inputs with host bits set.
    ///
    /// Use this when parsing external data where `10.1.2.3/8` is more likely
    /// a transcription error than an intentional network address.
    pub fn new_strict(addr: u32, len: u8) -> Result<Self, NetAddrError> {
        let net = Self::new(addr, len)?;
        if net.addr != addr {
            return Err(NetAddrError::HostBitsSet(format!(
                "{}/{len}",
                fmt_ipv4(addr)
            )));
        }
        Ok(net)
    }

    /// The canonical (masked) network address.
    #[inline]
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length. (`len` here is CIDR terminology, not a
    /// container length, so no `is_empty` counterpart exists.)
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the default route `0.0.0.0/0`.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The network mask as a `u32`.
    #[inline]
    pub fn mask(&self) -> u32 {
        mask(self.len)
    }

    /// First address covered by the prefix (the network address itself).
    #[inline]
    pub fn first(&self) -> u32 {
        self.addr
    }

    /// Last address covered by the prefix (the broadcast address for
    /// conventional subnets).
    #[inline]
    pub fn last(&self) -> u32 {
        self.addr | !mask(self.len)
    }

    /// Number of addresses covered, saturating at `u64::MAX` is unnecessary
    /// since 2^32 fits in `u64`.
    #[inline]
    pub fn num_addresses(&self) -> u64 {
        1u64 << (Self::MAX_LEN - self.len)
    }

    /// Does the prefix cover the given address?
    #[inline]
    pub fn contains(&self, ip: u32) -> bool {
        ip & mask(self.len) == self.addr
    }

    /// Does `self` cover every address of `other`?
    #[inline]
    pub fn contains_net(&self, other: &Ipv4Net) -> bool {
        self.len <= other.len && other.addr & mask(self.len) == self.addr
    }

    /// Do the two prefixes share any address?
    #[inline]
    pub fn overlaps(&self, other: &Ipv4Net) -> bool {
        self.contains_net(other) || other.contains_net(self)
    }

    /// The immediately containing prefix (one bit shorter), or `None` for
    /// the default route.
    pub fn supernet(&self) -> Option<Ipv4Net> {
        if self.len == 0 {
            None
        } else {
            Some(Self {
                addr: self.addr & mask(self.len - 1),
                len: self.len - 1,
            })
        }
    }

    /// Iterate over all subnets of `self` at prefix length `new_len`.
    ///
    /// Returns an empty iterator when `new_len < self.len` or `new_len > 32`.
    pub fn subnets(&self, new_len: u8) -> impl Iterator<Item = Ipv4Net> {
        let valid = new_len >= self.len && new_len <= Self::MAX_LEN;
        let count: u64 = if valid {
            1u64 << (new_len - self.len)
        } else {
            0
        };
        let base = self.addr;
        let step: u64 = if valid && new_len < 32 {
            1u64 << (32 - new_len)
        } else {
            1
        };
        (0..count).map(move |i| Ipv4Net {
            addr: base.wrapping_add((i * step) as u32),
            len: new_len,
        })
    }

    /// Number of /24 blocks this prefix spans (0 if longer than /24 yet
    /// not aligned — a prefix longer than /24 still lies inside exactly one
    /// /24, and we report 1 in that case).
    pub fn num_block24(&self) -> u64 {
        if self.len >= 24 {
            1
        } else {
            1u64 << (24 - self.len)
        }
    }
}

/// Network mask for a prefix length, `mask(0) == 0`, `mask(32) == !0`.
#[inline]
fn mask(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", fmt_ipv4(self.addr), self.len)
    }
}

impl fmt::Debug for Ipv4Net {
    // Debug renders the CIDR form: strictly more readable in test output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv4Net {
    type Err = NetAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| NetAddrError::Parse(s.to_string()))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| NetAddrError::Parse(s.to_string()))?;
        let addr = parse_ipv4(addr_s).ok_or_else(|| NetAddrError::Parse(s.to_string()))?;
        Ipv4Net::new_strict(addr, len)
    }
}

/// Parse a dotted-quad IPv4 address into host byte order.
pub(crate) fn parse_ipv4(s: &str) -> Option<u32> {
    let mut out: u32 = 0;
    let mut octets = 0;
    for part in s.split('.') {
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let v: u32 = part.parse().ok()?;
        if v > 255 {
            return None;
        }
        out = (out << 8) | v;
        octets += 1;
    }
    if octets == 4 {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "203.0.113.0/24", "192.0.2.1/32"] {
            let net: Ipv4Net = s.parse().unwrap();
            assert_eq!(net.to_string(), s);
        }
    }

    #[test]
    fn strict_rejects_host_bits() {
        assert!(matches!(
            "10.0.0.1/8".parse::<Ipv4Net>(),
            Err(NetAddrError::HostBitsSet(_))
        ));
        // Non-strict clears them instead.
        let net = Ipv4Net::new(0x0A000001, 8).unwrap();
        assert_eq!(net.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "10.0.0.0",     // missing length
            "10.0.0/8",     // three octets
            "10.0.0.0.0/8", // five octets
            "10.0.0.256/8", // octet out of range
            "10.0.0.0/33",  // length out of range
            "10.0.0.0/x",   // non-numeric length
            "10.0.0.+1/8",  // sign not allowed
            "",             // empty
        ] {
            assert!(s.parse::<Ipv4Net>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn containment() {
        let outer: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        let inner: Ipv4Net = "10.1.0.0/16".parse().unwrap();
        let other: Ipv4Net = "11.0.0.0/8".parse().unwrap();
        assert!(outer.contains_net(&inner));
        assert!(!inner.contains_net(&outer));
        assert!(outer.overlaps(&inner));
        assert!(inner.overlaps(&outer));
        assert!(!outer.overlaps(&other));
        assert!(outer.contains(0x0AFFFFFF));
        assert!(!outer.contains(0x0B000000));
    }

    #[test]
    fn first_last_count() {
        let net: Ipv4Net = "203.0.113.0/24".parse().unwrap();
        assert_eq!(net.first(), 0xCB007100);
        assert_eq!(net.last(), 0xCB0071FF);
        assert_eq!(net.num_addresses(), 256);
        let all: Ipv4Net = "0.0.0.0/0".parse().unwrap();
        assert_eq!(all.num_addresses(), 1u64 << 32);
    }

    #[test]
    fn supernet_chain_reaches_default() {
        let mut net: Ipv4Net = "203.0.113.0/24".parse().unwrap();
        let mut steps = 0;
        while let Some(up) = net.supernet() {
            assert!(up.contains_net(&net));
            net = up;
            steps += 1;
        }
        assert_eq!(steps, 24);
        assert!(net.is_default());
    }

    #[test]
    fn subnets_enumeration() {
        let net: Ipv4Net = "10.0.0.0/22".parse().unwrap();
        let subs: Vec<_> = net.subnets(24).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "10.0.0.0/24");
        assert_eq!(subs[3].to_string(), "10.0.3.0/24");
        // Degenerate requests yield nothing.
        assert_eq!(net.subnets(8).count(), 0);
        assert_eq!(net.subnets(40).count(), 0);
        // Same-length request yields the prefix itself.
        assert_eq!(net.subnets(22).collect::<Vec<_>>(), vec![net]);
    }

    #[test]
    fn block24_span() {
        assert_eq!("10.0.0.0/22".parse::<Ipv4Net>().unwrap().num_block24(), 4);
        assert_eq!("10.0.0.0/24".parse::<Ipv4Net>().unwrap().num_block24(), 1);
        assert_eq!("10.0.0.0/30".parse::<Ipv4Net>().unwrap().num_block24(), 1);
        assert_eq!(
            "0.0.0.0/0".parse::<Ipv4Net>().unwrap().num_block24(),
            1 << 24
        );
    }

    #[test]
    fn ordering_is_by_address_then_length() {
        let a: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        let b: Ipv4Net = "10.0.0.0/16".parse().unwrap();
        let c: Ipv4Net = "11.0.0.0/8".parse().unwrap();
        assert!(a < b && b < c);
    }
}
