use std::fmt;

/// Errors produced while parsing or constructing addressing types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAddrError {
    /// The textual form could not be parsed (bad syntax, missing `/len`, …).
    Parse(String),
    /// The prefix length is out of range for the address family.
    BadPrefixLen { len: u8, max: u8 },
    /// The prefix has non-zero bits below the mask (e.g. `10.0.0.1/8`).
    HostBitsSet(String),
    /// A country code was not two ASCII letters.
    BadCountryCode(String),
}

impl fmt::Display for NetAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetAddrError::Parse(s) => write!(f, "failed to parse network address: {s:?}"),
            NetAddrError::BadPrefixLen { len, max } => {
                write!(f, "prefix length {len} exceeds maximum {max}")
            }
            NetAddrError::HostBitsSet(s) => {
                write!(f, "prefix {s:?} has host bits set below the mask")
            }
            NetAddrError::BadCountryCode(s) => {
                write!(f, "country code {s:?} is not two ASCII letters")
            }
        }
    }
}

impl std::error::Error for NetAddrError {}
