//! Normalized prefix sets: sorted, non-overlapping, maximally aggregated
//! collections of IPv4 prefixes.
//!
//! Carrier ground-truth lists and operator allocations arrive as
//! arbitrary, possibly overlapping CIDR lists; a [`Ipv4PrefixSet`]
//! canonicalizes them — two sets are equal iff they cover exactly the
//! same addresses — and supports fast membership tests over the merged
//! ranges.

use serde::{Deserialize, Serialize};

use crate::Ipv4Net;

/// A canonicalized set of IPv4 addresses represented as the minimal list
/// of disjoint CIDR prefixes, sorted by address.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4PrefixSet {
    prefixes: Vec<Ipv4Net>,
}

impl Ipv4PrefixSet {
    /// An empty set.
    pub fn new() -> Self {
        Ipv4PrefixSet::default()
    }

    /// Build from any collection of prefixes: overlaps are merged,
    /// adjacent aligned prefixes are aggregated, and the result is the
    /// unique minimal representation.
    pub fn from_prefixes(prefixes: impl IntoIterator<Item = Ipv4Net>) -> Self {
        // 1. Convert to inclusive address ranges and merge.
        let mut ranges: Vec<(u32, u32)> = prefixes
            .into_iter()
            .map(|p| (p.first(), p.last()))
            .collect();
        ranges.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
        for (start, end) in ranges {
            match merged.last_mut() {
                // Extend when overlapping or exactly adjacent.
                Some((_, last_end))
                    if start <= last_end.saturating_add(1)
                        && *last_end >= start.saturating_sub(1) =>
                {
                    if end > *last_end {
                        *last_end = end;
                    }
                }
                _ => merged.push((start, end)),
            }
        }
        // 2. Minimal CIDR cover per merged range.
        let mut prefixes = Vec::new();
        for (start, end) in merged {
            cover_range(start, end, &mut prefixes);
        }
        Ipv4PrefixSet { prefixes }
    }

    /// The canonical prefixes, ascending and disjoint.
    pub fn prefixes(&self) -> &[Ipv4Net] {
        &self.prefixes
    }

    /// Number of prefixes in the canonical representation.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// True when the set covers no addresses.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Total number of addresses covered.
    pub fn num_addresses(&self) -> u64 {
        self.prefixes.iter().map(|p| p.num_addresses()).sum()
    }

    /// Does the set contain the address? Binary search over the sorted
    /// disjoint prefixes.
    pub fn contains(&self, ip: u32) -> bool {
        // partition_point: first prefix whose network address exceeds ip.
        let idx = self.prefixes.partition_point(|p| p.first() <= ip);
        idx > 0 && self.prefixes[idx - 1].contains(ip)
    }

    /// Does the set fully cover the given prefix?
    pub fn contains_net(&self, net: &Ipv4Net) -> bool {
        // A canonical set covers `net` iff one canonical prefix does:
        // merged ranges are maximal, so coverage cannot be split across
        // two disjoint canonical prefixes without a gap.
        let idx = self.prefixes.partition_point(|p| p.first() <= net.first());
        idx > 0 && self.prefixes[idx - 1].contains_net(net)
    }

    /// Set union.
    pub fn union(&self, other: &Ipv4PrefixSet) -> Ipv4PrefixSet {
        Ipv4PrefixSet::from_prefixes(self.prefixes.iter().chain(other.prefixes.iter()).copied())
    }
}

impl FromIterator<Ipv4Net> for Ipv4PrefixSet {
    fn from_iter<T: IntoIterator<Item = Ipv4Net>>(iter: T) -> Self {
        Ipv4PrefixSet::from_prefixes(iter)
    }
}

/// Append the minimal CIDR cover of the inclusive range `[start, end]`.
fn cover_range(mut start: u32, end: u32, out: &mut Vec<Ipv4Net>) {
    loop {
        // Largest prefix aligned at `start` that does not overshoot `end`.
        let max_align = if start == 0 {
            32
        } else {
            start.trailing_zeros()
        };
        let span = (end - start) as u64 + 1;
        let max_size = 63 - span.leading_zeros() as u64; // floor(log2(span))
        let size_log = (max_align as u64).min(max_size).min(32) as u32;
        let len = (32 - size_log) as u8;
        out.push(Ipv4Net::new(start, len).expect("length derived within bounds"));
        let step = 1u64 << size_log;
        let next = start as u64 + step;
        if next > end as u64 {
            break;
        }
        start = next as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(prefixes: &[&str]) -> Ipv4PrefixSet {
        Ipv4PrefixSet::from_prefixes(prefixes.iter().map(|s| s.parse().unwrap()))
    }

    #[test]
    fn merges_adjacent_and_overlapping() {
        // Two adjacent /25s aggregate into one /24.
        let s = set(&["10.0.0.0/25", "10.0.0.128/25"]);
        assert_eq!(s.prefixes().len(), 1);
        assert_eq!(s.prefixes()[0].to_string(), "10.0.0.0/24");
        // Contained prefixes disappear.
        let s = set(&["10.0.0.0/8", "10.1.0.0/16"]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.prefixes()[0].to_string(), "10.0.0.0/8");
        // Four consecutive /24s merge into a /22.
        let s = set(&["10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"]);
        assert_eq!(s.prefixes()[0].to_string(), "10.0.0.0/22");
    }

    #[test]
    fn unaligned_adjacency_keeps_minimal_cover() {
        // /24s at indices 1..=2 cannot merge into one prefix (misaligned).
        let s = set(&["10.0.1.0/24", "10.0.2.0/24"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_addresses(), 512);
    }

    #[test]
    fn membership() {
        let s = set(&["10.0.0.0/24", "192.168.0.0/16"]);
        assert!(s.contains(0x0A000001));
        assert!(s.contains(0xC0A8FFFF));
        assert!(!s.contains(0x0A000100));
        assert!(!s.contains(0x0B000000));
        assert!(s.contains_net(&"192.168.5.0/24".parse().unwrap()));
        assert!(!s.contains_net(&"192.0.0.0/8".parse().unwrap()));
    }

    #[test]
    fn canonical_equality() {
        let a = set(&["10.0.0.0/25", "10.0.0.128/25", "10.0.1.0/24"]);
        let b = set(&["10.0.0.0/23"]);
        assert_eq!(a, b);
        assert_eq!(a.num_addresses(), 512);
    }

    #[test]
    fn union_and_empty() {
        let a = set(&["10.0.0.0/24"]);
        let b = set(&["10.0.1.0/24"]);
        let u = a.union(&b);
        assert_eq!(u, set(&["10.0.0.0/23"]));
        let e = Ipv4PrefixSet::new();
        assert!(e.is_empty());
        assert_eq!(e.num_addresses(), 0);
        assert!(!e.contains(0));
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn full_space_round_trip() {
        let s = set(&["0.0.0.0/0"]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_addresses(), 1u64 << 32);
        assert!(s.contains(0));
        assert!(s.contains(u32::MAX));
        // Two halves merge back into the default route.
        let halves = set(&["0.0.0.0/1", "128.0.0.0/1"]);
        assert_eq!(halves, s);
    }

    #[test]
    fn top_edge_of_space() {
        // Ranges ending at u32::MAX must not overflow.
        let s = set(&["255.255.255.0/24", "255.255.254.0/24"]);
        assert_eq!(s.prefixes()[0].to_string(), "255.255.254.0/23");
        assert!(s.contains(u32::MAX));
    }
}
