use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::NetAddrError;
use crate::fmt_ipv6;

/// An IPv6 network prefix in CIDR form, e.g. `2001:db8::/48`.
///
/// Stored as a `u128` in host byte order with host bits cleared, mirroring
/// [`crate::Ipv4Net`]. Textual parsing accepts the standard compressed form
/// (`::` elision) but always prints the uncompressed form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv6Net {
    addr: u128,
    len: u8,
}

impl Ipv6Net {
    /// Maximum prefix length for IPv6.
    pub const MAX_LEN: u8 = 128;

    /// Build a prefix, clearing host bits below the mask.
    pub fn new(addr: u128, len: u8) -> Result<Self, NetAddrError> {
        if len > Self::MAX_LEN {
            return Err(NetAddrError::BadPrefixLen {
                len,
                max: Self::MAX_LEN,
            });
        }
        Ok(Self {
            addr: addr & mask(len),
            len,
        })
    }

    /// Build a prefix, rejecting inputs with host bits set.
    pub fn new_strict(addr: u128, len: u8) -> Result<Self, NetAddrError> {
        let net = Self::new(addr, len)?;
        if net.addr != addr {
            return Err(NetAddrError::HostBitsSet(format!(
                "{}/{len}",
                fmt_ipv6(addr)
            )));
        }
        Ok(net)
    }

    /// The canonical (masked) network address.
    #[inline]
    pub fn addr(&self) -> u128 {
        self.addr
    }

    /// The prefix length. (`len` here is CIDR terminology, not a
    /// container length, so no `is_empty` counterpart exists.)
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for `::/0`.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Does the prefix cover the given address?
    #[inline]
    pub fn contains(&self, ip: u128) -> bool {
        ip & mask(self.len) == self.addr
    }

    /// Does `self` cover every address of `other`?
    #[inline]
    pub fn contains_net(&self, other: &Ipv6Net) -> bool {
        self.len <= other.len && other.addr & mask(self.len) == self.addr
    }

    /// Do the two prefixes share any address?
    #[inline]
    pub fn overlaps(&self, other: &Ipv6Net) -> bool {
        self.contains_net(other) || other.contains_net(self)
    }

    /// The immediately containing prefix, or `None` for the default route.
    pub fn supernet(&self) -> Option<Ipv6Net> {
        if self.len == 0 {
            None
        } else {
            Some(Self {
                addr: self.addr & mask(self.len - 1),
                len: self.len - 1,
            })
        }
    }

    /// Iterate over all subnets at prefix length `new_len` (empty iterator
    /// for invalid lengths). Capped to 2^20 subnets to keep accidental
    /// `::/0 → /48` enumerations from running forever; worldgen enumerates
    /// within operator allocations, which are far smaller.
    pub fn subnets(&self, new_len: u8) -> impl Iterator<Item = Ipv6Net> {
        const CAP: u128 = 1 << 20;
        let valid = new_len >= self.len && new_len <= Self::MAX_LEN;
        let count: u128 = if valid {
            (1u128 << (new_len - self.len).min(127)).min(CAP)
        } else {
            0
        };
        let base = self.addr;
        let step: u128 = if valid && new_len < 128 {
            1u128 << (128 - new_len)
        } else {
            1
        };
        (0..count).map(move |i| Ipv6Net {
            addr: base.wrapping_add(i * step),
            len: new_len,
        })
    }

    /// Number of /48 blocks this prefix spans (1 when the prefix is /48 or
    /// longer), capped at `u64::MAX` for very short prefixes.
    pub fn num_block48(&self) -> u64 {
        if self.len >= 48 {
            1
        } else {
            let shift = 48 - self.len;
            if shift >= 64 {
                u64::MAX
            } else {
                1u64 << shift
            }
        }
    }
}

#[inline]
fn mask(len: u8) -> u128 {
    debug_assert!(len <= 128);
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len)
    }
}

impl fmt::Display for Ipv6Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", fmt_ipv6(self.addr), self.len)
    }
}

impl fmt::Debug for Ipv6Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv6Net {
    type Err = NetAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| NetAddrError::Parse(s.to_string()))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| NetAddrError::Parse(s.to_string()))?;
        let addr = parse_ipv6(addr_s).ok_or_else(|| NetAddrError::Parse(s.to_string()))?;
        Ipv6Net::new_strict(addr, len)
    }
}

/// Parse an IPv6 address, supporting one `::` elision. IPv4-mapped tails
/// (`::ffff:1.2.3.4`) are intentionally unsupported: they never appear in
/// the prefix lists this library consumes.
pub(crate) fn parse_ipv6(s: &str) -> Option<u128> {
    if s.is_empty() {
        return None;
    }
    let (head, tail) = match s.find("::") {
        Some(pos) => {
            // A second "::" is invalid.
            if s[pos + 2..].contains("::") {
                return None;
            }
            (&s[..pos], &s[pos + 2..])
        }
        None => (s, ""),
    };
    let parse_groups = |part: &str| -> Option<Vec<u16>> {
        if part.is_empty() {
            return Some(Vec::new());
        }
        part.split(':')
            .map(|g| {
                if g.is_empty() || g.len() > 4 {
                    None
                } else {
                    u16::from_str_radix(g, 16).ok()
                }
            })
            .collect()
    };
    let head_groups = parse_groups(head)?;
    let has_elision = s.contains("::");
    let tail_groups = if has_elision {
        parse_groups(tail)?
    } else {
        Vec::new()
    };
    let total = head_groups.len() + tail_groups.len();
    if (has_elision && total >= 8) || (!has_elision && head_groups.len() != 8) {
        return None;
    }
    let mut groups = [0u16; 8];
    for (i, g) in head_groups.iter().enumerate() {
        groups[i] = *g;
    }
    let offset = 8 - tail_groups.len();
    for (i, g) in tail_groups.iter().enumerate() {
        groups[offset + i] = *g;
    }
    let mut out: u128 = 0;
    for g in groups {
        out = (out << 16) | g as u128;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_compressed_forms() {
        assert_eq!(parse_ipv6("::"), Some(0));
        assert_eq!(parse_ipv6("::1"), Some(1));
        assert_eq!(parse_ipv6("1::"), Some(1u128 << 112));
        assert_eq!(
            parse_ipv6("2001:db8::1"),
            Some(0x2001_0db8_0000_0000_0000_0000_0000_0001)
        );
        assert_eq!(
            parse_ipv6("1:2:3:4:5:6:7:8"),
            Some(0x0001_0002_0003_0004_0005_0006_0007_0008)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            ":::",
            "1::2::3",
            "1:2:3:4:5:6:7",     // seven groups, no elision
            "1:2:3:4:5:6:7:8:9", // nine groups
            "12345::",           // group too wide
            "g::1",              // non-hex
            "1:2:3:4:5:6:7:8::", // elision with 8 groups already
        ] {
            assert_eq!(parse_ipv6(s), None, "accepted {s:?}");
        }
    }

    #[test]
    fn net_parse_display_round_trip() {
        let net: Ipv6Net = "2001:db8::/48".parse().unwrap();
        assert_eq!(net.to_string(), "2001:db8:0:0:0:0:0:0/48");
        assert_eq!(net.len(), 48);
        let default: Ipv6Net = "::/0".parse().unwrap();
        assert!(default.is_default());
    }

    #[test]
    fn strict_rejects_host_bits() {
        assert!("2001:db8::1/48".parse::<Ipv6Net>().is_err());
        assert!("2001:db8::1/128".parse::<Ipv6Net>().is_ok());
    }

    #[test]
    fn containment() {
        let outer: Ipv6Net = "2001:db8::/32".parse().unwrap();
        let inner: Ipv6Net = "2001:db8:42::/48".parse().unwrap();
        assert!(outer.contains_net(&inner));
        assert!(!inner.contains_net(&outer));
        assert!(outer.contains(0x2001_0db8_ffff_0000_0000_0000_0000_0001));
        assert!(!outer.contains(0x2001_0db9_0000_0000_0000_0000_0000_0000));
    }

    #[test]
    fn subnets_enumeration_and_cap() {
        let net: Ipv6Net = "2001:db8::/46".parse().unwrap();
        let subs: Vec<_> = net.subnets(48).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[1].to_string(), "2001:db8:1:0:0:0:0:0/48");
        // The enumeration cap bounds pathological requests.
        let all: Ipv6Net = "::/0".parse().unwrap();
        assert_eq!(all.subnets(48).count(), 1 << 20);
    }

    #[test]
    fn block48_span() {
        assert_eq!("2001:db8::/48".parse::<Ipv6Net>().unwrap().num_block48(), 1);
        assert_eq!(
            "2001:db8::/32".parse::<Ipv6Net>().unwrap().num_block48(),
            1 << 16
        );
        assert_eq!("2001:db8::/64".parse::<Ipv6Net>().unwrap().num_block48(), 1);
    }
}
