use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::NetAddrError;

/// An autonomous system number.
///
/// 32-bit per RFC 6793. Displayed as `AS15169`; parsing accepts both the
/// prefixed (`AS15169`) and bare (`15169`) forms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl Asn {
    /// The raw number.
    #[inline]
    pub fn value(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl FromStr for Asn {
    type Err = NetAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| NetAddrError::Parse(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse() {
        assert_eq!(Asn(15169).to_string(), "AS15169");
        assert_eq!("AS15169".parse::<Asn>().unwrap(), Asn(15169));
        assert_eq!("as7018".parse::<Asn>().unwrap(), Asn(7018));
        assert_eq!("701".parse::<Asn>().unwrap(), Asn(701));
        assert!("ASfoo".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Asn(9) < Asn(10));
        assert!(Asn(65535) < Asn(4200000000));
    }
}
