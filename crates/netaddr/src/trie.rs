use serde::{Deserialize, Serialize};

use crate::{Ipv4Net, Ipv6Net};

/// A binary radix trie over left-aligned 128-bit keys with longest-prefix
/// match.
///
/// Both address families are represented in the same node layout: IPv4
/// prefixes are shifted into the top 32 bits of the key. A single trie must
/// hold only one family — [`DualPrefixTrie`] wraps a pair when both are
/// needed, which is the common case for carrier ground-truth lookups.
///
/// The node pool is a flat `Vec`, children are indices; this keeps the trie
/// compact, serializable, and free of unsafe code or pointer juggling —
/// simplicity and robustness over micro-optimization, per the smoltcp
/// design philosophy this workspace follows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node>,
    values: Vec<Entry<V>>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Node {
    /// Child node indices for bit 0 / bit 1; `u32::MAX` means absent.
    children: [u32; 2],
    /// Index into `values`, or `u32::MAX` when no prefix terminates here.
    value: u32,
}

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Entry<V> {
    bits: u128,
    len: u8,
    value: V,
}

impl Node {
    fn empty() -> Self {
        Node {
            children: [NONE, NONE],
            value: NONE,
        }
    }
}

impl<V> PrefixTrie<V> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::empty()],
            values: Vec::new(),
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Insert a prefix given as left-aligned bits + length. Replaces and
    /// returns the previous value if the exact prefix was already present.
    pub fn insert_bits(&mut self, bits: u128, len: u8, value: V) -> Option<V> {
        debug_assert!(len <= 128);
        debug_assert_eq!(bits & mask_low(len), 0, "host bits set below mask");
        let mut node = 0usize;
        for i in 0..len {
            let bit = ((bits >> (127 - i)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            node = if child == NONE {
                self.nodes.push(Node::empty());
                let idx = (self.nodes.len() - 1) as u32;
                self.nodes[node].children[bit] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let slot = self.nodes[node].value;
        if slot == NONE {
            self.values.push(Entry { bits, len, value });
            self.nodes[node].value = (self.values.len() - 1) as u32;
            None
        } else {
            let entry = &mut self.values[slot as usize];
            Some(std::mem::replace(&mut entry.value, value))
        }
    }

    /// Exact-match lookup of a prefix.
    pub fn get_bits(&self, bits: u128, len: u8) -> Option<&V> {
        let mut node = 0usize;
        for i in 0..len {
            let bit = ((bits >> (127 - i)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            if child == NONE {
                return None;
            }
            node = child as usize;
        }
        let slot = self.nodes[node].value;
        if slot == NONE {
            None
        } else {
            Some(&self.values[slot as usize].value)
        }
    }

    /// Longest-prefix match for a full 128-bit key. Returns the matched
    /// prefix (as bits + length) and its value.
    pub fn lookup_bits(&self, key: u128) -> Option<((u128, u8), &V)> {
        let mut node = 0usize;
        let mut best: Option<u32> = slot_of(&self.nodes[0]);
        for i in 0..128u8 {
            let bit = ((key >> (127 - i)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            if child == NONE {
                break;
            }
            node = child as usize;
            if let Some(slot) = slot_of(&self.nodes[node]) {
                best = Some(slot);
            }
        }
        best.map(|slot| {
            let e = &self.values[slot as usize];
            ((e.bits, e.len), &e.value)
        })
    }

    /// Iterate over all stored `(bits, len, value)` entries in insertion
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, u8, &V)> {
        self.values.iter().map(|e| (e.bits, e.len, &e.value))
    }
}

fn slot_of(node: &Node) -> Option<u32> {
    if node.value == NONE {
        None
    } else {
        Some(node.value)
    }
}

/// Low `128 - len` bits set — the host-bit mask for a left-aligned prefix.
#[inline]
fn mask_low(len: u8) -> u128 {
    if len == 0 {
        u128::MAX
    } else if len >= 128 {
        0
    } else {
        u128::MAX >> len
    }
}

/// Left-align an IPv4 prefix into the 128-bit key space.
#[inline]
fn v4_bits(net: &Ipv4Net) -> u128 {
    (net.addr() as u128) << 96
}

/// Left-align an IPv4 address into the 128-bit key space.
#[inline]
fn v4_key(addr: u32) -> u128 {
    (addr as u128) << 96
}

impl<V> PrefixTrie<V> {
    /// Insert an IPv4 prefix.
    pub fn insert(&mut self, net: Ipv4Net, value: V) -> Option<V> {
        self.insert_bits(v4_bits(&net), net.len(), value)
    }

    /// Insert an IPv6 prefix.
    pub fn insert_v6(&mut self, net: Ipv6Net, value: V) -> Option<V> {
        self.insert_bits(net.addr(), net.len(), value)
    }

    /// Longest-prefix match for an IPv4 address; the trie must contain only
    /// IPv4 prefixes for the result to be meaningful.
    pub fn lookup_v4(&self, addr: u32) -> Option<(Ipv4Net, &V)> {
        self.lookup_bits(v4_key(addr)).map(|((bits, len), v)| {
            let net = Ipv4Net::new((bits >> 96) as u32, len)
                .expect("stored IPv4 prefix lengths are always ≤ 32");
            (net, v)
        })
    }

    /// Longest-prefix match for an IPv6 address; the trie must contain only
    /// IPv6 prefixes for the result to be meaningful.
    pub fn lookup_v6(&self, addr: u128) -> Option<(Ipv6Net, &V)> {
        self.lookup_bits(addr).map(|((bits, len), v)| {
            let net = Ipv6Net::new(bits, len).expect("stored IPv6 prefix lengths are always ≤ 128");
            (net, v)
        })
    }

    /// Exact-match lookup of an IPv4 prefix.
    pub fn get(&self, net: &Ipv4Net) -> Option<&V> {
        self.get_bits(v4_bits(net), net.len())
    }

    /// Exact-match lookup of an IPv6 prefix.
    pub fn get_v6(&self, net: &Ipv6Net) -> Option<&V> {
        self.get_bits(net.addr(), net.len())
    }
}

/// A pair of tries, one per address family, with family-dispatching
/// operations. This is what consumers use for ground-truth prefix lists
/// that mix IPv4 and IPv6 CIDRs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DualPrefixTrie<V> {
    /// IPv4 prefixes.
    pub v4: PrefixTrie<V>,
    /// IPv6 prefixes.
    pub v6: PrefixTrie<V>,
}

impl<V> DualPrefixTrie<V> {
    /// An empty pair of tries.
    pub fn new() -> Self {
        DualPrefixTrie {
            v4: PrefixTrie::new(),
            v6: PrefixTrie::new(),
        }
    }

    /// Total number of stored prefixes across both families.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// True when no prefixes are stored in either family.
    pub fn is_empty(&self) -> bool {
        self.v4.is_empty() && self.v6.is_empty()
    }

    /// Insert an IPv4 prefix.
    pub fn insert_v4(&mut self, net: Ipv4Net, value: V) -> Option<V> {
        self.v4.insert(net, value)
    }

    /// Insert an IPv6 prefix.
    pub fn insert_v6(&mut self, net: Ipv6Net, value: V) -> Option<V> {
        self.v6.insert_v6(net, value)
    }

    /// Longest-prefix match for an IPv4 address.
    pub fn lookup_v4(&self, addr: u32) -> Option<(Ipv4Net, &V)> {
        self.v4.lookup_v4(addr)
    }

    /// Longest-prefix match for an IPv6 address.
    pub fn lookup_v6(&self, addr: u128) -> Option<(Ipv6Net, &V)> {
        self.v6.lookup_v6(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trie_matches_nothing() {
        let trie: PrefixTrie<u32> = PrefixTrie::new();
        assert!(trie.is_empty());
        assert!(trie.lookup_v4(0x01020304).is_none());
        assert!(trie.lookup_v6(1).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut trie = PrefixTrie::new();
        trie.insert("0.0.0.0/0".parse().unwrap(), "default");
        let (net, v) = trie.lookup_v4(0xDEADBEEF).unwrap();
        assert_eq!(net.to_string(), "0.0.0.0/0");
        assert_eq!(*v, "default");
    }

    #[test]
    fn longest_prefix_wins() {
        let mut trie = PrefixTrie::new();
        trie.insert("10.0.0.0/8".parse().unwrap(), 8);
        trie.insert("10.1.0.0/16".parse().unwrap(), 16);
        trie.insert("10.1.2.0/24".parse().unwrap(), 24);
        assert_eq!(trie.lookup_v4(0x0A010203).map(|(_, v)| *v), Some(24));
        assert_eq!(trie.lookup_v4(0x0A01FF00).map(|(_, v)| *v), Some(16));
        assert_eq!(trie.lookup_v4(0x0AFF0000).map(|(_, v)| *v), Some(8));
        assert_eq!(trie.lookup_v4(0x0B000000), None);
    }

    #[test]
    fn insert_replaces_and_returns_old_value() {
        let mut trie = PrefixTrie::new();
        let net: Ipv4Net = "192.0.2.0/24".parse().unwrap();
        assert_eq!(trie.insert(net, 1), None);
        assert_eq!(trie.insert(net, 2), Some(1));
        assert_eq!(trie.get(&net), Some(&2));
        assert_eq!(trie.len(), 1);
    }

    #[test]
    fn exact_get_does_not_fall_back() {
        let mut trie = PrefixTrie::new();
        trie.insert("10.0.0.0/8".parse().unwrap(), 8);
        assert_eq!(trie.get(&"10.1.0.0/16".parse().unwrap()), None);
        assert_eq!(trie.get(&"10.0.0.0/8".parse().unwrap()), Some(&8));
    }

    #[test]
    fn v6_lookup() {
        let mut trie = PrefixTrie::new();
        trie.insert_v6("2001:db8::/32".parse().unwrap(), "doc");
        trie.insert_v6("2001:db8:42::/48".parse().unwrap(), "sub");
        let hit = trie
            .lookup_v6(0x2001_0db8_0042_0000_0000_0000_0000_0001)
            .unwrap();
        assert_eq!(*hit.1, "sub");
        let hit = trie
            .lookup_v6(0x2001_0db8_9999_0000_0000_0000_0000_0001)
            .unwrap();
        assert_eq!(*hit.1, "doc");
    }

    #[test]
    fn host_route_matches_only_itself() {
        let mut trie = PrefixTrie::new();
        trie.insert("192.0.2.1/32".parse().unwrap(), ());
        assert!(trie.lookup_v4(0xC0000201).is_some());
        assert!(trie.lookup_v4(0xC0000202).is_none());
    }

    #[test]
    fn dual_trie_dispatch() {
        let mut dual = DualPrefixTrie::new();
        dual.insert_v4("198.51.100.0/24".parse().unwrap(), "v4");
        dual.insert_v6("2001:db8::/48".parse().unwrap(), "v6");
        assert_eq!(dual.len(), 2);
        assert_eq!(dual.lookup_v4(0xC6336405).map(|(_, v)| *v), Some("v4"));
        assert_eq!(
            dual.lookup_v6(0x2001_0db8_0000_0000_0000_0000_0000_0001)
                .map(|(_, v)| *v),
            Some("v6")
        );
        assert_eq!(dual.lookup_v4(0x01010101), None);
    }

    #[test]
    fn iter_returns_all_entries() {
        let mut trie = PrefixTrie::new();
        trie.insert("10.0.0.0/8".parse().unwrap(), 1);
        trie.insert("172.16.0.0/12".parse().unwrap(), 2);
        let collected: Vec<_> = trie.iter().map(|(_, len, v)| (len, *v)).collect();
        assert_eq!(collected, vec![(8, 1), (12, 2)]);
    }
}
