//! # netaddr — IP addressing substrate
//!
//! Foundation types for the Cell Spotting reproduction: IPv4/IPv6 network
//! prefixes backed by plain integers, the fixed-size aggregation blocks the
//! paper operates on (/24 for IPv4, /48 for IPv6), binary radix tries with
//! longest-prefix match for joining arbitrary-length carrier CIDRs against
//! observed addresses, autonomous-system numbers, and geographic metadata
//! (countries, continents, ITU subscriber statistics).
//!
//! Everything here is deterministic, allocation-light, and independent of
//! the operating system's socket types: addresses are `u32`/`u128` values,
//! which keeps the measurement pipeline trivially serializable and fast to
//! hash and sort.
//!
//! ## Quick tour
//!
//! ```
//! use netaddr::{Ipv4Net, Block24, PrefixTrie};
//!
//! let net: Ipv4Net = "203.0.113.0/24".parse().unwrap();
//! assert!(net.contains(0xCB007105)); // 203.0.113.5
//!
//! // The paper aggregates all measurement at /24 granularity:
//! let block = Block24::of_addr(0xCB007105);
//! assert_eq!(block.network(), net);
//!
//! // Carrier ground truth arrives as arbitrary-length CIDRs; the trie
//! // answers "which ground-truth prefix covers this block?".
//! let mut trie = PrefixTrie::new();
//! trie.insert("203.0.112.0/22".parse::<Ipv4Net>().unwrap(), "carrier-a");
//! assert_eq!(trie.lookup_v4(0xCB007105).map(|(_, v)| *v), Some("carrier-a"));
//! ```

mod asn;
mod block;
mod error;
mod geo;
mod ipv4;
mod ipv6;
mod prefixset;
mod trie;

pub use asn::Asn;
pub use block::{Block24, Block48, BlockId};
pub use error::NetAddrError;
pub use geo::{ituc_subscribers_millions, Continent, CountryCode, CONTINENTS};
pub use ipv4::Ipv4Net;
pub use ipv6::Ipv6Net;
pub use prefixset::Ipv4PrefixSet;
pub use trie::{DualPrefixTrie, PrefixTrie};

/// Format a raw IPv4 address (host byte order `u32`) in dotted-quad form.
pub fn fmt_ipv4(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (addr >> 24) & 0xFF,
        (addr >> 16) & 0xFF,
        (addr >> 8) & 0xFF,
        addr & 0xFF
    )
}

/// Format a raw IPv6 address (`u128`) in full-length colon-hex form.
///
/// We deliberately emit the uncompressed form (eight 16-bit groups) —
/// unambiguous output matters more than brevity in logs and reports.
pub fn fmt_ipv6(addr: u128) -> String {
    let mut groups = [0u16; 8];
    for (i, g) in groups.iter_mut().enumerate() {
        *g = ((addr >> (112 - 16 * i)) & 0xFFFF) as u16;
    }
    groups
        .iter()
        .map(|g| format!("{g:x}"))
        .collect::<Vec<_>>()
        .join(":")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ipv4_dotted_quad() {
        assert_eq!(fmt_ipv4(0), "0.0.0.0");
        assert_eq!(fmt_ipv4(0xFFFFFFFF), "255.255.255.255");
        assert_eq!(fmt_ipv4(0xC0A80101), "192.168.1.1");
    }

    #[test]
    fn fmt_ipv6_groups() {
        assert_eq!(fmt_ipv6(0), "0:0:0:0:0:0:0:0");
        assert_eq!(fmt_ipv6(1), "0:0:0:0:0:0:0:1");
        assert_eq!(
            fmt_ipv6(0x2001_0db8_0000_0000_0000_0000_0000_0001),
            "2001:db8:0:0:0:0:0:1"
        );
    }
}
