//! The prefix universe traces are generated over.

use cellserve::{FrozenIndex, IndexView};
use cellspot::Classification;
use netaddr::{Block24, Block48, BlockId};

/// The served prefix universe: the cellular-labeled /24 and /48 blocks
/// a trace draws its hit traffic from.
///
/// Both constructors produce the **same block order** for the same
/// logical classification — v4 blocks ascending by index, then v6
/// blocks ascending by index — which is what lets a trace generated
/// from a live [`Classification`] replay bit-identically against an
/// artifact round-tripped through `index build`:
///
/// - [`Universe::from_classification`] keeps [`Classification::iter`]'s
///   sorted-by-block-id order.
/// - [`Universe::from_frozen`] walks [`FrozenIndex::entries_v4`] /
///   [`FrozenIndex::entries_v6`] (canonical order: shortest prefix
///   first, keys ascending) and collapses each served prefix to the
///   /24 or /48 block containing its first address. For artifacts built
///   from a classification — all-/24 and all-/48 — that is exactly the
///   classification's block list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Universe {
    /// IPv4 /24 blocks, ascending by block index.
    pub v4: Vec<Block24>,
    /// IPv6 /48 blocks, ascending by block index.
    pub v6: Vec<Block48>,
}

impl Universe {
    /// The universe of a classification, in its canonical block order.
    pub fn from_classification(class: &Classification) -> Universe {
        let mut v4 = Vec::new();
        let mut v6 = Vec::new();
        for (block, _) in class.iter() {
            match block {
                BlockId::V4(b) => v4.push(b),
                BlockId::V6(b) => v6.push(b),
            }
        }
        Universe { v4, v6 }
    }

    /// The universe of any loaded artifact view — owned
    /// [`FrozenIndex`], zero-copy [`cellserve::MappedIndex`], or
    /// [`cellserve::ArtifactHandle`]: one block per served prefix,
    /// deduplicated.
    pub fn from_view<V: IndexView + ?Sized>(index: &V) -> Universe {
        let mut v4: Vec<Block24> = Vec::new();
        index.for_each_v4(&mut |net, _| v4.push(Block24::of_net(&net)));
        v4.sort_by_key(|b| b.index());
        v4.dedup();
        let mut v6: Vec<Block48> = Vec::new();
        index.for_each_v6(&mut |net, _| v6.push(Block48::of_net(&net)));
        v6.sort_by_key(|b| b.index());
        v6.dedup();
        Universe { v4, v6 }
    }

    /// [`Universe::from_view`] for an owned [`FrozenIndex`] — kept for
    /// call sites that predate the view API.
    pub fn from_frozen(index: &FrozenIndex) -> Universe {
        Self::from_view(index)
    }

    /// Total number of blocks across both families.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// True when no family has any served block.
    pub fn is_empty(&self) -> bool {
        self.v4.is_empty() && self.v6.is_empty()
    }
}
