//! Seeded adversarial workload generation and closed-loop replay for
//! the serving stack.
//!
//! The paper's classification is only as credible as the workloads it
//! survives. This crate turns the live prefix universe (a
//! [`cellspot::Classification`] or a loaded [`cellserve::FrozenIndex`])
//! into **named, seeded query traces** — Zipf-skewed popularity,
//! diurnal intensity cycles, flash crowds, cache-busting scans, and
//! mid-trace churn that tracks CELLDELT epochs — and replays them
//! **closed-loop** against three targets:
//!
//! - the in-process [`cellserve::QueryEngine`] over a `FrozenIndex`,
//! - a live `cellspot serve` daemon over its framed TCP protocol
//!   (via [`cellserved::FramedClient`]),
//! - the same daemon over bulk HTTP `POST /lookup`.
//!
//! Three contracts hold everywhere:
//!
//! 1. **Determinism** — for a given `(preset, seed, queries, epochs)`
//!    and universe, the generated trace is bit-identical at any rayon
//!    thread count ([`TraceSpec::generate`] seeds one RNG stream per
//!    fixed-size chunk, never per worker).
//! 2. **Replayability** — traces serialize to a sealed CLOAD file
//!    ([`Trace::to_bytes`]) with the same length + CRC-32 trailer
//!    discipline as CELLSERV/CELLDELT; encoding is canonical
//!    (`to_bytes(from_bytes(b)?) == b`) and any single-byte corruption
//!    is rejected.
//! 3. **Answer identity** — every replay target normalizes answers to
//!    the same `(matched, prefix_len, asn, class_byte)` tuple and folds
//!    them, in query order, into an FNV-1a digest
//!    ([`replay::AnswerDigest`]), so "the daemon answered exactly like
//!    a cold engine run" is one `u64` comparison — including across a
//!    `--delta-watch` hot-patch mid-replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod preset;
pub mod replay;
pub mod report;
pub mod trace;
pub mod universe;
pub mod zipf;

mod error;

pub use error::LoadError;
pub use preset::{steady_queries, Preset, TraceSpec};
pub use cellserved::ClientPolicy;
pub use replay::{
    replay_engine, replay_framed, replay_http, AnswerDigest, ReplayConfig, ReplayError,
    ReplayOutcome, SegmentOutcome,
};
pub use report::{bench_replay_record, replay_json, workload_json};
pub use trace::{Trace, TraceSegment};
pub use universe::Universe;
pub use zipf::ZipfTable;
