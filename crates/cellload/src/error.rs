//! Error type for trace decoding.

/// Why a CLOAD trace file was rejected.
#[derive(Debug)]
pub enum LoadError {
    /// The bytes fail the seal or a structural invariant.
    Corrupt(String),
    /// The file is a CLOAD trace from a newer format version.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Corrupt(why) => write!(f, "corrupt trace file: {why}"),
            LoadError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v}")
            }
        }
    }
}

impl std::error::Error for LoadError {}
