//! `BENCH_replay.json` assembly.
//!
//! The record splits into a **workload** section — a pure function of
//! `(preset, seed, queries, epochs, universe)`, byte-identical at any
//! thread count, CI-diffable across runs — and a **replay** section
//! carrying the measured numbers (throughput, tail latency, cache
//! behaviour) that vary run to run.

use cellobs::Observer;
use serde_json::{json, Value};

use crate::replay::ReplayOutcome;
use crate::trace::Trace;
use crate::universe::Universe;

/// The deterministic workload section: everything here must be
/// identical for the same `(preset, seed)` regardless of `--threads`,
/// client count, or replay mode.
pub fn workload_json(trace: &Trace, universe: &Universe) -> Value {
    json!({
        "preset": trace.preset,
        "seed": trace.seed,
        "queries": trace.total_queries(),
        "trace_digest": cellserve::hash_hex(trace.digest()),
        "universe": {
            "v4_blocks": universe.v4.len(),
            "v6_blocks": universe.v6.len(),
        },
        "segments": trace
            .segments
            .iter()
            .map(|s| json!({"epoch": s.epoch, "queries": s.queries.len()}))
            .collect::<Vec<_>>(),
    })
}

/// The measured replay section. Latency quantiles come from the
/// observer: per-lookup `serve.lookup.ns` when the engine (or an
/// in-process daemon) shares the observer, per-frame `replay.frame.ns`
/// for network replays.
pub fn replay_json(outcome: &ReplayOutcome, obs: &Observer) -> Value {
    let snap = obs.snapshot();
    let latency = ["serve.lookup.ns", "replay.frame.ns"]
        .iter()
        .find_map(|name| {
            let h = snap.histograms.get(*name)?;
            Some(json!({
                "source": name,
                "unit": "ns",
                "count": h.count,
                "p50": h.quantile(0.50),
                "p99": h.quantile(0.99),
                "p999": h.quantile(0.999),
            }))
        })
        .unwrap_or(Value::Null);
    let cache_total = outcome.cache_hits + outcome.cache_misses;
    json!({
        "mode": outcome.mode,
        "wall_secs": outcome.wall_secs,
        "lookups": outcome.lookups,
        "lookups_per_sec": outcome.lookups_per_sec(),
        "matched": outcome.matched,
        "dropped": outcome.dropped,
        "answer_digest": cellserve::hash_hex(outcome.answer_digest),
        "cache": {
            "hits": outcome.cache_hits,
            "misses": outcome.cache_misses,
            "uncached": outcome.uncached,
            "hit_rate": if cache_total > 0 {
                outcome.cache_hits as f64 / cache_total as f64
            } else {
                0.0
            },
        },
        "latency": latency,
        "segments": outcome
            .segments
            .iter()
            .map(|s| json!({
                "epoch": s.epoch,
                "lookups": s.lookups,
                "matched": s.matched,
                "dropped": s.dropped,
                "answer_digest": cellserve::hash_hex(s.answer_digest),
            }))
            .collect::<Vec<_>>(),
    })
}

/// The full `BENCH_replay.json` record.
pub fn bench_replay_record(threads: usize, workload: Value, replay: Value) -> Value {
    json!({
        "bench": "replay",
        "threads": threads,
        "workload": workload,
        "replay": replay,
    })
}
