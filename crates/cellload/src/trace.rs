//! The sealed CLOAD trace file format.
//!
//! A generated workload serializes to a compact, versioned byte layout
//! sealed with the same length + CRC-32 trailer discipline as the
//! CELLSERV artifact and CELLDELT delta formats. All integers are
//! little-endian except query addresses, which reuse the framed
//! protocol's big-endian (network order) encoding.
//!
//! ```text
//! body:
//!   magic            8 bytes  "CELLLOAD"
//!   version          u32      TRACE_VERSION (1)
//!   seed             u64      the generator seed
//!   preset_len       u8
//!   preset           preset_len bytes, UTF-8 preset name
//!   segment_count    u32
//!   segments         segment_count × {
//!     epoch          u64      CELLDELT epoch this segment expects
//!     query_count    u32
//!     queries        query_count × { family u8 (4|6),
//!                                    addr 4 or 16 bytes BE }
//!   }
//! trailer (16 bytes):
//!   body_len         u64      length of everything before the trailer
//!   crc32            u32      CRC-32 (IEEE) of the body
//!   trailer magic    4 bytes  "CLDT"
//! ```
//!
//! [`Trace::from_bytes`] verifies the seal (trailer magic, length,
//! CRC) before touching the body, then parses strictly: bad family
//! bytes, short bodies, and trailing garbage are all rejected, so the
//! encoding is canonical — `to_bytes(from_bytes(b)?) == b` — and the
//! trace digest ([`Trace::digest`]) identifies a workload the way an
//! artifact's content hash identifies a generation.

use cellserve::IpKey;

use crate::error::LoadError;

/// Leading magic identifying a CLOAD trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"CELLLOAD";

/// Format version this build writes and reads.
pub const TRACE_VERSION: u32 = 1;

/// Trailing magic closing the seal.
const TRAILER_MAGIC: [u8; 4] = *b"CLDT";

/// Trailer size: body length (8) + CRC-32 (4) + magic (4).
const TRAILER_LEN: usize = 16;

fn corrupt(why: impl Into<String>) -> LoadError {
    LoadError::Corrupt(why.into())
}

/// One contiguous run of queries generated against a single serving
/// epoch.
///
/// Non-churn presets emit exactly one segment at epoch 0. The `churn`
/// preset emits one segment per CELLDELT epoch; the replay driver
/// announces each boundary so the harness can hot-patch the daemon (or
/// swap engines) before the segment's queries are issued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSegment {
    /// The CELLDELT epoch the serving side is expected to be at.
    pub epoch: u64,
    /// The queries, in replay order.
    pub queries: Vec<IpKey>,
}

/// A complete generated workload: metadata plus ordered segments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Name of the preset that generated this trace.
    pub preset: String,
    /// The generator seed.
    pub seed: u64,
    /// Ordered segments; replay issues them first to last.
    pub segments: Vec<TraceSegment>,
}

impl Trace {
    /// Total queries across all segments.
    pub fn total_queries(&self) -> usize {
        self.segments.iter().map(|s| s.queries.len()).sum()
    }

    /// FNV-1a 64 content hash of the sealed encoding — the workload's
    /// identity. Two traces digest equal iff they replay byte-identical
    /// query streams.
    pub fn digest(&self) -> u64 {
        cellserve::content_hash(&self.to_bytes())
    }

    /// Serialize into a sealed CLOAD file.
    ///
    /// # Panics
    /// When the preset name exceeds 255 bytes or a segment exceeds
    /// `u32::MAX` queries — both far beyond anything the generator
    /// emits.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(
            self.preset.len() <= u8::MAX as usize,
            "preset name too long"
        );
        let mut out = Vec::with_capacity(64 + self.total_queries() * 5);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.push(self.preset.len() as u8);
        out.extend_from_slice(self.preset.as_bytes());
        out.extend_from_slice(
            &u32::try_from(self.segments.len())
                .expect("segment count")
                .to_le_bytes(),
        );
        for seg in &self.segments {
            out.extend_from_slice(&seg.epoch.to_le_bytes());
            out.extend_from_slice(
                &u32::try_from(seg.queries.len())
                    .expect("query count")
                    .to_le_bytes(),
            );
            for q in &seg.queries {
                match q {
                    IpKey::V4(a) => {
                        out.push(4);
                        out.extend_from_slice(&a.to_be_bytes());
                    }
                    IpKey::V6(a) => {
                        out.push(6);
                        out.extend_from_slice(&a.to_be_bytes());
                    }
                }
            }
        }
        let body_len = out.len() as u64;
        let crc = cellstream::crc32(&out);
        out.extend_from_slice(&body_len.to_le_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&TRAILER_MAGIC);
        out
    }

    /// Verify the seal and decode.
    ///
    /// # Errors
    /// [`LoadError::Corrupt`] on any seal or structural violation;
    /// [`LoadError::UnsupportedVersion`] when the file is from a newer
    /// format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, LoadError> {
        if bytes.len() < TRAILER_LEN {
            return Err(corrupt("shorter than the seal trailer"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
        if trailer[12..16] != TRAILER_MAGIC {
            return Err(corrupt("bad trailer magic"));
        }
        let sealed_len = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
        if sealed_len != body.len() as u64 {
            return Err(corrupt(format!(
                "sealed length {sealed_len} != body length {}",
                body.len()
            )));
        }
        let sealed_crc = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
        let crc = cellstream::crc32(body);
        if sealed_crc != crc {
            return Err(corrupt(format!(
                "CRC mismatch: sealed {sealed_crc:08x}, computed {crc:08x}"
            )));
        }

        let mut r = Reader { body, pos: 0 };
        if r.take(8)? != TRACE_MAGIC {
            return Err(corrupt("bad leading magic"));
        }
        let version = r.u32()?;
        if version != TRACE_VERSION {
            return Err(LoadError::UnsupportedVersion(version));
        }
        let seed = r.u64()?;
        let preset_len = r.u8()? as usize;
        let preset = String::from_utf8(r.take(preset_len)?.to_vec())
            .map_err(|_| corrupt("preset name is not UTF-8"))?;
        let segment_count = r.u32()? as usize;
        let mut segments = Vec::with_capacity(segment_count.min(1024));
        for _ in 0..segment_count {
            let epoch = r.u64()?;
            let query_count = r.u32()? as usize;
            let mut queries = Vec::with_capacity(query_count.min(1 << 20));
            for _ in 0..query_count {
                match r.u8()? {
                    4 => queries.push(IpKey::V4(u32::from_be_bytes(
                        r.take(4)?.try_into().expect("4 bytes"),
                    ))),
                    6 => queries.push(IpKey::V6(u128::from_be_bytes(
                        r.take(16)?.try_into().expect("16 bytes"),
                    ))),
                    f => return Err(corrupt(format!("invalid family byte {f}"))),
                }
            }
            segments.push(TraceSegment { epoch, queries });
        }
        if r.pos != body.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after the last segment",
                body.len() - r.pos
            )));
        }
        Ok(Trace {
            preset,
            seed,
            segments,
        })
    }
}

/// Bounds-checked sequential body reader.
struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        if self.body.len() - self.pos < n {
            return Err(corrupt("body truncated"));
        }
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, LoadError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, LoadError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, LoadError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            preset: "steady".to_string(),
            seed: 42,
            segments: vec![
                TraceSegment {
                    epoch: 0,
                    queries: vec![IpKey::V4(0x0A00_0001), IpKey::V6(1 << 80)],
                },
                TraceSegment {
                    epoch: 1,
                    queries: vec![IpKey::V4(0xC000_0201)],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_canonical() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("decode");
        assert_eq!(back, t);
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.digest(), t.digest());
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] ^= 0x01;
            assert!(Trace::from_bytes(&c).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Trace::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn newer_version_is_rejected_as_unsupported() {
        let mut t = sample();
        t.segments.clear();
        let mut bytes = t.to_bytes();
        // Bump the version field, then re-seal so only the version check
        // can object.
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        let body_len = bytes.len() - TRAILER_LEN;
        let crc = cellstream::crc32(&bytes[..body_len]);
        let at = body_len + 8;
        bytes[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        match Trace::from_bytes(&bytes) {
            Err(LoadError::UnsupportedVersion(2)) => {}
            other => panic!("expected UnsupportedVersion(2), got {other:?}"),
        }
    }
}
